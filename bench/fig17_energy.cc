/**
 * @file
 * Figure 17 reproduction: dynamic memory energy (read + write, at
 * the mat level, including all metadata traffic), normalized to
 * baseline.
 *
 * Paper savings vs baseline: Split-reset 33%, BLP 34%, LADDER-Basic
 * 46%, Est 48%, Hybrid 53% (i.e. 28.8% below BLP).
 */

#include "bench_common.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args =
        parseBenchArgs(argc, argv, cfg, {}, paperSchemes());
    requireScheme(args, SchemeKind::Baseline,
                  "energy is normalized to the baseline");

    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);

    std::printf("=== Figure 17: normalized dynamic memory energy "
                "(read+write) ===\n\n");
    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) {
                             return r.readEnergyPj + r.writeEnergyPj;
                         });

    std::printf("\n--- write-energy component (normalized) ---\n");
    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) {
                             return r.writeEnergyPj;
                         });

    std::printf("\n--- read-energy component (normalized; includes "
                "SMB/metadata reads) ---\n");
    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) {
                             return r.readEnergyPj;
                         });

    std::printf("\npaper reference (total): Split-reset 0.67, BLP "
                "0.66, LADDER-Basic 0.54, Est 0.52, Hybrid 0.47\n");
    return 0;
}
