/**
 * @file
 * Table 4 reproduction: controller-side hardware overhead of the
 * LADDER logic blocks and the metadata cache, plus the §6.3 memory
 * storage overheads of the three metadata designs and the timing
 * table buffer.
 */

#include <cstdio>

#include "bench_common.hh"
#include "hwcost/hwcost.hh"
#include "reram/timing_tables.hh"
#include "schemes/metadata_layout.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(argc, argv, cfg);
    rejectSweepSelection(
        args, "the overhead tables are workload-independent");

    std::printf("=== Table 4: hardware overhead of LADDER ===\n\n");
    std::printf("%-34s %12s %12s %12s\n", "module", "area (mm^2)",
                "power (mW)", "latency (ns)");
    for (const ModuleCost &row : table4()) {
        std::printf("%-34s %12.4f %12.2f %12.2f\n", row.name.c_str(),
                    row.areaMm2, row.powerMw, row.latencyNs);
    }
    std::printf("\npaper reference: update 0.0061/3.71/0.17, query "
                "0.0047/6.57/0.32, cache 0.2442/48.83/0.81\n");

    ModuleCost tables = timingTableCost(cfg.granularity);
    std::printf("\n%-34s %12.4f %12.2f %12.2f\n", tables.name.c_str(),
                tables.areaMm2, tables.powerMw, tables.latencyNs);

    const TimingModel &model =
        cachedTimingModel(cfg.system.crossbar);
    std::printf("\ntiming-table on-chip buffer: %zu B (paper: 512 B "
                "for the 8x8x8 organization)\n",
                model.ladder.storageBytes());

    std::printf("\n=== Section 6.3: LRS-metadata storage overhead "
                "===\n\n");
    const MemoryGeometry &geo = cfg.system.geometry;
    AddressMap map(geo);
    MetadataLayout layout(geo, map.totalPages() * 3 / 4);
    std::printf("  LADDER-Basic   %5.2f%%   (paper 3.12%%)\n",
                layout.basicOverhead() * 100);
    std::printf("  LADDER-Est     %5.2f%%   (paper 1.56%%)\n",
                layout.estOverhead() * 100);
    std::printf("  LADDER-Hybrid  %5.2f%%   (paper 0.97%%, bottom "
                "128 rows low-precision)\n",
                layout.hybridOverhead(128) * 100);

    std::printf("\ncache-size scaling (CACTI-style):\n");
    std::printf("%10s %12s %12s %12s\n", "size KB", "area mm^2",
                "power mW", "latency ns");
    for (std::size_t kb : {16, 32, 64, 128, 256}) {
        ModuleCost c = metadataCacheCost(kb * 1024);
        std::printf("%10zu %12.4f %12.2f %12.2f\n", kb, c.areaMm2,
                    c.powerMw, c.latencyNs);
    }
    return 0;
}
