/**
 * @file
 * Figure 12 reproduction: average write service time to the ReRAM
 * memory, normalized to the worst-case-latency baseline, for all
 * schemes and the 16 single/multi-programmed workloads.
 *
 * Paper (average over all workloads): Split-reset 0.59, BLP ~0.45,
 * LADDER-Basic 0.21, LADDER-Est/Hybrid ~= Basic, Oracle slightly
 * below.
 */

#include "bench_common.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args =
        parseBenchArgs(argc, argv, cfg, {}, paperSchemes());
    requireScheme(args, SchemeKind::Baseline,
                  "write service time is normalized to the baseline");

    std::printf("=== Figure 12: normalized average write service time "
                "===\n\n");
    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);
    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) {
                             return r.avgWriteServiceNs;
                         });
    std::printf("\npaper reference AVG: Split-reset 0.59, BLP ~0.45, "
                "LADDER-Basic 0.21, Est/Hybrid ~0.21, Oracle ~0.20\n");

    std::printf("\n--- raw average write service time (ns) ---\n");
    printRawTable(matrix, [](const SimResult &r) {
        return r.avgWriteServiceNs;
    });
    return 0;
}
