/**
 * @file
 * Figure 4b reproduction: RESET latency as a function of the selected
 * wordline's LRS percentage, for a cell near the write drivers
 * (cell 1) and one at the far corner (cell 2). Also echoes the
 * Table 1 crossbar parameters the circuit model uses.
 *
 * Paper: the far cell's latency grows steeply with WL LRS percentage
 * (~200ns to ~700ns); the near cell stays low and flat.
 */

#include <cstdio>

#include "bench_common.hh"
#include "circuit/fastmodel.hh"
#include "reram/timing_tables.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(argc, argv, cfg);
    rejectSweepSelection(
        args, "the latency sweep uses one crossbar model");

    const CrossbarParams &params = cfg.system.crossbar;
    std::printf("=== Table 1: ReRAM crossbar parameters ===\n");
    std::printf("  crossbar dimensions   %zux%zu\n", params.rows,
                params.cols);
    std::printf("  selected cells        %zu\n", params.selectedCells);
    std::printf("  LRS / HRS resistance  %.0f / %.0f Ohm\n",
                params.lrsOhms, params.hrsOhms);
    std::printf("  selector nonlinearity %.0f\n",
                params.selectorNonlinearity);
    std::printf("  input/output/wire R   %.0f / %.0f / %.1f Ohm\n",
                params.inputOhms, params.outputOhms, params.wireOhms);
    std::printf("  write / bias voltage  %.1f / %.1f V\n\n",
                params.writeVolts, params.biasVolts);

    const TimingModel &model = cachedTimingModel(params);
    SneakPathModel fast(params);

    std::printf("=== Figure 4b: RESET latency vs WL LRS percentage "
                "===\n\n");
    std::printf("%8s %14s %14s\n", "WL LRS%", "cell1(near) ns",
                "cell2(far) ns");
    for (unsigned percent = 0; percent <= 100; percent += 10) {
        unsigned count = static_cast<unsigned>(
            params.cols * percent / 100);
        ResetCondition nearCell{16, 1, count,
                                (unsigned)params.rows};
        ResetCondition farCell{params.rows - 1,
                               params.cols / params.selectedCells - 1,
                               count, (unsigned)params.rows};
        double tNear =
            model.law.latencyNs(fast.evaluate(nearCell).minDropVolts);
        double tFar =
            model.law.latencyNs(fast.evaluate(farCell).minDropVolts);
        std::printf("%8u %14.1f %14.1f\n", percent, tNear, tFar);
    }
    std::printf("\npaper reference: far cell ~200 -> ~700 ns over the "
                "sweep; near cell low and flat\n");
    return 0;
}
