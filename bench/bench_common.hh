/**
 * @file
 * Shared machinery for the figure-reproduction benches: parse the
 * common arguments, run a (scheme x workload) matrix in parallel via
 * runMatrixParallel, and normalize against the baseline, the way the
 * paper's evaluation plots do.
 *
 * Every bench accepts optional key=value arguments:
 *   workloads=astar,lbm,...   subset of workloads
 *   measure=<instructions>    measured window per core
 *   warmup=<instructions>     functional warmup per core
 *   jobs=<N>                  parallel sweep jobs (0 = one per
 *                             hardware thread, 1 = serial)
 *   stats-json=<dir>          write per-run stats.json + sweep.json
 *   epoch-cycles=<N>          core cycles per stat snapshot (0 = off)
 *   trace-out=<dir>           write per-run write/read event traces
 *   trace-format=csv|bin|bin2 trace encoding (default csv)
 *   trace-stream=1            stream traces to disk during the run
 *                             (bounded memory; csv/bin2 only)
 *   trace-chunk=<records>     records per streamed/bin2 chunk
 *   volatile-manifest=1       include wall clock + jobs in manifests
 * and honours LADDER_BENCH_SCALE (multiplies both windows).
 */

#ifndef LADDER_BENCH_BENCH_COMMON_HH
#define LADDER_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace ladder
{

/** Parse common bench arguments into the experiment config. */
inline std::vector<std::string>
parseBenchArgs(int argc, char **argv, ExperimentConfig &cfg)
{
    Config config;
    config.parseArgs(argc, argv);
    cfg.measureInstr = static_cast<std::uint64_t>(config.getInt(
        "measure", static_cast<std::int64_t>(cfg.measureInstr)));
    cfg.warmupInstr = static_cast<std::uint64_t>(config.getInt(
        "warmup", static_cast<std::int64_t>(cfg.warmupInstr)));
    cfg.seed = static_cast<std::uint64_t>(
        config.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
    cfg.jobs = static_cast<unsigned>(config.getInt(
        "jobs", static_cast<std::int64_t>(cfg.jobs)));
    cfg.statsJsonDir = config.getString("stats-json", cfg.statsJsonDir);
    cfg.traceOutDir = config.getString("trace-out", cfg.traceOutDir);
    cfg.traceFormat =
        config.getString("trace-format", cfg.traceFormat);
    cfg.traceStream = config.getBool("trace-stream", cfg.traceStream);
    cfg.traceChunkRecords = static_cast<std::uint64_t>(config.getInt(
        "trace-chunk",
        static_cast<std::int64_t>(cfg.traceChunkRecords)));
    cfg.epochCycles = static_cast<std::uint64_t>(config.getInt(
        "epoch-cycles", static_cast<std::int64_t>(cfg.epochCycles)));
    cfg.volatileManifest =
        config.getBool("volatile-manifest", cfg.volatileManifest);
    std::string workloads = config.getString("workloads", "");
    std::vector<std::string> names;
    if (workloads.empty())
        return allWorkloadNames();
    std::size_t pos = 0;
    while (pos < workloads.size()) {
        std::size_t comma = workloads.find(',', pos);
        if (comma == std::string::npos)
            comma = workloads.size();
        names.push_back(workloads.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return names;
}

/**
 * Print a normalized table: one row per workload plus an AVG row,
 * one column per scheme, where each value is
 * metric(scheme) / metric(baseline) for that workload. A zero
 * baseline metric yields nan (with a stderr warning) rather than a
 * silent 0.0, so a broken run cannot masquerade as a perfect one.
 */
template <typename MetricFn>
inline void
printNormalizedTable(const Matrix &matrix, SchemeKind baseline,
                     MetricFn metric, int precision = 3)
{
    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    for (const auto &workload : matrix.workloads) {
        double base = metric(matrix.at(baseline, workload));
        if (base == 0.0) {
            std::fprintf(stderr,
                         "warn: baseline metric is zero for workload "
                         "'%s'; normalized values are nan\n",
                         workload.c_str());
        }
        std::vector<double> row;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double value =
                metric(matrix.at(matrix.schemes[s], workload));
            double normalized =
                base != 0.0
                    ? value / base
                    : std::numeric_limits<double>::quiet_NaN();
            row.push_back(normalized);
            sums[s] += normalized;
        }
        printer.printRow(workload, row, precision);
    }
    for (auto &sum : sums)
        sum /= static_cast<double>(matrix.workloads.size());
    printer.printRow("AVG", sums, precision);
}

/** Print one non-normalized metric table. */
template <typename MetricFn>
inline void
printRawTable(const Matrix &matrix, MetricFn metric,
              int precision = 1)
{
    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    for (const auto &workload : matrix.workloads) {
        std::vector<double> row;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double value =
                metric(matrix.at(matrix.schemes[s], workload));
            row.push_back(value);
            sums[s] += value;
        }
        printer.printRow(workload, row, precision);
    }
    for (auto &sum : sums)
        sum /= static_cast<double>(matrix.workloads.size());
    printer.printRow("AVG", sums, precision);
}

/** The paper's seven evaluated schemes in presentation order. */
inline std::vector<SchemeKind>
paperSchemes()
{
    return allSchemeKinds();
}

} // namespace ladder

#endif // LADDER_BENCH_BENCH_COMMON_HH
