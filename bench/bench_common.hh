/**
 * @file
 * Shared machinery for the figure-reproduction benches: run a
 * (scheme x workload) matrix with progress reporting and normalize
 * against the baseline, the way the paper's evaluation plots do.
 *
 * Every bench accepts optional key=value arguments:
 *   workloads=astar,lbm,...   subset of workloads
 *   measure=<instructions>    measured window per core
 *   warmup=<instructions>     functional warmup per core
 * and honours LADDER_BENCH_SCALE (multiplies both windows).
 */

#ifndef LADDER_BENCH_BENCH_COMMON_HH
#define LADDER_BENCH_BENCH_COMMON_HH

#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace ladder
{

/** Results of a scheme x workload sweep. */
struct Matrix
{
    std::vector<SchemeKind> schemes;
    std::vector<std::string> workloads;
    std::map<std::pair<std::string, std::string>, SimResult> results;

    const SimResult &
    at(SchemeKind kind, const std::string &workload) const
    {
        return results.at({schemeKindName(kind), workload});
    }
};

/** Parse common bench arguments into the experiment config. */
inline std::vector<std::string>
parseBenchArgs(int argc, char **argv, ExperimentConfig &cfg)
{
    Config config;
    config.parseArgs(argc, argv);
    cfg.measureInstr = static_cast<std::uint64_t>(config.getInt(
        "measure", static_cast<std::int64_t>(cfg.measureInstr)));
    cfg.warmupInstr = static_cast<std::uint64_t>(config.getInt(
        "warmup", static_cast<std::int64_t>(cfg.warmupInstr)));
    cfg.seed = static_cast<std::uint64_t>(
        config.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
    std::string workloads = config.getString("workloads", "");
    std::vector<std::string> names;
    if (workloads.empty())
        return allWorkloadNames();
    std::size_t pos = 0;
    while (pos < workloads.size()) {
        std::size_t comma = workloads.find(',', pos);
        if (comma == std::string::npos)
            comma = workloads.size();
        names.push_back(workloads.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return names;
}

/** Run the sweep, reporting progress on stderr. */
inline Matrix
runMatrix(const std::vector<SchemeKind> &schemes,
          const std::vector<std::string> &workloads,
          const ExperimentConfig &cfg)
{
    Matrix matrix;
    matrix.schemes = schemes;
    matrix.workloads = workloads;
    std::size_t total = schemes.size() * workloads.size();
    std::size_t done = 0;
    // Progress only on interactive terminals; keep piped/teed output
    // free of carriage-return noise.
    const bool interactive = isatty(fileno(stderr));
    for (const auto &workload : workloads) {
        for (SchemeKind kind : schemes) {
            ++done;
            if (interactive) {
                std::fprintf(stderr, "\r[%zu/%zu] %-14s %-10s", done,
                             total, schemeKindName(kind).c_str(),
                             workload.c_str());
                std::fflush(stderr);
            }
            matrix.results[{schemeKindName(kind), workload}] =
                runOne(kind, workload, cfg);
        }
    }
    if (interactive)
        std::fprintf(stderr, "\r%60s\r", "");
    return matrix;
}

/**
 * Print a normalized table: one row per workload plus an AVG row,
 * one column per scheme, where each value is
 * metric(scheme) / metric(baseline) for that workload.
 */
template <typename MetricFn>
inline void
printNormalizedTable(const Matrix &matrix, SchemeKind baseline,
                     MetricFn metric, int precision = 3)
{
    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    for (const auto &workload : matrix.workloads) {
        double base = metric(matrix.at(baseline, workload));
        std::vector<double> row;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double value =
                metric(matrix.at(matrix.schemes[s], workload));
            double normalized = base != 0.0 ? value / base : 0.0;
            row.push_back(normalized);
            sums[s] += normalized;
        }
        printer.printRow(workload, row, precision);
    }
    for (auto &sum : sums)
        sum /= static_cast<double>(matrix.workloads.size());
    printer.printRow("AVG", sums, precision);
}

/** Print one non-normalized metric table. */
template <typename MetricFn>
inline void
printRawTable(const Matrix &matrix, MetricFn metric,
              int precision = 1)
{
    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    for (const auto &workload : matrix.workloads) {
        std::vector<double> row;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double value =
                metric(matrix.at(matrix.schemes[s], workload));
            row.push_back(value);
            sums[s] += value;
        }
        printer.printRow(workload, row, precision);
    }
    for (auto &sum : sums)
        sum /= static_cast<double>(matrix.workloads.size());
    printer.printRow("AVG", sums, precision);
}

/** The paper's seven evaluated schemes in presentation order. */
inline std::vector<SchemeKind>
paperSchemes()
{
    return allSchemeKinds();
}

} // namespace ladder

#endif // LADDER_BENCH_BENCH_COMMON_HH
