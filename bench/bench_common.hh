/**
 * @file
 * Shared machinery for the figure-reproduction benches: resolve the
 * layered configuration through the typed parameter registry, run a
 * (scheme x workload) matrix in parallel via runMatrixParallel, and
 * normalize against the baseline, the way the paper's evaluation
 * plots do.
 *
 * Every bench resolves its arguments through sim/config_resolve with
 * strict precedence
 *
 *     compiled defaults < config=<file>.json < sweep=<file> "params"
 *                       < CLI key=value (argv order)
 *
 * plus the selections/flags:
 *   config=<file>.json        flat JSON object of registry params
 *   sweep=<file>.json         {"schemes":[...], "workloads":[...],
 *                              "params":{...}} — the cell grid as data
 *   scheme[s]=a,b / workload[s]=x,y   CSV selections (override the
 *                             sweep spec's lists)
 *   --help-config             list every parameter with type, current
 *                             value, doc, and range; exit
 *   --dump-config             print the effective config as loadable
 *                             JSON; exit
 * Unknown keys, malformed values, and out-of-range values are hard
 * errors with near-miss suggestions. LADDER_BENCH_SCALE still
 * multiplies the default windows (it shapes the compiled defaults,
 * the lowest layer).
 */

#ifndef LADDER_BENCH_BENCH_COMMON_HH
#define LADDER_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/config_resolve.hh"
#include "sim/experiment.hh"
#include "trace/workloads.hh"

namespace ladder
{

/** One bench invocation's resolved selections. */
struct BenchArgs
{
    std::vector<std::string> workloads;
    std::vector<SchemeKind> schemes;
    /** Whether the user picked them (vs. the bench's defaults). */
    bool workloadsExplicit = false;
    bool schemesExplicit = false;
};

/**
 * Resolve the common bench arguments into @p cfg through the layered
 * registry resolver. Handles --help-config/--dump-config (print and
 * exit). Empty @p defaultWorkloads means all workloads; empty
 * @p defaultSchemes means the paper's seven evaluated schemes.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, ExperimentConfig &cfg,
               std::vector<std::string> defaultWorkloads = {},
               std::vector<SchemeKind> defaultSchemes = {})
{
    ResolvedExperiment resolved =
        resolveExperiment(argc, argv, cfg);
    if (resolved.helpRequested) {
        if (resolved.helpFormat == "md") {
            experimentRegistry().helpMarkdown(std::cout,
                                             resolved.config);
            std::exit(0);
        }
        std::cout << "parameters (key=value; also loadable from "
                     "config= JSON):\n";
        experimentRegistry().help(std::cout, resolved.config);
        std::exit(0);
    }
    if (resolved.dumpRequested) {
        dumpEffectiveConfig(resolved.config, std::cout);
        std::exit(0);
    }
    cfg = resolved.config;
    BenchArgs args;
    args.workloadsExplicit = resolved.workloadsExplicit;
    args.schemesExplicit = resolved.schemesExplicit;
    args.workloads = resolved.workloadsExplicit
                         ? resolved.workloads
                         : (defaultWorkloads.empty()
                                ? allWorkloadNames()
                                : std::move(defaultWorkloads));
    args.schemes = resolved.schemesExplicit
                       ? resolved.schemes
                       : (defaultSchemes.empty()
                              ? allSchemeKinds()
                              : std::move(defaultSchemes));
    return args;
}

/**
 * Benches that normalize against a reference scheme need it in the
 * sweep: fatal() when an explicit scheme= selection dropped it.
 */
inline void
requireScheme(const BenchArgs &args, SchemeKind kind, const char *why)
{
    for (SchemeKind s : args.schemes) {
        if (s == kind)
            return;
    }
    fatal("scheme selection must include '%s' (%s)",
          schemeKindName(kind).c_str(), why);
}

/** Benches with a fixed scheme set reject scheme= overrides. */
inline void
rejectSchemeOverride(const BenchArgs &args, const char *why)
{
    if (args.schemesExplicit)
        fatal("this bench runs a fixed scheme set (%s); drop scheme=",
              why);
}

/** Benches without a (scheme x workload) sweep reject selections. */
inline void
rejectSweepSelection(const BenchArgs &args, const char *why)
{
    if (args.schemesExplicit || args.workloadsExplicit)
        fatal("this bench has no scheme/workload sweep (%s); drop "
              "scheme=/workload=",
              why);
}

/**
 * Print a normalized table: one row per workload plus an AVG row,
 * one column per scheme, where each value is
 * metric(scheme) / metric(baseline) for that workload. A zero
 * baseline metric yields nan (with a stderr warning) rather than a
 * silent 0.0, so a broken run cannot masquerade as a perfect one.
 */
template <typename MetricFn>
inline void
printNormalizedTable(const Matrix &matrix, SchemeKind baseline,
                     MetricFn metric, int precision = 3)
{
    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    for (const auto &workload : matrix.workloads) {
        double base = metric(matrix.at(baseline, workload));
        if (base == 0.0) {
            std::fprintf(stderr,
                         "warn: baseline metric is zero for workload "
                         "'%s'; normalized values are nan\n",
                         workload.c_str());
        }
        std::vector<double> row;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double value =
                metric(matrix.at(matrix.schemes[s], workload));
            double normalized =
                base != 0.0
                    ? value / base
                    : std::numeric_limits<double>::quiet_NaN();
            row.push_back(normalized);
            sums[s] += normalized;
        }
        printer.printRow(workload, row, precision);
    }
    for (auto &sum : sums)
        sum /= static_cast<double>(matrix.workloads.size());
    printer.printRow("AVG", sums, precision);
}

/** Print one non-normalized metric table. */
template <typename MetricFn>
inline void
printRawTable(const Matrix &matrix, MetricFn metric,
              int precision = 1)
{
    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    for (const auto &workload : matrix.workloads) {
        std::vector<double> row;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double value =
                metric(matrix.at(matrix.schemes[s], workload));
            row.push_back(value);
            sums[s] += value;
        }
        printer.printRow(workload, row, precision);
    }
    for (auto &sum : sums)
        sum /= static_cast<double>(matrix.workloads.size());
    printer.printRow("AVG", sums, precision);
}

/** The paper's seven evaluated schemes in presentation order. */
inline std::vector<SchemeKind>
paperSchemes()
{
    return allSchemeKinds();
}

} // namespace ladder

#endif // LADDER_BENCH_BENCH_COMMON_HH
