/**
 * @file
 * Channel-engine scaling bench: one (scheme, workload) cell run
 * twice on the windowed engine — sequentially (ctrl.channel-threads=1)
 * and channel-parallel (one worker per channel) — with wall-clock
 * speedup reported and every SimResult field required to match at the
 * bit level (the engine's determinism contract).
 *
 * On hosts with >= 8 hardware threads the parallel run must beat the
 * sequential one by >= 2x at the default 8-channel geometry; on
 * smaller hosts the speedup is reported but not enforced (the workers
 * just time-slice one core). Scale the window with measure= /
 * LADDER_BENCH_SCALE for a steadier measurement.
 *
 *   ./channel_scaling                          # LADDER-Hybrid / lbm
 *   ./channel_scaling workload=astar measure=4000000
 */

#include <chrono>
#include <cstring>
#include <thread>

#include "bench_common.hh"

using namespace ladder;

namespace
{

/** Bit-level SimResult equality (no tolerance). */
bool
sameBits(const SimResult &a, const SimResult &b)
{
    if (a.coreIpc.size() != b.coreIpc.size())
        return false;
    if (!a.coreIpc.empty() &&
        std::memcmp(a.coreIpc.data(), b.coreIpc.data(),
                    a.coreIpc.size() * sizeof(double)) != 0)
        return false;
    auto bits = [](const SimResult &r) {
        // Every scalar field, in declaration order.
        struct Scalars
        {
            double ipc;
            std::uint64_t instructions;
            double elapsedNs, avgReadLatencyNs, avgWriteServiceNs,
                avgWriteTwrNs;
            std::uint64_t dataReads, metadataReads, smbReads,
                dataWrites, metadataWrites;
            double readEnergyPj, writeEnergyPj, fnwFlips,
                fnwCancelled, estCounterDiffMean, estimatedCwMean,
                accurateCwMean, spillInsertions;
        } s{r.ipc,
            r.instructions,
            r.elapsedNs,
            r.avgReadLatencyNs,
            r.avgWriteServiceNs,
            r.avgWriteTwrNs,
            r.dataReads,
            r.metadataReads,
            r.smbReads,
            r.dataWrites,
            r.metadataWrites,
            r.readEnergyPj,
            r.writeEnergyPj,
            r.fnwFlips,
            r.fnwCancelled,
            r.estCounterDiffMean,
            r.estimatedCwMean,
            r.accurateCwMean,
            r.spillInsertions};
        return s;
    };
    auto sa = bits(a), sb = bits(b);
    return std::memcmp(&sa, &sb, sizeof(sa)) == 0;
}

double
timedRun(SchemeKind kind, const std::string &workload,
         const ExperimentConfig &cfg, unsigned channelThreads,
         SimResult &out)
{
    ExperimentConfig run = cfg;
    run.system.controller.channelThreads = channelThreads;
    SystemConfig sys = makeSystemConfig(kind, workload, run);
    System system(sys);
    auto start = std::chrono::steady_clock::now();
    out = system.run(run.warmupInstr, run.measureInstr);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    cfg.system.geometry.channels = 8;
    BenchArgs args = parseBenchArgs(argc, argv, cfg, {"lbm"},
                                    {SchemeKind::LadderHybrid});
    SchemeKind kind = args.schemes.front();
    const std::string &workload = args.workloads.front();
    const unsigned channels = cfg.system.geometry.channels;
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned workers =
        cfg.system.controller.channelThreads > 1
            ? cfg.system.controller.channelThreads
            : channels;

    std::printf("=== Channel-engine scaling: %s / %s, %u channels, "
                "%u-thread host ===\n\n",
                schemeKindName(kind).c_str(), workload.c_str(),
                channels, hw);

    // Both variants run the windowed engine (the sequential leg is
    // channel-threads=1, not the legacy shared queue), so identical
    // bits are required, not merely expected.
    SimResult seq, par;
    double seqSec = timedRun(kind, workload, cfg, 1, seq);
    double parSec = timedRun(kind, workload, cfg, workers, par);
    if (!sameBits(seq, par))
        fatal("channel_scaling: channel-threads=%u diverged from "
              "channel-threads=1 — determinism contract broken",
              workers);

    const std::uint64_t requests = seq.dataReads + seq.metadataReads +
                                   seq.smbReads + seq.dataWrites +
                                   seq.metadataWrites;
    double speedup = parSec > 0.0 ? seqSec / parSec : 0.0;
    std::printf("  %-24s %10s %12s\n", "variant", "wall [s]",
                "requests");
    std::printf("  %-24s %10.3f %12llu\n", "sequential (ct=1)",
                seqSec, static_cast<unsigned long long>(requests));
    std::printf("  %-24s %10.3f %12s\n",
                ("parallel (ct=" + std::to_string(workers) + ")")
                    .c_str(),
                parSec, "same (bit-identical)");
    std::printf("\n  speedup: %.2fx\n", speedup);

    if (hw >= 8) {
        if (speedup < 2.0) {
            std::fprintf(stderr,
                         "channel_scaling: speedup %.2fx < 2x on a "
                         "%u-thread host\n",
                         speedup, hw);
            return 1;
        }
    } else {
        std::printf("  (host has %u < 8 hardware threads; the 2x "
                    "gate is skipped)\n",
                    hw);
    }
    return 0;
}
