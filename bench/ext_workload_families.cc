/**
 * @file
 * Extended-workload evaluation: does the paper's scheme ordering
 * survive on inputs LADDER was not tuned on? The sweep crosses the
 * evaluated schemes with a mix of paper synthetics and the
 * content-aware generator families (dnn-update, kv-log, adv-lrs from
 * trace/workload_families; add `workloads=trace:<file>` to replay an
 * external trace alongside them).
 *
 * Three figure-style tables come out: raw IPC, write service time
 * normalized to the worst-case-latency baseline (the Fig. 12 view,
 * extended to the new columns), and a per-workload write-latency
 * distribution (avg tWR / p99 / max) under the content-aware
 * LADDER-Hybrid scheme.
 *
 * The adversarial family's guarantee is checked, not eyeballed: every
 * one of its wordlines sits at maximum LRS count, so under a
 * content-aware scheme its write-latency tail must be strictly worse
 * than every other workload in the sweep (the timing-table maximality
 * property behind this is unit-tested in test_workloads). The bench
 * exits nonzero if the ordering is violated.
 */

#include <algorithm>

#include "bench_common.hh"
#include "ctrl/trace_sink.hh"
#include "sim/system.hh"
#include "trace/workload_frontend.hh"

using namespace ladder;

namespace
{

struct LatencyTail
{
    std::uint64_t writes = 0;
    double avgNs = 0.0;
    double p99Ns = 0.0;
    double maxNs = 0.0;
};

/**
 * Run one (scheme, workload) cell with a buffered trace sink and
 * summarize the per-write chosen-tWR distribution.
 */
LatencyTail
measureTail(SchemeKind scheme, const std::string &workload,
            const ExperimentConfig &cfg)
{
    System system(makeSystemConfig(scheme, workload, cfg));
    WriteTraceSink sink;
    system.attachTraceSink(&sink);
    system.run(cfg.warmupInstr, cfg.measureInstr);

    std::vector<double> latencies;
    for (const CtrlTraceRecord &r : sink.records())
        if (r.kind == CtrlTraceRecord::Kind::Write)
            latencies.push_back(r.latencyNs);

    LatencyTail tail;
    tail.writes = latencies.size();
    if (latencies.empty())
        return tail;
    std::sort(latencies.begin(), latencies.end());
    double sum = 0.0;
    for (double v : latencies)
        sum += v;
    tail.avgNs = sum / static_cast<double>(latencies.size());
    tail.p99Ns = latencies[static_cast<std::size_t>(
        0.99 * static_cast<double>(latencies.size() - 1))];
    tail.maxNs = latencies.back();
    return tail;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(
        argc, argv, cfg,
        {"astar", "lbm", "mcf", "cactusADM", "dnn-update", "kv-log",
         "adv-lrs"},
        {SchemeKind::Baseline, SchemeKind::SplitReset, SchemeKind::Blp,
         SchemeKind::LadderHybrid});
    requireScheme(args, SchemeKind::Baseline,
                  "write service time is normalized to the baseline");
    requireScheme(args, SchemeKind::LadderHybrid,
                  "the latency-tail table runs under the "
                  "content-aware scheme");

    std::printf("=== Extended workloads: paper synthetics vs "
                "content-aware families ===\n\n");
    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);

    std::printf("--- raw IPC ---\n");
    printRawTable(matrix, [](const SimResult &r) { return r.ipc; },
                  4);

    std::printf("\n--- write service time, normalized to baseline "
                "(Fig. 12 view) ---\n");
    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) {
                             return r.avgWriteServiceNs;
                         });

    std::printf("\n--- per-write tWR distribution under %s ---\n",
                schemeKindName(SchemeKind::LadderHybrid).c_str());
    std::printf("%-14s %10s %10s %10s %10s\n", "workload", "writes",
                "avg ns", "p99 ns", "max ns");
    std::vector<std::pair<std::string, LatencyTail>> tails;
    for (const auto &workload : args.workloads) {
        LatencyTail tail =
            measureTail(SchemeKind::LadderHybrid, workload, cfg);
        std::printf("%-14s %10llu %10.1f %10.1f %10.1f\n",
                    workload.c_str(),
                    static_cast<unsigned long long>(tail.writes),
                    tail.avgNs, tail.p99Ns, tail.maxNs);
        tails.emplace_back(workload, tail);
    }

    // The adversarial guarantee: with every wordline at maximum LRS
    // count, adv-lrs must have a strictly worse write-latency tail
    // than every other workload in the sweep.
    const auto adv = std::find_if(
        tails.begin(), tails.end(),
        [](const auto &t) { return t.first == "adv-lrs"; });
    if (adv == tails.end()) {
        std::printf("\n(adv-lrs not selected; ordering check "
                    "skipped)\n");
        return 0;
    }
    if (adv->second.writes == 0)
        fatal("adv-lrs produced no demand writes; widen the "
              "measurement window (LADDER_BENCH_SCALE)");
    bool ok = true;
    for (const auto &[name, tail] : tails) {
        if (name == "adv-lrs" || tail.writes == 0)
            continue;
        if (tail.p99Ns >= adv->second.p99Ns ||
            tail.maxNs > adv->second.maxNs) {
            std::printf("ORDERING VIOLATION: %s tail (p99 %.1f, max "
                        "%.1f) is not strictly below adv-lrs "
                        "(p99 %.1f, max %.1f)\n",
                        name.c_str(), tail.p99Ns, tail.maxNs,
                        adv->second.p99Ns, adv->second.maxNs);
            ok = false;
        }
    }
    std::printf("\nadversarial tail check: %s (adv-lrs p99 %.1f ns, "
                "max %.1f ns)\n",
                ok ? "PASS" : "FAIL", adv->second.p99Ns,
                adv->second.maxNs);
    return ok ? 0 : 1;
}
