/**
 * @file
 * Figure 13 reproduction: average latency of processor data reads
 * (queueing + service), normalized to baseline, for all schemes and
 * workloads.
 *
 * Paper: LADDER consistently lowest; LADDER-Hybrid has 37% / 16% more
 * read-latency reduction than Split-reset / BLP; Est and Hybrid beat
 * Basic because they remove SMB reads and shrink metadata traffic.
 */

#include "bench_common.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args =
        parseBenchArgs(argc, argv, cfg, {}, paperSchemes());
    requireScheme(args, SchemeKind::Baseline,
                  "read latency is normalized to the baseline");

    std::printf("=== Figure 13: normalized average read latency "
                "===\n\n");
    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);
    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) {
                             return r.avgReadLatencyNs;
                         });
    std::printf("\npaper reference: LADDER-Hybrid best overall; Est > "
                "Basic; Hybrid ~37%% better than Split-reset and "
                "~16%% than BLP\n");

    std::printf("\n--- raw average read latency (ns) ---\n");
    printRawTable(matrix, [](const SimResult &r) {
        return r.avgReadLatencyNs;
    });
    return 0;
}
