/**
 * @file
 * Section 6.4 reproduction: LADDER with wear-leveling. Runs the
 * baseline and LADDER-Hybrid with and without Start-Gap wear-leveling
 * and reports (i) the performance cost of leveling, (ii) the write
 * traffic increase from metadata maintenance, and (iii) the relative
 * lifetime estimates.
 *
 * Paper: LADDER-Hybrid adds ~3% writes, keeps 97.1% of baseline
 * lifetime under wear-leveling, and loses only ~1% performance when
 * leveling is enabled (still ~44% over baseline).
 */

#include <algorithm>
#include <cstdio>
#include <future>

#include "bench_common.hh"
#include "common/thread_pool.hh"
#include "wear/lifetime.hh"
#include "wear/start_gap.hh"

using namespace ladder;

namespace
{

struct Outcome
{
    SimResult result;
    LifetimeEstimate lifetime;
    std::uint64_t gapMoves = 0;
};

Outcome
runWithWearLeveling(SchemeKind kind, const std::string &workload,
                    const ExperimentConfig &cfg, bool leveled)
{
    SystemConfig sys = makeSystemConfig(kind, workload, cfg);
    System system(sys);
    AddressMap map(sys.geometry);
    // Level the data region at line granularity.
    std::uint64_t lines = map.totalPages() * 64 * 3 / 4;
    StartGapRemapper remap(0, lines, cfg.wear.startGapPsi);
    if (leveled)
        system.setRemapper(&remap);
    Outcome out;
    out.result = system.run(cfg.warmupInstr, cfg.measureInstr);
    out.gapMoves = remap.gapMoves();

    // Merge per-page write counts across channels.
    std::unordered_map<std::uint64_t, std::uint32_t> writes;
    for (unsigned ch = 0; ch < system.channels(); ++ch)
        for (const auto &entry :
             system.controller(ch).pageWriteCounts())
            writes[entry.first] += entry.second;
    double seconds = out.result.elapsedNs * 1e-9;
    // Use one fixed leveled-region size as the denominator so the
    // lifetime ratio between configurations reflects write volume,
    // not which pages (data vs metadata) happened to be touched.
    std::uint64_t leveledPages = map.totalPages() * 3 / 4;
    out.lifetime =
        estimateLifetime(writes, seconds, leveledPages,
                         cfg.wear.cellEndurance,
                         cfg.wear.levelingEfficiency);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(argc, argv, cfg, {"lbm"});
    rejectSchemeOverride(
        args, "the study compares baseline vs LADDER-Hybrid");
    if (args.workloads.size() != 1) {
        fatal("this bench runs one workload at a time (got %zu)",
              args.workloads.size());
    }
    const std::string workload = args.workloads.front();

    std::printf("=== Section 6.4: LADDER with wear-leveling (%s) "
                "===\n\n",
                workload.c_str());

    // The four configurations are independent full-system runs; each
    // owns its System and remapper, so they parallelize like any
    // other sweep cell.
    Outcome baseNo, baseWl, hybNo, hybWl;
    unsigned jobs = cfg.jobs != 0 ? cfg.jobs
                                  : ThreadPool::defaultJobs();
    if (jobs <= 1) {
        baseNo = runWithWearLeveling(SchemeKind::Baseline, workload,
                                     cfg, false);
        baseWl = runWithWearLeveling(SchemeKind::Baseline, workload,
                                     cfg, true);
        hybNo = runWithWearLeveling(SchemeKind::LadderHybrid,
                                    workload, cfg, false);
        hybWl = runWithWearLeveling(SchemeKind::LadderHybrid,
                                    workload, cfg, true);
    } else {
        ThreadPool pool(std::min(jobs, 4u));
        auto fBaseNo = pool.submit([&]() {
            return runWithWearLeveling(SchemeKind::Baseline,
                                       workload, cfg, false);
        });
        auto fBaseWl = pool.submit([&]() {
            return runWithWearLeveling(SchemeKind::Baseline,
                                       workload, cfg, true);
        });
        auto fHybNo = pool.submit([&]() {
            return runWithWearLeveling(SchemeKind::LadderHybrid,
                                       workload, cfg, false);
        });
        auto fHybWl = pool.submit([&]() {
            return runWithWearLeveling(SchemeKind::LadderHybrid,
                                       workload, cfg, true);
        });
        baseNo = fBaseNo.get();
        baseWl = fBaseWl.get();
        hybNo = fHybNo.get();
        hybWl = fHybWl.get();
    }

    std::printf("%-26s %10s %12s %14s %12s\n", "configuration", "IPC",
                "writes", "gap moves", "unevenness");
    auto show = [](const char *name, const Outcome &o) {
        std::printf("%-26s %10.4f %12llu %14llu %12.1f\n", name,
                    o.result.ipc,
                    static_cast<unsigned long long>(
                        o.result.dataWrites +
                        o.result.metadataWrites),
                    static_cast<unsigned long long>(o.gapMoves),
                    o.lifetime.unevenness);
    };
    show("baseline", baseNo);
    show("baseline + Start-Gap", baseWl);
    show("LADDER-Hybrid", hybNo);
    show("LADDER-Hybrid + Start-Gap", hybWl);

    double extraWrites =
        (static_cast<double>(hybWl.result.dataWrites +
                             hybWl.result.metadataWrites) /
             static_cast<double>(baseWl.result.dataWrites +
                                 baseWl.result.metadataWrites) -
         1.0) *
        100.0;
    double lifetimeRatio = hybWl.lifetime.leveledYears /
                           baseWl.lifetime.leveledYears;
    double perfCost =
        (1.0 - hybWl.result.ipc / hybNo.result.ipc) * 100.0;
    double gainOverBase =
        (hybWl.result.ipc / baseWl.result.ipc - 1.0) * 100.0;

    std::printf("\nextra writes from LADDER metadata: %.1f%% (paper "
                "~3%%)\n",
                extraWrites);
    std::printf("relative lifetime (Hybrid/baseline, leveled): "
                "%.1f%% (paper 97.1%%)\n",
                lifetimeRatio * 100.0);
    std::printf("performance cost of wear-leveling on LADDER: "
                "%.1f%% (paper ~1-2%%)\n",
                perfCost);
    std::printf("LADDER-Hybrid + WL gain over baseline + WL: "
                "%.1f%% (paper ~44%%)\n",
                gainOverBase);
    return 0;
}
