/**
 * @file
 * Figure 15 reproduction: the per-write difference between
 * LADDER-Est's estimated C_lrs counter and LADDER-Basic's accurate
 * counter, (a) without and (b) with intra-line bit-level shifting.
 * The two schemes see the same deterministic write stream, so the
 * difference of the per-write means equals the mean difference.
 *
 * Paper: without shifting the estimate is biased high (only 3 of 16
 * workloads above +64); shifting reduces the bias substantially and
 * can push the estimate below the unshifted accurate counter. Also
 * prints the subgroup-count (N) ablation.
 */

#include "bench_common.hh"
#include "schemes/partial_counter.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(argc, argv, cfg);
    rejectSchemeOverride(
        args, "the diff needs exactly Basic/Est-noshift/Est");
    const std::vector<std::string> &workloads = args.workloads;

    std::printf("=== Figure 15: LRS-counter difference, LADDER-Est - "
                "LADDER-Basic ===\n\n");
    std::printf("%-10s %12s %12s %12s %12s\n", "workload",
                "accurate", "est-noshift", "est-shift",
                "diff-noshift");

    Matrix matrix = runMatrixParallel(
        {SchemeKind::LadderBasic, SchemeKind::LadderEstNoShift,
         SchemeKind::LadderEst},
        workloads, cfg);

    double sumNo = 0.0, sumShift = 0.0;
    for (const auto &workload : workloads) {
        const SimResult &basic =
            matrix.at(SchemeKind::LadderBasic, workload);
        const SimResult &noShift =
            matrix.at(SchemeKind::LadderEstNoShift, workload);
        const SimResult &shifted =
            matrix.at(SchemeKind::LadderEst, workload);
        double diffNo =
            noShift.estimatedCwMean - basic.accurateCwMean;
        double diffShift =
            shifted.estimatedCwMean - basic.accurateCwMean;
        sumNo += diffNo;
        sumShift += diffShift;
        std::printf("%-10s %12.1f %12.1f %12.1f %12.1f\n",
                    workload.c_str(), basic.accurateCwMean,
                    noShift.estimatedCwMean,
                    shifted.estimatedCwMean, diffNo);
    }
    std::printf("%-10s %12s %12s %12s %12.1f\n", "AVG diff", "", "",
                "", sumNo / workloads.size());
    std::printf("%-10s %48s %12.1f\n", "AVG diff (with shifting)", "",
                sumShift / workloads.size());
    std::printf("\npaper reference: diffs mostly within +64 (3 of 16 "
                "above); shifting reduces the estimate, sometimes "
                "below the unshifted accurate counter. Our synthetic "
                "content is denser than SPEC images, so absolute "
                "diffs run higher; the shape (positive bias, reduced "
                "by shifting) is preserved.\n");

    return 0;
}
