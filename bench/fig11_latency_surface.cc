/**
 * @file
 * Figure 11 reproduction: the derived RESET latency at every WL/BL
 * location bucket for the two extreme wordline data patterns — (a)
 * all '0's (C_lrs bucket 0) and (b) all '1's (C_lrs bucket 7). These
 * are two of the eight 8x8 sub-tables the memory controller holds.
 *
 * Pass mna=true to additionally cross-check a few surface corners
 * with the full MNA solver (slower). The crossbar circuit is
 * configurable through the registry's xbar.* parameters.
 */

#include <cstdio>
#include <future>
#include <vector>

#include "bench_common.hh"
#include "circuit/mna.hh"
#include "common/thread_pool.hh"
#include "reram/timing_tables.hh"

using namespace ladder;

namespace
{

void
printSurface(const WriteTimingTable &table, unsigned contentBucket)
{
    std::printf("%8s", "WL\\BL");
    for (unsigned bb = 0; bb < table.blBuckets(); ++bb)
        std::printf(" %7u", (bb + 1) * 64);
    std::printf("\n");
    for (unsigned wb = 0; wb < table.wlBuckets(); ++wb) {
        std::printf("%8u", (wb + 1) * 64);
        for (unsigned bb = 0; bb < table.blBuckets(); ++bb)
            std::printf(" %7.1f",
                        table.at(wb, bb, contentBucket).latencyNs);
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(argc, argv, cfg);
    rejectSweepSelection(
        args, "the surfaces come from one crossbar model");

    const CrossbarParams &params = cfg.system.crossbar;
    const TimingModel &model = cachedTimingModel(params);

    std::printf("=== Figure 11: RESET latency (ns) vs WL/BL location "
                "===\n");
    std::printf("law: t = %.4g * exp(-%.3f * |Vd|) ns, envelope "
                "[%.0f, %.0f] ns\n",
                model.law.cNs, model.law.kPerVolt, model.law.fastNs,
                model.law.slowNs);
    std::printf("calibration drops: best %.3f V, worst %.3f V\n\n",
                model.bestDropVolts, model.worstDropVolts);

    std::printf("--- (a) WL data pattern all '0's (C_lrs bucket "
                "<0-64>) ---\n");
    printSurface(model.ladder, 0);
    std::printf("\n--- (b) WL data pattern all '1's (C_lrs bucket "
                "<448-512>) ---\n");
    printSurface(model.ladder, model.ladder.contentBuckets() - 1);

    std::printf("\npaper reference: (a) tops out near ~300-650 ns at "
                "the far corner, (b) reaches ~700 ns; both grow "
                "monotonically away from the drivers\n");

    if (cfg.checkMna) {
        std::printf("\n--- full-MNA spot checks (64x64 crossbar) "
                    "---\n");
        CrossbarParams small = params;
        small.rows = 64;
        small.cols = 64;
        // Each spot check is an independent full MNA solve; fan the
        // corners out on the pool and print in canonical order.
        CrossbarMna mna(small);
        struct Spot
        {
            unsigned c;
            unsigned wl;
        };
        std::vector<Spot> spots;
        for (unsigned c : {0u, 56u})
            for (unsigned wl : {0u, 63u})
                spots.push_back({c, wl});
        ThreadPool pool;
        std::vector<std::future<ResetEvaluation>> futures;
        for (const Spot &spot : spots) {
            futures.push_back(pool.submit([&mna, spot]() {
                ResetCondition cond{spot.wl, 7, spot.c, 64};
                return mna.evaluate(cond);
            }));
        }
        for (std::size_t i = 0; i < spots.size(); ++i) {
            ResetEvaluation eval = futures[i].get();
            std::printf("  wl=%2u bl=63 c=%2u: Vd=%.4f V -> "
                        "%.1f ns\n",
                        spots[i].wl, spots[i].c, eval.minDropVolts,
                        model.law.latencyNs(eval.minDropVolts));
        }
    }
    return 0;
}
