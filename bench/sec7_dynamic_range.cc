/**
 * @file
 * Section 7 (and §5) ablations:
 *  - process variability: shrink the RESET-latency dynamic range by
 *    2x and measure how much of LADDER's benefit survives (paper:
 *    ~85% retained on average);
 *  - timing-table granularity: the paper states the 8x8x8 bucketing
 *    costs < 3% versus a finer model.
 */

#include "bench_common.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args =
        parseBenchArgs(argc, argv, cfg, singleWorkloadNames());
    rejectSchemeOverride(
        args, "the ablation compares baseline vs LADDER-Hybrid");
    const std::vector<std::string> &workloads = args.workloads;

    std::printf("=== Section 7: 2x-shrunk RESET latency dynamic "
                "range ===\n\n");
    std::printf("%-10s %14s %14s %12s\n", "workload", "gain nominal",
                "gain shrunk", "retained %");
    const std::vector<SchemeKind> pair = {SchemeKind::Baseline,
                                          SchemeKind::LadderHybrid};
    ExperimentConfig shrunk = cfg;
    shrunk.rangeShrink = 2.0;
    Matrix nominal = runMatrixParallel(pair, workloads, cfg);
    Matrix shrunkM = runMatrixParallel(pair, workloads, shrunk);
    double retainedSum = 0.0;
    for (const auto &workload : workloads) {
        const SimResult &base =
            nominal.at(SchemeKind::Baseline, workload);
        const SimResult &hybrid =
            nominal.at(SchemeKind::LadderHybrid, workload);
        const SimResult &baseS =
            shrunkM.at(SchemeKind::Baseline, workload);
        const SimResult &hybridS =
            shrunkM.at(SchemeKind::LadderHybrid, workload);
        double gain = speedupOver(hybrid, base) - 1.0;
        double gainS = speedupOver(hybridS, baseS) - 1.0;
        double retained = gain > 0.0 ? 100.0 * gainS / gain : 0.0;
        retainedSum += retained;
        std::printf("%-10s %14.3f %14.3f %12.1f\n", workload.c_str(),
                    gain, gainS, retained);
    }
    std::printf("%-10s %29s %12.1f\n", "AVG", "",
                retainedSum / workloads.size());
    std::printf("\npaper reference: ~85%% of the performance "
                "advantage retained under a 2x-shrunk range\n");

    std::printf("\n=== Section 5: timing-table granularity ablation "
                "(LADDER-Hybrid, singles AVG speedup) ===\n\n");
    std::printf("%12s %12s\n", "granularity", "avg speedup");
    for (unsigned granularity : {4u, 8u, 16u}) {
        ExperimentConfig sweep = cfg;
        sweep.granularity = granularity;
        Matrix m = runMatrixParallel(pair, workloads, sweep);
        double sum = 0.0;
        for (const auto &workload : workloads) {
            sum += speedupOver(m.at(SchemeKind::LadderHybrid,
                                    workload),
                               m.at(SchemeKind::Baseline, workload));
        }
        std::printf("%12u %12.4f\n", granularity,
                    sum / workloads.size());
    }
    std::printf("\npaper reference: the 8-bucket model costs < 3%% "
                "vs a finer-grained one\n");
    return 0;
}
