/**
 * @file
 * Figure 16 reproduction: system speedup (IPC for single programs,
 * weighted IPC for the 4-program mixes) of every scheme, normalized
 * to the worst-case baseline. Echoes the Table 2 architecture
 * parameters and runs the metadata-cache-size ablation the paper
 * mentions (<2% gain beyond 64KB).
 *
 * Paper averages: Split-reset +13%/+27% (single/multi), BLP
 * +22%/+27%, LADDER-Basic +22%/+50%, Est +5% over Basic, Hybrid
 * +2.8% over Est; LADDER reaches 98% of Oracle; overall ~46% over
 * baseline.
 */

#include <future>

#include "bench_common.hh"
#include "common/thread_pool.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args =
        parseBenchArgs(argc, argv, cfg, {}, paperSchemes());
    requireScheme(args, SchemeKind::Baseline,
                  "speedup is computed over the baseline");

    SystemConfig sys =
        makeSystemConfig(SchemeKind::Baseline, "astar", cfg);
    std::printf("=== Table 2: architecture parameters ===\n");
    std::printf("  cores                4-wide OoO model, ROB %u, "
                "%u MSHRs, %.1f GHz\n",
                sys.core.robSize, sys.core.maxOutstanding,
                sys.core.freqGhz);
    std::printf("  caches               L1 %zuKB/%u-way, L2 %zuKB/"
                "%u-way, L3 %zuKB/%u-way (scaled; see DESIGN.md)\n",
                sys.caches.l1.sizeBytes / 1024, sys.caches.l1.ways,
                sys.caches.l2.sizeBytes / 1024, sys.caches.l2.ways,
                sys.caches.l3.sizeBytes / 1024, sys.caches.l3.ways);
    std::printf("  memory controller    %u-entry RDQ, %u-entry WRQ, "
                "drain at %.0f%%\n",
                sys.controller.readQueueEntries,
                sys.controller.writeQueueEntries,
                sys.controller.drainHighWatermark * 100);
    std::printf("  metadata cache       %zuKB %u-way, %u-entry spill "
                "buffer\n",
                sys.controller.metadataCacheBytes / 1024,
                sys.controller.metadataCacheWays,
                sys.controller.spillBufferEntries);
    std::printf("  ReRAM                %u channels x %u ranks x %u "
                "banks, %ux%u mats, tCL %.2f tRCD %.2f tBURST %.2f "
                "ns, tWR 29-658 ns (variable)\n\n",
                sys.geometry.channels, sys.geometry.ranksPerChannel,
                sys.geometry.banksPerRank, sys.geometry.matRows,
                sys.geometry.matCols, sys.controller.tClNs,
                sys.controller.tRcdNs, sys.controller.tBurstNs);

    std::printf("=== Figure 16: speedup over baseline (weighted IPC "
                "for mixes) ===\n\n");
    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);

    std::vector<std::string> columns;
    for (SchemeKind kind : matrix.schemes)
        columns.push_back(schemeKindName(kind));
    TablePrinter printer(columns);
    printer.printHeader();
    std::vector<double> sums(matrix.schemes.size(), 0.0);
    std::vector<double> singleSums(matrix.schemes.size(), 0.0);
    std::vector<double> mixSums(matrix.schemes.size(), 0.0);
    unsigned singles = 0, mixes = 0;
    for (const auto &workload : matrix.workloads) {
        const SimResult &base =
            matrix.at(SchemeKind::Baseline, workload);
        std::vector<double> row;
        bool isMix = isMixWorkload(workload);
        (isMix ? mixes : singles) += 1;
        for (std::size_t s = 0; s < matrix.schemes.size(); ++s) {
            double speedup = speedupOver(
                matrix.at(matrix.schemes[s], workload), base);
            row.push_back(speedup);
            sums[s] += speedup;
            (isMix ? mixSums[s] : singleSums[s]) += speedup;
        }
        printer.printRow(workload, row);
    }
    std::vector<double> avg = sums, avgSingle = singleSums,
                        avgMix = mixSums;
    for (std::size_t s = 0; s < avg.size(); ++s) {
        avg[s] /= matrix.workloads.size();
        if (singles)
            avgSingle[s] /= singles;
        if (mixes)
            avgMix[s] /= mixes;
    }
    if (singles)
        printer.printRow("AVG-single", avgSingle);
    if (mixes)
        printer.printRow("AVG-mix", avgMix);
    printer.printRow("AVG", avg);

    std::printf("\npaper reference AVG: Split-reset 1.13/1.27 "
                "(single/mix), BLP 1.22/1.27, Basic 1.22/1.50, Est "
                "+5%% over Basic, Hybrid +2.8%% over Est, ~98%% of "
                "Oracle, ~1.46 overall\n");

    // Ablation: metadata cache size (paper: <2% beyond 64KB). The
    // five sizes are independent runs; fan them out on the pool and
    // print in canonical (ascending-size) order.
    std::printf("\n--- ablation: LRS-metadata cache size "
                "(LADDER-Hybrid, astar) ---\n");
    std::printf("%10s %12s\n", "size KB", "IPC");
    const std::vector<std::size_t> sizesKb = {16, 32, 64, 128, 256};
    auto ablate = [&cfg](std::size_t kb) {
        SystemConfig sysCfg = makeSystemConfig(
            SchemeKind::LadderHybrid, "astar", cfg);
        sysCfg.controller.metadataCacheBytes = kb * 1024;
        System system(sysCfg);
        return system.run(cfg.warmupInstr, cfg.measureInstr);
    };
    if (cfg.jobs == 1) {
        for (std::size_t kb : sizesKb)
            std::printf("%10zu %12.4f\n", kb, ablate(kb).ipc);
    } else {
        ThreadPool pool(cfg.jobs);
        std::vector<std::future<SimResult>> futures;
        for (std::size_t kb : sizesKb)
            futures.push_back(
                pool.submit([&ablate, kb]() { return ablate(kb); }));
        for (std::size_t i = 0; i < sizesKb.size(); ++i)
            std::printf("%10zu %12.4f\n", sizesKb[i],
                        futures[i].get().ipc);
    }
    return 0;
}
