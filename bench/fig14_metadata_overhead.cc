/**
 * @file
 * Figure 14 reproduction: additional reads (SMB + LRS-metadata fills)
 * and additional writes (LRS-metadata writebacks) of the three LADDER
 * variants, as a percentage of the workload's demand reads/writes.
 *
 * Paper averages: additional reads 43% (Basic), 15% (Est), 4%
 * (Hybrid); additional writes ~(Basic high), 8% (Est), 3% (Hybrid).
 * Includes the Hybrid low-row-threshold ablation.
 */

#include <future>

#include "bench_common.hh"
#include "common/thread_pool.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(
        argc, argv, cfg, {},
        {SchemeKind::LadderBasic, SchemeKind::LadderEst,
         SchemeKind::LadderHybrid});
    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);

    std::printf("=== Figure 14a: additional reads due to metadata "
                "maintenance (%% of demand reads) ===\n\n");
    printRawTable(matrix, [](const SimResult &r) {
        return 100.0 *
               static_cast<double>(r.metadataReads + r.smbReads) /
               static_cast<double>(r.dataReads);
    });
    std::printf("\npaper reference AVG: Basic 43%%, Est 15%%, Hybrid "
                "4%%\n");

    std::printf("\n=== Figure 14b: additional writes (%% of demand "
                "writes) ===\n\n");
    printRawTable(matrix, [](const SimResult &r) {
        return 100.0 * static_cast<double>(r.metadataWrites) /
               static_cast<double>(r.dataWrites);
    });
    std::printf("\npaper reference AVG: Est 8%%, Hybrid 3%% (Basic "
                "higher: two metadata lines per page)\n");

    // Ablation: the Hybrid low-precision row threshold.
    std::printf("\n--- ablation: Hybrid low-precision rows (astar) "
                "---\n");
    std::printf("%10s %16s %16s\n", "low rows", "extra reads %",
                "extra writes %");
    const std::vector<unsigned> lowRowsSweep = {0u, 64u, 128u, 256u};
    auto ablate = [&cfg](unsigned lowRows) {
        ExperimentConfig sweep = cfg;
        sweep.schemeOptions.hybridLowRows = lowRows;
        return runOne(SchemeKind::LadderHybrid, "astar", sweep);
    };
    auto show = [](unsigned lowRows, const SimResult &r) {
        std::printf("%10u %16.1f %16.1f\n", lowRows,
                    100.0 *
                        static_cast<double>(r.metadataReads +
                                            r.smbReads) /
                        static_cast<double>(r.dataReads),
                    100.0 * static_cast<double>(r.metadataWrites) /
                        static_cast<double>(r.dataWrites));
    };
    if (cfg.jobs == 1) {
        for (unsigned lowRows : lowRowsSweep)
            show(lowRows, ablate(lowRows));
    } else {
        ThreadPool pool(cfg.jobs);
        std::vector<std::future<SimResult>> futures;
        for (unsigned lowRows : lowRowsSweep)
            futures.push_back(pool.submit(
                [&ablate, lowRows]() { return ablate(lowRows); }));
        for (std::size_t i = 0; i < lowRowsSweep.size(); ++i)
            show(lowRowsSweep[i], futures[i].get());
    }
    return 0;
}
