/**
 * @file
 * Figure 2 reproduction: the motivation study. Normalized IPC of the
 * worst-case baseline, a location-aware-only ideal scheme, and the
 * data/location-aware ideal (Oracle) on the 8 single-programmed
 * workloads.
 *
 * Paper: location-aware up to 24% IPC gain; data/location-aware more
 * than 1.6x on the most write-bound workloads.
 */

#include "bench_common.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    BenchArgs args = parseBenchArgs(
        argc, argv, cfg, singleWorkloadNames(),
        {SchemeKind::Baseline, SchemeKind::Location,
         SchemeKind::Oracle});
    requireScheme(args, SchemeKind::Baseline,
                  "IPC is normalized to the worst-case baseline");

    std::printf("=== Figure 2: potential of content/location-aware "
                "writes (normalized IPC) ===\n\n");
    Matrix matrix =
        runMatrixParallel(args.schemes, args.workloads, cfg);

    printNormalizedTable(matrix, SchemeKind::Baseline,
                         [](const SimResult &r) { return r.ipc; });

    std::printf("\ncolumns: Worst-case (baseline), Location-aware, "
                "Data/Location-aware (Oracle)\n");
    std::printf("paper reference: location-aware up to 1.24x; "
                "data/location-aware above 1.6x on write-bound "
                "workloads\n");
    return 0;
}
