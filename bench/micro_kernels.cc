/**
 * @file
 * google-benchmark micro-kernels for the hot paths of the LADDER
 * stack: content counting, counter packing/estimation, FNW, timing
 * table lookups, the fast circuit model, the metadata cache and the
 * FPC compressor.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "circuit/fastmodel.hh"
#include "common/rng.hh"
#include "ctrl/controller.hh"
#include "ctrl/fnw.hh"
#include "ctrl/metadata_cache.hh"
#include "mem/backing_store.hh"
#include "reram/latency_surface.hh"
#include "reram/timing_tables.hh"
#include "schemes/factory.hh"
#include "schemes/fpc.hh"
#include "schemes/partial_counter.hh"

namespace
{

using namespace ladder;

LineData
randomLine(Rng &rng)
{
    LineData line;
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return line;
}

void
BM_PopcountLine(benchmark::State &state)
{
    Rng rng(1);
    LineData line = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(popcountLine(line));
}
BENCHMARK(BM_PopcountLine);

void
BM_PackPartialCounters(benchmark::State &state)
{
    Rng rng(2);
    LineData line = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(packPartialCounters2(line));
}
BENCHMARK(BM_PackPartialCounters);

void
BM_EstimateCw(benchmark::State &state)
{
    Rng rng(3);
    std::array<std::uint8_t, 64> packed;
    for (auto &byte : packed)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    for (auto _ : state)
        benchmark::DoNotOptimize(estimateCw2(packed));
}
BENCHMARK(BM_EstimateCw);

void
BM_ShiftEncode(benchmark::State &state)
{
    Rng rng(4);
    LineData line = randomLine(rng);
    for (auto _ : state) {
        LineData out = line;
        for (unsigned g = 0; g < 8; ++g) {
            transposeGroup(out, g);
            rotateGroupLeft(out, g, 13);
        }
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_ShiftEncode);

void
BM_FnwDecide(benchmark::State &state)
{
    Rng rng(5);
    LineData stored = randomLine(rng);
    LineData data = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fnwDecide(stored, data, FnwMode::Constrained));
}
BENCHMARK(BM_FnwDecide);

void
BM_TimingTableLookup(benchmark::State &state)
{
    const TimingModel &model = cachedTimingModel(CrossbarParams{});
    Rng rng(6);
    for (auto _ : state) {
        unsigned wl = static_cast<unsigned>(rng.nextBounded(512));
        unsigned bl = static_cast<unsigned>(rng.nextBounded(512));
        unsigned c = static_cast<unsigned>(rng.nextBounded(513));
        benchmark::DoNotOptimize(model.ladder.lookup(wl, bl, c));
    }
}
BENCHMARK(BM_TimingTableLookup);

void
BM_LatencySurfaceLookup(benchmark::State &state)
{
    const TimingModel &model = cachedTimingModel(CrossbarParams{});
    Rng rng(6);
    for (auto _ : state) {
        unsigned wl = static_cast<unsigned>(rng.nextBounded(512));
        unsigned bl = static_cast<unsigned>(rng.nextBounded(512));
        unsigned c = static_cast<unsigned>(rng.nextBounded(513));
        benchmark::DoNotOptimize(model.ladderSurface->lookup(wl, bl, c));
    }
}
BENCHMARK(BM_LatencySurfaceLookup);

void
BM_LatencySurfaceLookupBatch(benchmark::State &state)
{
    const TimingModel &model = cachedTimingModel(CrossbarParams{});
    Rng rng(6);
    std::vector<SurfaceQuery> queries(256);
    for (auto &q : queries)
        q = SurfaceQuery{
            static_cast<unsigned>(rng.nextBounded(512)),
            static_cast<unsigned>(rng.nextBounded(512)),
            static_cast<unsigned>(rng.nextBounded(513))};
    std::vector<TimingEntry> out(queries.size());
    for (auto _ : state) {
        model.ladderSurface->lookupBatch(queries.data(),
                                         queries.size(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(queries.size()));
}
BENCHMARK(BM_LatencySurfaceLookupBatch);

void
BM_PopcountLineScalar(benchmark::State &state)
{
    Rng rng(1);
    LineData line = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(popcountLineScalar(line));
}
BENCHMARK(BM_PopcountLineScalar);

void
BM_PopcountLineAvx2(benchmark::State &state)
{
    if (!bitopsHaveAvx2()) {
        state.SkipWithError("AVX2 unavailable on this host");
        return;
    }
    Rng rng(1);
    LineData line = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(popcountLineAvx2(line));
}
BENCHMARK(BM_PopcountLineAvx2);

void
BM_CountTransitions(benchmark::State &state)
{
    Rng rng(10);
    LineData before = randomLine(rng);
    LineData after = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(countTransitions(before, after));
}
BENCHMARK(BM_CountTransitions);

void
BM_FastModelEvaluate(benchmark::State &state)
{
    CrossbarParams params;
    SneakPathModel model(params);
    for (auto _ : state) {
        ResetCondition cond{255, 31, 256, 256};
        benchmark::DoNotOptimize(model.evaluate(cond));
    }
}
BENCHMARK(BM_FastModelEvaluate)->Unit(benchmark::kMicrosecond);

void
BM_MetadataCacheLookup(benchmark::State &state)
{
    MetadataCache cache(64 * 1024, 4);
    Rng rng(7);
    Addr victim;
    for (unsigned i = 0; i < 2048; ++i)
        cache.insert(i * lineBytes, 0, victim);
    for (auto _ : state) {
        Addr addr = rng.nextBounded(4096) * lineBytes;
        MetaLookup result = cache.lookupForWrite(addr);
        if (result == MetaLookup::Hit)
            cache.releaseSharer(addr);
        else if (result == MetaLookup::Miss)
            cache.insert(addr, 0, victim);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_MetadataCacheLookup);

void
BM_FpcCompress(benchmark::State &state)
{
    Rng rng(8);
    LineData line = randomLine(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(fpcCompressedBits(line));
}
BENCHMARK(BM_FpcCompress);

void
BM_BackingStoreWrite(benchmark::State &state)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    Rng rng(9);
    std::vector<LineData> lines;
    for (int i = 0; i < 64; ++i)
        lines.push_back(randomLine(rng));
    std::uint64_t i = 0;
    for (auto _ : state) {
        Addr addr = (i % 4096) * lineBytes;
        benchmark::DoNotOptimize(
            store.write(addr, lines[i % lines.size()]));
        ++i;
    }
}
BENCHMARK(BM_BackingStoreWrite);

/**
 * Full controller write path — enqueue through dispatch to
 * completion — with the latency-attribution knob off (Arg 0) and on
 * (Arg 1). The two timings bound what trace.attribution=1 costs per
 * write; the Arg-0 run must match the pre-attribution controller,
 * since the knob off leaves only an untaken branch on the dispatch
 * path.
 */
void
BM_ControllerWriteDispatch(benchmark::State &state)
{
    ControllerConfig cfg;
    cfg.attribution = state.range(0) != 0;
    MemoryGeometry geo;
    BackingStore store(geo, true, 0.0);
    const TimingModel &timing = cachedTimingModel(CrossbarParams{});
    AddressMap map(geo);
    auto layout = std::make_shared<MetadataLayout>(
        geo, map.totalPages() * 3 / 4);
    auto scheme = makeScheme(SchemeKind::LadderHybrid,
                             CrossbarParams{}, layout, {});
    EventQueue events;
    MemoryController ctrl(events, cfg, geo, 0, store, timing,
                          scheme);

    // Channel-0 line addresses spread over wordlines and banks.
    Rng rng(11);
    std::vector<std::pair<Addr, LineData>> writes;
    while (writes.size() < 16) {
        Addr addr = rng.nextBounded(1 << 16) * lineBytes;
        if (map.decode(addr).channel == 0)
            writes.emplace_back(addr, randomLine(rng));
    }

    std::uint64_t dispatched = 0;
    for (auto _ : state) {
        for (const auto &write : writes)
            ctrl.enqueueWrite(write.first, write.second);
        events.runUntil();
        dispatched += writes.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(dispatched));
}
BENCHMARK(BM_ControllerWriteDispatch)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
