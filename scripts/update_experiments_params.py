#!/usr/bin/env python3
"""Regenerate the parameter reference table in EXPERIMENTS.md.

The table between the BEGIN/END GENERATED PARAMS markers is the
output of `workload_sim --help-config=md`, i.e. the typed parameter
registry rendered as markdown. Run after adding or changing a
registered parameter:

    python3 scripts/update_experiments_params.py [path/to/workload_sim]

With --check, the file is not modified; the script exits 1 when the
committed table differs from the registry (CI runs this to fail on a
stale table).
"""

import argparse
import pathlib
import subprocess
import sys

BEGIN = "<!-- BEGIN GENERATED PARAMS " \
        "(scripts/update_experiments_params.py) -->"
END = "<!-- END GENERATED PARAMS -->"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "binary", nargs="?", default="build/examples/workload_sim",
        help="any registry-driven binary accepting --help-config=md")
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the committed table is stale; do not write")
    args = parser.parse_args()

    repo = pathlib.Path(__file__).resolve().parent.parent
    doc = repo / "EXPERIMENTS.md"
    text = doc.read_text()

    try:
        table = subprocess.run(
            [args.binary, "--help-config=md"], check=True,
            capture_output=True, text=True).stdout
    except (OSError, subprocess.CalledProcessError) as e:
        sys.exit(f"error: cannot run {args.binary!r}: {e}")
    if not table.startswith("| parameter |"):
        sys.exit(f"error: {args.binary!r} did not print a markdown "
                 "parameter table")

    begin = text.find(BEGIN)
    end = text.find(END)
    if begin < 0 or end < 0 or end < begin:
        sys.exit(f"error: {doc} is missing the GENERATED PARAMS "
                 "markers")
    begin += len(BEGIN)
    updated = text[:begin] + "\n" + table + text[end:]

    if updated == text:
        print("EXPERIMENTS.md parameter table is up to date")
        return
    if args.check:
        sys.exit("error: EXPERIMENTS.md parameter table is stale; "
                 "run scripts/update_experiments_params.py")
    doc.write_text(updated)
    print(f"updated {doc}")


if __name__ == "__main__":
    main()
