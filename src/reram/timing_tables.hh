/**
 * @file
 * The write timing tables the memory controller consults to turn a
 * ⟨WL location, BL location, LRS count⟩ tuple into a RESET latency
 * (paper §3.1, §5). The paper's table is logically 8x8x8: each
 * dimension is bucketed at a granularity of 64 for a 512x512 crossbar.
 * Entries are generated from the circuit model at the worst-case corner
 * of each bucket so a table lookup is always sufficient (safe) for any
 * operating point inside the bucket.
 *
 * Two content flavours exist: the LADDER table varies the *wordline*
 * LRS count and worst-cases the bitlines; the BLP table varies the
 * *bitline* LRS count and worst-cases the wordline. A location-only
 * table (both contents worst-cased) serves metadata writes and the
 * location-aware motivation scheme.
 */

#ifndef LADDER_RERAM_TIMING_TABLES_HH
#define LADDER_RERAM_TIMING_TABLES_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/cell_model.hh"
#include "circuit/latency.hh"
#include "circuit/reset_condition.hh"

namespace ladder
{

/** Which content dimension a table resolves. */
enum class ContentDim
{
    Wordline, //!< LADDER: per-wordline LRS counts, bitlines worst-cased
    Bitline,  //!< BLP: per-bitline LRS counts, wordline worst-cased
};

/** One timing entry: the latency to apply and the array power drawn. */
struct TimingEntry
{
    double latencyNs = 0.0;
    double powerMw = 0.0;
};

/** Callable that evaluates the circuit at one operating point. */
using ResetEvaluator =
    std::function<ResetEvaluation(const ResetCondition &)>;

/** A bucketed ⟨WL, BL, content⟩ -> latency table. */
class WriteTimingTable
{
  public:
    WriteTimingTable() = default;

    /**
     * Generate a table from a circuit evaluator.
     *
     * @param params Crossbar parameters (defines index ranges).
     * @param law Calibrated voltage-drop -> latency law.
     * @param eval Circuit evaluator (fast model or full MNA).
     * @param dim Which content dimension the table resolves.
     * @param wlBuckets/blBuckets/contentBuckets Table granularity
     *        (8x8x8 in the paper).
     */
    static WriteTimingTable build(const CrossbarParams &params,
                                  const ResetLatencyLaw &law,
                                  const ResetEvaluator &eval,
                                  ContentDim dim,
                                  unsigned wlBuckets = 8,
                                  unsigned blBuckets = 8,
                                  unsigned contentBuckets = 8);

    /**
     * Look up the timing for raw indices: @p wordline in [0, rows),
     * @p bitline in [0, cols), @p lrsCount in [0, content max].
     * Indices are bucketed internally (always rounding content up).
     */
    const TimingEntry &lookup(unsigned wordline, unsigned bitline,
                              unsigned lrsCount) const;

    /** Largest latency in the table (the safe fixed latency). */
    double worstLatencyNs() const { return worstNs_; }
    /** Smallest latency in the table. */
    double bestLatencyNs() const { return bestNs_; }

    unsigned wlBuckets() const { return wlBuckets_; }
    unsigned blBuckets() const { return blBuckets_; }
    unsigned contentBuckets() const { return contentBuckets_; }
    ContentDim contentDim() const { return dim_; }
    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }
    /** Largest raw content count (cols for WL tables, rows for BL). */
    unsigned contentMax() const { return contentMax_; }

    /** Direct bucket access (for dumping the Fig. 11 surfaces). */
    const TimingEntry &at(unsigned wlBucket, unsigned blBucket,
                          unsigned contentBucket) const;

    /** On-chip storage footprint of the latency values, in bytes. */
    std::size_t storageBytes() const;

  private:
    unsigned wlBuckets_ = 0;
    unsigned blBuckets_ = 0;
    unsigned contentBuckets_ = 0;
    unsigned rows_ = 0;
    unsigned cols_ = 0;
    unsigned contentMax_ = 0;
    ContentDim dim_ = ContentDim::Wordline;
    double worstNs_ = 0.0;
    double bestNs_ = 0.0;
    std::vector<TimingEntry> entries_;

    std::size_t index(unsigned wl, unsigned bl, unsigned c) const;
};

/**
 * Scheme-independent array power model: a 4-D
 * ⟨WL, BL, wordline LRS, bitline LRS⟩ grid of source power evaluated
 * at the *actual* content, so write-energy accounting (Fig. 17) is
 * fair across schemes regardless of which dimension their latency
 * table worst-cases.
 */
class PowerTable
{
  public:
    PowerTable() = default;

    static PowerTable build(const CrossbarParams &params,
                            const ResetEvaluator &eval,
                            unsigned buckets = 4);

    /** Power (mW) at raw indices/counts (nearest-bucket rounding). */
    double lookup(unsigned wordline, unsigned bitline,
                  unsigned wlLrsCount, unsigned blLrsCount) const;

    bool empty() const { return power_.empty(); }

  private:
    unsigned buckets_ = 0;
    unsigned rows_ = 0;
    unsigned cols_ = 0;
    std::vector<double> power_;
};

/**
 * The full timing-model bundle a controller needs, generated in one
 * shot from the fast sneak-path model: calibrated law, the LADDER and
 * BLP tables, and a location-only table.
 */
class LatencySurface;

struct TimingModel
{
    CrossbarParams params;
    ResetLatencyLaw law;
    WriteTimingTable ladder;   //!< WL-content resolved
    WriteTimingTable blp;      //!< BL-content resolved
    WriteTimingTable location; //!< content worst-cased (1 bucket)
    PowerTable power;          //!< content-true power (energy model)
    double bestDropVolts = 0.0;
    double worstDropVolts = 0.0;

    /**
     * Dense O(1) surfaces precomputed from the three tables (see
     * latency_surface.hh) — bit-identical to table lookups by
     * construction. Shared pointers keep TimingModel copyable without
     * duplicating the dense state; always non-null after generate().
     */
    std::shared_ptr<const LatencySurface> ladderSurface;
    std::shared_ptr<const LatencySurface> blpSurface;
    std::shared_ptr<const LatencySurface> locationSurface;

    /**
     * Build everything from the fast model.
     *
     * @param granularity Buckets per dimension (8 in the paper).
     * @param rangeShrink Dynamic-range shrink factor for the §7
     *        process-variation ablation (1.0 = nominal).
     */
    static TimingModel generate(const CrossbarParams &params,
                                unsigned granularity = 8,
                                double rangeShrink = 1.0,
                                double fastNs = 29.0,
                                double slowNs = 658.0);

    /**
     * Build tables for a *variant* operating mode (e.g. Split-reset's
     * 4-selected-cell half-RESET) using an already-calibrated law from
     * the reference mode, so latencies stay on one physical scale.
     */
    static TimingModel generateDerived(const CrossbarParams &params,
                                       const ResetLatencyLaw &law,
                                       unsigned granularity = 8);

    /** Worst-case fixed write latency (the baseline's tWR). */
    double worstLatencyNs() const { return location.worstLatencyNs(); }
};

/**
 * Memoized TimingModel::generate. Table generation costs ~0.1s per
 * parameter set; experiment sweeps construct hundreds of systems, so
 * identical models are built once and shared.
 */
const TimingModel &cachedTimingModel(const CrossbarParams &params,
                                     unsigned granularity = 8,
                                     double rangeShrink = 1.0);

} // namespace ladder

#endif // LADDER_RERAM_TIMING_TABLES_HH
