#include "latency_surface.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/profiler.hh"

namespace ladder
{

namespace
{

/** The table's WL/BL bucketing: floor division, clamped to the top
 * bucket (identical to WriteTimingTable::lookup). */
inline unsigned
locationBucket(unsigned index, unsigned buckets, unsigned extent)
{
    return std::min(index * buckets / extent, buckets - 1);
}

/** The table's round-up content bucketing (identical to
 * WriteTimingTable::lookup). */
inline unsigned
contentBucket(unsigned lrsCount, unsigned buckets, unsigned contentMax)
{
    if (lrsCount == 0)
        return 0;
    unsigned clamped = std::min(lrsCount, contentMax);
    unsigned cb = (clamped * buckets + contentMax - 1) / contentMax - 1;
    return std::min(cb, buckets - 1);
}

} // namespace

LatencySurface
LatencySurface::fromTable(const WriteTimingTable &table)
{
    PROF_SCOPE("latency_surface_build");
    LatencySurface s;
    s.rows_ = table.rows();
    s.cols_ = table.cols();
    const unsigned wlB = table.wlBuckets();
    const unsigned blB = table.blBuckets();
    const unsigned cB = table.contentBuckets();
    const unsigned contentMax = table.contentMax();
    ladder_assert(s.rows_ > 0 && s.cols_ > 0 && wlB > 0 && blB > 0 &&
                      cB > 0,
                  "latency surface from empty table");
    s.regions_ = wlB * blB;
    ladder_assert(static_cast<std::size_t>(wlB) * blB <= 0xffffu,
                  "latency surface region index overflows u16");
    s.contentDense_ = cB == 1 ? 1 : contentMax + 1;

    s.wlBase_.resize(s.rows_);
    for (unsigned wl = 0; wl < s.rows_; ++wl)
        s.wlBase_[wl] = static_cast<std::uint16_t>(
            locationBucket(wl, wlB, s.rows_) * blB);
    s.blRegion_.resize(s.cols_);
    for (unsigned bl = 0; bl < s.cols_; ++bl)
        s.blRegion_[bl] = static_cast<std::uint16_t>(
            locationBucket(bl, blB, s.cols_));

    s.entries_.resize(static_cast<std::size_t>(s.regions_) *
                      s.contentDense_);
    std::size_t idx = 0;
    for (unsigned wb = 0; wb < wlB; ++wb) {
        for (unsigned bb = 0; bb < blB; ++bb) {
            for (unsigned c = 0; c < s.contentDense_; ++c)
                s.entries_[idx++] =
                    table.at(wb, bb, contentBucket(c, cB, contentMax));
        }
    }
    return s;
}

void
LatencySurface::lookupBatch(const SurfaceQuery *queries,
                            std::size_t count, TimingEntry *out) const
{
    ladder_assert(!entries_.empty(), "lookup on empty latency surface");
    for (std::size_t i = 0; i < count; ++i) {
        const SurfaceQuery &q = queries[i];
        out[i] = lookup(q.wordline, q.bitline, q.lrsCount);
    }
}

std::vector<TimingEntry>
LatencySurface::lookupBatch(const std::vector<SurfaceQuery> &queries)
    const
{
    std::vector<TimingEntry> out(queries.size());
    lookupBatch(queries.data(), queries.size(), out.data());
    return out;
}

SurfaceCheckResult
LatencySurface::verifyAgainst(const WriteTimingTable &table) const
{
    SurfaceCheckResult r;
    const unsigned wlB = table.wlBuckets();
    const unsigned blB = table.blBuckets();
    const unsigned cB = table.contentBuckets();
    const unsigned contentMax = table.contentMax();
    if (rows_ != table.rows() || cols_ != table.cols() ||
        regions_ != wlB * blB ||
        contentDense_ != (cB == 1 ? 1u : contentMax + 1)) {
        r.mismatches = 1;
        return r;
    }
    for (unsigned wl = 0; wl < rows_; ++wl) {
        ++r.cellsChecked;
        if (wlBase_[wl] != locationBucket(wl, wlB, rows_) * blB)
            ++r.mismatches;
    }
    for (unsigned bl = 0; bl < cols_; ++bl) {
        ++r.cellsChecked;
        if (blRegion_[bl] != locationBucket(bl, blB, cols_))
            ++r.mismatches;
    }
    std::size_t idx = 0;
    for (unsigned wb = 0; wb < wlB; ++wb) {
        for (unsigned bb = 0; bb < blB; ++bb) {
            for (unsigned c = 0; c < contentDense_; ++c, ++idx) {
                ++r.cellsChecked;
                const TimingEntry &want =
                    table.at(wb, bb, contentBucket(c, cB, contentMax));
                const TimingEntry &got = entries_[idx];
                // Bit-identical by construction: exact compare.
                if (got.latencyNs != want.latencyNs ||
                    got.powerMw != want.powerMw) {
                    ++r.mismatches;
                    r.maxAbsErrorNs = std::max(
                        r.maxAbsErrorNs,
                        std::abs(got.latencyNs - want.latencyNs));
                }
            }
        }
    }
    return r;
}

std::size_t
LatencySurface::storageBytes() const
{
    return wlBase_.size() * sizeof(std::uint16_t) +
           blRegion_.size() * sizeof(std::uint16_t) +
           entries_.size() * sizeof(TimingEntry);
}

SurfaceErrorReport
checkSurfaceError(const CrossbarParams &params,
                  const WriteTimingTable &table,
                  const ResetLatencyLaw &law,
                  const ResetEvaluator &reference, double relBudget)
{
    SurfaceErrorReport rep;
    rep.budget = relBudget;
    const unsigned rows = table.rows();
    const unsigned cols = table.cols();
    const unsigned slots =
        cols / static_cast<unsigned>(params.selectedCells);
    const unsigned wlB = table.wlBuckets();
    const unsigned blB = table.blBuckets();
    const unsigned cB = table.contentBuckets();
    const unsigned contentMax = table.contentMax();
    double maxMagnitude = 0.0;
    for (unsigned wb = 0; wb < wlB; ++wb) {
        unsigned wl = (wb + 1) * rows / wlB - 1;
        for (unsigned bb = 0; bb < blB; ++bb) {
            unsigned slot = (bb + 1) * slots / blB - 1;
            for (unsigned cb = 0; cb < cB; ++cb) {
                unsigned count = (cb + 1) * contentMax / cB;
                ResetCondition cond;
                cond.wordline = wl;
                cond.byteOffset = slot;
                if (table.contentDim() == ContentDim::Wordline) {
                    cond.wlLrsCount = count;
                    cond.blLrsCount = rows;
                } else {
                    cond.blLrsCount = count;
                    cond.wlLrsCount = cols;
                }
                double refNs =
                    law.latencyNs(reference(cond).minDropVolts);
                double tabNs = table.at(wb, bb, cb).latencyNs;
                ladder_assert(refNs > 0.0,
                              "reference latency must be positive");
                double rel = (tabNs - refNs) / refNs;
                ++rep.cellsChecked;
                if (std::abs(rel) > std::abs(maxMagnitude))
                    maxMagnitude = rel;
                if (std::abs(rel) > relBudget)
                    ++rep.violations;
            }
        }
    }
    rep.maxRelError = maxMagnitude;
    return rep;
}

} // namespace ladder
