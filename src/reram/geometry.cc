#include "geometry.hh"

#include "common/log.hh"

namespace ladder
{

/**
 * Page interleaving. Requirements pulled in different directions:
 * consecutive pages must spread across channels and across the
 * (subarray, bank) pairs that can operate concurrently, while even a
 * small working set must sweep the full wordline (near-to-far
 * location) range that the latency model depends on. The layout is
 * therefore: channel fastest; then the subarray/bank pair; the
 * wordline advances per sweep but is sheared by 31 * pair so each
 * pair wave lands on well-spread wordlines; the remaining bits pick
 * the mat-group slice. All steps are exactly invertible.
 */

namespace
{

/** Mat groups interleaved as concurrent subarray slots per bank. */
constexpr unsigned subarraySlots = 4;
constexpr unsigned wordlineShear = 31;

} // anonymous namespace

BlockLocation
AddressMap::decode(Addr byteAddr) const
{
    BlockLocation loc;
    loc.blockInPage = static_cast<unsigned>(
        (byteAddr / lineBytes) % MemoryGeometry::blocksPerPage);
    std::uint64_t page = pageOf(byteAddr);
    loc.pageIndex = page;
    ladder_assert(page < totalPages(),
                  "address 0x%llx beyond memory capacity",
                  static_cast<unsigned long long>(byteAddr));

    loc.channel = static_cast<unsigned>(page % geo_.channels);
    std::uint64_t rest = page / geo_.channels;

    unsigned banksPerChannel = geo_.ranksPerChannel * geo_.banksPerRank;
    unsigned pairCount = banksPerChannel * subarraySlots;
    unsigned pair = static_cast<unsigned>(rest % pairCount);
    rest /= pairCount;

    unsigned subarray = pair % subarraySlots;
    unsigned rankBank = pair / subarraySlots;
    loc.rank = rankBank / geo_.banksPerRank;
    loc.bank = rankBank % geo_.banksPerRank;

    loc.wordline = static_cast<unsigned>(
        (rest + static_cast<std::uint64_t>(wordlineShear) * pair) %
        geo_.matRows);
    rest /= geo_.matRows;

    ladder_assert(geo_.matGroupsPerBank % subarraySlots == 0,
                  "mat groups per bank must be a multiple of %u",
                  subarraySlots);
    unsigned groupSlices = geo_.matGroupsPerBank / subarraySlots;
    loc.matGroup = static_cast<unsigned>(rest % groupSlices) *
                       subarraySlots +
                   subarray;
    return loc;
}

Addr
AddressMap::encode(const BlockLocation &loc) const
{
    unsigned banksPerChannel = geo_.ranksPerChannel * geo_.banksPerRank;
    unsigned pairCount = banksPerChannel * subarraySlots;
    unsigned subarray = loc.matGroup % subarraySlots;
    unsigned groupSlice = loc.matGroup / subarraySlots;
    unsigned rankBank = loc.rank * geo_.banksPerRank + loc.bank;
    unsigned pair = rankBank * subarraySlots + subarray;

    // Invert the sheared wordline back to the sweep counter.
    std::uint64_t shear =
        (static_cast<std::uint64_t>(wordlineShear) * pair) %
        geo_.matRows;
    std::uint64_t sweep =
        (loc.wordline + geo_.matRows - shear) % geo_.matRows;

    std::uint64_t page = groupSlice;
    page = page * geo_.matRows + sweep;
    page = page * pairCount + pair;
    page = page * geo_.channels + loc.channel;
    return page * MemoryGeometry::pageBytes +
           static_cast<Addr>(loc.blockInPage) * lineBytes;
}

} // namespace ladder
