/**
 * @file
 * Physical organization of the ReRAM main memory and the data layout of
 * a 64B memory block across it (paper §3.1, Fig. 3, Table 2).
 *
 * Layout recap: a rank is built from 8 x8 chips; a 64B block spreads one
 * byte to each of 64 mats (8 mats per chip) — the "mat group". All 64
 * bytes of a 4KB page's block b land on the same wordline index w at
 * byte slot b (bitlines [8b, 8b+7]); the 64 (mat, wordline-w) rows used
 * by a page form its "wordline group" (WLG). The per-mat LRS counter
 * C_j of a WLG is the popcount of byte j over the page's 64 blocks.
 */

#ifndef LADDER_RERAM_GEOMETRY_HH
#define LADDER_RERAM_GEOMETRY_HH

#include <cstddef>

#include "common/types.hh"

namespace ladder
{

/** Organization parameters of the ReRAM module (Table 2 defaults). */
struct MemoryGeometry
{
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    unsigned chipsPerRank = 8;
    unsigned matGroupsPerBank = 64; //!< 64-mat groups per bank
    unsigned matRows = 512;         //!< wordlines per mat
    unsigned matCols = 512;         //!< bitlines per mat

    /** Mats that cooperate to store one block. */
    static constexpr unsigned matsPerGroup = 64;
    /** Blocks per page / byte slots per wordline. */
    static constexpr unsigned blocksPerPage = 64;
    /** Bytes per page. */
    static constexpr unsigned pageBytes = blocksPerPage * lineBytes;

    /** Pages stored by one mat group (one page per wordline). */
    unsigned pagesPerMatGroup() const { return matRows; }
    /** Pages per bank. */
    std::uint64_t
    pagesPerBank() const
    {
        return static_cast<std::uint64_t>(matGroupsPerBank) * matRows;
    }
    /** Total banks in the module. */
    unsigned
    totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }
    /** Total data capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(totalBanks()) *
               pagesPerBank() * pageBytes;
    }
};

/** Fully decoded physical location of one 64B block. */
struct BlockLocation
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;       //!< bank within rank
    unsigned matGroup = 0;   //!< mat group within bank
    unsigned wordline = 0;   //!< row index within the mats (0..rows-1)
    unsigned blockInPage = 0; //!< byte slot b; bitlines [8b, 8b+7]
    std::uint64_t pageIndex = 0; //!< global page number

    /** Highest (worst IR drop) bitline index the block touches. */
    unsigned
    worstBitline() const
    {
        return blockInPage * 8 + 7;
    }
    /** Flat bank id across the module (channel-major). */
    unsigned
    flatBank(const MemoryGeometry &geo) const
    {
        return (channel * geo.ranksPerChannel + rank) *
                   geo.banksPerRank +
               bank;
    }
};

/**
 * Address decoder: line/page address -> physical location.
 *
 * Pages interleave round-robin across channels, then across
 * (rank, bank), then across wordlines (so that consecutive pages in a
 * bank land on consecutive wordline indices, exercising the location
 * dimension), then across mat groups.
 */
class AddressMap
{
  public:
    explicit AddressMap(const MemoryGeometry &geo) : geo_(geo) {}

    /** Decode a byte address (the containing block's location). */
    BlockLocation decode(Addr byteAddr) const;

    /** Line-aligned address of a block from its location. */
    Addr encode(const BlockLocation &loc) const;

    /** Page index of an address. */
    std::uint64_t
    pageOf(Addr byteAddr) const
    {
        return byteAddr / MemoryGeometry::pageBytes;
    }

    /** Total pages addressable. */
    std::uint64_t
    totalPages() const
    {
        return static_cast<std::uint64_t>(geo_.totalBanks()) *
               geo_.pagesPerBank();
    }

    const MemoryGeometry &geometry() const { return geo_; }

  private:
    MemoryGeometry geo_;
};

} // namespace ladder

#endif // LADDER_RERAM_GEOMETRY_HH
