#include "timing_tables.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "circuit/fastmodel.hh"
#include "common/log.hh"
#include "common/profiler.hh"
#include "latency_surface.hh"

namespace ladder
{

namespace
{

/** Precompute the dense lookup surfaces for a finished model. */
void
attachSurfaces(TimingModel &model)
{
    model.ladderSurface = std::make_shared<const LatencySurface>(
        LatencySurface::fromTable(model.ladder));
    model.blpSurface = std::make_shared<const LatencySurface>(
        LatencySurface::fromTable(model.blp));
    model.locationSurface = std::make_shared<const LatencySurface>(
        LatencySurface::fromTable(model.location));
}

} // namespace

std::size_t
WriteTimingTable::index(unsigned wl, unsigned bl, unsigned c) const
{
    return (static_cast<std::size_t>(wl) * blBuckets_ + bl) *
               contentBuckets_ +
           c;
}

WriteTimingTable
WriteTimingTable::build(const CrossbarParams &params,
                        const ResetLatencyLaw &law,
                        const ResetEvaluator &eval, ContentDim dim,
                        unsigned wlBuckets, unsigned blBuckets,
                        unsigned contentBuckets)
{
    ladder_assert(wlBuckets > 0 && blBuckets > 0 && contentBuckets > 0,
                  "timing table: zero buckets");
    WriteTimingTable table;
    table.wlBuckets_ = wlBuckets;
    table.blBuckets_ = blBuckets;
    table.contentBuckets_ = contentBuckets;
    table.rows_ = static_cast<unsigned>(params.rows);
    table.cols_ = static_cast<unsigned>(params.cols);
    table.dim_ = dim;
    table.contentMax_ = dim == ContentDim::Wordline
                            ? static_cast<unsigned>(params.cols)
                            : static_cast<unsigned>(params.rows);
    table.entries_.resize(static_cast<std::size_t>(wlBuckets) *
                          blBuckets * contentBuckets);

    const unsigned rows = table.rows_;
    const unsigned cols = table.cols_;
    const unsigned slots =
        cols / static_cast<unsigned>(params.selectedCells);

    double worst = 0.0;
    double best = std::numeric_limits<double>::max();
    for (unsigned wb = 0; wb < wlBuckets; ++wb) {
        // Worst (farthest-from-driver) wordline of the bucket.
        unsigned wl = (wb + 1) * rows / wlBuckets - 1;
        for (unsigned bb = 0; bb < blBuckets; ++bb) {
            // Worst byte slot of the bucket.
            unsigned slot = (bb + 1) * slots / blBuckets - 1;
            for (unsigned cb = 0; cb < contentBuckets; ++cb) {
                // Worst (largest) content count of the bucket.
                unsigned count =
                    (cb + 1) * table.contentMax_ / contentBuckets;
                ResetCondition cond;
                cond.wordline = wl;
                cond.byteOffset = slot;
                if (dim == ContentDim::Wordline) {
                    cond.wlLrsCount = count;
                    cond.blLrsCount =
                        static_cast<unsigned>(params.rows);
                } else {
                    cond.blLrsCount = count;
                    cond.wlLrsCount =
                        static_cast<unsigned>(params.cols);
                }
                ResetEvaluation ev = eval(cond);
                TimingEntry entry;
                entry.latencyNs = law.latencyNs(ev.minDropVolts);
                entry.powerMw = ev.sourcePowerWatts * 1e3;
                table.entries_[table.index(wb, bb, cb)] = entry;
                worst = std::max(worst, entry.latencyNs);
                best = std::min(best, entry.latencyNs);
            }
        }
    }
    table.worstNs_ = worst;
    table.bestNs_ = best;
    return table;
}

const TimingEntry &
WriteTimingTable::lookup(unsigned wordline, unsigned bitline,
                         unsigned lrsCount) const
{
    ladder_assert(!entries_.empty(), "lookup on empty timing table");
    unsigned wb = std::min(wordline * wlBuckets_ / rows_,
                           wlBuckets_ - 1);
    unsigned bb = std::min(bitline * blBuckets_ / cols_,
                           blBuckets_ - 1);
    // Content rounds *up*: a count on a bucket boundary must use the
    // bucket whose worst-case corner covers it.
    unsigned cb = 0;
    if (lrsCount > 0) {
        unsigned clamped = std::min(lrsCount, contentMax_);
        cb = (clamped * contentBuckets_ + contentMax_ - 1) /
                 contentMax_ -
             1;
        cb = std::min(cb, contentBuckets_ - 1);
    }
    return entries_[index(wb, bb, cb)];
}

const TimingEntry &
WriteTimingTable::at(unsigned wlBucket, unsigned blBucket,
                     unsigned contentBucket) const
{
    ladder_assert(wlBucket < wlBuckets_ && blBucket < blBuckets_ &&
                      contentBucket < contentBuckets_,
                  "timing table bucket out of range");
    return entries_[index(wlBucket, blBucket, contentBucket)];
}

std::size_t
WriteTimingTable::storageBytes() const
{
    // One byte encodes a latency level; the paper reports a 512B buffer
    // for the 8x8x8 organization.
    return entries_.size();
}

PowerTable
PowerTable::build(const CrossbarParams &params,
                  const ResetEvaluator &eval, unsigned buckets)
{
    ladder_assert(buckets > 0, "power table: zero buckets");
    PowerTable table;
    table.buckets_ = buckets;
    table.rows_ = static_cast<unsigned>(params.rows);
    table.cols_ = static_cast<unsigned>(params.cols);
    table.power_.resize(static_cast<std::size_t>(buckets) * buckets *
                        buckets * buckets);
    const unsigned slots =
        table.cols_ / static_cast<unsigned>(params.selectedCells);
    std::size_t idx = 0;
    for (unsigned wb = 0; wb < buckets; ++wb) {
        unsigned wl = (2 * wb + 1) * table.rows_ / (2 * buckets);
        for (unsigned bb = 0; bb < buckets; ++bb) {
            unsigned slot = (2 * bb + 1) * slots / (2 * buckets);
            for (unsigned cw = 0; cw < buckets; ++cw) {
                unsigned wlCount =
                    (2 * cw + 1) * table.cols_ / (2 * buckets);
                for (unsigned cb = 0; cb < buckets; ++cb) {
                    unsigned blCount =
                        (2 * cb + 1) * table.rows_ / (2 * buckets);
                    ResetCondition cond;
                    cond.wordline = wl;
                    cond.byteOffset = slot;
                    cond.wlLrsCount = wlCount;
                    cond.blLrsCount = blCount;
                    table.power_[idx++] =
                        eval(cond).sourcePowerWatts * 1e3;
                }
            }
        }
    }
    return table;
}

double
PowerTable::lookup(unsigned wordline, unsigned bitline,
                   unsigned wlLrsCount, unsigned blLrsCount) const
{
    ladder_assert(!power_.empty(), "lookup on empty power table");
    auto bucket = [this](unsigned value, unsigned max) {
        unsigned b = value * buckets_ / (max + 1);
        return std::min(b, buckets_ - 1);
    };
    unsigned wb = bucket(wordline, rows_ - 1);
    unsigned bb = bucket(bitline, cols_ - 1);
    unsigned cw = bucket(std::min(wlLrsCount, cols_), cols_);
    unsigned cb = bucket(std::min(blLrsCount, rows_), rows_);
    return power_[((static_cast<std::size_t>(wb) * buckets_ + bb) *
                       buckets_ +
                   cw) *
                      buckets_ +
                  cb];
}

const TimingModel &
cachedTimingModel(const CrossbarParams &params, unsigned granularity,
                  double rangeShrink)
{
    struct Key
    {
        CrossbarParams p;
        unsigned g;
        double s;

        bool
        operator==(const Key &o) const
        {
            return p.rows == o.p.rows && p.cols == o.p.cols &&
                   p.selectedCells == o.p.selectedCells &&
                   p.lrsOhms == o.p.lrsOhms &&
                   p.hrsOhms == o.p.hrsOhms &&
                   p.selectorNonlinearity ==
                       o.p.selectorNonlinearity &&
                   p.inputOhms == o.p.inputOhms &&
                   p.outputOhms == o.p.outputOhms &&
                   p.wireOhms == o.p.wireOhms &&
                   p.writeVolts == o.p.writeVolts &&
                   p.biasVolts == o.p.biasVolts &&
                   p.blSneakScale == o.p.blSneakScale &&
                   p.wlSneakScale == o.p.wlSneakScale && g == o.g &&
                   s == o.s;
        }
    };
    // Parallel sweep workers build Systems concurrently; the whole
    // lookup-or-generate runs under one lock so a given key is only
    // ever generated once and the returned reference (stable: the
    // vector owns unique_ptrs) is safe to read lock-free afterwards.
    static std::mutex cacheMutex;
    static std::vector<std::pair<Key, std::unique_ptr<TimingModel>>>
        cache;
    std::lock_guard<std::mutex> lock(cacheMutex);
    Key key{params, granularity, rangeShrink};
    for (const auto &entry : cache) {
        if (entry.first == key)
            return *entry.second;
    }
    auto model = std::make_unique<TimingModel>(
        TimingModel::generate(params, granularity, rangeShrink));
    cache.emplace_back(key, std::move(model));
    return *cache.back().second;
}

TimingModel
TimingModel::generate(const CrossbarParams &params, unsigned granularity,
                      double rangeShrink, double fastNs, double slowNs)
{
    PROF_SCOPE("timing_table_build");
    TimingModel model;
    model.params = params;

    SneakPathModel fast(params);
    ResetEvaluator eval = [&fast](const ResetCondition &c) {
        return fast.evaluate(c);
    };

    // Calibration endpoints of the operating envelope.
    ResetCondition bestCond;
    bestCond.wordline = 0;
    bestCond.byteOffset = 0;
    bestCond.wlLrsCount = 0;
    bestCond.blLrsCount = 0;
    ResetCondition worstCond;
    worstCond.wordline = params.rows - 1;
    worstCond.byteOffset = params.cols / params.selectedCells - 1;
    worstCond.wlLrsCount = static_cast<unsigned>(params.cols);
    worstCond.blLrsCount = static_cast<unsigned>(params.rows);

    model.bestDropVolts = fast.evaluate(bestCond).minDropVolts;
    model.worstDropVolts = fast.evaluate(worstCond).minDropVolts;
    model.law = ResetLatencyLaw::calibrate(model.bestDropVolts,
                                           model.worstDropVolts,
                                           fastNs, slowNs);
    if (rangeShrink > 1.0)
        model.law = model.law.shrinkDynamicRange(rangeShrink);

    model.ladder =
        WriteTimingTable::build(params, model.law, eval,
                                ContentDim::Wordline, granularity,
                                granularity, granularity);
    model.blp = WriteTimingTable::build(params, model.law, eval,
                                        ContentDim::Bitline,
                                        granularity, granularity,
                                        granularity);
    model.location =
        WriteTimingTable::build(params, model.law, eval,
                                ContentDim::Wordline, granularity,
                                granularity, 1);
    model.power = PowerTable::build(params, eval);
    attachSurfaces(model);
    return model;
}

TimingModel
TimingModel::generateDerived(const CrossbarParams &params,
                             const ResetLatencyLaw &law,
                             unsigned granularity)
{
    TimingModel model;
    model.params = params;
    model.law = law;

    SneakPathModel fast(params);
    ResetEvaluator eval = [&fast](const ResetCondition &c) {
        return fast.evaluate(c);
    };
    model.ladder =
        WriteTimingTable::build(params, law, eval,
                                ContentDim::Wordline, granularity,
                                granularity, granularity);
    model.blp = WriteTimingTable::build(params, law, eval,
                                        ContentDim::Bitline,
                                        granularity, granularity,
                                        granularity);
    model.location =
        WriteTimingTable::build(params, law, eval,
                                ContentDim::Wordline, granularity,
                                granularity, 1);
    model.power = PowerTable::build(params, eval);
    attachSurfaces(model);
    return model;
}

} // namespace ladder
