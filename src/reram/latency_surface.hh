/**
 * @file
 * Dense per-write latency surface: the O(1) hot-path form of a
 * WriteTimingTable. A table lookup performs two divisions and a
 * round-up content bucketing per write; the surface precomputes all
 * three index maps at init — a per-row WL region base, a per-column
 * BL region, and a dense content axis with one entry per possible LRS
 * count — so the per-write cost collapses to two array reads, one
 * multiply-add, and one entry load.
 *
 * The surface is *bit-identical* to its source table by construction:
 * every dense cell is a copy of the table entry the bucket formulas
 * would select, so swapping table lookups for surface lookups cannot
 * change a single simulated latency. `verifyAgainst` re-derives every
 * index map and cell from the table at runtime (the `latency.surface-
 * check=` init gate), and `checkSurfaceError` re-evaluates the circuit
 * at every bucket corner to bound the surface against a reference
 * evaluator (e.g. full MNA) with an explicit relative error budget —
 * the contract test_latency_surface enforces.
 */

#ifndef LADDER_RERAM_LATENCY_SURFACE_HH
#define LADDER_RERAM_LATENCY_SURFACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "timing_tables.hh"

namespace ladder
{

/** One batched surface lookup request. */
struct SurfaceQuery
{
    unsigned wordline = 0;
    unsigned bitline = 0;
    unsigned lrsCount = 0;
};

/** Result of the exact surface-vs-table integrity check. */
struct SurfaceCheckResult
{
    std::size_t cellsChecked = 0;
    std::size_t mismatches = 0;
    /** Largest |surface latency - table latency| seen (ns). */
    double maxAbsErrorNs = 0.0;

    bool ok() const { return cellsChecked > 0 && mismatches == 0; }
};

/** Result of the error-budget check against a reference evaluator. */
struct SurfaceErrorReport
{
    std::size_t cellsChecked = 0;
    std::size_t violations = 0;
    /** Largest relative latency error vs the reference (signed max
     * magnitude; positive = surface slower than reference). */
    double maxRelError = 0.0;
    double budget = 0.0;

    bool ok() const { return cellsChecked > 0 && violations == 0; }
};

/** Dense ⟨wordline, bitline, LRS count⟩ -> TimingEntry surface. */
class LatencySurface
{
  public:
    LatencySurface() = default;

    /** Precompute the dense surface for @p table. */
    static LatencySurface fromTable(const WriteTimingTable &table);

    bool empty() const { return entries_.empty(); }

    /**
     * O(1) lookup at raw indices: @p wordline in [0, rows),
     * @p bitline in [0, cols), @p lrsCount in [0, content max]
     * (larger counts clamp, matching WriteTimingTable::lookup).
     */
    const TimingEntry &
    lookup(unsigned wordline, unsigned bitline,
           unsigned lrsCount) const
    {
        const std::size_t region =
            static_cast<std::size_t>(wlBase_[wordline]) +
            blRegion_[bitline];
        const std::size_t c =
            lrsCount < contentDense_ ? lrsCount : contentDense_ - 1;
        return entries_[region * contentDense_ + c];
    }

    /**
     * Resolve @p count queries into @p out (caller-sized). The loop
     * body is branch-light so the compiler can keep several entry
     * loads in flight; the controller uses this to drain decision
     * batches and the micro benches to measure steady-state lookup
     * cost.
     */
    void lookupBatch(const SurfaceQuery *queries, std::size_t count,
                     TimingEntry *out) const;

    /** Convenience vector form of lookupBatch. */
    std::vector<TimingEntry>
    lookupBatch(const std::vector<SurfaceQuery> &queries) const;

    /**
     * Exact integrity check: re-derive every index map entry and every
     * dense cell from @p table's bucket formulas and compare
     * bit-for-bit. Any mismatch means the surface no longer mirrors
     * the table (memory corruption, or a bucket-formula drift between
     * the two implementations).
     */
    SurfaceCheckResult verifyAgainst(const WriteTimingTable &table) const;

    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }
    /** Dense content entries per region (content max + 1, or 1 for a
     * location-only table). */
    unsigned contentDense() const { return contentDense_; }
    unsigned regionCount() const { return regions_; }
    std::size_t entryCount() const { return entries_.size(); }
    /** Host memory footprint of the precomputed state, in bytes. */
    std::size_t storageBytes() const;

  private:
    unsigned rows_ = 0;
    unsigned cols_ = 0;
    unsigned regions_ = 0;
    unsigned contentDense_ = 1;
    /** Per-wordline WL-bucket index, pre-multiplied by blBuckets. */
    std::vector<std::uint16_t> wlBase_;
    /** Per-bitline BL-bucket index. */
    std::vector<std::uint16_t> blRegion_;
    /** regions_ x contentDense_ dense entries. */
    std::vector<TimingEntry> entries_;
};

/**
 * Error-budget cross-check: for every bucket corner of @p table
 * (the exact operating points the table — and therefore the surface —
 * was generated at), re-evaluate the circuit with @p reference, map
 * the drop through @p law, and flag cells whose table latency differs
 * from the reference latency by more than @p relBudget (relative to
 * the reference). With the generating evaluator as reference this
 * must report zero violations at any budget; with full MNA as
 * reference it bounds the fast-model approximation error.
 */
SurfaceErrorReport checkSurfaceError(const CrossbarParams &params,
                                     const WriteTimingTable &table,
                                     const ResetLatencyLaw &law,
                                     const ResetEvaluator &reference,
                                     double relBudget);

} // namespace ladder

#endif // LADDER_RERAM_LATENCY_SURFACE_HH
