#include "backing_store.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

BackingStore::BackingStore(const MemoryGeometry &geo, bool trackBitlines,
                           double backgroundDensity)
    : geo_(geo),
      map_(geo),
      trackBitlines_(trackBitlines),
      backgroundDensity_(backgroundDensity)
{
    ladder_assert(backgroundDensity >= 0.0 && backgroundDensity <= 1.0,
                  "background density out of range");
    ladder_assert(geo_.channels > 0, "geometry needs >= 1 channel");
    pages_.resize(geo_.channels);
    groupCounters_.resize(geo_.channels);
}

void
BackingStore::setPageInitializer(PageInitializer init)
{
    init_ = std::move(init);
}

PageContent &
BackingStore::page(std::uint64_t pageIndex)
{
    auto &shard = pages_[pageIndex % geo_.channels];
    auto it = shard.find(pageIndex);
    if (it != shard.end())
        return it->second;

    PageContent &content = shard[pageIndex];
    if (init_)
        init_(pageIndex, content);
    // Establish the mat counters from the initial content.
    for (unsigned mat = 0; mat < MemoryGeometry::matsPerGroup; ++mat) {
        unsigned count = 0;
        for (const auto &block : content.blocks)
            count += popcount8(block[mat]);
        content.matCounts[mat] = static_cast<std::uint16_t>(count);
    }
    if (trackBitlines_) {
        // Fold the initial content into the bitline counters.
        BlockLocation loc = map_.decode(pageIndex *
                                        MemoryGeometry::pageBytes);
        auto &counters = groupCounters(loc);
        for (unsigned b = 0; b < MemoryGeometry::blocksPerPage; ++b) {
            const LineData &block = content.blocks[b];
            for (unsigned mat = 0; mat < MemoryGeometry::matsPerGroup;
                 ++mat) {
                std::uint8_t byte = block[mat];
                while (byte) {
                    unsigned bit =
                        static_cast<unsigned>(std::countr_zero(byte));
                    byte = static_cast<std::uint8_t>(byte &
                                                     (byte - 1));
                    ++counters.counts[mat * geo_.matCols + b * 8 +
                                      bit];
                }
            }
        }
    }
    return content;
}

std::uint64_t
BackingStore::matGroupKey(const BlockLocation &loc) const
{
    std::uint64_t key = loc.flatBank(geo_);
    return key * geo_.matGroupsPerBank + loc.matGroup;
}

BackingStore::MatGroupCounters &
BackingStore::groupCounters(const BlockLocation &loc)
{
    auto &shard = groupCounters_[loc.channel];
    auto key = matGroupKey(loc);
    auto it = shard.find(key);
    if (it == shard.end()) {
        auto counters = std::make_unique<MatGroupCounters>();
        // Rows outside the simulated working set are assumed occupied
        // by background data at the configured density.
        auto background = static_cast<std::uint16_t>(
            backgroundDensity_ * static_cast<double>(geo_.matRows));
        counters->counts.assign(
            static_cast<std::size_t>(MemoryGeometry::matsPerGroup) *
                geo_.matCols,
            background);
        it = shard.emplace(key, std::move(counters)).first;
    }
    return *it->second;
}

const LineData &
BackingStore::read(Addr lineAddr)
{
    BlockLocation loc = map_.decode(lineAddr);
    return page(loc.pageIndex).blocks[loc.blockInPage];
}

BitTransitions
BackingStore::write(Addr lineAddr, const LineData &data)
{
    BlockLocation loc = map_.decode(lineAddr);
    PageContent &content = page(loc.pageIndex);
    LineData &block = content.blocks[loc.blockInPage];

    BitTransitions transitions = countTransitions(block, data);
    for (unsigned mat = 0; mat < MemoryGeometry::matsPerGroup; ++mat) {
        int delta = static_cast<int>(popcount8(data[mat])) -
                    static_cast<int>(popcount8(block[mat]));
        content.matCounts[mat] =
            static_cast<std::uint16_t>(content.matCounts[mat] + delta);
    }
    if (trackBitlines_)
        applyBitlineDeltas(loc, block, data);
    block = data;
    return transitions;
}

void
BackingStore::applyBitlineDeltas(const BlockLocation &loc,
                                 const LineData &before,
                                 const LineData &after)
{
    auto &counters = groupCounters(loc);
    const unsigned base = loc.blockInPage * 8;
    for (unsigned mat = 0; mat < MemoryGeometry::matsPerGroup; ++mat) {
        std::uint8_t changed = before[mat] ^ after[mat];
        while (changed) {
            unsigned bit =
                static_cast<unsigned>(std::countr_zero(changed));
            changed = static_cast<std::uint8_t>(changed &
                                                (changed - 1));
            auto &count =
                counters.counts[mat * geo_.matCols + base + bit];
            if (after[mat] & (1u << bit))
                ++count;
            else
                --count;
        }
    }
}

bool
BackingStore::pageResident(std::uint64_t pageIndex) const
{
    return pages_[pageIndex % geo_.channels].count(pageIndex) != 0;
}

std::uint16_t
BackingStore::matLrsCount(std::uint64_t pageIndex, unsigned mat)
{
    ladder_assert(mat < MemoryGeometry::matsPerGroup,
                  "mat %u out of range", mat);
    return page(pageIndex).matCounts[mat];
}

std::uint16_t
BackingStore::maxMatLrsCount(std::uint64_t pageIndex)
{
    const auto &counts = page(pageIndex).matCounts;
    return *std::max_element(counts.begin(), counts.end());
}

std::uint16_t
BackingStore::maxSelectedBitlineLrs(Addr lineAddr)
{
    ladder_assert(trackBitlines_,
                  "bitline tracking disabled in backing store");
    BlockLocation loc = map_.decode(lineAddr);
    // Materialize the page so the counters reflect its content.
    page(loc.pageIndex);
    auto &counters = groupCounters(loc);
    const unsigned base = loc.blockInPage * 8;
    std::uint16_t best = 0;
    for (unsigned mat = 0; mat < MemoryGeometry::matsPerGroup; ++mat)
        for (unsigned bit = 0; bit < 8; ++bit)
            best = std::max(
                best, counters.counts[mat * geo_.matCols + base + bit]);
    return best;
}

bool
BackingStore::flipped(Addr lineAddr)
{
    BlockLocation loc = map_.decode(lineAddr);
    return (page(loc.pageIndex).flippedMask >> loc.blockInPage) & 1;
}

void
BackingStore::setFlipped(Addr lineAddr, bool value)
{
    BlockLocation loc = map_.decode(lineAddr);
    std::uint64_t bit = 1ull << loc.blockInPage;
    auto &mask = page(loc.pageIndex).flippedMask;
    if (value)
        mask |= bit;
    else
        mask &= ~bit;
}

} // namespace ladder
