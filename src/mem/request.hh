/**
 * @file
 * Request/response types exchanged between the cache hierarchy and the
 * memory controller.
 */

#ifndef LADDER_MEM_REQUEST_HH
#define LADDER_MEM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/bitops.hh"
#include "common/types.hh"

namespace ladder
{

/** Why a read transaction exists (paper §3.3: read-type flag). */
enum class ReadKind : unsigned char
{
    Data = 0,     //!< demand read on behalf of the processor
    Metadata = 1, //!< LRS-metadata line fill
    StaleBlock = 2, //!< stale-memory-block read (LADDER-Basic)
};

/** Completion callback for data reads: payload plus completion tick. */
using ReadCallback = std::function<void(const LineData &, Tick)>;

} // namespace ladder

#endif // LADDER_MEM_REQUEST_HH
