/**
 * @file
 * Content-true sparse backing store for the ReRAM main memory.
 *
 * Unlike a conventional latency-only memory model, LADDER's behaviour
 * depends on the actual bits resident in the crossbars, so the store
 * keeps real 64-byte payloads. On top of the payloads it incrementally
 * maintains the two ground-truth LRS statistics the evaluated schemes
 * need:
 *
 *  - per-(page, mat) wordline LRS counts C_j (the exact counters
 *    LADDER-Basic maintains and the Oracle consults), and
 *  - per-(mat group, mat, bitline) LRS counts (what BLP's profiling
 *    circuitry would report).
 *
 * Pages are materialized lazily; an installable initializer provides
 * first-touch content so workloads see realistic resident data.
 */

#ifndef LADDER_MEM_BACKING_STORE_HH
#define LADDER_MEM_BACKING_STORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bitops.hh"
#include "common/types.hh"
#include "reram/geometry.hh"

namespace ladder
{

/** Resident state of one 4KB page. */
struct PageContent
{
    std::array<LineData, MemoryGeometry::blocksPerPage> blocks{};
    /** C_j: LRS count of byte column j across the page's blocks. */
    std::array<std::uint16_t, MemoryGeometry::matsPerGroup> matCounts{};
    /** Flip-N-Write inversion flag per block. */
    std::uint64_t flippedMask = 0;
};

/** Sparse, content-true ReRAM state. */
class BackingStore
{
  public:
    /** Callback that fills a page's blocks at first touch. */
    using PageInitializer =
        std::function<void(std::uint64_t pageIndex, PageContent &)>;

    /**
     * @param geo Module geometry.
     * @param trackBitlines Maintain per-bitline LRS counters (needed by
     *        the BLP scheme; small extra cost per write).
     * @param backgroundDensity Assumed LRS fraction of crossbar rows
     *        not owned by the simulated working set. A bitline spans
     *        all 512 wordlines of a mat; in a real deployment those
     *        rows hold other processes' data, so per-bitline counters
     *        start from density * rows instead of zero. Wordline
     *        (LADDER) counters are unaffected — a wordline belongs
     *        entirely to one simulated page.
     */
    explicit BackingStore(const MemoryGeometry &geo,
                          bool trackBitlines = true,
                          double backgroundDensity = 0.4);

    /** Install the first-touch content generator (optional). */
    void setPageInitializer(PageInitializer init);

    /** Read a block's payload (materializes the page). */
    const LineData &read(Addr lineAddr);

    /**
     * Write a block's payload, updating all LRS statistics.
     *
     * @return The bit transitions performed (for energy/FNW stats).
     */
    BitTransitions write(Addr lineAddr, const LineData &data);

    /** Whether a page has been materialized. */
    bool pageResident(std::uint64_t pageIndex) const;

    /** Exact C_j for one mat of a page. */
    std::uint16_t matLrsCount(std::uint64_t pageIndex, unsigned mat);

    /** Exact C_w = max_j C_j for a page. */
    std::uint16_t maxMatLrsCount(std::uint64_t pageIndex);

    /**
     * Worst per-bitline LRS count among the 512 bitline instances a
     * block write selects (8 bitlines in each of 64 mats).
     * Requires trackBitlines.
     */
    std::uint16_t maxSelectedBitlineLrs(Addr lineAddr);

    /** FNW flag for a block. */
    bool flipped(Addr lineAddr);
    void setFlipped(Addr lineAddr, bool value);

    /** Number of materialized pages. */
    std::size_t
    residentPages() const
    {
        std::size_t total = 0;
        for (const auto &shard : pages_)
            total += shard.size();
        return total;
    }

    const AddressMap &addressMap() const { return map_; }
    const MemoryGeometry &geometry() const { return geo_; }

  private:
    /** Per-mat-group bitline LRS counters (64 mats x cols bitlines). */
    struct MatGroupCounters
    {
        std::vector<std::uint16_t> counts;
    };

    MemoryGeometry geo_;
    AddressMap map_;
    bool trackBitlines_;
    double backgroundDensity_;
    PageInitializer init_;
    /**
     * Page and counter maps are sharded by channel (a 4KB page maps
     * entirely to channel pageIndex % channels, and a mat group lives
     * in exactly one channel's banks), so channel-engine workers touch
     * disjoint shards without locks. Content is keyed identically to
     * the former single maps and no caller iterates them, so sharding
     * is observationally free in legacy mode.
     */
    std::vector<std::unordered_map<std::uint64_t, PageContent>> pages_;
    std::vector<std::unordered_map<std::uint64_t,
                                   std::unique_ptr<MatGroupCounters>>>
        groupCounters_;

    PageContent &page(std::uint64_t pageIndex);
    std::uint64_t matGroupKey(const BlockLocation &loc) const;
    MatGroupCounters &groupCounters(const BlockLocation &loc);
    void applyBitlineDeltas(const BlockLocation &loc,
                            const LineData &before,
                            const LineData &after);
};

} // namespace ladder

#endif // LADDER_MEM_BACKING_STORE_HH
