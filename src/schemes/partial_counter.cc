#include "partial_counter.hh"

#include "common/log.hh"

namespace ladder
{

unsigned
encodePartial2(unsigned maxPopcount)
{
    ladder_assert(maxPopcount <= 8, "byte popcount > 8");
    if (maxPopcount <= 1)
        return 0;
    if (maxPopcount <= 3)
        return 1;
    if (maxPopcount <= 5)
        return 2;
    return 3;
}

unsigned
decodePartial2(unsigned code)
{
    static const unsigned decode[4] = {1, 3, 5, 8};
    ladder_assert(code < 4, "2-bit code out of range");
    return decode[code];
}

unsigned
encodePartial1(unsigned maxPopcount)
{
    ladder_assert(maxPopcount <= 8, "byte popcount > 8");
    return maxPopcount <= 5 ? 0 : 1;
}

unsigned
decodePartial1(unsigned code)
{
    ladder_assert(code < 2, "1-bit code out of range");
    return code == 0 ? 5 : 8;
}

std::uint8_t
packPartialCounters2(const LineData &data)
{
    std::uint8_t packed = 0;
    const unsigned span = lineBytes / estSubgroups; // 16 bytes
    for (unsigned s = 0; s < estSubgroups; ++s) {
        unsigned worst =
            maxBytePopcount(data, s * span, (s + 1) * span);
        packed = static_cast<std::uint8_t>(
            packed | (encodePartial2(worst) << (2 * s)));
    }
    return packed;
}

std::uint8_t
packPartialCounters1(const LineData &data)
{
    std::uint8_t packed = 0;
    const unsigned span = lineBytes / hybridLowSubgroups; // 32 bytes
    for (unsigned s = 0; s < hybridLowSubgroups; ++s) {
        unsigned worst =
            maxBytePopcount(data, s * span, (s + 1) * span);
        packed = static_cast<std::uint8_t>(
            packed | (encodePartial1(worst) << s));
    }
    return packed;
}

unsigned
estimateCw2(const std::array<std::uint8_t, 64> &packed)
{
    unsigned best = 0;
    for (unsigned s = 0; s < estSubgroups; ++s) {
        unsigned sum = 0;
        for (std::uint8_t byte : packed)
            sum += decodePartial2((byte >> (2 * s)) & 0x3);
        best = sum > best ? sum : best;
    }
    return best;
}

unsigned
estimateCw1(const std::array<std::uint8_t, 64> &packed)
{
    unsigned best = 0;
    for (unsigned s = 0; s < hybridLowSubgroups; ++s) {
        unsigned sum = 0;
        for (std::uint8_t byte : packed)
            sum += decodePartial1((byte >> s) & 0x1);
        best = sum > best ? sum : best;
    }
    return best;
}

} // namespace ladder
