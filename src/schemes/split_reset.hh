/**
 * @file
 * Split-reset write scheduling (Xu et al., HPCA'15; paper §6.1): one
 * RESET is divided into two half-RESET phases that each write at most
 * 4 bits per mat. Fewer concurrently selected cells draw less sneak
 * current, so each phase is faster than a full 8-bit RESET; lines that
 * FPC-compress to half size need only a single phase.
 */

#ifndef LADDER_SCHEMES_SPLIT_RESET_HH
#define LADDER_SCHEMES_SPLIT_RESET_HH

#include <vector>

#include "common/stats.hh"
#include "ctrl/controller.hh"
#include "ctrl/scheme.hh"
#include "reram/timing_tables.hh"

namespace ladder
{

/** Split-reset with FPC-gated single-phase writes. */
class SplitResetScheme : public WriteScheme
{
  public:
    /**
     * @param params Crossbar parameters of the host timing model; a
     *        dedicated 4-selected-cell location table is generated.
     * @param granularity Timing-table granularity (8 in the paper).
     */
    explicit SplitResetScheme(const CrossbarParams &params,
                              unsigned granularity = 8);

    std::string name() const override { return "Split-reset"; }
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    /**
     * The second half-RESET phase of an incompressible line is pure
     * scheme overhead: location blame covers one phase at the actual
     * (WL, BL), content blame is zero (phases depend on the written
     * data's compressibility, not the array's LRS state).
     */
    WriteBlameHint attributeWrite(
        const MemoryController &ctrl, const WriteEntry &entry,
        const WriteDecision &decision) const override;
    void setChannelShards(unsigned channels) override;
    void foldChannelShards() override;

    StatScalar compressibleWrites;
    StatScalar incompressibleWrites;

  private:
    const TimingModel &halfModel_;
    /** Per-channel count shards (engine mode only; empty = legacy). */
    std::vector<StatScalar> compressibleShards_;
    std::vector<StatScalar> incompressibleShards_;
};

} // namespace ladder

#endif // LADDER_SCHEMES_SPLIT_RESET_HH
