/**
 * @file
 * The three LADDER designs (paper §3.3, §4):
 *
 *  - LadderBasicScheme: exact 10-bit per-mat LRS counters; every data
 *    write triggers a stale-memory-block (SMB) read so counter deltas
 *    can be computed, plus fills of the two metadata lines per page.
 *  - LadderEstScheme: 2-bit partial counters (4 subgroups) eliminate
 *    SMB reads; one metadata line covers a 4KB page; optional
 *    intra-line bit-level shifting de-clusters '1'-heavy bytes.
 *  - LadderHybridScheme: multi-granularity counters — pages on rows
 *    near the write driver (insensitive to content) downgrade to two
 *    1-bit counters, packing 4 pages per metadata line.
 */

#ifndef LADDER_SCHEMES_LADDER_SCHEMES_HH
#define LADDER_SCHEMES_LADDER_SCHEMES_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "ctrl/controller.hh"
#include "ctrl/scheme.hh"
#include "schemes/metadata_layout.hh"

namespace ladder
{

/** LADDER-Basic: accurate counting with SMB reads. */
class LadderBasicScheme : public WriteScheme
{
  public:
    explicit LadderBasicScheme(std::shared_ptr<MetadataLayout> layout);

    std::string name() const override { return "LADDER-Basic"; }
    void onWriteEnqueued(MemoryController &ctrl,
                         WriteEntry &entry) override;
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    void onWriteComplete(MemoryController &ctrl,
                         WriteEntry &entry) override;
    WriteBlameHint attributeWrite(
        const MemoryController &ctrl, const WriteEntry &entry,
        const WriteDecision &decision) const override;
    bool constrainedFnw() const override { return true; }
    void setChannelShards(unsigned channels) override;
    void foldChannelShards() override;

    /** Accurate C_w sampled per write (Fig. 15 reference series). */
    StatAverage accurateCw;

  private:
    std::shared_ptr<MetadataLayout> layout_;
    /** Per-channel sample shards (engine mode only; empty = legacy,
     *  sampling straight into accurateCw). */
    std::vector<StatAverage> accurateCwShards_;
};

/** LADDER-Est: partial-counter estimation + bit-level shifting. */
class LadderEstScheme : public WriteScheme
{
  public:
    /**
     * @param layout Metadata region layout.
     * @param shifting Enable intra-line bit-level shifting.
     */
    LadderEstScheme(std::shared_ptr<MetadataLayout> layout,
                    bool shifting = true);

    std::string name() const override { return "LADDER-Est"; }
    void onWriteEnqueued(MemoryController &ctrl,
                         WriteEntry &entry) override;
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    LineData encodeData(Addr addr, const LineData &data) const override;
    LineData decodeData(Addr addr, const LineData &data) const override;
    /**
     * Shared by LADDER-Est and LADDER-Hybrid (both dispatch through
     * the ladder model at the entry's location). contentNs is the
     * decided latency itself, so estimation conservatism — the
     * partial counters rounding C_w up — lands in the content
     * penalty, which is exactly where the estimated-vs-oracle
     * latency gap belongs.
     */
    WriteBlameHint attributeWrite(
        const MemoryController &ctrl, const WriteEntry &entry,
        const WriteDecision &decision) const override;
    bool constrainedFnw() const override { return true; }
    void setChannelShards(unsigned channels) override;
    void foldChannelShards() override;

    /** Signed difference (estimated - accurate) per write (Fig. 15). */
    StatAverage counterDiff;
    /** Estimated C_w sampled per write. */
    StatAverage estimatedCw;

    /**
     * Lazy LRS-metadata correction after an abrupt power loss (paper
     * §7): dirty metadata lines may not have been persisted, so every
     * known counter is conservatively overwritten with its maximum.
     * Subsequent writes re-tighten the estimates block by block;
     * correctness (sufficient latency) holds throughout.
     */
    virtual void crashRecover();

  protected:
    using ShadowMap =
        std::unordered_map<std::uint64_t, std::array<std::uint8_t, 64>>;

    std::shared_ptr<MetadataLayout> layout_;
    bool shifting_;

    /**
     * Shadow contents of the per-page metadata lines, sharded by page
     * channel (page % shard count) so engine workers touch disjoint
     * maps. One shard in legacy mode; first-touch derivation depends
     * only on the page content, so shard count never changes values.
     */
    std::vector<ShadowMap> shadow_{1};
    /** Per-channel sample shards (engine mode only; empty = legacy). */
    std::vector<StatAverage> counterDiffShards_;
    std::vector<StatAverage> estimatedCwShards_;

    ShadowMap &
    shadowShard(std::uint64_t page)
    {
        return shadow_[page % shadow_.size()];
    }
    StatAverage &
    estimatedCwStat(unsigned channel)
    {
        return estimatedCwShards_.empty() ? estimatedCw
                                          : estimatedCwShards_[channel];
    }

    std::array<std::uint8_t, 64> &pageShadow(MemoryController &ctrl,
                                             std::uint64_t page);
    unsigned shiftAmount(Addr lineAddr) const;
};

/** LADDER-Hybrid: Est plus low-precision counters for near rows. */
class LadderHybridScheme : public LadderEstScheme
{
  public:
    LadderHybridScheme(std::shared_ptr<MetadataLayout> layout,
                       bool shifting = true, unsigned lowRows = 128);

    std::string name() const override { return "LADDER-Hybrid"; }
    void onWriteEnqueued(MemoryController &ctrl,
                         WriteEntry &entry) override;
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    void crashRecover() override;
    void setChannelShards(unsigned channels) override;

    unsigned lowRows() const { return lowRows_; }

  private:
    unsigned lowRows_;
    /** Shadow of 1-bit metadata, keyed by page (sharded like the
     *  2-bit shadow in the base class). */
    std::vector<ShadowMap> lowShadow_{1};

    ShadowMap &
    lowShadowShard(std::uint64_t page)
    {
        return lowShadow_[page % lowShadow_.size()];
    }

    bool lowPrecision(const BlockLocation &loc) const;
    std::array<std::uint8_t, 64> &lowPageShadow(MemoryController &ctrl,
                                                std::uint64_t page);
};

} // namespace ladder

#endif // LADDER_SCHEMES_LADDER_SCHEMES_HH
