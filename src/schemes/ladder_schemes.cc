#include "ladder_schemes.hh"

#include "common/log.hh"
#include "schemes/partial_counter.hh"

namespace ladder
{

// --------------------------------------------------------------------
// LADDER-Basic
// --------------------------------------------------------------------

LadderBasicScheme::LadderBasicScheme(
    std::shared_ptr<MetadataLayout> layout)
    : layout_(std::move(layout))
{
}

void
LadderBasicScheme::onWriteEnqueued(MemoryController &ctrl,
                                   WriteEntry &entry)
{
    (void)ctrl;
    entry.needsSmb = true;
    entry.metaAddrs.push_back(
        layout_->basicLine(entry.loc.pageIndex, 0));
    entry.metaAddrs.push_back(
        layout_->basicLine(entry.loc.pageIndex, 1));
}

WriteDecision
LadderBasicScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                               const LineData &finalData)
{
    (void)finalData;
    // The maintained counters exactly track the array contents, so the
    // pre-write C_w equals the backing store's ground truth (scanned
    // once per dispatch by the controller).
    unsigned cw = entry.dispatchCw;
    if (accurateCwShards_.empty())
        accurateCw.sample(cw);
    else
        accurateCwShards_[entry.loc.channel].sample(cw);
    const TimingEntry &t = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(), cw);
    return {t.latencyNs, t.powerMw};
}

WriteBlameHint
LadderBasicScheme::attributeWrite(const MemoryController &ctrl,
                                  const WriteEntry &entry,
                                  const WriteDecision &decision) const
{
    // Content penalty isolated by re-reading the same (WL, BL) cell
    // at zero LRS; the counters are exact, so there is no estimation
    // slack to account for.
    const TimingEntry &bestContent = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(), 0);
    return {ctrl.timing().ladder.bestLatencyNs(),
            bestContent.latencyNs, decision.latencyNs};
}

void
LadderBasicScheme::onWriteComplete(MemoryController &ctrl,
                                   WriteEntry &entry)
{
    // Counter deltas (new data vs SMB) have been applied. Only the
    // half-lines whose counters actually changed become dirty: half 0
    // stores the counters of mats 0..31, half 1 those of mats 32..63.
    for (unsigned half = 0; half < 2; ++half) {
        bool changed = false;
        for (unsigned mat = half * 32; mat < (half + 1) * 32; ++mat) {
            if (entry.smbData[mat] != entry.physData[mat]) {
                changed = true;
                break;
            }
        }
        if (!changed)
            continue;
        Addr metaAddr = entry.metaAddrs[half];
        if (ctrl.metadataCache().contains(metaAddr))
            ctrl.metadataCache().markDirty(metaAddr);
    }
}

void
LadderBasicScheme::setChannelShards(unsigned channels)
{
    ladder_assert(channels > 0, "need >= 1 channel shard");
    accurateCwShards_.assign(channels, StatAverage{});
}

void
LadderBasicScheme::foldChannelShards()
{
    for (auto &shard : accurateCwShards_) {
        accurateCw.mergeFrom(shard);
        shard = StatAverage{};
    }
}

// --------------------------------------------------------------------
// LADDER-Est
// --------------------------------------------------------------------

LadderEstScheme::LadderEstScheme(std::shared_ptr<MetadataLayout> layout,
                                 bool shifting)
    : layout_(std::move(layout)), shifting_(shifting)
{
}

unsigned
LadderEstScheme::shiftAmount(Addr lineAddr) const
{
    // Distinct per block position within the wordline so repetitive
    // patterns across consecutive blocks land in different mats.
    return static_cast<unsigned>((lineAddr / lineBytes) %
                                 MemoryGeometry::blocksPerPage);
}

LineData
LadderEstScheme::encodeData(Addr addr, const LineData &data) const
{
    if (!shifting_)
        return data;
    // Bit-level shifting (paper §4.1): within each 8-byte chip group,
    // transpose the 8x8 bit matrix so every bit of a clustered byte
    // lands in a different mat, then rotate by a per-block offset so
    // the repeated patterns of consecutive blocks in a page are
    // misaligned across the mats.
    LineData out = data;
    unsigned amount = shiftAmount(addr);
    for (unsigned g = 0; g < lineBytes / 8; ++g) {
        transposeGroup(out, g);
        rotateGroupLeft(out, g, amount);
    }
    return out;
}

LineData
LadderEstScheme::decodeData(Addr addr, const LineData &data) const
{
    if (!shifting_)
        return data;
    LineData out = data;
    unsigned amount = shiftAmount(addr);
    for (unsigned g = 0; g < lineBytes / 8; ++g) {
        rotateGroupRight(out, g, amount);
        transposeGroup(out, g);
    }
    return out;
}

std::array<std::uint8_t, 64> &
LadderEstScheme::pageShadow(MemoryController &ctrl, std::uint64_t page)
{
    ShadowMap &shard = shadowShard(page);
    auto it = shard.find(page);
    if (it != shard.end())
        return it->second;
    // First touch: derive the packed counters from the resident
    // content, as if the metadata had been maintained since boot.
    auto &packed = shard[page];
    for (unsigned b = 0; b < MemoryGeometry::blocksPerPage; ++b) {
        Addr blockAddr = page * MemoryGeometry::pageBytes +
                         static_cast<Addr>(b) * lineBytes;
        packed[b] = packPartialCounters2(ctrl.store().read(blockAddr));
    }
    return packed;
}

void
LadderEstScheme::onWriteEnqueued(MemoryController &ctrl,
                                 WriteEntry &entry)
{
    (void)ctrl;
    entry.metaAddrs.push_back(layout_->estLine(entry.loc.pageIndex));
}

WriteDecision
LadderEstScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                             const LineData &finalData)
{
    auto &packed = pageShadow(ctrl, entry.loc.pageIndex);
    unsigned cwEst = estimateCw2(packed);
    estimatedCwStat(entry.loc.channel).sample(cwEst);
    unsigned cwTrue = entry.dispatchCw;
    StatAverage &diff = counterDiffShards_.empty()
                            ? counterDiff
                            : counterDiffShards_[entry.loc.channel];
    diff.sample(static_cast<double>(cwEst) -
                static_cast<double>(cwTrue));

    const TimingEntry &t = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(), cwEst);

    // Update the partial counters for the written variant and dirty
    // the metadata line (it is pinned by this entry's sharer).
    packed[entry.loc.blockInPage] = packPartialCounters2(finalData);
    ladder_assert(!entry.metaAddrs.empty(),
                  "Est write without metadata line");
    ctrl.metadataCache().markDirty(entry.metaAddrs[0]);
    return {t.latencyNs, t.powerMw};
}

WriteBlameHint
LadderEstScheme::attributeWrite(const MemoryController &ctrl,
                                const WriteEntry &entry,
                                const WriteDecision &decision) const
{
    // decideWrite already advanced the shadow counters, so the
    // estimated C_w cannot be replayed here; anchoring contentNs at
    // the decided latency folds estimation conservatism into the
    // content penalty (see the header comment). Inherited unchanged
    // by LADDER-Hybrid.
    const TimingEntry &bestContent = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(), 0);
    return {ctrl.timing().ladder.bestLatencyNs(),
            bestContent.latencyNs, decision.latencyNs};
}

void
LadderEstScheme::crashRecover()
{
    // Paper §7: conservatively overwrite all (possibly stale)
    // metadata with maximum counter values; later writes gradually
    // re-tighten them.
    for (auto &shard : shadow_)
        for (auto &entry : shard)
            entry.second.fill(0xff);
}

void
LadderEstScheme::setChannelShards(unsigned channels)
{
    ladder_assert(channels > 0, "need >= 1 channel shard");
    for (const auto &shard : shadow_)
        ladder_assert(shard.empty(),
                      "resharding a populated shadow map");
    shadow_.assign(channels, ShadowMap{});
    counterDiffShards_.assign(channels, StatAverage{});
    estimatedCwShards_.assign(channels, StatAverage{});
}

void
LadderEstScheme::foldChannelShards()
{
    for (auto &shard : counterDiffShards_) {
        counterDiff.mergeFrom(shard);
        shard = StatAverage{};
    }
    for (auto &shard : estimatedCwShards_) {
        estimatedCw.mergeFrom(shard);
        shard = StatAverage{};
    }
}

// --------------------------------------------------------------------
// LADDER-Hybrid
// --------------------------------------------------------------------

LadderHybridScheme::LadderHybridScheme(
    std::shared_ptr<MetadataLayout> layout, bool shifting,
    unsigned lowRows)
    : LadderEstScheme(std::move(layout), shifting), lowRows_(lowRows)
{
}

void
LadderHybridScheme::crashRecover()
{
    LadderEstScheme::crashRecover();
    for (auto &shard : lowShadow_)
        for (auto &entry : shard)
            entry.second.fill(0x03);
}

void
LadderHybridScheme::setChannelShards(unsigned channels)
{
    LadderEstScheme::setChannelShards(channels);
    for (const auto &shard : lowShadow_)
        ladder_assert(shard.empty(),
                      "resharding a populated shadow map");
    lowShadow_.assign(channels, ShadowMap{});
}

bool
LadderHybridScheme::lowPrecision(const BlockLocation &loc) const
{
    // Rows near the write driver (low index) see little IR drop and
    // are insensitive to content: 1-bit counters suffice.
    return loc.wordline < lowRows_;
}

std::array<std::uint8_t, 64> &
LadderHybridScheme::lowPageShadow(MemoryController &ctrl,
                                  std::uint64_t page)
{
    ShadowMap &shard = lowShadowShard(page);
    auto it = shard.find(page);
    if (it != shard.end())
        return it->second;
    auto &packed = shard[page];
    for (unsigned b = 0; b < MemoryGeometry::blocksPerPage; ++b) {
        Addr blockAddr = page * MemoryGeometry::pageBytes +
                         static_cast<Addr>(b) * lineBytes;
        packed[b] = packPartialCounters1(ctrl.store().read(blockAddr));
    }
    return packed;
}

void
LadderHybridScheme::onWriteEnqueued(MemoryController &ctrl,
                                    WriteEntry &entry)
{
    (void)ctrl;
    if (lowPrecision(entry.loc))
        entry.metaAddrs.push_back(layout_->hybridLowLine(entry.loc));
    else
        entry.metaAddrs.push_back(
            layout_->estLine(entry.loc.pageIndex));
}

WriteDecision
LadderHybridScheme::decideWrite(MemoryController &ctrl,
                                WriteEntry &entry,
                                const LineData &finalData)
{
    if (!lowPrecision(entry.loc))
        return LadderEstScheme::decideWrite(ctrl, entry, finalData);

    auto &packed = lowPageShadow(ctrl, entry.loc.pageIndex);
    unsigned cwEst = estimateCw1(packed);
    estimatedCwStat(entry.loc.channel).sample(cwEst);
    const TimingEntry &t = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(), cwEst);

    packed[entry.loc.blockInPage] = packPartialCounters1(finalData);
    ladder_assert(!entry.metaAddrs.empty(),
                  "Hybrid write without metadata line");
    ctrl.metadataCache().markDirty(entry.metaAddrs[0]);
    return {t.latencyNs, t.powerMw};
}

} // namespace ladder
