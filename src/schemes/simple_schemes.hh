/**
 * @file
 * The metadata-free write schemes: the worst-case baseline, the
 * location-only scheme (Fig. 2 motivation), the Oracle (perfect
 * wordline-content knowledge, paper §6.1), and BLP (bitline-pattern
 * profiling circuitry in the memory devices, Wen et al. TCAD'19).
 */

#ifndef LADDER_SCHEMES_SIMPLE_SCHEMES_HH
#define LADDER_SCHEMES_SIMPLE_SCHEMES_HH

#include "ctrl/controller.hh"
#include "ctrl/scheme.hh"

namespace ladder
{

/** Fixed pessimistic latency: every write pays the table worst case. */
class BaselineScheme : public WriteScheme
{
  public:
    std::string name() const override { return "baseline"; }
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
};

/** Location-aware only: content worst-cased. */
class LocationScheme : public WriteScheme
{
  public:
    std::string name() const override { return "location"; }
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    WriteBlameHint attributeWrite(
        const MemoryController &ctrl, const WriteEntry &entry,
        const WriteDecision &decision) const override;
};

/**
 * Oracle: the data/location-aware latency model evaluated with the
 * exact per-mat wordline LRS counters, free of any metadata traffic.
 */
class OracleScheme : public WriteScheme
{
  public:
    std::string name() const override { return "oracle"; }
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    WriteBlameHint attributeWrite(
        const MemoryController &ctrl, const WriteEntry &entry,
        const WriteDecision &decision) const override;
};

/**
 * BLP: in-memory profiling circuitry reports exact bitline LRS
 * counts; the wordline content is worst-cased.
 */
class BlpScheme : public WriteScheme
{
  public:
    std::string name() const override { return "BLP"; }
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override;
    WriteBlameHint attributeWrite(
        const MemoryController &ctrl, const WriteEntry &entry,
        const WriteDecision &decision) const override;
};

} // namespace ladder

#endif // LADDER_SCHEMES_SIMPLE_SCHEMES_HH
