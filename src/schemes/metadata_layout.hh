/**
 * @file
 * Address layout of the reserved LRS-metadata region (paper §3.3):
 * the host pre-allocates a physical range hidden from the OS; the
 * controller computes a data line's metadata line address from its
 * (remapped) physical location.
 *
 * Storage cost per 4KB data page:
 *  - Basic: 64 x 10-bit exact counters = 80B = 2 lines (3.12%)
 *  - Est: 64 x 8-bit packed partial counters = 1 line (1.56%)
 *  - Hybrid: Est lines for far rows, 1 line per 4 near (low-precision)
 *    pages (0.97% with 128 low rows)
 */

#ifndef LADDER_SCHEMES_METADATA_LAYOUT_HH
#define LADDER_SCHEMES_METADATA_LAYOUT_HH

#include <cstdint>

#include "common/types.hh"
#include "reram/geometry.hh"

namespace ladder
{

/** Metadata region addressing for all LADDER variants. */
class MetadataLayout
{
  public:
    /**
     * @param geo Module geometry.
     * @param dataPages Pages exposed to the system as regular memory;
     *        everything above is reserved for metadata.
     */
    MetadataLayout(const MemoryGeometry &geo, std::uint64_t dataPages);

    std::uint64_t dataPages() const { return dataPages_; }
    /** First byte of the reserved region. */
    Addr reservedBase() const { return reservedBase_; }

    /** Basic: the two metadata lines of a data page. */
    Addr basicLine(std::uint64_t page, unsigned half) const;

    /** Est (and Hybrid far rows): the single metadata line of a page. */
    Addr estLine(std::uint64_t page) const;

    /**
     * Hybrid low-precision: the metadata line shared by the group of
     * 4 pages on adjacent wordlines of the same mat group.
     */
    Addr hybridLowLine(const BlockLocation &loc) const;

    /** Whether an address falls inside the reserved region. */
    bool
    isMetadataAddr(Addr addr) const
    {
        return addr >= reservedBase_;
    }

    /** Storage overhead fractions (for the §6.3 report). */
    double basicOverhead() const { return 128.0 / 4096.0; }
    double estOverhead() const { return 64.0 / 4096.0; }
    double hybridOverhead(unsigned lowRows) const;

  private:
    MemoryGeometry geo_;
    AddressMap map_;
    std::uint64_t dataPages_;
    Addr reservedBase_;
    Addr hybridLowBase_;
};

} // namespace ladder

#endif // LADDER_SCHEMES_METADATA_LAYOUT_HH
