/**
 * @file
 * Construction of write schemes by name; the single place benches and
 * examples use to instantiate the evaluated designs.
 */

#ifndef LADDER_SCHEMES_FACTORY_HH
#define LADDER_SCHEMES_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "ctrl/scheme.hh"
#include "reram/timing_tables.hh"
#include "schemes/metadata_layout.hh"

namespace ladder
{

/** The evaluated write schemes (paper §6.1). */
enum class SchemeKind
{
    Baseline,
    Location,
    SplitReset,
    Blp,
    LadderBasic,
    LadderEst,
    LadderEstNoShift, //!< Fig. 15a ablation
    LadderHybrid,
    Oracle,
};

/** Options forwarded to scheme constructors. */
struct SchemeOptions
{
    unsigned tableGranularity = 8;
    unsigned hybridLowRows = 128;
    bool shifting = true;
};

/** All kinds in the paper's presentation order. */
std::vector<SchemeKind> allSchemeKinds();

/** Display name ("LADDER-Est", ...). */
std::string schemeKindName(SchemeKind kind);

/** Parse a display name back to a kind (fatal on unknown). */
SchemeKind schemeKindFromName(const std::string &name);

/**
 * Instantiate a scheme.
 *
 * @param kind Which design.
 * @param params Crossbar parameters (Split-reset derives its
 *        half-RESET tables from them).
 * @param layout Metadata layout (used by the LADDER variants).
 * @param opts Tuning knobs.
 */
std::shared_ptr<WriteScheme>
makeScheme(SchemeKind kind, const CrossbarParams &params,
           std::shared_ptr<MetadataLayout> layout,
           const SchemeOptions &opts = {});

} // namespace ladder

#endif // LADDER_SCHEMES_FACTORY_HH
