/**
 * @file
 * LADDER's partial-counter machinery (paper §4.1, Eq. 1-2, Fig. 7/10).
 *
 * For a block, the partial counter of subgroup j is the maximum
 * per-byte popcount over the 16 bytes (mats) the subgroup covers,
 * quantized to 2 bits. Summing the decoded partial counters of all 64
 * blocks of a page per subgroup upper-bounds that subgroup's worst
 * wordline LRS count (Eq. 2); the max over subgroups upper-bounds
 * C_w. The multi-granularity (Hybrid) design swaps in two 1-bit
 * counters over 32-byte subgroups for write-driver-adjacent rows.
 */

#ifndef LADDER_SCHEMES_PARTIAL_COUNTER_HH
#define LADDER_SCHEMES_PARTIAL_COUNTER_HH

#include <array>
#include <cstdint>

#include "common/bitops.hh"

namespace ladder
{

/** Number of 2-bit subgroups per block in the Est design. */
constexpr unsigned estSubgroups = 4;
/** Number of 1-bit subgroups per block in the Hybrid low design. */
constexpr unsigned hybridLowSubgroups = 2;

/** Quantize a worst-byte popcount (0..8) to a 2-bit code. */
unsigned encodePartial2(unsigned maxPopcount);
/** Conservative decode of a 2-bit code: 1, 3, 5, 8. */
unsigned decodePartial2(unsigned code);

/** Quantize a worst-byte popcount (0..8) to a 1-bit code. */
unsigned encodePartial1(unsigned maxPopcount);
/** Conservative decode of a 1-bit code: 5 or 8. */
unsigned decodePartial1(unsigned code);

/**
 * Pack the four 2-bit partial counters of a block into one byte
 * (subgroup 0 in bits [1:0], ... subgroup 3 in bits [7:6]).
 */
std::uint8_t packPartialCounters2(const LineData &data);

/**
 * Pack the two 1-bit partial counters of a block into bits [1:0].
 */
std::uint8_t packPartialCounters1(const LineData &data);

/**
 * Estimated C_w for a page from 64 packed 2-bit counter bytes:
 * per-subgroup sums of decoded counters, max across subgroups.
 */
unsigned estimateCw2(const std::array<std::uint8_t, 64> &packed);

/** Same for the 1-bit encoding. */
unsigned estimateCw1(const std::array<std::uint8_t, 64> &packed);

} // namespace ladder

#endif // LADDER_SCHEMES_PARTIAL_COUNTER_HH
