#include "factory.hh"

#include "common/log.hh"
#include "schemes/ladder_schemes.hh"
#include "schemes/simple_schemes.hh"
#include "schemes/split_reset.hh"

namespace ladder
{

std::vector<SchemeKind>
allSchemeKinds()
{
    return {SchemeKind::Baseline,    SchemeKind::SplitReset,
            SchemeKind::Blp,         SchemeKind::LadderBasic,
            SchemeKind::LadderEst,   SchemeKind::LadderHybrid,
            SchemeKind::Oracle};
}

std::string
schemeKindName(SchemeKind kind)
{
    switch (kind) {
      case SchemeKind::Baseline: return "baseline";
      case SchemeKind::Location: return "location";
      case SchemeKind::SplitReset: return "Split-reset";
      case SchemeKind::Blp: return "BLP";
      case SchemeKind::LadderBasic: return "LADDER-Basic";
      case SchemeKind::LadderEst: return "LADDER-Est";
      case SchemeKind::LadderEstNoShift: return "LADDER-Est-noshift";
      case SchemeKind::LadderHybrid: return "LADDER-Hybrid";
      case SchemeKind::Oracle: return "Oracle";
    }
    panic("unknown scheme kind");
}

SchemeKind
schemeKindFromName(const std::string &name)
{
    for (SchemeKind kind :
         {SchemeKind::Baseline, SchemeKind::Location,
          SchemeKind::SplitReset, SchemeKind::Blp,
          SchemeKind::LadderBasic, SchemeKind::LadderEst,
          SchemeKind::LadderEstNoShift, SchemeKind::LadderHybrid,
          SchemeKind::Oracle}) {
        if (schemeKindName(kind) == name)
            return kind;
    }
    fatal("unknown scheme name '%s'", name.c_str());
}

std::shared_ptr<WriteScheme>
makeScheme(SchemeKind kind, const CrossbarParams &params,
           std::shared_ptr<MetadataLayout> layout,
           const SchemeOptions &opts)
{
    switch (kind) {
      case SchemeKind::Baseline:
        return std::make_shared<BaselineScheme>();
      case SchemeKind::Location:
        return std::make_shared<LocationScheme>();
      case SchemeKind::SplitReset:
        return std::make_shared<SplitResetScheme>(
            params, opts.tableGranularity);
      case SchemeKind::Blp:
        return std::make_shared<BlpScheme>();
      case SchemeKind::LadderBasic:
        return std::make_shared<LadderBasicScheme>(layout);
      case SchemeKind::LadderEst:
        return std::make_shared<LadderEstScheme>(layout,
                                                 opts.shifting);
      case SchemeKind::LadderEstNoShift:
        return std::make_shared<LadderEstScheme>(layout, false);
      case SchemeKind::LadderHybrid:
        return std::make_shared<LadderHybridScheme>(
            layout, opts.shifting, opts.hybridLowRows);
      case SchemeKind::Oracle:
        return std::make_shared<OracleScheme>();
    }
    panic("unknown scheme kind");
}

} // namespace ladder
