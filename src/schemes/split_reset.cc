#include "split_reset.hh"

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "reram/latency_surface.hh"
#include "schemes/fpc.hh"

namespace ladder
{

namespace
{

/**
 * Half-RESET tables: 4 selected cells per mat evaluated under the
 * *reference* (8-cell) latency law, memoized per granularity.
 */
const TimingModel &
cachedHalfModel(const CrossbarParams &params, unsigned granularity)
{
    // Taken before the cachedTimingModel lock (never the other way
    // round), so concurrent SplitReset System builds cannot deadlock
    // or double-generate.
    static std::mutex cacheMutex;
    static std::vector<std::pair<unsigned, std::unique_ptr<TimingModel>>>
        cache;
    std::lock_guard<std::mutex> lock(cacheMutex);
    for (const auto &entry : cache) {
        if (entry.first == granularity)
            return *entry.second;
    }
    const TimingModel &full = cachedTimingModel(params, granularity);
    CrossbarParams half = params;
    half.selectedCells = params.selectedCells / 2;
    cache.emplace_back(granularity,
                       std::make_unique<TimingModel>(
                           TimingModel::generateDerived(
                               half, full.law, granularity)));
    return *cache.back().second;
}

} // anonymous namespace

SplitResetScheme::SplitResetScheme(const CrossbarParams &params,
                                   unsigned granularity)
    : halfModel_(cachedHalfModel(params, granularity))
{
}

WriteDecision
SplitResetScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData)
{
    (void)finalData;
    // Compression is decided on the logical data the processor sent.
    bool compressible = fpcCompressible(entry.data);
    if (compressible)
        ++(compressibleShards_.empty()
               ? compressibleWrites
               : compressibleShards_[entry.loc.channel]);
    else
        ++(incompressibleShards_.empty()
               ? incompressibleWrites
               : incompressibleShards_[entry.loc.channel]);

    // The half-RESET model carries its own dense surface; honour the
    // controller's surface switch so differential runs stay exact.
    const TimingEntry &phase =
        ctrl.surfaceEnabled() && halfModel_.locationSurface
            ? halfModel_.locationSurface->lookup(
                  entry.loc.wordline, entry.loc.worstBitline(), 0)
            : halfModel_.location.lookup(
                  entry.loc.wordline, entry.loc.worstBitline(), 0);
    unsigned phases = compressible ? 1 : 2;
    // Each half-RESET phase drives half the selected cells.
    return {phase.latencyNs * phases, phase.powerMw, 0.6};
}

WriteBlameHint
SplitResetScheme::attributeWrite(const MemoryController &ctrl,
                                 const WriteEntry &entry,
                                 const WriteDecision &decision) const
{
    // Re-derive the single-phase latency exactly as decideWrite did;
    // the remainder of the decided latency (the second phase, when
    // the line is incompressible) is scheme overhead.
    const TimingEntry &phase =
        ctrl.surfaceEnabled() && halfModel_.locationSurface
            ? halfModel_.locationSurface->lookup(
                  entry.loc.wordline, entry.loc.worstBitline(), 0)
            : halfModel_.location.lookup(
                  entry.loc.wordline, entry.loc.worstBitline(), 0);
    double singlePhaseNs =
        phase.latencyNs < decision.latencyNs ? phase.latencyNs
                                             : decision.latencyNs;
    return {halfModel_.location.bestLatencyNs(), singlePhaseNs,
            singlePhaseNs};
}

void
SplitResetScheme::setChannelShards(unsigned channels)
{
    compressibleShards_.assign(channels, StatScalar{});
    incompressibleShards_.assign(channels, StatScalar{});
}

void
SplitResetScheme::foldChannelShards()
{
    for (auto &shard : compressibleShards_) {
        compressibleWrites.mergeFrom(shard);
        shard = StatScalar{};
    }
    for (auto &shard : incompressibleShards_) {
        incompressibleWrites.mergeFrom(shard);
        shard = StatScalar{};
    }
}

} // namespace ladder
