#include "fpc.hh"

#include <cstring>

namespace ladder
{

namespace
{

/** FPC encoding cost in bits of one 32-bit word (excluding prefix). */
unsigned
wordPayloadBits(std::uint32_t w)
{
    auto fitsSigned = [](std::uint32_t v, unsigned bits) {
        std::int32_t s = static_cast<std::int32_t>(v);
        std::int32_t lo = -(1 << (bits - 1));
        std::int32_t hi = (1 << (bits - 1)) - 1;
        return s >= lo && s <= hi;
    };
    if (w == 0)
        return 0; // zero run handled by caller
    if (fitsSigned(w, 4))
        return 4;
    if (fitsSigned(w, 8))
        return 8;
    if (fitsSigned(w, 16))
        return 16;
    if ((w & 0xffffu) == 0)
        return 16; // halfword padded with zeros
    // Halfword each a sign-extended byte.
    std::uint16_t hi = static_cast<std::uint16_t>(w >> 16);
    std::uint16_t lo = static_cast<std::uint16_t>(w & 0xffffu);
    auto halfIsSextByte = [](std::uint16_t h) {
        std::int16_t s = static_cast<std::int16_t>(h);
        return s >= -128 && s <= 127;
    };
    if (halfIsSextByte(hi) && halfIsSextByte(lo))
        return 16;
    // Word with repeated bytes.
    std::uint8_t b0 = static_cast<std::uint8_t>(w);
    if (((w >> 8) & 0xffu) == b0 && ((w >> 16) & 0xffu) == b0 &&
        ((w >> 24) & 0xffu) == b0)
        return 8;
    return 32; // uncompressed
}

} // anonymous namespace

unsigned
fpcCompressedBits(const LineData &line)
{
    constexpr unsigned prefixBits = 3;
    unsigned total = 0;
    unsigned i = 0;
    constexpr unsigned words = lineBytes / 4;
    while (i < words) {
        std::uint32_t w;
        std::memcpy(&w, line.data() + i * 4, sizeof(w));
        if (w == 0) {
            // A run of zero words shares one prefix + 3-bit run length.
            unsigned run = 0;
            while (i < words && run < 8) {
                std::uint32_t next;
                std::memcpy(&next, line.data() + i * 4, sizeof(next));
                if (next != 0)
                    break;
                ++run;
                ++i;
            }
            total += prefixBits + 3;
            continue;
        }
        total += prefixBits + wordPayloadBits(w);
        ++i;
    }
    return total;
}

bool
fpcCompressible(const LineData &line, unsigned thresholdBytes)
{
    return fpcCompressedBits(line) <= thresholdBytes * 8;
}

} // namespace ladder
