#include "metadata_layout.hh"

#include "common/log.hh"

namespace ladder
{

MetadataLayout::MetadataLayout(const MemoryGeometry &geo,
                               std::uint64_t dataPages)
    : geo_(geo), map_(geo), dataPages_(dataPages)
{
    ladder_assert(dataPages_ > 0, "no data pages");
    reservedBase_ =
        static_cast<Addr>(dataPages_) * MemoryGeometry::pageBytes;
    // The low-precision sub-region sits after the per-page lines.
    Addr perPageBytes = static_cast<Addr>(dataPages_) * 2 * lineBytes;
    hybridLowBase_ = reservedBase_ + perPageBytes;
    Addr totalBytes = map_.totalPages() *
                      static_cast<Addr>(MemoryGeometry::pageBytes);
    ladder_assert(hybridLowBase_ +
                          (dataPages_ / 4 + 1) * lineBytes <=
                      totalBytes,
                  "metadata region does not fit: reduce data pages");
}

Addr
MetadataLayout::basicLine(std::uint64_t page, unsigned half) const
{
    ladder_assert(page < dataPages_, "page beyond data region");
    ladder_assert(half < 2, "basic metadata has two lines");
    return reservedBase_ + page * 2 * lineBytes + half * lineBytes;
}

Addr
MetadataLayout::estLine(std::uint64_t page) const
{
    ladder_assert(page < dataPages_, "page beyond data region");
    return reservedBase_ + page * lineBytes;
}

Addr
MetadataLayout::hybridLowLine(const BlockLocation &loc) const
{
    // Group id: same channel/rank/bank/mat-group, wordlines 4k..4k+3.
    std::uint64_t group = loc.matGroup;
    group = group * (geo_.matRows / 4) + loc.wordline / 4;
    group = group * geo_.ranksPerChannel * geo_.banksPerRank +
            (loc.rank * geo_.banksPerRank + loc.bank);
    group = group * geo_.channels + loc.channel;
    return hybridLowBase_ + group * lineBytes;
}

double
MetadataLayout::hybridOverhead(unsigned lowRows) const
{
    double lowFrac =
        static_cast<double>(lowRows) / static_cast<double>(geo_.matRows);
    return lowFrac * (16.0 / 4096.0) + (1.0 - lowFrac) * estOverhead();
}

} // namespace ladder
