#include "simple_schemes.hh"

namespace ladder
{

WriteDecision
BaselineScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                            const LineData &finalData)
{
    (void)entry;
    (void)finalData;
    const WriteTimingTable &table = ctrl.timing().location;
    // The pessimistic fixed latency: the far corner of the table.
    const TimingEntry &worst =
        table.at(table.wlBuckets() - 1, table.blBuckets() - 1, 0);
    return {worst.latencyNs, worst.powerMw};
}

WriteDecision
LocationScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                            const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.locationTiming(
        entry.loc.wordline, entry.loc.worstBitline());
    return {t.latencyNs, t.powerMw};
}

WriteDecision
OracleScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                          const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(),
        entry.dispatchCw);
    return {t.latencyNs, t.powerMw};
}

WriteDecision
BlpScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                       const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.blpTiming(
        entry.loc.wordline, entry.loc.worstBitline(),
        entry.dispatchCbl);
    return {t.latencyNs, t.powerMw};
}

} // namespace ladder
