#include "simple_schemes.hh"

namespace ladder
{

WriteDecision
BaselineScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                            const LineData &finalData)
{
    (void)entry;
    (void)finalData;
    const WriteTimingTable &table = ctrl.timing().location;
    // The pessimistic fixed latency: the far corner of the table.
    const TimingEntry &worst =
        table.at(table.wlBuckets() - 1, table.blBuckets() - 1, 0);
    return {worst.latencyNs, worst.powerMw};
}

WriteDecision
LocationScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                            const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.timing().location.lookup(
        entry.loc.wordline, entry.loc.worstBitline(), 0);
    return {t.latencyNs, t.powerMw};
}

WriteDecision
OracleScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                          const LineData &finalData)
{
    (void)finalData;
    unsigned cw = ctrl.store().maxMatLrsCount(entry.loc.pageIndex);
    const TimingEntry &t = ctrl.timing().ladder.lookup(
        entry.loc.wordline, entry.loc.worstBitline(), cw);
    return {t.latencyNs, t.powerMw};
}

WriteDecision
BlpScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                       const LineData &finalData)
{
    (void)finalData;
    unsigned cbl = ctrl.store().maxSelectedBitlineLrs(entry.addr);
    const TimingEntry &t = ctrl.timing().blp.lookup(
        entry.loc.wordline, entry.loc.worstBitline(), cbl);
    return {t.latencyNs, t.powerMw};
}

} // namespace ladder
