#include "simple_schemes.hh"

namespace ladder
{

WriteDecision
BaselineScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                            const LineData &finalData)
{
    (void)entry;
    (void)finalData;
    const WriteTimingTable &table = ctrl.timing().location;
    // The pessimistic fixed latency: the far corner of the table.
    const TimingEntry &worst =
        table.at(table.wlBuckets() - 1, table.blBuckets() - 1, 0);
    return {worst.latencyNs, worst.powerMw};
}

WriteDecision
LocationScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                            const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.locationTiming(
        entry.loc.wordline, entry.loc.worstBitline());
    return {t.latencyNs, t.powerMw};
}

WriteBlameHint
LocationScheme::attributeWrite(const MemoryController &ctrl,
                               const WriteEntry &entry,
                               const WriteDecision &decision) const
{
    (void)entry;
    // Content-oblivious: the whole increment over the table's best
    // corner is location blame; content and scheme overhead are zero.
    return {ctrl.timing().location.bestLatencyNs(),
            decision.latencyNs, decision.latencyNs};
}

WriteDecision
OracleScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                          const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(),
        entry.dispatchCw);
    return {t.latencyNs, t.powerMw};
}

WriteBlameHint
OracleScheme::attributeWrite(const MemoryController &ctrl,
                             const WriteEntry &entry,
                             const WriteDecision &decision) const
{
    // Same (WL, BL) cell at zero LRS isolates the content penalty —
    // one extra surface/table lookup, only on the attribution path.
    const TimingEntry &bestContent = ctrl.ladderTiming(
        entry.loc.wordline, entry.loc.worstBitline(), 0);
    return {ctrl.timing().ladder.bestLatencyNs(),
            bestContent.latencyNs, decision.latencyNs};
}

WriteDecision
BlpScheme::decideWrite(MemoryController &ctrl, WriteEntry &entry,
                       const LineData &finalData)
{
    (void)finalData;
    const TimingEntry &t = ctrl.blpTiming(
        entry.loc.wordline, entry.loc.worstBitline(),
        entry.dispatchCbl);
    return {t.latencyNs, t.powerMw};
}

WriteBlameHint
BlpScheme::attributeWrite(const MemoryController &ctrl,
                          const WriteEntry &entry,
                          const WriteDecision &decision) const
{
    const TimingEntry &bestContent = ctrl.blpTiming(
        entry.loc.wordline, entry.loc.worstBitline(), 0);
    return {ctrl.timing().blp.bestLatencyNs(),
            bestContent.latencyNs, decision.latencyNs};
}

} // namespace ladder
