/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood) over a 64B line, as
 * used by the Split-reset scheme (Xu et al. HPCA'15): a data line that
 * compresses to at most half its size needs only a single half-RESET
 * phase.
 */

#ifndef LADDER_SCHEMES_FPC_HH
#define LADDER_SCHEMES_FPC_HH

#include "common/bitops.hh"

namespace ladder
{

/**
 * Compressed size of @p line in bits under FPC (3-bit prefix per
 * 32-bit word plus the pattern payload; zero runs share one prefix).
 */
unsigned fpcCompressedBits(const LineData &line);

/**
 * Whether the line compresses to at most @p thresholdBytes.
 * Split-reset uses half a line (32 bytes).
 */
bool fpcCompressible(const LineData &line, unsigned thresholdBytes = 32);

} // namespace ladder

#endif // LADDER_SCHEMES_FPC_HH
