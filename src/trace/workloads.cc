#include "workloads.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

namespace
{

struct NamedWorkload
{
    const char *name;
    const char *shortName;
    WorkloadParams params;
};

/**
 * Base parameter table. Working-set sizes are in 4KB pages, already
 * scaled ~8x down from the originals' footprints to pair with the
 * scaled cache hierarchy (see sim/system.hh).
 */
const std::vector<NamedWorkload> &
table()
{
    static const std::vector<NamedWorkload> workloads = [] {
        std::vector<NamedWorkload> t;
        auto add = [&t](const char *name, const char *shortName,
                        double memFrac, double writeFrac,
                        std::uint64_t wsPages, double stream,
                        double hot, std::uint64_t hotPages,
                        unsigned streams, double dep,
                        PatternMix mix) {
            NamedWorkload w;
            w.name = name;
            w.shortName = shortName;
            w.params.name = name;
            w.params.memFraction = memFrac;
            w.params.writeFraction = writeFrac;
            w.params.workingSetPages = wsPages;
            w.params.streamFraction = stream;
            w.params.hotFraction = hot;
            w.params.hotPages = hotPages;
            w.params.streams = streams;
            w.params.dependentFraction = dep;
            w.params.pattern = mix;
            t.push_back(w);
        };
        // name, short, mem, wr, WS, stream, hot, hotPg, strms, dep,
        //   {zero, int, fp, ptr, text, rand}
        add("astar", "astar", 0.10, 0.25, 1536, 0.35, 0.35, 96, 6,
            0.15, {4.0, 3.0, 0.5, 3.0, 0.5, 0.5});
        add("bwaves", "bwavs", 0.12, 0.33, 3072, 0.75, 0.15, 64, 10,
            0.00, {3.0, 0.5, 6.0, 0.2, 0.0, 0.4});
        add("canneal", "cannl", 0.10, 0.28, 2560, 0.20, 0.25, 96, 4,
            0.35, {6.0, 2.0, 0.3, 3.0, 0.3, 0.25});
        add("facesim", "fsim", 0.09, 0.35, 1536, 0.60, 0.25, 96, 8,
            0.05, {3.5, 1.0, 4.0, 0.8, 0.0, 0.25});
        add("lbm", "lbm", 0.13, 0.45, 3584, 0.85, 0.08, 48, 12, 0.00,
            {2.0, 0.3, 7.0, 0.0, 0.0, 0.5});
        add("libquantum", "libq", 0.11, 0.25, 2048, 0.90, 0.05, 32,
            4, 0.00, {8.0, 4.0, 0.0, 0.0, 0.0, 0.15});
        add("mcf", "mcf", 0.14, 0.22, 4096, 0.15, 0.20, 128, 4, 0.40,
            {5.0, 3.0, 0.0, 4.0, 0.0, 0.3});
        add("perlbench", "perlb", 0.09, 0.30, 1024, 0.25, 0.45, 192,
            6, 0.10, {5.0, 2.0, 0.2, 2.5, 2.5, 0.15});
        add("cactusADM", "cactusADM", 0.10, 0.38, 2048, 0.65, 0.20,
            80, 8, 0.02, {3.0, 0.5, 5.0, 0.3, 0.0, 0.4});
        add("zeusmp", "zeusmp", 0.10, 0.33, 1536, 0.70, 0.20, 80, 8,
            0.02, {3.0, 0.8, 4.5, 0.2, 0.0, 0.3});
        return t;
    }();
    return workloads;
}

} // anonymous namespace

std::vector<std::string>
singleWorkloadNames()
{
    return {"astar", "bwavs", "cannl", "fsim",
            "lbm",   "libq",  "mcf",   "perlb"};
}

std::vector<std::pair<std::string, std::vector<std::string>>>
mixWorkloads()
{
    return {
        {"mix-1", {"astar", "lbm", "mcf", "cactusADM"}},
        {"mix-2", {"cactusADM", "bwaves", "perlbench", "zeusmp"}},
        {"mix-3", {"bwaves", "zeusmp", "astar", "mcf"}},
        {"mix-4", {"zeusmp", "perlbench", "lbm", "cactusADM"}},
        {"mix-5", {"cactusADM", "astar", "lbm", "perlbench"}},
        {"mix-6", {"zeusmp", "cactusADM", "bwaves", "mcf"}},
        {"mix-7", {"astar", "lbm", "bwaves", "mcf"}},
        {"mix-8", {"mcf", "cactusADM", "zeusmp", "perlbench"}},
    };
}

std::vector<std::string>
allWorkloadNames()
{
    auto names = singleWorkloadNames();
    for (const auto &mix : mixWorkloads())
        names.push_back(mix.first);
    return names;
}

bool
isMixWorkload(const std::string &name)
{
    return name.rfind("mix-", 0) == 0;
}

WorkloadParams
workloadByName(const std::string &name, std::uint64_t seedSalt,
               double scale)
{
    for (const auto &entry : table()) {
        if (name == entry.name || name == entry.shortName) {
            WorkloadParams params = entry.params;
            if (scale != 1.0) {
                params.workingSetPages = std::max<std::uint64_t>(
                    4, static_cast<std::uint64_t>(
                           params.workingSetPages * scale));
                params.hotPages = std::max<std::uint64_t>(
                    2, static_cast<std::uint64_t>(params.hotPages *
                                                  scale));
            }
            params.seed = mix64(0x1add3c0000ull ^
                                mix64(seedSalt + 0x9e37u) ^
                                std::hash<std::string>{}(entry.name));
            return params;
        }
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace ladder
