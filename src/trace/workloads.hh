/**
 * @file
 * Named workload configurations standing in for the paper's SPEC2006 /
 * PARSEC benchmarks (Table 3). Parameters (memory intensity, write
 * ratio, working-set size, locality structure and data content) follow
 * published characterizations of the originals; working sets are
 * scaled down ~8x together with the simulated cache hierarchy so the
 * WS:LLC ratios match the paper's setup at tractable run times.
 */

#ifndef LADDER_TRACE_WORKLOADS_HH
#define LADDER_TRACE_WORKLOADS_HH

#include <string>
#include <utility>
#include <vector>

#include "trace/synth.hh"

namespace ladder
{

/** The 8 single-program workloads, in the paper's order. */
std::vector<std::string> singleWorkloadNames();

/** The 8 multi-programmed mixes: display name -> 4 member names. */
std::vector<std::pair<std::string, std::vector<std::string>>>
mixWorkloads();

/** All 16 workload display names (singles then mixes). */
std::vector<std::string> allWorkloadNames();

/** Whether a display name denotes a 4-program mix. */
bool isMixWorkload(const std::string &name);

/**
 * Parameters for a named benchmark (full names like "astar",
 * "cactusADM" and the paper's abbreviations like "cannl", "fsim",
 * "libq", "perlb"). Fatal on unknown names.
 *
 * @param seedSalt Mixed into the trace seed (distinct core copies).
 * @param scale Working-set scale factor (1.0 = scaled defaults).
 */
WorkloadParams workloadByName(const std::string &name,
                              std::uint64_t seedSalt = 0,
                              double scale = 1.0);

} // namespace ladder

#endif // LADDER_TRACE_WORKLOADS_HH
