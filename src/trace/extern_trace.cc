#include "extern_trace.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/crc32.hh"
#include "common/log.hh"
#include "common/types.hh"
#include "ctrl/trace_reader.hh"

namespace ladder
{

ExternTraceFormat
externTraceFormatFromName(const std::string &name)
{
    if (name == "auto")
        return ExternTraceFormat::Auto;
    if (name == "dramsim3")
        return ExternTraceFormat::Dramsim3;
    if (name == "bin2")
        return ExternTraceFormat::Bin2;
    fatal("unknown external trace format '%s' (expected "
          "auto/dramsim3/bin2)",
          name.c_str());
}

std::string
externTraceFormatName(ExternTraceFormat format)
{
    switch (format) {
      case ExternTraceFormat::Auto: return "auto";
      case ExternTraceFormat::Dramsim3: return "dramsim3";
      case ExternTraceFormat::Bin2: return "bin2";
    }
    return "?";
}

ExternContentMode
externContentModeFromName(const std::string &name)
{
    if (name == "auto")
        return ExternContentMode::Auto;
    if (name == "pattern")
        return ExternContentMode::Pattern;
    if (name == "lrs")
        return ExternContentMode::Lrs;
    fatal("unknown external content mode '%s' (expected "
          "auto/pattern/lrs)",
          name.c_str());
}

namespace
{

/** "LADDRTRC" — the bin2 container magic (see ctrl/trace_sink.hh). */
const char bin2Magic[8] = {'L', 'A', 'D', 'D', 'R', 'T', 'R', 'C'};

bool
looksLikeBin2(const std::string &bytes)
{
    return bytes.size() >= sizeof(bin2Magic) &&
           std::equal(bin2Magic, bin2Magic + sizeof(bin2Magic),
                      bytes.begin());
}

/**
 * Parse an unsigned integer token with an explicit radix; total —
 * rejects empty tokens, stray characters and overflow instead of
 * wrapping or invoking strtoull's locale/errno contract.
 */
bool
parseUint(const std::string &token, unsigned radix,
          std::uint64_t &out)
{
    std::size_t pos = 0;
    if (radix == 16 && token.size() > 2 && token[0] == '0' &&
        (token[1] == 'x' || token[1] == 'X'))
        pos = 2;
    if (pos >= token.size())
        return false;
    std::uint64_t value = 0;
    for (; pos < token.size(); ++pos) {
        char c = token[pos];
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (radix == 16 && c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a') + 10;
        else if (radix == 16 && c >= 'A' && c <= 'F')
            digit = static_cast<unsigned>(c - 'A') + 10;
        else
            return false;
        if (value > (~std::uint64_t{0} - digit) / radix)
            return false; // overflow
        value = value * radix + digit;
    }
    out = value;
    return true;
}

std::string
upper(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return s;
}

void
parseDramsim3(const std::string &bytes, ExternParseResult &out)
{
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= bytes.size()) {
        std::size_t eol = bytes.find('\n', pos);
        if (eol == std::string::npos)
            eol = bytes.size();
        ++lineNo;
        std::string line = bytes.substr(pos, eol - pos);
        pos = eol + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        // NUL bytes or other control characters mean this is not a
        // text trace at all (e.g. a truncated binary) — reject rather
        // than silently tokenizing garbage.
        for (char c : line) {
            unsigned char u = static_cast<unsigned char>(c);
            if (u < 0x20 && c != '\t') {
                out.error = "line " + std::to_string(lineNo) +
                            ": non-text byte in trace (binary file "
                            "or corruption?)";
                return;
            }
        }
        std::istringstream tokens(line);
        std::string addrTok, opTok, cycleTok, extra;
        if (!(tokens >> addrTok))
            continue; // blank line
        if (addrTok[0] == '#')
            continue; // comment
        if (!(tokens >> opTok) || !(tokens >> cycleTok) ||
            (tokens >> extra)) {
            out.error = "line " + std::to_string(lineNo) +
                        ": expected '<hexaddr> <READ|WRITE> <cycle>'";
            return;
        }
        ExternRecord rec;
        if (!parseUint(addrTok, 16, rec.addr)) {
            out.error = "line " + std::to_string(lineNo) +
                        ": bad hex address '" + addrTok + "'";
            return;
        }
        const std::string op = upper(opTok);
        if (op == "WRITE" || op == "W" || op == "P_MEM_WR" ||
            op == "BOFF") {
            rec.isWrite = true;
        } else if (op == "READ" || op == "R" || op == "P_MEM_RD" ||
                   op == "P_FETCH") {
            rec.isWrite = false;
        } else {
            out.error = "line " + std::to_string(lineNo) +
                        ": bad op '" + opTok +
                        "' (expected READ/WRITE/R/W)";
            return;
        }
        if (!parseUint(cycleTok, 10, rec.cycle)) {
            out.error = "line " + std::to_string(lineNo) +
                        ": bad cycle '" + cycleTok + "'";
            return;
        }
        out.records.push_back(rec);
    }
    if (out.records.empty())
        out.error = "trace contains no requests";
}

void
parseBin2(const std::string &bytes, ExternParseResult &out)
{
    TraceReader reader;
    if (!reader.openBuffer(bytes)) {
        out.error = "bin2: " + reader.error();
        return;
    }
    CtrlTraceRecord rec;
    while (reader.next(rec)) {
        ExternRecord r;
        // Controller records carry (channel, wordline) rather than a
        // byte address; synthesize a line address that preserves the
        // row/channel structure. The replay footprint fold keeps the
        // result in range whatever the geometry was.
        std::uint64_t lineIdx =
            (std::uint64_t{rec.channel} << 16) | rec.wordline;
        r.addr = lineIdx * lineBytes;
        r.isWrite = rec.kind == CtrlTraceRecord::Kind::Write;
        r.cycle = rec.tick;
        r.lrsCount = r.isWrite ? rec.lrsCount : 0xffff;
        out.records.push_back(r);
    }
    if (!reader.ok()) {
        out.error = "bin2: " + reader.error();
        return;
    }
    if (out.records.empty())
        out.error = "bin2: trace contains no records";
}

} // anonymous namespace

ExternParseResult
parseExternTrace(const std::string &bytes, ExternTraceFormat format)
{
    ExternParseResult out;
    if (format == ExternTraceFormat::Auto)
        format = looksLikeBin2(bytes) ? ExternTraceFormat::Bin2
                                      : ExternTraceFormat::Dramsim3;
    out.format = format;
    out.crc32 = crc32(bytes.data(), bytes.size());
    if (format == ExternTraceFormat::Bin2)
        parseBin2(bytes, out);
    else
        parseDramsim3(bytes, out);
    if (!out.ok())
        out.records.clear();
    return out;
}

std::shared_ptr<const ExternParseResult>
loadExternTrace(const std::string &path, ExternTraceFormat format)
{
    static std::mutex mutex;
    static std::map<std::pair<std::string, int>,
                    std::shared_ptr<const ExternParseResult>>
        cache;
    const std::pair<std::string, int> key{path,
                                          static_cast<int>(format)};
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    auto result = std::make_shared<ExternParseResult>();
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
        result->error = "cannot read trace file '" + path + "'";
    } else {
        std::ostringstream buffer;
        buffer << is.rdbuf();
        *result = parseExternTrace(buffer.str(), format);
    }
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second; // lost a benign race; keep the first
    cache.emplace(key, result);
    return result;
}

ExternalTraceSource::ExternalTraceSource(
    std::shared_ptr<const ExternParseResult> trace,
    const ExternTraceOptions &options, std::uint64_t seed)
    : trace_(std::move(trace)), options_(options),
      // Mixed application content for payload synthesis; only used
      // in Pattern mode but cheap to keep unconditionally.
      pattern_(PatternMix{3, 2, 1, 1, 1, 1}), rng_(seed)
{
    ladder_assert(trace_ != nullptr && trace_->ok(),
                  "external trace source built from a failed parse");
    ladder_assert(!trace_->records.empty(),
                  "external trace source built from an empty trace");
    ladder_assert(options_.footprintPages > 0,
                  "external trace footprint must be at least a page");
    lastCycle_ = trace_->records.front().cycle;
}

std::uint64_t
ExternalTraceSource::footprintBytes() const
{
    return options_.footprintPages * std::uint64_t{4096};
}

std::uint64_t
ExternalTraceSource::records() const
{
    return trace_->records.size();
}

std::array<std::uint8_t, 8>
ExternalTraceSource::synthesizeWord(const ExternRecord &r)
{
    ExternContentMode mode = options_.content;
    if (mode == ExternContentMode::Auto)
        mode = r.lrsCount != 0xffff ? ExternContentMode::Lrs
                                    : ExternContentMode::Pattern;
    if (mode == ExternContentMode::Pattern || r.lrsCount == 0xffff)
        return pattern_.generateWord(rng_);
    // Reconstruct a word whose popcount tracks the recorded per-write
    // LRS count (0..512 across the wordline -> 0..64 bits per word),
    // preserving the original run's content-latency profile.
    std::uint64_t lrs = std::min<std::uint64_t>(r.lrsCount, 512);
    unsigned bits =
        static_cast<unsigned>((lrs * 64 + 256) / 512); // rounded
    std::array<std::uint8_t, 8> out{};
    std::uint64_t word = 0;
    if (bits >= 64) {
        word = ~std::uint64_t{0};
    } else {
        unsigned set = 0;
        while (set < bits) {
            std::uint64_t mask = std::uint64_t{1}
                                 << rng_.nextBounded(64);
            if (!(word & mask)) {
                word |= mask;
                ++set;
            }
        }
    }
    std::memcpy(out.data(), &word, sizeof(word));
    return out;
}

TraceRecord
ExternalTraceSource::next()
{
    const ExternRecord &r = trace_->records[cursor_];
    if (++cursor_ >= trace_->records.size()) {
        cursor_ = 0;
        ++loops_;
    }

    TraceRecord rec;
    // Inter-request gap from the trace's own cycle stamps, clamped so
    // one giant gap cannot stall the core model forever. Replay loops
    // and out-of-order stamps degrade to back-to-back requests.
    std::uint64_t gap =
        r.cycle > lastCycle_ ? r.cycle - lastCycle_ : 0;
    lastCycle_ = r.cycle;
    rec.nonMemBefore =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(gap, 256));
    rec.isWrite = r.isWrite;

    // Fold the trace's line index into the replay footprint: strides
    // and row reuse survive, and every access lands in the region the
    // System carved out for this core.
    const std::uint64_t linesInSet = footprintBytes() / lineBytes;
    std::uint64_t lineIdx = (r.addr / lineBytes) % linesInSet;
    rec.lineAddr = lineIdx * lineBytes;

    if (rec.isWrite) {
        rec.storeOffset =
            static_cast<unsigned>(rng_.nextBounded(8)) * 8;
        rec.storeData = synthesizeWord(r);
    }
    return rec;
}

} // namespace ladder
