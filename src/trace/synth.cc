#include "synth.hh"

#include "common/log.hh"

namespace ladder
{

SyntheticTrace::SyntheticTrace(const WorkloadParams &params)
    : params_(params), pattern_(params.pattern), rng_(params.seed)
{
    ladder_assert(params_.memFraction > 0.0 &&
                      params_.memFraction <= 1.0,
                  "memFraction out of range");
    ladder_assert(params_.workingSetPages > 0, "empty working set");
    streamCursor_.resize(std::max(1u, params_.streams));
    streamLeft_.resize(streamCursor_.size(), 0);
    streamDwell_.resize(streamCursor_.size(), 0);
    streamWriting_.resize(streamCursor_.size(), false);
    for (auto &cursor : streamCursor_)
        cursor = rng_.nextBounded(linesInSet());
}

std::uint64_t
SyntheticTrace::linesInSet() const
{
    return params_.workingSetPages * (4096 / lineBytes);
}

Addr
SyntheticTrace::pickAddress(bool &dependent, bool &isWrite)
{
    dependent = false;
    double draw = rng_.nextDouble();
    if (draw < params_.streamFraction) {
        // Sequential stream: the core dwells on each 64B line for
        // several word-granular accesses before moving on. Whether a
        // line receives stores is decided per line, so the dirty-line
        // (writeback) rate tracks writeFraction.
        unsigned s = static_cast<unsigned>(
            rng_.nextBounded(streamCursor_.size()));
        if (streamDwell_[s] == 0) {
            if (streamLeft_[s] == 0) {
                streamCursor_[s] = rng_.nextBounded(linesInSet());
                streamLeft_[s] =
                    64 + rng_.nextGeometric(1.0 / 512.0);
            } else {
                streamCursor_[s] =
                    (streamCursor_[s] + 1) % linesInSet();
                --streamLeft_[s];
            }
            streamDwell_[s] = std::max(1u, params_.dwellPerLine);
            streamWriting_[s] =
                rng_.nextBool(params_.writeFraction);
        }
        --streamDwell_[s];
        isWrite = streamWriting_[s] && rng_.nextBool(0.5);
        return streamCursor_[s] * lineBytes;
    }
    if (draw < params_.streamFraction + params_.hotFraction) {
        // Zipf-popular hot page; mostly cache hits after warmup.
        std::uint64_t hotPages =
            std::min(params_.hotPages, params_.workingSetPages);
        std::uint64_t page = rng_.nextZipf(hotPages, 0.8);
        std::uint64_t lineInPage = rng_.nextBounded(4096 / lineBytes);
        isWrite = rng_.nextBool(params_.writeFraction);
        return (page * (4096 / lineBytes) + lineInPage) * lineBytes;
    }
    // Uniform working-set access (pointer-chase style). Chasing
    // traffic is read-dominated: stores happen on a minority of
    // visited nodes.
    dependent = rng_.nextBool(params_.dependentFraction);
    isWrite = rng_.nextBool(params_.writeFraction * 0.4);
    return rng_.nextBounded(linesInSet()) * lineBytes;
}

TraceRecord
SyntheticTrace::next()
{
    TraceRecord rec;
    // Non-memory instructions between memory ops: geometric with mean
    // 1/memFraction - 1.
    double p = params_.memFraction;
    rec.nonMemBefore =
        static_cast<std::uint32_t>(rng_.nextGeometric(p));
    bool dependent = false;
    bool isWrite = false;
    rec.lineAddr = pickAddress(dependent, isWrite);
    rec.isWrite = isWrite;
    rec.dependent = !rec.isWrite && dependent;
    if (rec.isWrite) {
        rec.storeOffset =
            static_cast<unsigned>(rng_.nextBounded(8)) * 8;
        rec.storeData = pattern_.generateWord(rng_);
    }
    return rec;
}

} // namespace ladder
