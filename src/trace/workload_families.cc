#include "workload_families.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/log.hh"
#include "common/types.hh"

namespace ladder
{

namespace
{

constexpr std::uint64_t pageBytes = 4096;

std::uint64_t
scaledPages(std::uint64_t pages, double scale)
{
    if (scale == 1.0)
        return pages;
    return std::max<std::uint64_t>(
        4, static_cast<std::uint64_t>(
               static_cast<double>(pages) * scale));
}

void
storeWord(TraceRecord &rec, std::uint64_t word)
{
    std::memcpy(rec.storeData.data(), &word, sizeof(word));
}

} // anonymous namespace

std::vector<std::string>
familyWorkloadNames()
{
    return {"dnn-update", "kv-log", "adv-lrs"};
}

bool
isFamilyWorkload(const std::string &name)
{
    for (const auto &family : familyWorkloadNames())
        if (family == name)
            return true;
    return false;
}

PatternMix
familyFirstTouchMix(const std::string &name)
{
    // {zero, int, fp, ptr, text, rand, ones}
    if (name == "dnn-update")
        return PatternMix{8.0, 0.5, 1.5, 0.0, 0.0, 0.2, 0.0};
    if (name == "kv-log")
        return PatternMix{5.0, 1.5, 0.0, 0.5, 2.5, 0.3, 0.0};
    if (name == "adv-lrs")
        return PatternMix{0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0};
    fatal("unknown workload family '%s'", name.c_str());
}

std::unique_ptr<TraceSource>
makeFamilySource(const std::string &name, std::uint64_t seed,
                 double scale)
{
    if (name == "dnn-update")
        return std::make_unique<DnnWeightUpdateSource>(seed, scale);
    if (name == "kv-log")
        return std::make_unique<KvLogSource>(seed, scale);
    if (name == "adv-lrs")
        return std::make_unique<AdversarialLrsSource>(seed, scale);
    fatal("unknown workload family '%s'", name.c_str());
}

// ---------------------------------------------------------------
// dnn-update
// ---------------------------------------------------------------

DnnWeightUpdateSource::DnnWeightUpdateSource(std::uint64_t seed,
                                             double scale)
    : rng_(seed), pages_(scaledPages(2048, scale))
{
}

std::uint64_t
DnnWeightUpdateSource::footprintBytes() const
{
    return pages_ * pageBytes;
}

TraceRecord
DnnWeightUpdateSource::next()
{
    const std::uint64_t lines = footprintBytes() / lineBytes;
    TraceRecord rec;
    rec.nonMemBefore = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(rng_.nextGeometric(0.30), 64));
    if (rng_.nextBool(0.55)) {
        // Weight update: sweep the parameter tensor layer by layer,
        // writing each 64B line word by word before advancing — the
        // optimizer's sequential pass.
        rec.isWrite = true;
        if (dwell_ == 0)
            dwell_ = lineBytes / 8;
        rec.lineAddr = cursorLine_ * lineBytes;
        rec.storeOffset = (lineBytes / 8 - dwell_) * 8;
        if (--dwell_ == 0)
            cursorLine_ = (cursorLine_ + 1) % lines;
        // Sparse magnitude-skewed deltas: most updates round to zero
        // (pruned/tiny gradients), the rest are small-magnitude
        // doubles — the zero-heavy, low-LRS content ARAS exploits.
        if (rng_.nextBool(zeroWordFraction)) {
            storeWord(rec, 0);
        } else {
            double mant = rng_.nextDouble() * 2.0 - 1.0;
            int exp = -static_cast<int>(
                std::min<std::uint64_t>(rng_.nextGeometric(0.25), 24));
            double delta = std::ldexp(mant, exp);
            std::uint64_t word = 0;
            std::memcpy(&word, &delta, sizeof(word));
            storeWord(rec, word);
        }
    } else {
        // Forward/backward pass: read weights from anywhere in the
        // tensor (uniform across layers).
        rec.isWrite = false;
        rec.lineAddr = rng_.nextBounded(lines) * lineBytes;
    }
    return rec;
}

// ---------------------------------------------------------------
// kv-log
// ---------------------------------------------------------------

KvLogSource::KvLogSource(std::uint64_t seed, double scale)
    : rng_(seed), tablePages_(scaledPages(1536, scale)),
      logPages_(scaledPages(512, scale))
{
}

std::uint64_t
KvLogSource::footprintBytes() const
{
    return (tablePages_ + logPages_) * pageBytes;
}

TraceRecord
KvLogSource::next()
{
    const std::uint64_t tableLines = tablePages_ * pageBytes / lineBytes;
    const std::uint64_t logLines = logPages_ * pageBytes / lineBytes;
    TraceRecord rec;
    rec.nonMemBefore = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(rng_.nextGeometric(0.25), 64));

    // One fixed 64B slot per key; a write fills one value word.
    auto synthesizeValue = [this](TraceRecord &r) {
        r.storeOffset =
            static_cast<unsigned>(rng_.nextBounded(8)) * 8;
        if (rng_.nextBool(zeroWordFraction)) {
            // Zero padding: values are shorter than their slots.
            storeWord(r, 0);
            return;
        }
        std::uint64_t word = 0;
        if (rng_.nextBool(0.5)) {
            // Small integer field (counter, id, timestamp delta).
            word = rng_.nextGeometric(0.001);
        } else {
            // Short ASCII value fragment.
            for (unsigned i = 0; i < 8; ++i) {
                std::uint8_t c = rng_.nextBool(0.2)
                                     ? 0x20
                                     : static_cast<std::uint8_t>(
                                           0x61 + rng_.nextBounded(26));
                word |= std::uint64_t(c) << (8 * i);
            }
        }
        storeWord(r, word);
    };

    if (rng_.nextBool(0.6)) {
        // Table op on a Zipf-hot key (the classic KV skew).
        std::uint64_t key = rng_.nextZipf(tableLines, 0.9);
        rec.lineAddr = key * lineBytes;
        rec.isWrite = rng_.nextBool(0.3); // put : get = 3 : 7
        if (rec.isWrite)
            synthesizeValue(rec);
    } else {
        // Log-structured append: strictly sequential writes into the
        // log region behind the table, wrapping like a ring.
        rec.isWrite = true;
        rec.lineAddr =
            (tableLines + logCursorLine_) * lineBytes;
        logCursorLine_ = (logCursorLine_ + 1) % logLines;
        synthesizeValue(rec);
    }
    return rec;
}

// ---------------------------------------------------------------
// adv-lrs
// ---------------------------------------------------------------

AdversarialLrsSource::AdversarialLrsSource(std::uint64_t seed,
                                           double scale)
    // Footprint well above the (scaled) LLC so the sweep's stores
    // continuously stream dirty all-ones lines out to the controller.
    : pages_(scaledPages(3584, scale))
{
    (void)seed; // fully deterministic even without a seed
}

std::uint64_t
AdversarialLrsSource::footprintBytes() const
{
    return pages_ * pageBytes;
}

TraceRecord
AdversarialLrsSource::next()
{
    // Every request is a store of 0xFF bytes, sweeping all 8 words of
    // every line in the footprint with no compute gaps: each line
    // converges to all-LRS content, and with first-touch content also
    // all-ones (see familyFirstTouchMix) every RESET runs at the
    // timing tables' content maximum from the first write on.
    const std::uint64_t lines = footprintBytes() / lineBytes;
    TraceRecord rec;
    rec.nonMemBefore = 0;
    rec.isWrite = true;
    rec.lineAddr = cursorLine_ * lineBytes;
    rec.storeOffset = wordInLine_ * 8;
    rec.storeData.fill(0xff);
    if (++wordInLine_ == lineBytes / 8) {
        wordInLine_ = 0;
        cursorLine_ = (cursorLine_ + 1) % lines;
    }
    return rec;
}

} // namespace ladder
