/**
 * @file
 * Trace recording and replay. Any TraceSource can be captured to a
 * compact binary file and replayed later — the standard workflow for
 * comparing schemes on bit-identical input, sharing workloads, or
 * attaching externally captured traces to the simulator.
 *
 * File format: 16-byte header ("LDTRACE1", record count), then one
 * packed 24-byte record per TraceRecord.
 */

#ifndef LADDER_TRACE_TRACE_FILE_HH
#define LADDER_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/synth.hh"

namespace ladder
{

/** Anything that produces TraceRecords. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** Next record; traces never end (replay loops if finite). */
    virtual TraceRecord next() = 0;
    /** Region footprint in bytes. */
    virtual std::uint64_t footprintBytes() const = 0;
};

/** Adapter: SyntheticTrace behind the TraceSource interface. */
class SyntheticSource : public TraceSource
{
  public:
    explicit SyntheticSource(const WorkloadParams &params)
        : trace_(params)
    {
    }

    TraceRecord next() override { return trace_.next(); }
    std::uint64_t
    footprintBytes() const override
    {
        return trace_.footprintBytes();
    }
    const SyntheticTrace &trace() const { return trace_; }

  private:
    SyntheticTrace trace_;
};

/**
 * Record @p records items of @p source into @p path.
 *
 * @return Number of records written.
 */
std::uint64_t recordTrace(TraceSource &source, std::uint64_t records,
                          const std::string &path);

/**
 * Replay a recorded trace file; loops back to the start when the
 * file is exhausted so the source never ends.
 */
class TraceFileSource : public TraceSource
{
  public:
    explicit TraceFileSource(const std::string &path);

    TraceRecord next() override;
    std::uint64_t
    footprintBytes() const override
    {
        return footprint_;
    }
    std::uint64_t records() const { return records_.size(); }
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<TraceRecord> records_;
    std::uint64_t footprint_ = 0;
    std::size_t cursor_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace ladder

#endif // LADDER_TRACE_TRACE_FILE_HH
