/**
 * @file
 * External trace ingestion: replay memory traces that were *not*
 * produced by this simulator's TraceSource machinery as first-class
 * workloads. Two encodings are accepted:
 *
 *  - DRAMsim3-style text: one `<hexaddr> <READ|WRITE|R|W> <cycle>`
 *    request per line, '#' comments and blank lines ignored. The
 *    de-facto interchange format of memory-system simulators.
 *  - This repo's own bin2 controller traces (trace-out trace-format=
 *    bin2), parsed through the hardened ctrl/TraceReader so every
 *    corruption mode it rejects is rejected here too.
 *
 * Neither format carries store payloads, so write content is
 * synthesized deterministically: DRAMsim3 records draw typed words
 * from a data-pattern model seeded by the workload seed; bin2 records
 * reconstruct words whose popcount matches the recorded per-write LRS
 * count, preserving the original run's content-latency profile.
 *
 * Parsing is strict and total: any malformed input — bad token, bad
 * radix, missing column, truncated or bit-flipped binary — yields
 * ok() == false with a line/offset-qualified error(), never undefined
 * behaviour (fuzzed in tests/test_trace_frontend under ASan/UBSan).
 *
 * Addresses are remapped into the configured geometry by folding line
 * indices into the workload's footprint (`lineIdx % footprintLines`),
 * preserving spatial locality and stride structure while guaranteeing
 * every replayed access stays inside the region the System assigns.
 */

#ifndef LADDER_TRACE_EXTERN_TRACE_HH
#define LADDER_TRACE_EXTERN_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_file.hh"

namespace ladder
{

/** Supported external encodings (Auto sniffs the magic). */
enum class ExternTraceFormat { Auto, Dramsim3, Bin2 };

/** Parse a format name ("auto", "dramsim3", "bin2"); fatal on junk. */
ExternTraceFormat externTraceFormatFromName(const std::string &name);
std::string externTraceFormatName(ExternTraceFormat format);

/** One parsed external request, normalized across formats. */
struct ExternRecord
{
    std::uint64_t addr = 0;  //!< byte address as given by the trace
    bool isWrite = false;
    std::uint64_t cycle = 0; //!< issue cycle/tick from the trace
    /** Recorded LRS count (bin2 only; 0xffff = not available). */
    std::uint16_t lrsCount = 0xffff;
};

/** Outcome of parsing one external trace (file or buffer). */
struct ExternParseResult
{
    std::vector<ExternRecord> records;
    ExternTraceFormat format = ExternTraceFormat::Dramsim3;
    std::uint32_t crc32 = 0; //!< CRC-32 of the raw input bytes
    std::string error;       //!< empty = success

    bool ok() const { return error.empty(); }
};

/**
 * Parse @p bytes as an external trace. @p format Auto detects bin2 by
 * its "LADDRTRC" magic and falls back to the text parser. Never
 * throws; malformed input fills `error`.
 */
ExternParseResult parseExternTrace(const std::string &bytes,
                                   ExternTraceFormat format);

/**
 * Load and parse @p path. Results are memoized per (canonical path,
 * format) under a mutex so a sweep building hundreds of Systems pays
 * the parse once; the cache never invalidates within a process.
 */
std::shared_ptr<const ExternParseResult>
loadExternTrace(const std::string &path, ExternTraceFormat format);

/** Content-synthesis policy for payload-less trace formats. */
enum class ExternContentMode
{
    Auto,    //!< Lrs when the trace records LRS counts, else Pattern
    Pattern, //!< typed words from the data-pattern model
    Lrs,     //!< words whose popcount tracks the recorded LRS count
};

ExternContentMode externContentModeFromName(const std::string &name);

/** Knobs of the external-trace workload (registry: extern.*). */
struct ExternTraceOptions
{
    ExternTraceFormat format = ExternTraceFormat::Auto;
    /** Replay footprint in 4KB pages (addresses fold into it). */
    std::uint64_t footprintPages = 1024;
    ExternContentMode content = ExternContentMode::Auto;
};

/**
 * Replays parsed external records behind the TraceSource interface,
 * looping forever. Address remapping, inter-request gaps and write
 * content are all deterministic functions of (records, options,
 * seed) — byte-identical replay at any sweep parallelism.
 */
class ExternalTraceSource : public TraceSource
{
  public:
    ExternalTraceSource(std::shared_ptr<const ExternParseResult> trace,
                        const ExternTraceOptions &options,
                        std::uint64_t seed);

    TraceRecord next() override;
    std::uint64_t footprintBytes() const override;

    std::uint64_t records() const;
    std::uint64_t loops() const { return loops_; }

  private:
    std::shared_ptr<const ExternParseResult> trace_;
    ExternTraceOptions options_;
    DataPatternModel pattern_;
    Rng rng_;
    std::size_t cursor_ = 0;
    std::uint64_t loops_ = 0;
    std::uint64_t lastCycle_ = 0;

    std::array<std::uint8_t, 8> synthesizeWord(const ExternRecord &r);
};

} // namespace ladder

#endif // LADDER_TRACE_EXTERN_TRACE_HH
