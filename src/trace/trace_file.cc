#include "trace_file.hh"

#include <cstring>

#include "common/log.hh"

namespace ladder
{

namespace
{

constexpr char magic[8] = {'L', 'D', 'T', 'R', 'A', 'C', 'E', '1'};

/** Packed on-disk record (24 bytes). */
struct PackedRecord
{
    std::uint64_t lineAddr;
    std::uint32_t nonMemBefore;
    std::uint8_t flags; // bit 0 write, bit 1 dependent
    std::uint8_t storeOffset;
    std::uint8_t pad[2];
    std::uint8_t storeData[8];
};
static_assert(sizeof(PackedRecord) == 24, "record layout drifted");

} // anonymous namespace

std::uint64_t
recordTrace(TraceSource &source, std::uint64_t records,
            const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        fatal("cannot open trace file '%s' for writing",
              path.c_str());
    std::uint64_t footprint = source.footprintBytes();
    if (std::fwrite(magic, sizeof(magic), 1, file) != 1 ||
        std::fwrite(&records, sizeof(records), 1, file) != 1 ||
        std::fwrite(&footprint, sizeof(footprint), 1, file) != 1) {
        std::fclose(file);
        fatal("short write to trace file '%s'", path.c_str());
    }
    for (std::uint64_t i = 0; i < records; ++i) {
        TraceRecord rec = source.next();
        PackedRecord packed{};
        packed.lineAddr = rec.lineAddr;
        packed.nonMemBefore = rec.nonMemBefore;
        packed.flags = static_cast<std::uint8_t>(
            (rec.isWrite ? 1 : 0) | (rec.dependent ? 2 : 0));
        packed.storeOffset =
            static_cast<std::uint8_t>(rec.storeOffset);
        std::memcpy(packed.storeData, rec.storeData.data(), 8);
        if (std::fwrite(&packed, sizeof(packed), 1, file) != 1) {
            std::fclose(file);
            fatal("short write to trace file '%s'", path.c_str());
        }
    }
    std::fclose(file);
    return records;
}

TraceFileSource::TraceFileSource(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    char head[8];
    std::uint64_t count = 0;
    if (std::fread(head, sizeof(head), 1, file) != 1 ||
        std::memcmp(head, magic, sizeof(magic)) != 0) {
        std::fclose(file);
        fatal("'%s' is not a LADDER trace file", path.c_str());
    }
    if (std::fread(&count, sizeof(count), 1, file) != 1 ||
        std::fread(&footprint_, sizeof(footprint_), 1, file) != 1) {
        std::fclose(file);
        fatal("truncated trace header in '%s'", path.c_str());
    }
    records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord packed;
        if (std::fread(&packed, sizeof(packed), 1, file) != 1) {
            std::fclose(file);
            fatal("truncated trace body in '%s' (record %llu of "
                  "%llu)",
                  path.c_str(),
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(count));
        }
        TraceRecord rec;
        rec.lineAddr = packed.lineAddr;
        rec.nonMemBefore = packed.nonMemBefore;
        rec.isWrite = packed.flags & 1;
        rec.dependent = packed.flags & 2;
        rec.storeOffset = packed.storeOffset;
        std::memcpy(rec.storeData.data(), packed.storeData, 8);
        records_.push_back(rec);
    }
    std::fclose(file);
    ladder_assert(!records_.empty(), "empty trace file '%s'",
                  path.c_str());
}

TraceRecord
TraceFileSource::next()
{
    TraceRecord rec = records_[cursor_];
    if (++cursor_ == records_.size()) {
        cursor_ = 0;
        ++loops_;
    }
    return rec;
}

} // namespace ladder
