/**
 * @file
 * Workload frontend: the single seam through which the System obtains
 * a core's TraceSource. Three kinds of registry-declared workloads
 * resolve here, all selectable by name in sweep specs and on the
 * command line:
 *
 *  - the paper's synthetic benchmarks and mixes (trace/workloads),
 *  - the content-aware generator families (trace/workload_families),
 *  - external trace replay: any name of the form `trace:<path>`
 *    replays a DRAMsim3-style text trace or one of this repo's own
 *    bin2 controller traces (trace/extern_trace).
 *
 * Every instance carries its first-touch content mix and its derived
 * seed, so System construction stays a thin loop. Seed derivation for
 * pre-existing synthetic names is delegated to workloadByName and is
 * part of the golden-output contract — it must never change.
 */

#ifndef LADDER_TRACE_WORKLOAD_FRONTEND_HH
#define LADDER_TRACE_WORKLOAD_FRONTEND_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/extern_trace.hh"
#include "trace/workload_families.hh"
#include "trace/workloads.hh"

namespace ladder
{

/**
 * Frontend knobs bound in the parameter registry (extern.*). Kept as
 * strings at this level so the registry's choice validation is the
 * single parser.
 */
struct WorkloadFrontendOptions
{
    std::string externFormat = "auto"; //!< auto | dramsim3 | bin2
    std::uint64_t externFootprintPages = 1024;
    std::string externContent = "auto"; //!< auto | pattern | lrs
};

/** Whether @p name selects external replay (`trace:<path>`). */
bool isTraceWorkload(const std::string &name);

/** The `<path>` half of a `trace:<path>` name ("" otherwise). */
std::string traceWorkloadPath(const std::string &name);

/**
 * Every selectable fixed workload name: the paper's 16 plus the
 * generator families. `trace:<path>` names are open-ended and
 * validated structurally instead of against this list.
 */
std::vector<std::string> registeredWorkloadNames();

/**
 * Validate one workload display name (fixed names against the
 * registry, `trace:` names for a non-empty path); fatal() with a
 * near-miss suggestion on failure, naming @p source.
 */
void validateWorkloadName(const std::string &name,
                          const std::string &source);

/** A core's resolved workload: source + resident content + seed. */
struct WorkloadInstance
{
    std::unique_ptr<TraceSource> source;
    PatternMix firstTouch{};
    std::uint64_t seed = 0;
    std::string name;
};

/**
 * Resolve @p name into a live workload instance.
 *
 * @param seedSalt Mixed into the seed (distinct per core).
 * @param scale Working-set scale factor.
 * @param options Frontend knobs (external replay only).
 * @param traceFile Legacy recorded-trace override: when non-empty the
 *        core replays this LDTRACE1 file (SystemConfig::traceFiles)
 *        with zeroed first-touch content, exactly as before the
 *        frontend existed.
 */
WorkloadInstance
makeWorkloadInstance(const std::string &name, std::uint64_t seedSalt,
                     double scale,
                     const WorkloadFrontendOptions &options = {},
                     const std::string &traceFile = "");

/**
 * Provenance of an external trace for run manifests: loads (memoized)
 * and returns the parse result; fatal when the file is missing or
 * malformed — callers validate names before building manifests.
 */
std::shared_ptr<const ExternParseResult>
externTraceInfoFor(const std::string &name,
                   const WorkloadFrontendOptions &options);

} // namespace ladder

#endif // LADDER_TRACE_WORKLOAD_FRONTEND_HH
