#include "data_patterns.hh"

#include <cmath>
#include <cstring>

#include "common/log.hh"

namespace ladder
{

DataPatternModel::DataPatternModel(const PatternMix &mix) : mix_(mix)
{
    total_ = mix.zero + mix.smallInt + mix.fp + mix.pointer + mix.text +
             mix.random + mix.ones;
    ladder_assert(total_ > 0.0, "pattern mix has zero total weight");
}

DataPatternModel::Kind
DataPatternModel::pick(Rng &rng) const
{
    double draw = rng.nextDouble() * total_;
    if ((draw -= mix_.zero) < 0.0)
        return Kind::Zero;
    if ((draw -= mix_.smallInt) < 0.0)
        return Kind::SmallInt;
    if ((draw -= mix_.fp) < 0.0)
        return Kind::Fp;
    if ((draw -= mix_.pointer) < 0.0)
        return Kind::Pointer;
    if ((draw -= mix_.text) < 0.0)
        return Kind::Text;
    if ((draw -= mix_.random) < 0.0)
        return Kind::Random;
    // Floating-point remainder lands here; keep Random as the
    // fallback whenever ones is absent so pre-existing mixes stay
    // bit-identical.
    return mix_.ones > 0.0 ? Kind::Ones : Kind::Random;
}

void
DataPatternModel::fillWord(Kind kind, Rng &rng, std::uint8_t *out)
{
    std::uint64_t word = 0;
    switch (kind) {
      case Kind::Zero:
        // Mostly zero; the occasional stray flag byte.
        if (rng.nextBool(0.05))
            word = std::uint64_t(rng.nextBounded(256))
                   << (8 * rng.nextBounded(8));
        break;
      case Kind::SmallInt: {
        // Small magnitudes; ~20% negative (sign extension fills the
        // high bytes with 0xff, clustering '1's).
        std::int64_t magnitude =
            static_cast<std::int64_t>(rng.nextGeometric(0.002));
        bool negative = rng.nextBool(0.2);
        word = static_cast<std::uint64_t>(negative ? -magnitude
                                                   : magnitude);
        break;
      }
      case Kind::Fp: {
        // A double with a modest exponent. Real datasets hold many
        // limited-precision values, so the mantissa keeps a random
        // number of trailing zero bytes.
        double mant = rng.nextDouble() * 2.0 - 1.0;
        int exp = static_cast<int>(rng.nextRange(-12, 12));
        double value = std::ldexp(mant, exp);
        std::memcpy(&word, &value, sizeof(word));
        unsigned zeroBytes =
            static_cast<unsigned>(rng.nextBounded(7));
        if (zeroBytes)
            word &= ~0ull << (8 * zeroBytes);
        break;
      }
      case Kind::Pointer: {
        // Canonical user-space pointer: 0x00007f.. with aligned low
        // bits.
        std::uint64_t offset = rng.nextBounded(1ull << 34) & ~0x7ull;
        word = 0x00007f0000000000ull | offset;
        break;
      }
      case Kind::Text: {
        for (unsigned i = 0; i < 8; ++i) {
            std::uint8_t c = rng.nextBool(0.15)
                                 ? 0x20
                                 : static_cast<std::uint8_t>(
                                       0x61 + rng.nextBounded(26));
            word |= std::uint64_t(c) << (8 * i);
        }
        break;
      }
      case Kind::Random:
        word = rng.next();
        break;
      case Kind::Ones:
        word = ~std::uint64_t{0};
        break;
    }
    std::memcpy(out, &word, sizeof(word));
}

namespace
{

/**
 * Probability that a word of a given class is exactly zero. Memory-
 * content studies consistently find a large zero fraction even in
 * FP-heavy applications (unused slots, zero entries, null pointers).
 */
double
zeroWordProb(int kind)
{
    switch (kind) {
      case 1: return 0.50; // SmallInt
      case 2: return 0.45; // Fp
      case 3: return 0.40; // Pointer (nulls)
      case 4: return 0.15; // Text (empty slots)
      case 5: return 0.05; // Random
      default: return 0.0;
    }
}

} // anonymous namespace

LineData
DataPatternModel::generateLine(Rng &rng) const
{
    // One content class per line: real pages are homogeneous (an array
    // of doubles, a text buffer, ...), which is exactly what produces
    // the clustered per-mat patterns LADDER's shifting targets.
    Kind kind = pick(rng);
    LineData line{};
    double zeroProb = zeroWordProb(static_cast<int>(kind));
    for (unsigned w = 0; w < lineBytes / 8; ++w) {
        if (zeroProb > 0.0 && rng.nextBool(zeroProb))
            continue; // leave the word zero
        fillWord(kind, rng, line.data() + w * 8);
    }
    return line;
}

std::array<std::uint8_t, 8>
DataPatternModel::generateWord(Rng &rng) const
{
    std::array<std::uint8_t, 8> out{};
    fillWord(pick(rng), rng, out.data());
    return out;
}

double
DataPatternModel::expectedDensity() const
{
    // Rough per-class ones-per-byte densities, for sanity checks.
    double acc = mix_.zero * 0.02 + mix_.smallInt * 0.6 +
                 mix_.fp * 3.2 + mix_.pointer * 1.9 +
                 mix_.text * 3.0 + mix_.random * 4.0 +
                 mix_.ones * 8.0;
    return acc / total_;
}

} // namespace ladder
