/**
 * @file
 * Synthetic instruction/memory trace generation. Each workload is an
 * endless deterministic stream of TraceRecords combining sequential
 * streams, a Zipf-popular hot set (cache-resident reuse), and uniform
 * working-set accesses (pointer-chase style), with per-benchmark
 * memory intensity and store content.
 */

#ifndef LADDER_TRACE_SYNTH_HH
#define LADDER_TRACE_SYNTH_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/data_patterns.hh"

namespace ladder
{

/** One unit of work for the core model. */
struct TraceRecord
{
    std::uint32_t nonMemBefore = 0; //!< plain instructions first
    bool isWrite = false;
    bool dependent = false;         //!< load feeding the next address
    Addr lineAddr = 0;              //!< line-aligned, region-relative
    unsigned storeOffset = 0;       //!< byte offset of the store
    std::array<std::uint8_t, 8> storeData{};
};

/** Tunable knobs of a synthetic workload. */
struct WorkloadParams
{
    std::string name = "synthetic";
    double memFraction = 0.25;      //!< memory ops per instruction
    double writeFraction = 0.30;    //!< stores among memory ops
    std::uint64_t workingSetPages = 16384; //!< 64MB default
    double streamFraction = 0.55;   //!< sequential stream accesses
    double hotFraction = 0.30;      //!< hot-set (cache-friendly)
    std::uint64_t hotPages = 96;    //!< hot-set size
    unsigned streams = 8;           //!< concurrent sequential streams
    double dependentFraction = 0.0; //!< serialized (chasing) loads
    unsigned dwellPerLine = 8;      //!< accesses per 64B stream line
    PatternMix pattern{1, 1, 1, 1, 1, 1};
    std::uint64_t seed = 1;
};

/** Deterministic generator of TraceRecords. */
class SyntheticTrace
{
  public:
    explicit SyntheticTrace(const WorkloadParams &params);

    /** Next record (never ends). */
    TraceRecord next();

    const WorkloadParams &params() const { return params_; }
    const DataPatternModel &patternModel() const { return pattern_; }

    /** Region footprint in bytes (for placing cores side by side). */
    std::uint64_t
    footprintBytes() const
    {
        return params_.workingSetPages *
               static_cast<std::uint64_t>(4096);
    }

  private:
    WorkloadParams params_;
    DataPatternModel pattern_;
    Rng rng_;
    std::vector<std::uint64_t> streamCursor_; //!< line index per stream
    std::vector<std::uint64_t> streamLeft_;   //!< lines before re-seed
    std::vector<unsigned> streamDwell_;       //!< accesses left on line
    std::vector<bool> streamWriting_;         //!< line receives stores

    std::uint64_t linesInSet() const;
    Addr pickAddress(bool &dependent, bool &isWrite);
};

} // namespace ladder

#endif // LADDER_TRACE_SYNTH_HH
