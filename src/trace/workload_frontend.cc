#include "workload_frontend.hh"

#include <functional>

#include "common/log.hh"
#include "common/param_registry.hh"
#include "common/rng.hh"

namespace ladder
{

namespace
{

constexpr const char tracePrefix[] = "trace:";
constexpr std::size_t tracePrefixLen = sizeof(tracePrefix) - 1;

/**
 * The frontend seed formula, matching workloadByName's so every
 * workload kind draws from the same well-mixed family of streams.
 */
std::uint64_t
frontendSeed(const std::string &name, std::uint64_t seedSalt)
{
    return mix64(0x1add3c0000ull ^ mix64(seedSalt + 0x9e37u) ^
                 std::hash<std::string>{}(name));
}

} // anonymous namespace

bool
isTraceWorkload(const std::string &name)
{
    return name.rfind(tracePrefix, 0) == 0;
}

std::string
traceWorkloadPath(const std::string &name)
{
    return isTraceWorkload(name) ? name.substr(tracePrefixLen) : "";
}

std::vector<std::string>
registeredWorkloadNames()
{
    std::vector<std::string> names = allWorkloadNames();
    for (const auto &family : familyWorkloadNames())
        names.push_back(family);
    return names;
}

void
validateWorkloadName(const std::string &name,
                     const std::string &source)
{
    if (isTraceWorkload(name)) {
        if (traceWorkloadPath(name).empty())
            fatal("%s: workload '%s' names no trace file (expected "
                  "trace:<path>)",
                  source.c_str(), name.c_str());
        return;
    }
    const std::vector<std::string> known = registeredWorkloadNames();
    for (const auto &candidate : known)
        if (candidate == name)
            return;
    fatal("%s: unknown workload '%s'%s", source.c_str(), name.c_str(),
          param_detail::suggestNearest(name, known).c_str());
}

std::shared_ptr<const ExternParseResult>
externTraceInfoFor(const std::string &name,
                   const WorkloadFrontendOptions &options)
{
    ladder_assert(isTraceWorkload(name),
                  "'%s' is not a trace: workload", name.c_str());
    auto trace =
        loadExternTrace(traceWorkloadPath(name),
                        externTraceFormatFromName(options.externFormat));
    if (!trace->ok())
        fatal("workload '%s': %s", name.c_str(),
              trace->error.c_str());
    return trace;
}

WorkloadInstance
makeWorkloadInstance(const std::string &name, std::uint64_t seedSalt,
                     double scale,
                     const WorkloadFrontendOptions &options,
                     const std::string &traceFile)
{
    WorkloadInstance inst;
    inst.name = name;

    if (!traceFile.empty()) {
        // Legacy recorded-trace replay (SystemConfig::traceFiles):
        // the name still supplies the seed, content defaults to
        // zeros — bit-identical to the pre-frontend behaviour.
        WorkloadParams params = workloadByName(name, seedSalt, scale);
        inst.source = std::make_unique<TraceFileSource>(traceFile);
        inst.firstTouch = PatternMix{1, 0, 0, 0, 0, 0};
        inst.seed = params.seed;
        return inst;
    }

    if (isTraceWorkload(name)) {
        auto trace = externTraceInfoFor(name, options);
        ExternTraceOptions opts;
        opts.format = trace->format; // resolved, never Auto
        opts.footprintPages = options.externFootprintPages;
        opts.content =
            externContentModeFromName(options.externContent);
        inst.seed = frontendSeed(name, seedSalt);
        inst.source = std::make_unique<ExternalTraceSource>(
            std::move(trace), opts, inst.seed);
        // Replayed regions start as typical mixed content with a
        // zero bias — the trace tells us nothing about residency.
        inst.firstTouch = PatternMix{4, 2, 1, 1, 1, 1};
        return inst;
    }

    if (isFamilyWorkload(name)) {
        inst.seed = frontendSeed(name, seedSalt);
        inst.source = makeFamilySource(name, inst.seed, scale);
        inst.firstTouch = familyFirstTouchMix(name);
        return inst;
    }

    WorkloadParams params = workloadByName(name, seedSalt, scale);
    inst.source = std::make_unique<SyntheticSource>(params);
    inst.firstTouch = params.pattern;
    inst.seed = params.seed;
    return inst;
}

} // namespace ladder
