/**
 * @file
 * Content-aware workload families beyond the paper's SPEC/PARSEC
 * stand-ins. Each family is a deterministic TraceSource whose *data
 * content* — not just its address stream — is the point:
 *
 *  - dnn-update: DNN weight-update streams per the ARAS / ReRAM-DNN
 *    deployment characterizations — layer-sweep sequential writes of
 *    sparse deltas, zero-heavy with magnitude-skewed FP values, so
 *    per-wordline LRS counts sit far below the paper workloads'.
 *  - kv-log: key-value / log-structured store traffic — Zipf-hot key
 *    updates over a table region plus a sequentially appended log,
 *    values zero-padded to slot boundaries (short text/int payloads
 *    in fixed 64B slots).
 *  - adv-lrs: adversarial worst case — every request is a store of
 *    0xFF bytes sweeping the whole footprint, so each line converges
 *    to all-LRS and every write RESETs at the content maximum. With
 *    RESET latency monotone in the wordline LRS count (property-
 *    tested against the timing tables), no workload can demand a
 *    slower per-write latency: the family provably bounds tail
 *    behaviour.
 *
 * Families are registered in the workload frontend (see
 * workload_frontend.hh) and selectable in sweep specs by name.
 */

#ifndef LADDER_TRACE_WORKLOAD_FAMILIES_HH
#define LADDER_TRACE_WORKLOAD_FAMILIES_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_file.hh"

namespace ladder
{

/** Family display names, in registration order. */
std::vector<std::string> familyWorkloadNames();

/** Whether @p name denotes one of the generator families. */
bool isFamilyWorkload(const std::string &name);

/**
 * First-touch resident content for a family (what its region holds
 * before the measured window starts).
 */
PatternMix familyFirstTouchMix(const std::string &name);

/**
 * Build a family source. @p scale scales the footprint like the
 * synthetic workloads' working sets; fatal on unknown names.
 */
std::unique_ptr<TraceSource>
makeFamilySource(const std::string &name, std::uint64_t seed,
                 double scale);

/** DNN weight-update stream (see @file). */
class DnnWeightUpdateSource : public TraceSource
{
  public:
    DnnWeightUpdateSource(std::uint64_t seed, double scale);

    TraceRecord next() override;
    std::uint64_t footprintBytes() const override;

    /** Fraction of written words that are exactly zero (declared
     *  invariant, property-tested). */
    static constexpr double zeroWordFraction = 0.85;

  private:
    Rng rng_;
    std::uint64_t pages_;
    std::uint64_t cursorLine_ = 0; //!< layer-sweep position
    unsigned dwell_ = 0;           //!< stores left on this line
};

/** Key-value / log-structured store stream (see @file). */
class KvLogSource : public TraceSource
{
  public:
    KvLogSource(std::uint64_t seed, double scale);

    TraceRecord next() override;
    std::uint64_t footprintBytes() const override;

    /** Declared zero-padding floor on written words. */
    static constexpr double zeroWordFraction = 0.45;

  private:
    Rng rng_;
    std::uint64_t tablePages_;
    std::uint64_t logPages_;
    std::uint64_t logCursorLine_ = 0;
};

/** Adversarial all-LRS store stream (see @file). */
class AdversarialLrsSource : public TraceSource
{
  public:
    AdversarialLrsSource(std::uint64_t seed, double scale);

    TraceRecord next() override;
    std::uint64_t footprintBytes() const override;

  private:
    std::uint64_t pages_;
    std::uint64_t cursorLine_ = 0;
    unsigned wordInLine_ = 0;
};

} // namespace ladder

#endif // LADDER_TRACE_WORKLOAD_FAMILIES_HH
