/**
 * @file
 * Memory-content models. LADDER's benefit is driven by the bit
 * patterns applications keep resident (how many LRS cells per
 * wordline, how clustered they are, how compressible lines are), so
 * the synthetic workloads generate *typed* content: zero-dominated
 * lines, small signed integers, IEEE doubles, heap pointers, ASCII
 * text and incompressible random data, mixed per benchmark.
 */

#ifndef LADDER_TRACE_DATA_PATTERNS_HH
#define LADDER_TRACE_DATA_PATTERNS_HH

#include <array>
#include <cstdint>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace ladder
{

/** Relative weights of the content classes in a workload's data. */
struct PatternMix
{
    double zero = 0.0;     //!< zero / near-zero lines
    double smallInt = 0.0; //!< 4/8-byte small signed integers
    double fp = 0.0;       //!< IEEE-754 doubles
    double pointer = 0.0;  //!< 48-bit canonical heap pointers
    double text = 0.0;     //!< printable ASCII
    double random = 0.0;   //!< incompressible uniform bytes
    /**
     * All-ones (0xFF) content: every cell LRS, the worst case for
     * content-aware RESET latency. Appended after the historical six
     * classes so existing 6-value brace initializers keep their
     * meaning (ones defaults to 0, leaving old mixes bit-identical).
     */
    double ones = 0.0;
};

/** Generates lines and store payloads according to a PatternMix. */
class DataPatternModel
{
  public:
    explicit DataPatternModel(const PatternMix &mix);

    /** A full 64-byte line of fresh content. */
    LineData generateLine(Rng &rng) const;

    /** An 8-byte store payload (same distribution as lines). */
    std::array<std::uint8_t, 8> generateWord(Rng &rng) const;

    /** Mean ones-per-byte of generated content (for tests). */
    double expectedDensity() const;

    const PatternMix &mix() const { return mix_; }

  private:
    PatternMix mix_;
    double total_ = 0.0;

    enum class Kind { Zero, SmallInt, Fp, Pointer, Text, Random, Ones };
    Kind pick(Rng &rng) const;
    static void fillWord(Kind kind, Rng &rng, std::uint8_t *out);
};

} // namespace ladder

#endif // LADDER_TRACE_DATA_PATTERNS_HH
