/**
 * @file
 * Trace-driven out-of-order core approximation (4-wide, ROB- and
 * MSHR-limited, posted stores), the front end of the full-system
 * simulation. The model captures exactly the couplings the paper's
 * results rest on:
 *
 *  - demand reads that miss the hierarchy stall retirement when the
 *    ROB or the MSHRs fill, so read latency (including read-blocking
 *    by long ReRAM writes) translates into IPC;
 *  - pointer-chasing loads serialize on their own completion;
 *  - store misses fetch-for-write (extra reads), dirty L3 victims
 *    carry real content to the controller, and a full write queue
 *    back-pressures the core.
 */

#ifndef LADDER_CPU_CORE_HH
#define LADDER_CPU_CORE_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "ctrl/controller.hh"
#include "trace/trace_file.hh"

namespace ladder
{

/** Core model parameters (paper Table 2: 4-core OoO x86). */
struct CoreParams
{
    double freqGhz = 3.2;
    unsigned width = 4;        //!< retire width
    unsigned robSize = 192;
    unsigned maxOutstanding = 16; //!< MSHRs to memory
    unsigned quantum = 256;       //!< records per activation
    unsigned writebackStall = 4;  //!< buffered WBs before stalling
};

/** One trace-driven core. */
class Core
{
  public:
    /** Routes a physical address to its channel's controller. */
    using RouteFn = std::function<MemoryController &(Addr)>;

    Core(EventQueue &events, const CoreParams &params, unsigned id,
         std::unique_ptr<TraceSource> trace,
         CacheHierarchy &hierarchy, RouteFn route, Addr regionBase);

    /**
     * Run until @p instructions more have issued, then call
     * @p onDone. The trace continues across phases (warmup, measure).
     */
    void runPhase(std::uint64_t instructions,
                  std::function<void()> onDone);

    /**
     * Timing-free warmup: pull @p instructions worth of trace through
     * the cache hierarchy and the controllers' functional interface,
     * so caches and memory content reach steady state without paying
     * event-simulation cost.
     */
    void functionalWarmup(std::uint64_t instructions);

    /** Instructions issued so far (all phases). */
    std::uint64_t instrIssued() const { return instrIssued_; }
    /** Core-local clock in ticks. */
    Tick coreTime() const { return coreTime_; }
    /** Cycles elapsed between two core times. */
    double
    cyclesBetween(Tick from, Tick to) const
    {
        return static_cast<double>(to - from) /
               static_cast<double>(cycleTicks_);
    }

    unsigned id() const { return id_; }
    const TraceSource &trace() const { return *trace_; }

    /**
     * Controller queue space freed: resume if the core was blocked on
     * back-pressure. Wired to every controller's retry listener list.
     */
    void notifyRetry();

    StatScalar memReads;       //!< demand fetches sent to memory
    StatScalar memWrites;      //!< L3 writebacks sent to memory
    StatScalar loads, stores;
    StatScalar robStalls, mshrStalls, chaseStalls, wbStalls,
        rdqStalls;

    /** Register every core statistic into @p group. */
    void regStats(StatGroup &group);

  private:
    struct OutstandingLoad
    {
        std::uint64_t seqNo;
        Tick completeTick = maxTick; //!< maxTick while pending
    };

    enum class BlockReason
    {
        None,
        FrontLoad,   //!< ROB/MSHR full: wait for oldest load
        OwnLoad,     //!< dependent (chasing) load
        ReadRetry,   //!< controller read queue full
        WriteRetry,  //!< controller write queue full
        Done,
    };

    EventQueue &events_;
    CoreParams params_;
    unsigned id_;
    std::unique_ptr<TraceSource> trace_;
    CacheHierarchy &hierarchy_;
    RouteFn route_;
    Addr regionBase_;

    Tick cycleTicks_;
    Tick coreTime_ = 0;
    std::uint64_t instrIssued_ = 0;
    std::uint64_t phaseTarget_ = 0;
    std::function<void()> onDone_;

    std::deque<OutstandingLoad> outstanding_;
    std::deque<Writeback> pendingWritebacks_;
    BlockReason blocked_ = BlockReason::None;
    std::uint64_t blockedOnLoadSeq_ = 0;
    std::optional<TraceRecord> pendingRecord_;
    bool activationScheduled_ = false;
    /** Lines with an in-flight fetch: seqNo of the covering load. */
    std::unordered_map<Addr, std::uint64_t> pendingLines_;
    /** Stores waiting for their line's fetch to return. */
    std::unordered_multimap<Addr,
                            std::pair<unsigned,
                                      std::array<std::uint8_t, 8>>>
        pendingStoreMerges_;
    std::uint64_t issueDebt_ = 0; //!< sub-cycle issue accumulator

    void scheduleActivation();
    void activate();
    bool processOne();
    void advanceIssue(std::uint32_t instructions);
    void chargeLatency(double ns, bool dependent);
    bool issueFetch(Addr physAddr, bool isStore,
                    const TraceRecord &rec);
    void loadCompleted(std::uint64_t seqNo, Tick when);
    void drainWritebacks();
    void pushWritebacks(std::vector<Writeback> &&writebacks);
    void retireCompleted();
    Addr physOf(Addr regionRelative) const;
    void finishPhaseIfDone();
};

} // namespace ladder

#endif // LADDER_CPU_CORE_HH
