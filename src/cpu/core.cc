#include "core.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

Core::Core(EventQueue &events, const CoreParams &params, unsigned id,
           std::unique_ptr<TraceSource> trace,
           CacheHierarchy &hierarchy, RouteFn route, Addr regionBase)
    : events_(events),
      params_(params),
      id_(id),
      trace_(std::move(trace)),
      hierarchy_(hierarchy),
      route_(std::move(route)),
      regionBase_(regionBase)
{
    ladder_assert(params_.freqGhz > 0.0, "core frequency must be > 0");
    cycleTicks_ = nsToTicks(1.0 / params_.freqGhz);
    ladder_assert(cycleTicks_ > 0, "core cycle below tick resolution");
}

Addr
Core::physOf(Addr regionRelative) const
{
    return regionBase_ + regionRelative;
}

void
Core::regStats(StatGroup &group)
{
    group.regScalar("mem_reads", &memReads,
                    "demand fetches sent to memory");
    group.regScalar("mem_writes", &memWrites,
                    "L3 writebacks sent to memory");
    group.regScalar("loads", &loads, "retired loads");
    group.regScalar("stores", &stores, "retired stores");
    group.regScalar("rob_stalls", &robStalls,
                    "cycles stalled on a full ROB");
    group.regScalar("mshr_stalls", &mshrStalls,
                    "cycles stalled on MSHR exhaustion");
    group.regScalar("chase_stalls", &chaseStalls,
                    "cycles stalled on dependent-load chasing");
    group.regScalar("wb_stalls", &wbStalls,
                    "cycles stalled on writeback back-pressure");
    group.regScalar("rdq_stalls", &rdqStalls,
                    "cycles stalled on a full read queue");
}

void
Core::functionalWarmup(std::uint64_t instructions)
{
    std::uint64_t target = instrIssued_ + instructions;
    std::vector<Writeback> wbs;
    while (instrIssued_ < target) {
        TraceRecord rec = pendingRecord_ ? *pendingRecord_
                                         : trace_->next();
        pendingRecord_.reset();
        instrIssued_ += rec.nonMemBefore + 1;
        Addr phys = physOf(rec.lineAddr);
        wbs.clear();
        if (!rec.isWrite) {
            if (!hierarchy_.read(id_, phys, wbs)) {
                LineData data = route_(phys).functionalRead(phys);
                hierarchy_.fill(id_, phys, data, wbs);
            }
        } else {
            if (!hierarchy_.write(id_, phys, rec.storeOffset,
                                  rec.storeData.data(), wbs)) {
                LineData data = route_(phys).functionalRead(phys);
                hierarchy_.fill(id_, phys, data, wbs);
                auto applied = hierarchy_.write(
                    id_, phys, rec.storeOffset, rec.storeData.data(),
                    wbs);
                ladder_assert(applied.has_value(),
                              "warmup store missed after fill");
            }
        }
        for (const auto &wb : wbs)
            route_(wb.first).functionalWrite(wb.first, wb.second);
    }
}

void
Core::runPhase(std::uint64_t instructions, std::function<void()> onDone)
{
    phaseTarget_ = instrIssued_ + instructions;
    onDone_ = std::move(onDone);
    scheduleActivation();
}

void
Core::scheduleActivation()
{
    if (activationScheduled_ || blocked_ != BlockReason::None)
        return;
    activationScheduled_ = true;
    Tick when = std::max(events_.now(), coreTime_);
    events_.schedule(when, [this]() {
        activationScheduled_ = false;
        activate();
    });
}

void
Core::activate()
{
    if (blocked_ != BlockReason::None)
        return;
    coreTime_ = std::max(coreTime_, events_.now());
    for (unsigned n = 0; n < params_.quantum; ++n) {
        if (instrIssued_ >= phaseTarget_) {
            if (onDone_) {
                auto done = std::move(onDone_);
                onDone_ = nullptr;
                done();
            }
            return;
        }
        // Don't run logically ahead of the event clock by more than a
        // few cycles; requests must reach the controller near their
        // logical issue time.
        if (coreTime_ > events_.now() + 8 * cycleTicks_)
            break;
        if (!processOne())
            return; // blocked; a callback will resume us
    }
    scheduleActivation();
}

void
Core::advanceIssue(std::uint32_t instructions)
{
    issueDebt_ += instructions;
    coreTime_ += (issueDebt_ / params_.width) * cycleTicks_;
    issueDebt_ %= params_.width;
}

void
Core::chargeLatency(double ns, bool dependent)
{
    Tick ticks = nsToTicks(ns);
    if (dependent)
        coreTime_ += ticks;
    else
        coreTime_ += ticks / 8; // OoO hides most of a hit's latency
}

void
Core::retireCompleted()
{
    while (!outstanding_.empty()) {
        const OutstandingLoad &front = outstanding_.front();
        if (front.completeTick == maxTick ||
            front.completeTick > coreTime_)
            break;
        outstanding_.pop_front();
    }
}

void
Core::drainWritebacks()
{
    while (!pendingWritebacks_.empty()) {
        const Writeback &wb = pendingWritebacks_.front();
        MemoryController &ctrl = route_(wb.first);
        if (!ctrl.canAcceptWrite())
            break;
        ctrl.enqueueWrite(wb.first, wb.second);
        ++memWrites;
        pendingWritebacks_.pop_front();
    }
}

void
Core::pushWritebacks(std::vector<Writeback> &&writebacks)
{
    for (auto &wb : writebacks)
        pendingWritebacks_.push_back(std::move(wb));
    drainWritebacks();
}

bool
Core::issueFetch(Addr physAddr, bool isStore, const TraceRecord &rec)
{
    (void)isStore;
    MemoryController &ctrl = route_(physAddr);
    std::uint64_t seqNo = instrIssued_ + rec.nonMemBefore;
    outstanding_.push_back({seqNo, maxTick});
    pendingLines_[physAddr] = seqNo;
    ++memReads;
    ctrl.enqueueRead(
        physAddr, [this, physAddr, seqNo](const LineData &data,
                                          Tick when) {
            std::vector<Writeback> wbs;
            hierarchy_.fill(id_, physAddr, data, wbs);
            // Apply stores that were waiting on this fetch.
            auto range = pendingStoreMerges_.equal_range(physAddr);
            for (auto it = range.first; it != range.second; ++it) {
                auto applied = hierarchy_.write(
                    id_, physAddr, it->second.first,
                    it->second.second.data(), wbs);
                ladder_assert(applied.has_value(),
                              "store merge missed after fill");
            }
            pendingStoreMerges_.erase(range.first, range.second);
            pendingLines_.erase(physAddr);
            pushWritebacks(std::move(wbs));
            loadCompleted(seqNo, when);
        });
    return true;
}

void
Core::loadCompleted(std::uint64_t seqNo, Tick when)
{
    for (auto &slot : outstanding_) {
        if (slot.seqNo == seqNo && slot.completeTick == maxTick) {
            slot.completeTick = when;
            break;
        }
    }
    if (blocked_ == BlockReason::FrontLoad && !outstanding_.empty() &&
        outstanding_.front().completeTick != maxTick) {
        coreTime_ =
            std::max(coreTime_, outstanding_.front().completeTick);
        outstanding_.pop_front();
        retireCompleted();
        blocked_ = BlockReason::None;
        scheduleActivation();
    } else if (blocked_ == BlockReason::OwnLoad &&
               blockedOnLoadSeq_ == seqNo) {
        coreTime_ = std::max(coreTime_, when);
        blocked_ = BlockReason::None;
        scheduleActivation();
    }
}

void
Core::notifyRetry()
{
    if (blocked_ == BlockReason::ReadRetry ||
        blocked_ == BlockReason::WriteRetry) {
        blocked_ = BlockReason::None;
        scheduleActivation();
    }
}

bool
Core::processOne()
{
    drainWritebacks();
    if (pendingWritebacks_.size() > params_.writebackStall) {
        blocked_ = BlockReason::WriteRetry;
        ++wbStalls;
        return false;
    }

    if (!pendingRecord_)
        pendingRecord_ = trace_->next();
    const TraceRecord rec = *pendingRecord_;

    retireCompleted();
    std::uint64_t memSeq = instrIssued_ + rec.nonMemBefore;
    if (!outstanding_.empty()) {
        const OutstandingLoad &front = outstanding_.front();
        bool robFull = memSeq + 1 - front.seqNo >= params_.robSize;
        bool mshrFull =
            outstanding_.size() >= params_.maxOutstanding;
        if (robFull || mshrFull) {
            if (front.completeTick != maxTick) {
                coreTime_ = std::max(coreTime_, front.completeTick);
                outstanding_.pop_front();
                retireCompleted();
            } else {
                blocked_ = BlockReason::FrontLoad;
                if (robFull)
                    ++robStalls;
                else
                    ++mshrStalls;
                return false;
            }
        }
    }

    Addr phys = physOf(rec.lineAddr);
    std::vector<Writeback> wbs;
    auto commit = [&]() {
        advanceIssue(rec.nonMemBefore + 1);
        instrIssued_ = memSeq + 1;
        pendingRecord_.reset();
    };

    if (!rec.isWrite) {
        ++loads;
        auto pending = pendingLines_.find(phys);
        if (pending != pendingLines_.end()) {
            std::uint64_t covering = pending->second;
            commit();
            if (rec.dependent) {
                blocked_ = BlockReason::OwnLoad;
                blockedOnLoadSeq_ = covering;
                ++chaseStalls;
                return false;
            }
        } else if (auto hit = hierarchy_.read(id_, phys, wbs)) {
            commit();
            chargeLatency(hit->latencyNs, rec.dependent);
        } else {
            MemoryController &ctrl = route_(phys);
            if (!ctrl.canAcceptRead()) {
                blocked_ = BlockReason::ReadRetry;
                ++rdqStalls;
                return false;
            }
            issueFetch(phys, false, rec);
            std::uint64_t seqNo = memSeq;
            commit();
            if (rec.dependent) {
                blocked_ = BlockReason::OwnLoad;
                blockedOnLoadSeq_ = seqNo;
                ++chaseStalls;
                return false;
            }
        }
    } else {
        ++stores;
        auto pending = pendingLines_.find(phys);
        if (pending != pendingLines_.end()) {
            pendingStoreMerges_.emplace(
                phys, std::make_pair(rec.storeOffset, rec.storeData));
            commit();
        } else if (auto lat = hierarchy_.write(id_, phys,
                                               rec.storeOffset,
                                               rec.storeData.data(),
                                               wbs)) {
            commit();
            chargeLatency(*lat, false);
        } else {
            // Write-allocate: fetch for ownership, then merge.
            MemoryController &ctrl = route_(phys);
            if (!ctrl.canAcceptRead()) {
                blocked_ = BlockReason::ReadRetry;
                ++rdqStalls;
                return false;
            }
            issueFetch(phys, true, rec);
            pendingStoreMerges_.emplace(
                phys, std::make_pair(rec.storeOffset, rec.storeData));
            commit();
        }
    }
    pushWritebacks(std::move(wbs));
    return true;
}

} // namespace ladder
