#include "system.hh"

#include <chrono>
#include <future>
#include <mutex>
#include <ostream>
#include <set>

#include "circuit/fastmodel.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/profiler.hh"
#include "reram/latency_surface.hh"
#include "schemes/ladder_schemes.hh"
#include "trace/data_patterns.hh"
#include "trace/trace_file.hh"

namespace ladder
{

namespace
{

/**
 * Init-time surface verification (SystemConfig::latencySurfaceCheck):
 * exact surface-vs-table identity plus a corner re-evaluation against
 * the generating fast model under the error budget. Memoized on the
 * shared (cached) model's identity, so a sweep building hundreds of
 * Systems checks each distinct model once.
 */
void
verifyLatencySurfaces(const TimingModel &model,
                      const CrossbarParams &params, double budget)
{
    static std::mutex mutex;
    static std::set<const TimingModel *> checked;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!checked.insert(&model).second)
            return;
    }
    PROF_SCOPE("latency_surface_check");
    struct Item
    {
        const std::shared_ptr<const LatencySurface> &surface;
        const WriteTimingTable &table;
        const char *what;
    };
    const Item items[] = {
        {model.ladderSurface, model.ladder, "ladder"},
        {model.blpSurface, model.blp, "blp"},
        {model.locationSurface, model.location, "location"},
    };
    SneakPathModel fast(params);
    ResetEvaluator eval = [&fast](const ResetCondition &c) {
        return fast.evaluate(c);
    };
    for (const Item &item : items) {
        ladder_assert(item.surface != nullptr,
                      "timing model lacks a %s surface", item.what);
        SurfaceCheckResult check =
            item.surface->verifyAgainst(item.table);
        ladder_assert(check.ok(),
                      "%s latency surface diverges from its table "
                      "(%zu of %zu cells, max %.3g ns)",
                      item.what, check.mismatches, check.cellsChecked,
                      check.maxAbsErrorNs);
        SurfaceErrorReport err = checkSurfaceError(
            params, item.table, model.law, eval, budget);
        ladder_assert(err.ok(),
                      "%s timing table violates the %.3g error "
                      "budget (%zu of %zu corners, max rel %.3g)",
                      item.what, budget, err.violations,
                      err.cellsChecked, err.maxRelError);
    }
}

} // namespace

void
applyPaperScale(SystemConfig &config)
{
    config.caches.l2 = CacheParams{4 * 1024 * 1024, 16};
    config.caches.l3 = CacheParams{32 * 1024 * 1024, 16};
    config.workingSetScale = 8.0;
    config.paperScale = true;
}

System::System(const SystemConfig &config) : config_(config)
{
    ladder_assert(config_.workloads.size() == 1 ||
                      config_.workloads.size() == 4,
                  "workloads must be a single program or a 4-mix");

    timing_ = &cachedTimingModel(config_.crossbar,
                                 config_.tableGranularity,
                                 config_.rangeShrink);
    if (config_.latencySurfaceCheck)
        verifyLatencySurfaces(*timing_, config_.crossbar,
                              config_.latencyErrorBudget);

    store_ = std::make_unique<BackingStore>(
        config_.geometry, /*trackBitlines=*/true,
        config_.backgroundDensity);

    AddressMap map(config_.geometry);
    std::uint64_t dataPages = static_cast<std::uint64_t>(
        map.totalPages() * config_.dataPageFraction);
    layout_ =
        std::make_shared<MetadataLayout>(config_.geometry, dataPages);
    scheme_ = makeScheme(config_.scheme, config_.crossbar, layout_,
                         config_.schemeOptions);

    // Channel engine: one event queue per channel plus the protocol
    // plumbing. The worker count only changes wall-clock time; any
    // channelThreads >= 1 yields byte-identical results because the
    // window protocol (not thread scheduling) orders every merge.
    channelEngine_ = config_.controller.channelThreads > 0;
    if (channelEngine_) {
        double horizonNs = config_.controller.lookaheadNs;
        if (horizonNs <= 0.0)
            horizonNs = config_.controller.tRcdNs +
                        config_.controller.tClNs;
        lookahead_ = std::max<Tick>(nsToTicks(horizonNs), 1);
        scheme_->setChannelShards(config_.geometry.channels);
        outboxes_.resize(config_.geometry.channels);
        for (unsigned ch = 0; ch < config_.geometry.channels; ++ch)
            channelQueues_.push_back(
                std::make_unique<EventQueue>());
    }

    for (unsigned ch = 0; ch < config_.geometry.channels; ++ch) {
        controllers_.push_back(std::make_unique<MemoryController>(
            channelEngine_ ? *channelQueues_[ch] : events_,
            config_.controller, config_.geometry, ch, *store_,
            *timing_, scheme_));
        if (channelEngine_) {
            controllers_.back()->setFrontendQueue(&events_);
            controllers_.back()->setOutbox(&outboxes_[ch]);
        }
        statGroups_.emplace_back("ctrl" + std::to_string(ch));
    }
    for (unsigned ch = 0; ch < controllers_.size(); ++ch)
        controllers_[ch]->regStats(statGroups_[ch]);

    HierarchyParams cacheParams = config_.caches;
    cacheParams.cores =
        static_cast<unsigned>(config_.workloads.size());
    hierarchy_ = std::make_unique<CacheHierarchy>(cacheParams);

    // Lay the per-core workload regions out page-aligned and disjoint
    // in the data region, and register the first-touch initializers.
    struct Region
    {
        Addr base;
        Addr size;
        std::shared_ptr<DataPatternModel> pattern;
        std::uint64_t seed;
    };
    auto regions = std::make_shared<std::vector<Region>>();

    // Routing must agree with the controller-side physical decode,
    // so any installed wear-leveling remap is applied first (remaps
    // may legitimately cross channels).
    Core::RouteFn route = [this](Addr addr) -> MemoryController & {
        Addr phys = remapper_ ? remapper_->remap(addr) : addr;
        BlockLocation loc =
            controllers_[0]->addressMap().decode(phys);
        return *controllers_[loc.channel];
    };

    ladder_assert(config_.traceFiles.empty() ||
                      config_.traceFiles.size() ==
                          config_.workloads.size(),
                  "traceFiles must match the workload count");
    Addr nextBase = 0;
    for (unsigned c = 0; c < config_.workloads.size(); ++c) {
        WorkloadInstance inst = makeWorkloadInstance(
            config_.workloads[c], config_.seed * 16 + c,
            config_.workingSetScale, config_.frontend,
            config_.traceFiles.empty() ? std::string{}
                                       : config_.traceFiles[c]);
        Addr footprint = inst.source->footprintBytes();
        ladder_assert(nextBase + footprint <=
                          dataPages * MemoryGeometry::pageBytes,
                      "workloads exceed the data region");
        regions->push_back(
            {nextBase, footprint,
             std::make_shared<DataPatternModel>(inst.firstTouch),
             inst.seed});
        cores_.push_back(std::make_unique<Core>(
            events_, config_.core, c, std::move(inst.source),
            *hierarchy_, route, nextBase));
        nextBase += footprint;
    }

    // First-touch content is generated in the workload's pattern and
    // stored in its *physical* form (the scheme's encoding applied),
    // as if it had been written through the controller.
    std::shared_ptr<WriteScheme> scheme = scheme_;
    store_->setPageInitializer(
        [regions, scheme](std::uint64_t pageIndex,
                          PageContent &content) {
            Addr byteAddr = pageIndex * MemoryGeometry::pageBytes;
            for (const auto &region : *regions) {
                if (byteAddr < region.base ||
                    byteAddr >= region.base + region.size)
                    continue;
                Rng rng(mix64(pageIndex ^ region.seed));
                for (unsigned b = 0;
                     b < MemoryGeometry::blocksPerPage; ++b) {
                    Addr blockAddr =
                        byteAddr + static_cast<Addr>(b) * lineBytes;
                    content.blocks[b] = scheme->encodeData(
                        blockAddr, region.pattern->generateLine(rng));
                }
                return;
            }
            // Untouched / metadata pages stay zeroed.
        });

    for (auto &ctrl : controllers_) {
        for (auto &core : cores_) {
            Core *corePtr = core.get();
            ctrl->addRetryListener([corePtr]() {
                corePtr->notifyRetry();
            });
        }
    }

    // Core and cache groups follow the controller groups, so the
    // controller stats keep their historical epoch-vector positions.
    for (unsigned c = 0; c < cores_.size(); ++c) {
        statGroups_.emplace_back("core" + std::to_string(c));
        cores_[c]->regStats(statGroups_.back());
    }
    for (unsigned c = 0; c < cores_.size(); ++c) {
        statGroups_.emplace_back("cache" + std::to_string(c));
        StatGroup &group = statGroups_.back();
        hierarchy_->l1(c).regStats(group, "l1_");
        hierarchy_->l2(c).regStats(group, "l2_");
    }
    statGroups_.emplace_back("l3");
    hierarchy_->l3().regStats(statGroups_.back());
}

MemoryController &
System::controller(unsigned channel)
{
    ladder_assert(channel < controllers_.size(),
                  "channel out of range");
    return *controllers_[channel];
}

unsigned
System::channels() const
{
    return static_cast<unsigned>(controllers_.size());
}

void
System::setRemapper(AddressRemapper *remapper)
{
    remapper_ = remapper;
    if (remapper && channelEngine_)
        disableChannelEngine(
            "wear-leveling line copies cross channels");
    for (auto &ctrl : controllers_)
        ctrl->setRemapper(remapper);
}

void
System::disableChannelEngine(const char *reason)
{
    // Observable fallback: monitors watching the heartbeat see the
    // gauge flip to 1 even when stderr is discarded, and warn_once
    // keeps parallel sweeps from repeating the message per cell.
    warn_once("channel engine disabled: %s; running on the shared "
              "queue",
              reason);
    static const metrics::MetricId fallbackGauge =
        metrics::registerGauge("engine.fallback");
    metrics::set(fallbackGauge, 1);
    for (auto &queue : channelQueues_)
        ladder_assert(queue->empty(),
                      "disabling the channel engine mid-run");
    for (auto &ctrl : controllers_) {
        ctrl->rebindEventQueue(events_);
        ctrl->setFrontendQueue(nullptr);
        ctrl->setOutbox(nullptr);
        ctrl->setTraceSink(traceSink_);
    }
    channelEngine_ = false;
    channelQueues_.clear();
    outboxes_.clear();
    traceStaging_.clear();
    channelPool_.reset();
}

void
System::attachTraceSink(WriteTraceSink *sink)
{
    traceSink_ = sink;
    if (channelEngine_ && sink) {
        // Channel workers record into private buffers; the barrier
        // merges them into the real sink by (tick, channel).
        if (traceStaging_.empty()) {
            for (std::size_t ch = 0; ch < controllers_.size(); ++ch)
                traceStaging_.push_back(
                    std::make_unique<WriteTraceSink>());
        }
        for (std::size_t ch = 0; ch < controllers_.size(); ++ch)
            controllers_[ch]->setTraceSink(traceStaging_[ch].get());
        return;
    }
    for (auto &ctrl : controllers_)
        ctrl->setTraceSink(sink);
}

void
System::captureEpoch(Tick when)
{
    EpochSnapshot snap;
    snap.tick = when;
    snap.values.reserve(epochNames_.size());
    for (const auto &group : statGroups_) {
        group.visit([&](const std::string &, double v) {
            snap.values.push_back(v);
        });
    }
    ladder_assert(snap.values.size() == epochNames_.size(),
                  "epoch snapshot arity changed mid-run");
    epochs_.push_back(std::move(snap));
}

void
System::scheduleEpochSnapshot(Tick when, Tick epochTicks,
                              const unsigned *pending)
{
    // The channel engine clamps window ends to the next snapshot, so
    // every channel has executed exactly the events before `when`
    // when the capture runs — the same cut a sequential run makes.
    nextEpochTick_ = when;
    events_.schedule(when, [this, when, epochTicks, pending]() {
        // Stop once every core has finished its measured window so
        // the event queue can drain; the final partial epoch is not
        // sampled (its interval is shorter than epochCycles).
        if (*pending == 0) {
            nextEpochTick_ = maxTick;
            return;
        }
        captureEpoch(when);
        scheduleEpochSnapshot(when + epochTicks, epochTicks, pending);
    });
}

void
System::resetStats()
{
    // Fold outstanding per-channel scheme shards first so the reset
    // below clears them along with the primaries.
    scheme_->foldChannelShards();
    for (auto &group : statGroups_)
        group.resetAll();
    for (auto &ctrl : controllers_) {
        ctrl->metadataCache().hits.reset();
        ctrl->metadataCache().misses.reset();
        ctrl->metadataCache().insertions.reset();
        ctrl->metadataCache().dirtyEvictions.reset();
        ctrl->metadataCache().blockedLookups.reset();
    }
    if (auto *est = dynamic_cast<LadderEstScheme *>(scheme_.get())) {
        est->counterDiff.reset();
        est->estimatedCw.reset();
    }
    if (auto *basic =
            dynamic_cast<LadderBasicScheme *>(scheme_.get())) {
        basic->accurateCw.reset();
    }
}

SimResult
System::run(std::uint64_t warmupInstr, std::uint64_t measureInstr)
{
    // --- Warmup: functional (timing-free) cache/content warmup,
    // then a short timed ramp to fill queues and the metadata cache.
    for (auto &core : cores_)
        core->functionalWarmup(warmupInstr);
    std::uint64_t ramp = std::max<std::uint64_t>(measureInstr / 10,
                                                 5'000);
    unsigned pending = static_cast<unsigned>(cores_.size());
    for (auto &core : cores_) {
        core->runPhase(ramp, [&pending]() { --pending; });
    }
    nextEpochTick_ = maxTick;
    runEventLoop();
    ladder_assert(pending == 0,
                  "deadlock: %u cores stuck in warmup (events drained)",
                  pending);

    // --- Measured window ---
    resetStats();
    // The trace covers the measured window only; drop ramp records.
    if (traceSink_)
        traceSink_->clear();
    std::vector<Tick> startTime;
    for (auto &core : cores_)
        startTime.push_back(core->coreTime());

    SimResult result;
    result.coreIpc.assign(cores_.size(), 0.0);
    pending = static_cast<unsigned>(cores_.size());
    std::vector<Tick> endTime(cores_.size(), 0);
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        Core *core = cores_[c].get();
        core->runPhase(measureInstr, [&pending, &endTime, c, core]() {
            endTime[c] = core->coreTime();
            --pending;
        });
    }
    epochNames_.clear();
    epochs_.clear();
    if (config_.epochCycles > 0) {
        // Names are fixed up front so they are available (and the
        // series arity is pinned) even when the window is shorter
        // than one epoch.
        for (const auto &group : statGroups_) {
            group.visit([&](const std::string &name, double) {
                epochNames_.push_back(name);
            });
        }
        Tick epochTicks = nsToTicks(
            static_cast<double>(config_.epochCycles) /
            config_.core.freqGhz);
        if (epochTicks == 0)
            epochTicks = 1;
        epochTicks_ = epochTicks;
        scheduleEpochSnapshot(events_.now() + epochTicks, epochTicks,
                              &pending);
    }
    runEventLoop();
    ladder_assert(pending == 0,
                  "deadlock: %u cores stuck in measurement", pending);

    double maxElapsed = 0.0;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        double cycles =
            cores_[c]->cyclesBetween(startTime[c], endTime[c]);
        result.coreIpc[c] =
            cycles > 0.0 ? static_cast<double>(measureInstr) / cycles
                         : 0.0;
        maxElapsed = std::max(
            maxElapsed, ticksToNs(endTime[c] - startTime[c]));
    }
    result.ipc = result.coreIpc[0];
    result.instructions = measureInstr * cores_.size();
    result.elapsedNs = maxElapsed;

    double readLatWeighted = 0.0, writeServWeighted = 0.0,
           writeTwrWeighted = 0.0;
    std::uint64_t readLatCount = 0, writeServCount = 0;
    for (auto &ctrl : controllers_) {
        result.dataReads +=
            static_cast<std::uint64_t>(ctrl->dataReads.value());
        result.metadataReads +=
            static_cast<std::uint64_t>(ctrl->metadataReads.value());
        result.smbReads +=
            static_cast<std::uint64_t>(ctrl->smbReads.value());
        result.dataWrites +=
            static_cast<std::uint64_t>(ctrl->dataWrites.value());
        result.metadataWrites +=
            static_cast<std::uint64_t>(ctrl->metadataWrites.value());
        result.readEnergyPj += ctrl->readEnergyPj.value();
        result.writeEnergyPj += ctrl->writeEnergyPj.value();
        result.fnwFlips += ctrl->fnwFlips.value();
        result.fnwCancelled += ctrl->fnwCancelled.value();
        result.spillInsertions += ctrl->spillInsertions.value();
        readLatWeighted += ctrl->readLatencyNs.sum();
        readLatCount += ctrl->readLatencyNs.count();
        writeServWeighted += ctrl->writeServiceNs.sum();
        writeTwrWeighted += ctrl->writeLatencyOnlyNs.sum();
        writeServCount += ctrl->writeServiceNs.count();
    }
    result.avgReadLatencyNs =
        readLatCount ? readLatWeighted / readLatCount : 0.0;
    result.avgWriteServiceNs =
        writeServCount ? writeServWeighted / writeServCount : 0.0;
    result.avgWriteTwrNs =
        writeServCount ? writeTwrWeighted / writeServCount : 0.0;

    // Channel-order fold of the measured window's scheme samples.
    scheme_->foldChannelShards();
    if (auto *est = dynamic_cast<LadderEstScheme *>(scheme_.get())) {
        result.estCounterDiffMean = est->counterDiff.mean();
        result.estimatedCwMean = est->estimatedCw.mean();
    }
    if (auto *basic =
            dynamic_cast<LadderBasicScheme *>(scheme_.get())) {
        result.accurateCwMean = basic->accurateCw.mean();
    }
    return result;
}

void
System::runEventLoop()
{
    if (!channelEngine_) {
        events_.runUntil(maxTick);
        return;
    }
    runWindowedLoop();
}

void
System::mergeTraceStaging()
{
    if (!traceSink_ || traceStaging_.empty())
        return;
    // Every staged buffer is tick-sorted (each channel records in its
    // own event order), so a k-way merge keyed (tick, channel) yields
    // the exact global order a sequential run would have produced.
    std::vector<std::size_t> pos(traceStaging_.size(), 0);
    for (;;) {
        std::size_t best = traceStaging_.size();
        Tick bestTick = maxTick;
        for (std::size_t ch = 0; ch < traceStaging_.size(); ++ch) {
            const auto &records = traceStaging_[ch]->records();
            if (pos[ch] >= records.size())
                continue;
            Tick tick = records[pos[ch]].tick;
            if (best == traceStaging_.size() || tick < bestTick) {
                best = ch;
                bestTick = tick;
            }
        }
        if (best == traceStaging_.size())
            break;
        traceSink_->record(
            traceStaging_[best]->records()[pos[best]++]);
    }
    for (auto &staging : traceStaging_)
        staging->clear();
}

void
System::runWindowedLoop()
{
    const unsigned channels =
        static_cast<unsigned>(controllers_.size());
    const unsigned workers =
        std::min(config_.controller.channelThreads, channels);
    if (workers > 1 && !channelPool_)
        channelPool_ = std::make_unique<ThreadPool>(
            workers, config_.poolPin == "cores");
    const bool profiling = prof::enabled();
    if (profiling && evqDepthCounterNames_.empty()) {
        for (unsigned ch = 0; ch < channels; ++ch)
            evqDepthCounterNames_.push_back(prof::internName(
                "engine.ch" + std::to_string(ch) + ".evq_depth"));
    }

    std::vector<std::future<void>> futures;
    futures.reserve(channels);
    std::uint64_t window = 0;
    for (;; ++window) {
        // Window bounds: free-run every queue up to (exclusive) the
        // earliest pending event plus the lookahead horizon. All
        // queue clocks sit at the previous window's end, so minNext
        // can never trail any clock.
        Tick minNext = events_.nextEventTick();
        for (auto &queue : channelQueues_)
            minNext = std::min(minNext, queue->nextEventTick());
        if (minNext == maxTick)
            break; // fully drained
        Tick end = maxTick - lookahead_ > minNext
                       ? minNext + lookahead_
                       : maxTick - 1;
        const Tick front = events_.now();
        if (nextEpochTick_ != maxTick) {
            // Epoch snapshots must observe the exact same cut a
            // sequential run makes: never let channels run past the
            // next snapshot. A snapshot due right now executes in
            // this window's frontend phase and reschedules; clamp to
            // its successor instead (end == front would not advance).
            ladder_assert(nextEpochTick_ >= front,
                          "epoch snapshot behind the frontend clock");
            if (nextEpochTick_ > front)
                end = std::min(end, nextEpochTick_);
            else if (epochTicks_ > 0)
                end = std::min(end, front + epochTicks_);
        }

        if (profiling && (window & 15u) == 0) {
            for (unsigned ch = 0; ch < channels; ++ch)
                PROF_COUNTER(
                    evqDepthCounterNames_[ch],
                    static_cast<double>(
                        channelQueues_[ch]->pending()));
        }

        // Phase A — frontend, serial: cores, caches, and the
        // processor-side controller entry points, which timestamp
        // against the frontend clock.
        for (auto &ctrl : controllers_)
            ctrl->setFrontendClock(events_.nowPtr());
        events_.runBefore(end);
        for (auto &ctrl : controllers_)
            ctrl->setFrontendClock(nullptr);

        // Phase B — channels, parallel (or inline, same order, when
        // a single worker is configured): strictly channel-confined
        // state, no frontend interaction until the barrier.
        if (workers <= 1 || channels <= 1) {
            for (auto &queue : channelQueues_)
                queue->runBefore(end);
        } else {
            const auto barrierStart =
                profiling ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
            futures.clear();
            for (auto &queue : channelQueues_) {
                EventQueue *q = queue.get();
                futures.push_back(channelPool_->submit(
                    [q, end]() { q->runBefore(end); }));
            }
            for (auto &future : futures)
                future.get();
            if (profiling && (window & 15u) == 0) {
                PROF_COUNTER(
                    "engine.barrier_wait_ns",
                    static_cast<double>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() -
                            barrierStart)
                            .count()));
            }
        }

        // Barrier — merge side effects in fixed channel order. The
        // deliveries land at the window boundary with priority -1 so
        // they precede same-tick frontend work, and their payloads
        // carry the true completion ticks.
        mergeTraceStaging();
        for (unsigned ch = 0; ch < channels; ++ch) {
            ChannelOutbox &outbox = outboxes_[ch];
            for (auto &delivery : outbox.deliveries)
                events_.schedule(end, std::move(delivery.fn), -1);
            outbox.deliveries.clear();
            if (outbox.retryPending) {
                outbox.retryPending = false;
                MemoryController *ctrl = controllers_[ch].get();
                events_.schedule(
                    end, [ctrl]() { ctrl->deliverRetries(); }, -1);
            }
        }
    }
}

void
System::dumpStats(std::ostream &os)
{
    for (auto &group : statGroups_)
        group.dump(os);
}

} // namespace ladder
