/**
 * @file
 * Cross-run stats querying: load any number of sweep.json /
 * stats.json files (see stats_export.hh for the schemas), flatten
 * each into a dotted-name -> value map, select names with shell-style
 * globs, and diff two runs with a relative regression threshold.
 * This is the engine behind the `ladder_query` CLI; it lives in the
 * library so tests can drive the exact merge/select/diff logic (and
 * the CLI exit codes) against committed fixtures.
 *
 * Flattened names:
 *   stats.json  -> result.ipc, resolved_config.ctrl.queue-depth,
 *                  solver.cg_iterations, ctrl.write_latency.mean
 *                  (stat groups under their own group name, averages
 *                  as .mean/.min/.max/.sum/.count, histogram bucket
 *                  count arrays omitted)
 *   sweep.json  -> <run>.ipc, <run>.avg_read_latency_ns, ... per cell
 *                  (run = "<scheme>__<workload>")
 */

#ifndef LADDER_SIM_STATS_QUERY_HH
#define LADDER_SIM_STATS_QUERY_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"

namespace ladder
{

/** One loaded run: label (the CLI argument) plus flat stats. */
struct StatSource
{
    std::string label;
    std::map<std::string, double> values;
};

/**
 * Shell-style glob over stat names: `*` matches any run of
 * characters (including '.'), `?` any single character; everything
 * else is literal. An empty pattern matches everything.
 */
bool statGlobMatch(const std::string &pattern,
                   const std::string &name);

/**
 * Flatten one parsed sweep.json or stats.json document
 * (auto-detected by shape) into dotted names. Documents of neither
 * shape yield an empty map.
 */
std::map<std::string, double>
flattenStatsDocument(const JsonValue &doc);

/**
 * Load @p path — a sweep.json/stats.json file, or a directory
 * containing one (sweep.json preferred) — into @p out. Returns false
 * with @p error set when no stats file is found or it is empty.
 */
bool loadStatSource(const std::string &path, StatSource &out,
                    std::string &error);

/** One stat compared across two sources (diff mode). */
struct StatDiff
{
    std::string name;
    double base = 0.0;
    double other = 0.0;
    /** (other-base)/|base|; |other| when base == 0. */
    double relDelta = 0.0;
    /** |relDelta| exceeded the threshold. */
    bool flagged = false;
};

/**
 * Compare every glob-selected stat present in both sources. The
 * returned rows are name-ordered; `flagged` marks moves beyond
 * @p threshold in either direction.
 */
std::vector<StatDiff> diffStatSources(const StatSource &base,
                                      const StatSource &other,
                                      const std::string &glob,
                                      double threshold);

/**
 * The full `ladder_query` command: parse @p args (everything after
 * argv[0]), print the merged table or diff to @p out and errors to
 * @p err, and return the process exit code — 0 clean, 1 when a diff
 * found a regression, 2 on usage or load errors.
 *
 *   ladder_query [GLOB] PATH...            merge into one table
 *   ladder_query [GLOB] PATH... --list-stats
 *                                          print the merged table's
 *                                          stat names, one per line
 *   ladder_query diff [GLOB] A B
 *                [threshold=REL]           flag |rel delta|>REL (0.02)
 *
 * Both modes accept format=table|csv|json (default table): csv emits
 * one row per stat, json a machine-readable document ({runs, stats}
 * for merge; {base, other, threshold, flagged, diffs} for diff). The
 * exit contract is format-independent.
 *
 * GLOB is any leading positional that does not name an existing
 * file or directory.
 */
int ladderQueryMain(const std::vector<std::string> &args,
                    std::ostream &out, std::ostream &err);

} // namespace ladder

#endif // LADDER_SIM_STATS_QUERY_HH
