#include "config_resolve.hh"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "trace/workload_frontend.hh"
#include "trace/workloads.hh"

namespace ladder
{

namespace
{

/** All scheme display names, for validation and suggestions. */
std::vector<std::string>
allSchemeNames()
{
    std::vector<std::string> names;
    for (SchemeKind kind :
         {SchemeKind::Baseline, SchemeKind::Location,
          SchemeKind::SplitReset, SchemeKind::Blp,
          SchemeKind::LadderBasic, SchemeKind::LadderEst,
          SchemeKind::LadderEstNoShift, SchemeKind::LadderHybrid,
          SchemeKind::Oracle})
        names.push_back(schemeKindName(kind));
    return names;
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos)
            items.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return items;
}

/**
 * Parse a JSON file into a document, converting the parser's panics
 * into a user-facing fatal() naming the file.
 */
JsonValue
loadJsonFile(const std::string &path, const char *what)
{
    std::ifstream is(path, std::ios::binary);
    if (!is.good())
        fatal("cannot read %s file '%s'", what, path.c_str());
    std::ostringstream buffer;
    buffer << is.rdbuf();
    try {
        return parseJson(buffer.str());
    } catch (const std::exception &e) {
        fatal("%s file '%s' is not valid JSON: %s", what,
              path.c_str(), e.what());
    }
}

/**
 * Validate a CSV/array selection against the workload frontend: the
 * paper's synthetics, the generator families, and structural
 * `trace:<path>` names.
 */
std::vector<std::string>
validateWorkloads(const std::vector<std::string> &selected,
                  const std::string &source)
{
    for (const auto &name : selected)
        validateWorkloadName(name, source);
    if (selected.empty())
        fatal("%s: empty workload selection", source.c_str());
    return selected;
}

/** Validate a CSV/array selection and map it to SchemeKinds. */
std::vector<SchemeKind>
validateSchemes(const std::vector<std::string> &selected,
                const std::string &source)
{
    const std::vector<std::string> known = allSchemeNames();
    std::vector<SchemeKind> kinds;
    for (const auto &name : selected) {
        bool ok = false;
        for (const auto &candidate : known)
            ok |= candidate == name;
        if (!ok) {
            fatal("%s: unknown scheme '%s'%s", source.c_str(),
                  name.c_str(),
                  param_detail::suggestNearest(name, known).c_str());
        }
        kinds.push_back(schemeKindFromName(name));
    }
    if (kinds.empty())
        fatal("%s: empty scheme selection", source.c_str());
    return kinds;
}

using Registry = ParamRegistry<ExperimentConfig>;

/** Shorthand: accessor lambda for a direct ExperimentConfig field. */
#define LADDER_FIELD(expr) \
    [](ExperimentConfig &c) -> decltype(c.expr) & { return c.expr; }

void
registerExperimentParams(Registry &reg)
{
    // ---------------------------------------------------------------
    // Run window and sweep control
    // ---------------------------------------------------------------
    reg.addInt<std::uint64_t>(
        "warmup", LADDER_FIELD(warmupInstr),
        "Functional warmup instructions per core before the measured "
        "window");
    reg.addInt<std::uint64_t>(
        "measure", LADDER_FIELD(measureInstr),
        "Measured-window instructions per core", 1);
    reg.addInt<std::uint64_t>(
        "seed", LADDER_FIELD(seed),
        "Master RNG seed for synthetic traffic and data patterns");
    reg.addInt<unsigned>(
           "jobs", LADDER_FIELD(jobs),
           "Parallel sweep jobs (0 = one per hardware thread, 1 = "
           "serial); results are bit-identical at any value",
           0, 1024)
        .inManifest = false;
    reg.addDouble("cache-scale", LADDER_FIELD(cacheScale),
                  "Scale factor on L2/L3 capacities and working sets",
                  1e-3, 16.0);
    reg.addDouble("range-shrink", LADDER_FIELD(rangeShrink),
                  "RESET-latency dynamic-range shrink factor (§7 "
                  "process-variation ablation)",
                  1e-3, 1e3);
    reg.addInt<unsigned>(
        "granularity", LADDER_FIELD(granularity),
        "Counter/table granularity: WL/BL buckets per timing table "
        "axis",
        1, 64);
    reg.addEnum<FnwMode>(
        "fnw-mode", LADDER_FIELD(fnwMode),
        "Flip-N-Write mode applied by the controllers",
        {{"off", FnwMode::Off},
         {"classical", FnwMode::Classical},
         {"constrained", FnwMode::Constrained}});
    reg.addBool("mna", LADDER_FIELD(checkMna),
                "Cross-check derived latency surfaces against the "
                "full MNA solver (fig11; slower)");
    reg.addBool("stats", LADDER_FIELD(printStats),
                "Print the full statistics tree after single runs")
        .inManifest = false;

    // ---------------------------------------------------------------
    // Output: stats export and event traces
    // ---------------------------------------------------------------
    reg.addString("stats-json", LADDER_FIELD(statsJsonDir),
                  "Directory for per-run stats.json and the sweep "
                  "index ('' = off)")
        .inManifest = false;
    reg.addString("trace-out", LADDER_FIELD(traceOutDir),
                  "Directory for per-run write/read event traces "
                  "('' = off)")
        .inManifest = false;
    reg.addChoice("trace-format", LADDER_FIELD(traceFormat),
                  "Trace encoding", {"csv", "bin", "bin2"});
    reg.addBool("trace-stream", LADDER_FIELD(traceStream),
                "Stream traces to disk during the run in bounded "
                "memory (csv/bin2 only)");
    reg.addBool("trace.attribution",
                LADDER_FIELD(system.controller.attribution),
                "Per-write causal blame decomposition: v3 trace "
                "records, blame stats/histograms, and live blame-rate "
                "counters (csv/bin2 traces only; off = byte-identical "
                "legacy outputs)")
        .inManifest = false;
    reg.addInt<std::uint64_t>(
        "trace-chunk", LADDER_FIELD(traceChunkRecords),
        "Records per streamed/bin2 trace chunk", 1,
        std::uint64_t(1) << 30);
    reg.addInt<std::uint64_t>(
        "epoch-cycles", LADDER_FIELD(epochCycles),
        "Core cycles per epoch stat snapshot (0 = no epoch series)");
    reg.addBool("volatile-manifest", LADDER_FIELD(volatileManifest),
                "Include wall clock and job count in JSON manifests "
                "(breaks byte-identity across runs)")
        .inManifest = false;
    reg.addString("profile-out", LADDER_FIELD(profileOut),
                  "Write a Chrome-trace/Perfetto host+sim timeline "
                  "JSON to this path ('' = off)")
        .inManifest = false;
    reg.addBool("profile", LADDER_FIELD(profileSummary),
                "Print an aggregate per-span host profile to stderr "
                "after the run")
        .inManifest = false;

    // ---------------------------------------------------------------
    // Live telemetry (sim/telemetry; all manifest-excluded so goldens
    // and jobs= byte-identity are untouched by observability knobs)
    // ---------------------------------------------------------------
    reg.addInt<std::uint64_t>(
           "telemetry.interval-ms", LADDER_FIELD(telemetryIntervalMs),
           "Heartbeat.json sampling period in ms (0 = off)", 0,
           3'600'000)
        .inManifest = false;
    reg.addString("telemetry.out", LADDER_FIELD(telemetryOut),
                  "Heartbeat directory ('' = the stats-json "
                  "directory)")
        .inManifest = false;
    reg.addInt<unsigned>(
           "telemetry.watchdog-intervals",
           LADDER_FIELD(telemetryWatchdogIntervals),
           "Stalled-sim-tick samples before the watchdog warns with "
           "the active profiler spans (0 = off)",
           0, 1'000'000)
        .inManifest = false;
    reg.addChoice("progress", LADDER_FIELD(progress),
                  "Final one-line run summary on stderr ('auto' only "
                  "prints on a TTY)",
                  {"off", "auto"})
        .inManifest = false;

    // ---------------------------------------------------------------
    // Write-scheme options
    // ---------------------------------------------------------------
    reg.addInt<unsigned>(
        "scheme.hybrid-low-rows",
        LADDER_FIELD(schemeOptions.hybridLowRows),
        "LADDER-Hybrid: rows nearest the driver tracked accurately",
        1, 4096);
    reg.addBool("scheme.shifting", LADDER_FIELD(schemeOptions.shifting),
                "LADDER-Est: shift estimated counters toward the "
                "observed write content");

    // ---------------------------------------------------------------
    // Latency-surface hot path (host-performance switches; all
    // manifest-excluded: results are bit-identical either way, so
    // resolved-config manifests and goldens must not change)
    // ---------------------------------------------------------------
    reg.addBool("latency.surface",
                LADDER_FIELD(system.controller.latencySurface),
                "Resolve per-write timings through the dense "
                "precomputed latency surfaces (O(1) lookups; "
                "bit-identical to the bucketed tables)")
        .inManifest = false;
    reg.addBool("latency.surface-check",
                LADDER_FIELD(system.latencySurfaceCheck),
                "Verify every surface cell against its table and the "
                "circuit model at init; fatal on violation")
        .inManifest = false;
    reg.addDouble("latency.error-budget",
                  LADDER_FIELD(system.latencyErrorBudget),
                  "Relative latency error the surface check tolerates "
                  "against the circuit model",
                  0.0, 1.0)
        .inManifest = false;

    // ---------------------------------------------------------------
    // Memory geometry (SystemConfig template)
    // ---------------------------------------------------------------
    reg.addInt<unsigned>("geom.channels",
                         LADDER_FIELD(system.geometry.channels),
                         "Memory channels", 1, 16);
    reg.addInt<unsigned>("geom.ranks",
                         LADDER_FIELD(system.geometry.ranksPerChannel),
                         "Ranks per channel", 1, 16);
    reg.addInt<unsigned>("geom.banks",
                         LADDER_FIELD(system.geometry.banksPerRank),
                         "Banks per rank", 1, 64);
    reg.addInt<unsigned>("geom.chips",
                         LADDER_FIELD(system.geometry.chipsPerRank),
                         "Chips per rank", 1, 64);
    reg.addInt<unsigned>(
        "geom.mat-groups", LADDER_FIELD(system.geometry.matGroupsPerBank),
        "64-mat groups per bank", 1, 1024);
    reg.addInt<unsigned>("geom.mat-rows",
                         LADDER_FIELD(system.geometry.matRows),
                         "Wordlines per mat", 8, 65536);
    reg.addInt<unsigned>("geom.mat-cols",
                         LADDER_FIELD(system.geometry.matCols),
                         "Bitlines per mat", 8, 65536);

    // ---------------------------------------------------------------
    // Crossbar / circuit model
    // ---------------------------------------------------------------
    reg.addInt<std::size_t>("xbar.rows",
                            LADDER_FIELD(system.crossbar.rows),
                            "Crossbar wordlines", 8, 4096);
    reg.addInt<std::size_t>("xbar.cols",
                            LADDER_FIELD(system.crossbar.cols),
                            "Crossbar bitlines", 8, 4096);
    reg.addInt<std::size_t>(
        "xbar.selected-cells",
        LADDER_FIELD(system.crossbar.selectedCells),
        "Bits RESET per mat per write", 1, 64);
    reg.addDouble("xbar.lrs-ohms", LADDER_FIELD(system.crossbar.lrsOhms),
                  "LRS resistance", 1.0, 1e9);
    reg.addDouble("xbar.hrs-ohms", LADDER_FIELD(system.crossbar.hrsOhms),
                  "HRS resistance", 1.0, 1e12);
    reg.addDouble("xbar.nonlinearity",
                  LADDER_FIELD(system.crossbar.selectorNonlinearity),
                  "Selector nonlinearity", 1.0, 1e6);
    reg.addDouble("xbar.input-ohms",
                  LADDER_FIELD(system.crossbar.inputOhms),
                  "Wordline driver resistance", 0.0, 1e6);
    reg.addDouble("xbar.output-ohms",
                  LADDER_FIELD(system.crossbar.outputOhms),
                  "Bitline driver resistance", 0.0, 1e6);
    reg.addDouble("xbar.wire-ohms",
                  LADDER_FIELD(system.crossbar.wireOhms),
                  "Per-segment wire resistance", 0.0, 1e4);
    reg.addDouble("xbar.write-volts",
                  LADDER_FIELD(system.crossbar.writeVolts),
                  "RESET voltage", 0.1, 10.0);
    reg.addDouble("xbar.bias-volts",
                  LADDER_FIELD(system.crossbar.biasVolts),
                  "Half-select bias voltage", 0.0, 10.0);
    reg.addDouble("xbar.wl-sneak-scale",
                  LADDER_FIELD(system.crossbar.wlSneakScale),
                  "Calibration boost on selected-wordline sneak "
                  "conductance",
                  0.1, 100.0);
    reg.addDouble("xbar.bl-sneak-scale",
                  LADDER_FIELD(system.crossbar.blSneakScale),
                  "Calibration boost on selected-bitline sneak "
                  "conductance",
                  0.1, 100.0);

    // ---------------------------------------------------------------
    // Memory controller
    // ---------------------------------------------------------------
    reg.addInt<unsigned>(
        "ctrl.read-queue",
        LADDER_FIELD(system.controller.readQueueEntries),
        "Read queue entries per channel", 1, 1024);
    reg.addInt<unsigned>(
        "ctrl.write-queue",
        LADDER_FIELD(system.controller.writeQueueEntries),
        "Write queue entries per channel", 1, 4096);
    reg.addDouble("ctrl.drain-high",
                  LADDER_FIELD(system.controller.drainHighWatermark),
                  "Write-queue fill fraction that starts a drain", 0.0,
                  1.0);
    reg.addDouble("ctrl.drain-low",
                  LADDER_FIELD(system.controller.drainLowWatermark),
                  "Write-queue fill fraction that stops a drain", 0.0,
                  1.0);
    reg.addDouble("ctrl.trcd-ns",
                  LADDER_FIELD(system.controller.tRcdNs),
                  "Row-to-column delay", 0.0, 1e3);
    reg.addDouble("ctrl.tcl-ns", LADDER_FIELD(system.controller.tClNs),
                  "Column access latency", 0.0, 1e3);
    reg.addDouble("ctrl.tburst-ns",
                  LADDER_FIELD(system.controller.tBurstNs),
                  "Data burst time", 0.0, 1e3);
    reg.addInt<unsigned>(
        "ctrl.subarrays",
        LADDER_FIELD(system.controller.subarraysPerBank),
        "Concurrent mat-group subarrays per bank", 1, 64);
    reg.addInt<std::size_t>(
        "ctrl.metadata-cache-bytes",
        LADDER_FIELD(system.controller.metadataCacheBytes),
        "Controller metadata cache capacity in bytes", 1024,
        std::size_t(64) * 1024 * 1024);
    reg.addInt<unsigned>(
        "ctrl.metadata-ways",
        LADDER_FIELD(system.controller.metadataCacheWays),
        "Controller metadata cache associativity", 1, 64);
    reg.addInt<unsigned>(
        "ctrl.spill-entries",
        LADDER_FIELD(system.controller.spillBufferEntries),
        "Spill buffer entries (LADDER-Hybrid accurate counters)", 1,
        1024);
    reg.addDouble("ctrl.read-energy-pj",
                  LADDER_FIELD(system.controller.readEnergyPj),
                  "Energy per demand/metadata/SMB read", 0.0, 1e6);
    reg.addDouble("ctrl.transition-energy-pj",
                  LADDER_FIELD(system.controller.transitionEnergyPj),
                  "Energy per cell switched on writes", 0.0, 1e6);
    reg.addInt<unsigned>(
           "ctrl.channel-threads",
           LADDER_FIELD(system.controller.channelThreads),
           "Channel-engine workers (0 = legacy shared event queue; "
           "any N >= 1 runs per-channel queues with barrier commit, "
           "byte-identical across every N >= 1)",
           0, 256)
        .inManifest = false;
    reg.addDouble("ctrl.lookahead",
                  LADDER_FIELD(system.controller.lookaheadNs),
                  "Channel-engine barrier window in ns (0 = auto: "
                  "tRCD + tCL); fixed lookahead keeps results "
                  "invariant across worker counts",
                  0.0, 1e6)
        .inManifest = false;
    reg.addChoice("pool.pin", LADDER_FIELD(system.poolPin),
                  "Channel-worker CPU affinity (host hint only)",
                  {"off", "cores"})
        .inManifest = false;

    // ---------------------------------------------------------------
    // Cache hierarchy
    // ---------------------------------------------------------------
    reg.addInt<std::size_t>("cache.l1-bytes",
                            LADDER_FIELD(system.caches.l1.sizeBytes),
                            "Per-core L1 capacity in bytes", 4096,
                            std::size_t(1) << 30);
    reg.addInt<unsigned>("cache.l1-ways",
                         LADDER_FIELD(system.caches.l1.ways),
                         "L1 associativity", 1, 64);
    reg.addInt<std::size_t>("cache.l2-bytes",
                            LADDER_FIELD(system.caches.l2.sizeBytes),
                            "Per-core L2 capacity in bytes", 4096,
                            std::size_t(1) << 32);
    reg.addInt<unsigned>("cache.l2-ways",
                         LADDER_FIELD(system.caches.l2.ways),
                         "L2 associativity", 1, 64);
    reg.addInt<std::size_t>("cache.l3-bytes",
                            LADDER_FIELD(system.caches.l3.sizeBytes),
                            "Shared L3 capacity in bytes", 4096,
                            std::size_t(1) << 36);
    reg.addInt<unsigned>("cache.l3-ways",
                         LADDER_FIELD(system.caches.l3.ways),
                         "L3 associativity", 1, 64);
    reg.addDouble("cache.l1-hit-ns",
                  LADDER_FIELD(system.caches.l1HitNs), "L1 hit latency",
                  0.0, 100.0);
    reg.addDouble("cache.l2-hit-ns",
                  LADDER_FIELD(system.caches.l2HitNs), "L2 hit latency",
                  0.0, 100.0);
    reg.addDouble("cache.l3-hit-ns",
                  LADDER_FIELD(system.caches.l3HitNs), "L3 hit latency",
                  0.0, 100.0);

    // ---------------------------------------------------------------
    // Cores
    // ---------------------------------------------------------------
    reg.addDouble("core.freq-ghz", LADDER_FIELD(system.core.freqGhz),
                  "Core clock frequency", 0.1, 10.0);
    reg.addInt<unsigned>("core.width", LADDER_FIELD(system.core.width),
                         "Retire width", 1, 16);
    reg.addInt<unsigned>("core.rob", LADDER_FIELD(system.core.robSize),
                         "Reorder buffer entries", 16, 4096);
    reg.addInt<unsigned>("core.mshrs",
                         LADDER_FIELD(system.core.maxOutstanding),
                         "Outstanding misses to memory per core", 1,
                         256);
    reg.addInt<unsigned>("core.quantum",
                         LADDER_FIELD(system.core.quantum),
                         "Trace records per core activation", 1,
                         65536);
    reg.addInt<unsigned>("core.writeback-stall",
                         LADDER_FIELD(system.core.writebackStall),
                         "Buffered writebacks before the core stalls",
                         1, 256);

    // ---------------------------------------------------------------
    // System-level workload shaping
    // ---------------------------------------------------------------
    reg.addDouble("sys.working-set-scale",
                  LADDER_FIELD(system.workingSetScale),
                  "Scale factor on per-core working sets", 1e-3, 64.0);
    reg.addDouble("sys.data-page-fraction",
                  LADDER_FIELD(system.dataPageFraction),
                  "Fraction of pages holding data (rest is metadata)",
                  0.05, 1.0);
    reg.addDouble("sys.background-density",
                  LADDER_FIELD(system.backgroundDensity),
                  "LRS fraction of untouched background rows", 0.0,
                  1.0);
    // paper-scale applies the paper's cache/working-set sizes when
    // set, at its position in the layering: later keys (for example
    // cache.l3-bytes) can still override individual fields.
    reg.addBool("sys.paper-scale",
                LADDER_FIELD(system.paperScale),
                "Apply the paper's full-scale cache and working-set "
                "sizes (Table 2)")
        .set = [](ExperimentConfig &c, const std::string &value,
                  const std::string &source) {
        bool parsed = false;
        if (!param_detail::parseBoolStrict(value, parsed)) {
            param_detail::valueError(
                source, "sys.paper-scale", value,
                "is not a boolean (true/false/1/0/yes/no)",
                "Apply the paper's full-scale cache and working-set "
                "sizes (Table 2)");
        }
        if (parsed)
            applyPaperScale(c.system);
        else
            c.system.paperScale = false;
    };

    // ---------------------------------------------------------------
    // External trace replay (trace:<path> workloads)
    // ---------------------------------------------------------------
    reg.addChoice("extern.format",
                  LADDER_FIELD(system.frontend.externFormat),
                  "External trace:<path> encoding ('auto' sniffs the "
                  "bin2 magic, else DRAMsim3 text)",
                  {"auto", "dramsim3", "bin2"});
    reg.addInt<std::uint64_t>(
        "extern.footprint-pages",
        LADDER_FIELD(system.frontend.externFootprintPages),
        "Replay footprint in 4KB pages; external line addresses fold "
        "into it (lineIdx % footprintLines)",
        1, std::uint64_t(1) << 24);
    reg.addChoice("extern.content",
                  LADDER_FIELD(system.frontend.externContent),
                  "Write-content synthesis for payload-less traces: "
                  "typed pattern words or recorded-LRS popcounts",
                  {"auto", "pattern", "lrs"});

    // ---------------------------------------------------------------
    // Wear policy
    // ---------------------------------------------------------------
    reg.addInt<unsigned>("wear.psi", LADDER_FIELD(wear.startGapPsi),
                         "Start-Gap: data writes between gap moves", 1,
                         1u << 20);
    reg.addDouble("wear.endurance", LADDER_FIELD(wear.cellEndurance),
                  "Mean cell endurance in writes", 1e3, 1e12);
    reg.addDouble("wear.leveling-efficiency",
                  LADDER_FIELD(wear.levelingEfficiency),
                  "Fraction of ideal write spreading the deployed "
                  "wear-leveling achieves",
                  0.0, 1.0);
}

#undef LADDER_FIELD

/** Most deeply nested include= chain a sweep spec may form. */
constexpr std::size_t maxSweepIncludeDepth = 16;

/**
 * Apply a sweep-spec document to the resolution in progress.
 * @p stack holds the canonical paths of the files currently being
 * applied, outermost first — the cycle detector and depth limiter for
 * include= chains. Included files apply *before* the including
 * file's own keys, so the includer overrides what it includes (same
 * later-wins layering as the rest of the config spine).
 */
void
applySweepSpec(const JsonValue &spec, const std::string &path,
               ResolvedExperiment &out,
               std::vector<std::string> &stack)
{
    if (!spec.isObject())
        fatal("sweep file '%s': top level must be a JSON object",
              path.c_str());
    static const std::vector<std::string> knownKeys = {
        "include", "schemes", "workloads", "params", "cells"};
    for (const auto &member : spec.object) {
        bool ok = false;
        for (const auto &key : knownKeys)
            ok |= key == member.first;
        if (!ok) {
            fatal("sweep file '%s': unknown key '%s'%s (expected "
                  "include/schemes/workloads/params/cells)",
                  path.c_str(), member.first.c_str(),
                  param_detail::suggestNearest(member.first, knownKeys)
                      .c_str());
        }
    }
    if (spec.has("include")) {
        const JsonValue &inc = spec.at("include");
        std::vector<std::string> files;
        if (inc.type == JsonValue::Type::String) {
            files.push_back(inc.string);
        } else if (inc.isArray()) {
            for (const JsonValue &item : inc.array) {
                if (item.type != JsonValue::Type::String)
                    fatal("sweep file '%s': 'include' must be a path "
                          "or an array of paths",
                          path.c_str());
                files.push_back(item.string);
            }
        } else {
            fatal("sweep file '%s': 'include' must be a path or an "
                  "array of paths",
                  path.c_str());
        }
        for (const std::string &file : files) {
            // Relative to the including file, not the process cwd,
            // so sweep libraries compose from any invocation dir.
            std::filesystem::path resolved(file);
            if (resolved.is_relative())
                resolved =
                    std::filesystem::path(path).parent_path() / file;
            std::error_code ec;
            std::filesystem::path canonical =
                std::filesystem::weakly_canonical(resolved, ec);
            const std::string key =
                ec ? resolved.string() : canonical.string();
            for (const std::string &open : stack) {
                if (open == key) {
                    std::string chain;
                    for (const std::string &p : stack)
                        chain += p + " -> ";
                    chain += key;
                    fatal("sweep file '%s': include cycle: %s",
                          path.c_str(), chain.c_str());
                }
            }
            if (stack.size() >= maxSweepIncludeDepth)
                fatal("sweep file '%s': include chain deeper than "
                      "%zu files",
                      path.c_str(), maxSweepIncludeDepth);
            JsonValue doc = loadJsonFile(resolved.string(), "sweep");
            stack.push_back(key);
            applySweepSpec(doc, resolved.string(), out, stack);
            stack.pop_back();
        }
    }
    auto stringList = [&](const char *key) {
        std::vector<std::string> items;
        const JsonValue &list = spec.at(key);
        if (!list.isArray())
            fatal("sweep file '%s': '%s' must be an array of strings",
                  path.c_str(), key);
        for (const JsonValue &item : list.array) {
            if (item.type != JsonValue::Type::String)
                fatal("sweep file '%s': '%s' must be an array of "
                      "strings",
                      path.c_str(), key);
            items.push_back(item.string);
        }
        return items;
    };
    if (spec.has("schemes")) {
        out.schemes = validateSchemes(stringList("schemes"),
                                      "sweep file '" + path + "'");
        out.schemesExplicit = true;
    }
    if (spec.has("workloads")) {
        out.workloads = validateWorkloads(stringList("workloads"),
                                          "sweep file '" + path + "'");
        out.workloadsExplicit = true;
    }
    if (spec.has("params")) {
        experimentRegistry().applyJson(out.config, spec.at("params"),
                                       "sweep file '" + path + "'");
    }
    if (spec.has("cells")) {
        const std::string source = "sweep file '" + path + "'";
        const JsonValue &cells = spec.at("cells");
        if (!cells.isArray())
            fatal("%s: 'cells' must be an array of {scheme, "
                  "workload, params} objects",
                  source.c_str());
        for (const JsonValue &cell : cells.array) {
            if (!cell.isObject())
                fatal("%s: each 'cells' entry must be an object",
                      source.c_str());
            static const std::vector<std::string> cellKeys = {
                "scheme", "workload", "params"};
            for (const auto &member : cell.object) {
                bool ok = false;
                for (const auto &key : cellKeys)
                    ok |= key == member.first;
                if (!ok)
                    fatal("%s: unknown cell key '%s'%s (expected "
                          "scheme/workload/params)",
                          source.c_str(), member.first.c_str(),
                          param_detail::suggestNearest(member.first,
                                                       cellKeys)
                              .c_str());
            }
            SweepCellOverride ov;
            auto cellName = [&](const char *key) {
                const JsonValue &v = cell.at(key);
                if (v.type != JsonValue::Type::String)
                    fatal("%s: cell '%s' must be a name or \"*\"",
                          source.c_str(), key);
                return v.string;
            };
            if (cell.has("scheme")) {
                ov.scheme = cellName("scheme");
                if (ov.scheme != "*")
                    validateSchemes({ov.scheme}, source);
            }
            if (cell.has("workload")) {
                ov.workload = cellName("workload");
                if (ov.workload != "*")
                    validateWorkloads({ov.workload}, source);
            }
            if (!cell.has("params") ||
                !cell.at("params").isObject())
                fatal("%s: each 'cells' entry needs a 'params' "
                      "object",
                      source.c_str());
            // Validate every assignment now (types, ranges, unknown
            // keys fail at resolve, not mid-sweep) on a scratch copy,
            // and keep the stringified form for per-cell application.
            ExperimentConfig scratch = out.config;
            for (const auto &member : cell.at("params").object) {
                const JsonValue &v = member.second;
                std::string text;
                switch (v.type) {
                case JsonValue::Type::String:
                    text = v.string;
                    break;
                case JsonValue::Type::Number:
                    text = param_detail::formatDouble(v.number);
                    break;
                case JsonValue::Type::Bool:
                    text = v.boolean ? "true" : "false";
                    break;
                default:
                    fatal("%s: cell param '%s' must be a scalar",
                          source.c_str(), member.first.c_str());
                }
                experimentRegistry().set(scratch, member.first, text,
                                         source);
                ov.params.emplace_back(member.first, text);
            }
            out.config.cellOverrides.push_back(std::move(ov));
        }
    }
}

} // namespace

const ParamRegistry<ExperimentConfig> &
experimentRegistry()
{
    static const ParamRegistry<ExperimentConfig> registry = []() {
        ParamRegistry<ExperimentConfig> reg;
        registerExperimentParams(reg);
        return reg;
    }();
    return registry;
}

ResolvedExperiment
resolveExperiment(int argc, const char *const *argv,
                  ExperimentConfig base)
{
    ResolvedExperiment out;
    out.config = std::move(base);

    // One scan splits argv into meta keys (config=, sweep=, the
    // scheme/workload selections, the -- flags) and ordered registry
    // assignments; the layers are then applied defaults -> config
    // file -> sweep params -> CLI so later layers win.
    struct Assignment
    {
        std::string key;
        std::string value;
    };
    std::vector<Assignment> cli;
    std::string schemeCsv, workloadCsv;
    bool schemesFromCli = false, workloadsFromCli = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--dump-config") {
            out.dumpRequested = true;
            continue;
        }
        if (arg == "--help-config") {
            out.helpRequested = true;
            continue;
        }
        if (arg == "--help-config=md") {
            out.helpRequested = true;
            out.helpFormat = "md";
            continue;
        }
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0) {
            fatal("command line: unexpected argument '%s' (every "
                  "option is key=value; see --help-config)",
                  arg.c_str());
        }
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "config") {
            if (!out.configFile.empty())
                fatal("command line: config= given twice ('%s' and "
                      "'%s')",
                      out.configFile.c_str(), value.c_str());
            out.configFile = value;
        } else if (key == "sweep") {
            if (!out.sweepFile.empty())
                fatal("command line: sweep= given twice ('%s' and "
                      "'%s')",
                      out.sweepFile.c_str(), value.c_str());
            out.sweepFile = value;
        } else if (key == "scheme" || key == "schemes") {
            schemeCsv = value;
            schemesFromCli = true;
        } else if (key == "workload" || key == "workloads") {
            workloadCsv = value;
            workloadsFromCli = true;
        } else {
            cli.push_back({key, value});
        }
    }

    const Registry &reg = experimentRegistry();
    if (!out.configFile.empty()) {
        JsonValue doc = loadJsonFile(out.configFile, "config");
        reg.applyJson(out.config, doc,
                      "config file '" + out.configFile + "'");
    }
    if (!out.sweepFile.empty()) {
        JsonValue doc = loadJsonFile(out.sweepFile, "sweep");
        std::error_code ec;
        std::filesystem::path canonical =
            std::filesystem::weakly_canonical(out.sweepFile, ec);
        std::vector<std::string> stack{
            ec ? out.sweepFile : canonical.string()};
        applySweepSpec(doc, out.sweepFile, out, stack);
    }
    for (const Assignment &a : cli) {
        reg.set(out.config, a.key, a.value, "command line");
        // Remembered for per-cell reapplication: sweep-spec "cells"
        // overrides apply inside runOne, and the CLI must still win.
        out.config.cliAssignments.emplace_back(a.key, a.value);
    }

    // CLI scheme/workload selections override the sweep spec's lists.
    if (schemesFromCli) {
        out.schemes =
            validateSchemes(splitCsv(schemeCsv), "command line");
        out.schemesExplicit = true;
    }
    if (workloadsFromCli) {
        out.workloads =
            validateWorkloads(splitCsv(workloadCsv), "command line");
        out.workloadsExplicit = true;
    }
    return out;
}

void
dumpEffectiveConfig(const ExperimentConfig &config, std::ostream &os)
{
    JsonWriter json(os);
    experimentRegistry().dumpJson(
        config, json, ParamRegistry<ExperimentConfig>::Scope::All);
    os << "\n";
}

} // namespace ladder
