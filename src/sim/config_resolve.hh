/**
 * @file
 * Declarative experiment configuration: the LADDER parameter bindings
 * and the layered resolver every bench and driver runs through.
 *
 * experimentRegistry() declares every tunable of ExperimentConfig —
 * including the embedded SystemConfig template (geometry, crossbar,
 * controller, caches, cores), SchemeOptions, and the wear-policy
 * knobs — exactly once, with type, range, and doc string.
 *
 * resolveExperiment() layers the configuration with strict
 * precedence:
 *
 *     compiled defaults  <  config=<file>.json  <  sweep=<file>
 *     "params"           <  CLI key=value (in argv order)
 *
 * Unknown keys, type errors, and out-of-range values are hard errors
 * everywhere (with near-miss suggestions). The resolved config is
 * serialized into every run manifest (see stats_export) and can be
 * dumped as loadable JSON with --dump-config.
 *
 * A sweep-spec file (`sweep=<file>`) declares the cell grid as data:
 *
 *     {
 *       "schemes":   ["baseline", "LADDER-Hybrid"],
 *       "workloads": ["lbm", "astar"],
 *       "params":    { "measure": 40000, "epoch-cycles": 10000 }
 *     }
 *
 * The schemes x workloads product is exactly the grid
 * runMatrixParallel executes; `params` go through the registry like
 * any other layer. CLI `scheme=`/`workload=` selections override the
 * spec's lists.
 */

#ifndef LADDER_SIM_CONFIG_RESOLVE_HH
#define LADDER_SIM_CONFIG_RESOLVE_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/param_registry.hh"
#include "sim/experiment.hh"

namespace ladder
{

/** The one registry binding every LADDER tunable to its field. */
const ParamRegistry<ExperimentConfig> &experimentRegistry();

/** Outcome of resolving one driver invocation. */
struct ResolvedExperiment
{
    /** The fully-layered configuration. */
    ExperimentConfig config;
    /** Selected workloads (valid names); empty = caller's default. */
    std::vector<std::string> workloads;
    /** Selected schemes; empty = caller's default. */
    std::vector<SchemeKind> schemes;
    bool workloadsExplicit = false;
    bool schemesExplicit = false;
    /** --dump-config / --help-config were requested; the caller
     *  prints (dumpEffectiveConfig / registry help) and exits. */
    bool dumpRequested = false;
    bool helpRequested = false;
    /**
     * --help-config output format: "" (fixed-width text listing) or
     * "md" (markdown table via ParamRegistry::helpMarkdown, consumed
     * by scripts/update_experiments_params.py).
     */
    std::string helpFormat;
    /** config=/sweep= file paths, for diagnostics ("" = none). */
    std::string configFile;
    std::string sweepFile;
};

/**
 * Resolve an experiment invocation from @p argv over the @p base
 * defaults. Recognizes the meta keys `config=`, `sweep=`,
 * `scheme[s]=`, `workload[s]=` (CSV lists, validated against the
 * known scheme/workload names) and the flags `--dump-config` /
 * `--help-config`; every other token must be a registered
 * `key=value` or the resolve fails with fatal(). Never exits or
 * prints — callers act on dumpRequested/helpRequested.
 */
ResolvedExperiment resolveExperiment(int argc,
                                     const char *const *argv,
                                     ExperimentConfig base);

/**
 * Emit the effective config as one flat JSON object, loadable back
 * via `config=`. This is the --dump-config output (Scope::All: every
 * parameter, including output paths).
 */
void dumpEffectiveConfig(const ExperimentConfig &config,
                         std::ostream &os);

} // namespace ladder

#endif // LADDER_SIM_CONFIG_RESOLVE_HH
