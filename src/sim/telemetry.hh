/**
 * @file
 * Live telemetry: a background publisher thread samples the metrics
 * registry (common/metrics) every `telemetry.interval-ms` and
 * atomically renames a `heartbeat.json` snapshot into the run
 * directory, so `ladder_top` (or any script) can watch queue depths,
 * throughput, and sweep progress *while the run executes*. The
 * publisher doubles as a watchdog: when the simulated tick stops
 * advancing for `telemetry.watchdog-intervals` consecutive samples
 * mid-sweep, it logs a warning naming the profiler spans each thread
 * is currently inside.
 *
 * Heartbeats are written to `<dir>/heartbeat.json.tmp` and renamed
 * over `<dir>/heartbeat.json`, so readers never observe a torn file;
 * the schema carries a version and a monotonic sequence number. The
 * final heartbeat (published on stop) stays on disk for post-mortem
 * inspection — it is volatile output, excluded from byte-identity
 * comparisons (CI diffs run with `-x 'heartbeat.json*'`).
 *
 * Every telemetry knob is manifest-excluded: resolved-config
 * manifests, goldens, and jobs= byte-identity are unaffected whether
 * telemetry is on or off.
 */

#ifndef LADDER_SIM_TELEMETRY_HH
#define LADDER_SIM_TELEMETRY_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "sim/experiment.hh"

namespace ladder
{

/** Version written into (and required from) heartbeat files. */
inline constexpr int heartbeatSchemaVersion = 1;

/** File name the publisher renames snapshots onto. */
inline constexpr const char *heartbeatFileName = "heartbeat.json";

/** One decoded heartbeat snapshot. */
struct Heartbeat
{
    int schemaVersion = heartbeatSchemaVersion;
    std::uint64_t seq = 0;        //!< monotonic per publisher session
    std::uint64_t wallUnixMs = 0; //!< wall clock at sample time
    std::uint64_t uptimeMs = 0;   //!< since the publisher started
    std::uint64_t intervalMs = 0; //!< configured sampling period
    std::uint64_t simTick = 0;    //!< latest controller dispatch tick
    std::uint64_t cellsDone = 0;  //!< sweep cells finished
    std::uint64_t cellsTotal = 0; //!< sweep cells planned (0 unknown)
    double etaSeconds = -1.0;     //!< wall-time estimate (<0 unknown)
    /** Aggregated counters and gauges, by registry name. */
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> gauges;
    /** Counter deltas per wall second since the previous sample. */
    std::map<std::string, double> ratesPerSec;
};

/** Serialize @p hb as a deterministic single JSON object. */
void writeHeartbeatJson(std::ostream &os, const Heartbeat &hb);

/**
 * Parse a heartbeat document from @p text. Returns false with
 * @p error set on malformed JSON, a missing field, or a schema
 * version we do not understand — tolerant by design, since readers
 * race run teardown and may meet unrelated files.
 */
bool parseHeartbeat(const std::string &text, Heartbeat &out,
                    std::string &error);

/** parseHeartbeat on the contents of @p path (or `path/heartbeat.json`
 *  when @p path is a directory). */
bool readHeartbeatFile(const std::string &path, Heartbeat &out,
                       std::string &error);

/** Publisher knobs, derived from an ExperimentConfig. */
struct TelemetryOptions
{
    std::uint64_t intervalMs = 0; //!< 0 = publisher off
    std::string dir;              //!< heartbeat directory
    unsigned watchdogIntervals = 10; //!< 0 = watchdog off

    bool
    active() const
    {
        return intervalMs > 0 && !dir.empty();
    }
};

/** Derive publisher knobs: interval and watchdog from the telemetry
 *  params, directory from telemetry.out falling back to stats-json. */
TelemetryOptions telemetryOptions(const ExperimentConfig &config);

/**
 * The background sampler. Construction starts the thread; stop() (or
 * destruction) publishes one final heartbeat and joins. Requires
 * metrics::enable() to have been called by the owner.
 */
class TelemetryPublisher
{
  public:
    explicit TelemetryPublisher(const TelemetryOptions &options);
    ~TelemetryPublisher();

    TelemetryPublisher(const TelemetryPublisher &) = delete;
    TelemetryPublisher &operator=(const TelemetryPublisher &) = delete;

    /** Publish a final heartbeat and join the thread (idempotent). */
    void stop();

    /** Heartbeats published so far (tests). */
    std::uint64_t published() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * RAII wrapper the run drivers use: enables the metrics registry when
 * telemetry or a progress summary wants it, registers the sweep
 * gauges, owns the publisher, and on destruction stops the publisher
 * and prints the `progress=` one-line summary (cells, wall time,
 * writes/sec) to stderr when active.
 */
class TelemetryScope
{
  public:
    TelemetryScope(const ExperimentConfig &config,
                   std::uint64_t cellsTotal);
    ~TelemetryScope();

    TelemetryScope(const TelemetryScope &) = delete;
    TelemetryScope &operator=(const TelemetryScope &) = delete;

    /** Count one finished sweep cell (any thread). */
    void noteCellDone();

    /**
     * Stop the heartbeat publisher early (it writes the final
     * heartbeat). Call before profile export: prof::collect() needs
     * every recording thread — including the publisher, which mirrors
     * gauges onto counter tracks — quiescent. The progress summary
     * still prints at scope exit.
     */
    void stopPublisher();

  private:
    bool metricsWanted_ = false;
    bool summaryWanted_ = false;
    std::uint32_t cellsDoneId_ = 0;
    std::chrono::steady_clock::time_point start_;
    std::unique_ptr<TelemetryPublisher> publisher_;
};

} // namespace ladder

#endif // LADDER_SIM_TELEMETRY_HH
