#include "stats_export.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "circuit/solvers.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "sim/config_resolve.hh"

namespace ladder
{

namespace
{

/** UTC wall clock as `YYYY-MM-DDTHH:MM:SSZ` (volatile manifests). */
std::string
utcNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
writeSolverJson(JsonWriter &json)
{
    SolverCounters c = SolverInstrumentation::instance().snapshot();
    json.beginObject();
    json.field("cg_solves", c.cgSolves);
    json.field("cg_iterations", c.cgIterations);
    json.field("cg_stalls", c.cgStalls);
    json.field("cg_max_residual", c.cgMaxResidual);
    json.field("picard_solves", c.picardSolves);
    json.field("picard_iterations", c.picardIterations);
    json.field("picard_stalls", c.picardStalls);
    json.endObject();
}

void
writeEpochsJson(JsonWriter &json, const System &system,
                std::uint64_t epochCycles)
{
    json.beginObject();
    json.field("epoch_cycles", epochCycles);
    json.key("names");
    json.beginArray();
    for (const auto &name : system.epochNames())
        json.value(name);
    json.endArray();
    json.key("series");
    json.beginArray();
    for (const EpochSnapshot &snap : system.epochs()) {
        json.beginObject();
        json.field("tick", snap.tick);
        json.key("values");
        json.beginArray();
        for (double v : snap.values)
            json.value(v);
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

std::filesystem::path
ensureRunDir(const std::string &root, const std::string &run)
{
    std::filesystem::path dir = std::filesystem::path(root) / run;
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

const std::string &
gitDescribeString()
{
    static const std::string described = []() -> std::string {
        // Env override pins the manifest for byte-exact golden runs,
        // where `git describe` would drift with every commit.
        if (const char *env = std::getenv("LADDER_GIT_DESCRIBE"))
            return env;
        std::FILE *pipe =
            ::popen("git describe --always --dirty 2>/dev/null", "r");
        if (!pipe)
            return "unknown";
        char buf[128] = {};
        std::string out;
        while (std::fgets(buf, sizeof(buf), pipe))
            out += buf;
        int status = ::pclose(pipe);
        while (!out.empty() &&
               (out.back() == '\n' || out.back() == '\r'))
            out.pop_back();
        if (status != 0 || out.empty())
            return "unknown";
        return out;
    }();
    return described;
}

std::string
sanitizePathComponent(const std::string &component)
{
    static const char hex[] = "0123456789ABCDEF";
    std::string out;
    out.reserve(component.size());
    for (unsigned char c : component) {
        if (std::isalnum(c) || c == '-' || c == '_' || c == '.') {
            out.push_back(static_cast<char>(c));
        } else {
            // Percent-encoding is injective, so sanitized names of
            // distinct cells can never collide on disk.
            out.push_back('%');
            out.push_back(hex[c >> 4]);
            out.push_back(hex[c & 0xF]);
        }
    }
    return out;
}

std::string
runDirName(SchemeKind scheme, const std::string &workload)
{
    return sanitizePathComponent(schemeKindName(scheme)) + "__" +
           sanitizePathComponent(workload);
}

std::filesystem::path
traceFilePath(const ExperimentConfig &config, SchemeKind scheme,
              const std::string &workload)
{
    TraceFormat format = traceFormatFromName(config.traceFormat);
    return std::filesystem::path(config.traceOutDir) /
           runDirName(scheme, workload) /
           ("trace." + traceFormatExtension(format));
}

RunManifest
makeRunManifest(SchemeKind scheme, const std::string &workload,
                const ExperimentConfig &config)
{
    RunManifest m;
    m.run = runDirName(scheme, workload);
    m.scheme = schemeKindName(scheme);
    m.workload = workload;
    m.seed = config.seed;
    m.warmupInstr = config.warmupInstr;
    m.measureInstr = config.measureInstr;
    m.granularity = config.granularity;
    m.rangeShrink = config.rangeShrink;
    m.cacheScale = config.cacheScale;
    m.epochCycles = config.epochCycles;
    m.gitDescribe = gitDescribeString();
    if (isTraceWorkload(workload)) {
        auto trace = externTraceInfoFor(workload,
                                        config.system.frontend);
        m.hasExternTrace = true;
        m.externTracePath = traceWorkloadPath(workload);
        m.externTraceFormat = externTraceFormatName(trace->format);
        m.externTraceRecords = trace->records.size();
        m.externTraceCrc32 = trace->crc32;
    }
    if (config.volatileManifest) {
        m.volatileFields = true;
        m.wallClockUtc = utcNow();
        m.jobs = config.jobs;
    }
    return m;
}

void
writeManifestFields(JsonWriter &json, const RunManifest &manifest)
{
    json.field("run", manifest.run);
    json.field("scheme", manifest.scheme);
    json.field("workload", manifest.workload);
    json.field("seed", manifest.seed);
    json.field("warmup_instr", manifest.warmupInstr);
    json.field("measure_instr", manifest.measureInstr);
    json.field("granularity", manifest.granularity);
    json.field("range_shrink", manifest.rangeShrink);
    json.field("cache_scale", manifest.cacheScale);
    json.field("epoch_cycles", manifest.epochCycles);
    json.field("git_describe", manifest.gitDescribe);
    if (manifest.hasExternTrace) {
        json.field("workload_trace_path", manifest.externTracePath);
        json.field("workload_trace_format",
                   manifest.externTraceFormat);
        json.field("workload_trace_records",
                   manifest.externTraceRecords);
        json.field("workload_trace_crc32",
                   std::uint64_t{manifest.externTraceCrc32});
    }
    if (manifest.volatileFields) {
        json.field("wall_clock_utc", manifest.wallClockUtc);
        json.field("jobs", manifest.jobs);
    }
}

void
writeResultJson(JsonWriter &json, const SimResult &result)
{
    json.beginObject();
    json.field("ipc", result.ipc);
    json.key("core_ipc");
    json.beginArray();
    for (double ipc : result.coreIpc)
        json.value(ipc);
    json.endArray();
    json.field("instructions", result.instructions);
    json.field("elapsed_ns", result.elapsedNs);
    json.field("avg_read_latency_ns", result.avgReadLatencyNs);
    json.field("avg_write_service_ns", result.avgWriteServiceNs);
    json.field("avg_write_twr_ns", result.avgWriteTwrNs);
    json.field("data_reads", result.dataReads);
    json.field("metadata_reads", result.metadataReads);
    json.field("smb_reads", result.smbReads);
    json.field("data_writes", result.dataWrites);
    json.field("metadata_writes", result.metadataWrites);
    json.field("read_energy_pj", result.readEnergyPj);
    json.field("write_energy_pj", result.writeEnergyPj);
    json.field("fnw_flips", result.fnwFlips);
    json.field("fnw_cancelled", result.fnwCancelled);
    json.field("est_counter_diff_mean", result.estCounterDiffMean);
    json.field("estimated_cw_mean", result.estimatedCwMean);
    json.field("accurate_cw_mean", result.accurateCwMean);
    json.field("spill_insertions", result.spillInsertions);
    json.endObject();
}

void
exportRun(const ExperimentConfig &config, SchemeKind scheme,
          const std::string &workload, const System &system,
          const SimResult &result, const WriteTraceSink *trace)
{
    const std::string run = runDirName(scheme, workload);

    if (!config.statsJsonDir.empty()) {
        std::filesystem::path dir =
            ensureRunDir(config.statsJsonDir, run);
        std::ofstream os(dir / "stats.json");
        ladder_assert(os.good(), "cannot write %s",
                      (dir / "stats.json").string().c_str());
        JsonWriter json(os);
        json.beginObject();
        json.field("schema_version", 2);
        json.key("manifest");
        json.beginObject();
        writeManifestFields(json,
                            makeRunManifest(scheme, workload, config));
        json.endObject();
        // The fully-resolved registry view of the configuration, in
        // Manifest scope: output paths and sweep parallelism are
        // omitted so identical configs stay byte-identical.
        json.key("resolved_config");
        experimentRegistry().dumpJson(
            config, json,
            ParamRegistry<ExperimentConfig>::Scope::Manifest);
        json.key("result");
        writeResultJson(json, result);
        json.key("stats");
        json.beginArray();
        for (const StatGroup &group : system.statGroups())
            group.dumpJson(json);
        json.endArray();
        if (config.epochCycles > 0) {
            json.key("epochs");
            writeEpochsJson(json, system, config.epochCycles);
        }
        json.key("solver");
        writeSolverJson(json);
        json.endObject();
        os << "\n";
        ladder_assert(json.balanced(), "unbalanced stats.json writer");
    }

    if (!config.traceOutDir.empty() && trace) {
        if (trace->streaming()) {
            // Streamed incrementally during the run; runOne already
            // called finish(), so the file on disk is complete.
            ladder_assert(
                trace->path() ==
                    traceFilePath(config, scheme, workload).string(),
                "streaming trace path drifted from the canonical "
                "per-cell path");
        } else {
            TraceFormat format =
                traceFormatFromName(config.traceFormat);
            std::filesystem::path path =
                traceFilePath(config, scheme, workload);
            std::filesystem::create_directories(path.parent_path());
            std::ofstream os(path, std::ios::binary);
            ladder_assert(os.good(), "cannot write %s",
                          path.string().c_str());
            switch (format) {
            case TraceFormat::Csv:
                trace->writeCsv(os);
                break;
            case TraceFormat::BinaryV1:
                trace->writeBinary(os);
                break;
            case TraceFormat::BinaryV2:
                trace->writeBinaryV2(
                    os, static_cast<std::size_t>(
                            config.traceChunkRecords));
                break;
            }
        }
    }
}

void
exportSweep(const ExperimentConfig &config, const Matrix &matrix)
{
    if (config.statsJsonDir.empty())
        return;
    std::filesystem::create_directories(config.statsJsonDir);
    std::filesystem::path path =
        std::filesystem::path(config.statsJsonDir) / "sweep.json";
    std::ofstream os(path);
    ladder_assert(os.good(), "cannot write %s",
                  path.string().c_str());
    JsonWriter json(os);
    json.beginObject();
    json.field("schema_version", 2);
    json.key("manifest");
    json.beginObject();
    json.field("seed", config.seed);
    json.field("warmup_instr", config.warmupInstr);
    json.field("measure_instr", config.measureInstr);
    json.field("granularity", config.granularity);
    json.field("range_shrink", config.rangeShrink);
    json.field("cache_scale", config.cacheScale);
    json.field("epoch_cycles", config.epochCycles);
    json.field("git_describe", gitDescribeString());
    if (config.volatileManifest) {
        json.field("wall_clock_utc", utcNow());
        json.field("jobs", config.jobs);
    }
    json.endObject();
    json.key("resolved_config");
    experimentRegistry().dumpJson(
        config, json, ParamRegistry<ExperimentConfig>::Scope::Manifest);
    json.key("schemes");
    json.beginArray();
    for (SchemeKind kind : matrix.schemes)
        json.value(schemeKindName(kind));
    json.endArray();
    json.key("workloads");
    json.beginArray();
    for (const auto &workload : matrix.workloads)
        json.value(workload);
    json.endArray();
    json.key("cells");
    json.beginArray();
    for (const auto &workload : matrix.workloads) {
        for (SchemeKind kind : matrix.schemes) {
            json.beginObject();
            json.field("run", runDirName(kind, workload));
            json.field("scheme", schemeKindName(kind));
            json.field("workload", workload);
            json.key("result");
            writeResultJson(json, matrix.at(kind, workload));
            json.endObject();
        }
    }
    json.endArray();
    json.endObject();
    os << "\n";
    ladder_assert(json.balanced(), "unbalanced sweep.json writer");
}

} // namespace ladder
