/**
 * @file
 * Structured run output: a RunManifest identifying each (scheme,
 * workload) cell, per-run `stats.json` files (manifest + the fully
 * resolved registry config + SimResult + full stat groups + epoch
 * time series + solver counters), optional per-run write traces, and
 * a sweep-level `sweep.json` index. Schema version 2: every stats and
 * sweep file carries a `resolved_config` object — the Manifest-scope
 * dump of the typed parameter registry (sim/config_resolve), loadable
 * back as a `config=` file.
 *
 * Determinism contract: with ExperimentConfig::volatileManifest off
 * (the default), every emitted file is byte-identical for a given
 * (config, repo state) regardless of sweep parallelism — volatile
 * fields (wall clock, job count) are only added when explicitly
 * requested.
 */

#ifndef LADDER_SIM_STATS_EXPORT_HH
#define LADDER_SIM_STATS_EXPORT_HH

#include <filesystem>
#include <string>

#include "ctrl/trace_sink.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

namespace ladder
{

class JsonWriter;

/** Identity of one run, serialized into every stats.json. */
struct RunManifest
{
    std::string run;      //!< directory name: `<scheme>__<workload>`
    std::string scheme;
    std::string workload;
    std::uint64_t seed = 0;
    std::uint64_t warmupInstr = 0;
    std::uint64_t measureInstr = 0;
    unsigned granularity = 0;
    double rangeShrink = 1.0;
    double cacheScale = 1.0;
    std::uint64_t epochCycles = 0;
    std::string gitDescribe;
    /**
     * External-trace provenance, present only for `trace:<path>`
     * workloads: the replayed file, its resolved encoding, record
     * count, and the CRC-32 of its raw bytes — enough to tell two
     * runs of "the same" trace name apart when the file changed.
     */
    bool hasExternTrace = false;
    std::string externTracePath;
    std::string externTraceFormat;
    std::uint64_t externTraceRecords = 0;
    std::uint32_t externTraceCrc32 = 0;
    /** Volatile extras (wall clock, jobs); off by default. */
    bool volatileFields = false;
    std::string wallClockUtc;
    unsigned jobs = 0;
};

/**
 * `git describe --always --dirty` for the repository containing the
 * working directory, computed once per process ("unknown" when git or
 * the repository is unavailable). The LADDER_GIT_DESCRIBE environment
 * variable overrides the probe — golden-run tests pin it so committed
 * reference outputs stay byte-exact across commits.
 */
const std::string &gitDescribeString();

/**
 * Injectively sanitize one path component: alphanumerics and `-_.`
 * pass through, every other byte is percent-encoded (`%2F` for '/'),
 * so two distinct inputs can never collide on disk. Applied to the
 * scheme and workload halves of every run directory name.
 */
std::string sanitizePathComponent(const std::string &component);

/** Canonical per-run directory name: `<scheme>__<workload>`. */
std::string runDirName(SchemeKind scheme, const std::string &workload);

/**
 * The unique per-cell trace file path
 * `<config.traceOutDir>/<scheme>__<workload>/trace.<csv|bin>`
 * (extension from config.traceFormat). Pure derivation — directories
 * are not created. Distinct (scheme, workload) cells always map to
 * distinct paths, so parallel sweep cells can stream traces
 * concurrently without colliding (gated by test_parallel_determinism).
 */
std::filesystem::path traceFilePath(const ExperimentConfig &config,
                                    SchemeKind scheme,
                                    const std::string &workload);

/** Build the manifest for one (scheme, workload) cell. */
RunManifest makeRunManifest(SchemeKind scheme,
                            const std::string &workload,
                            const ExperimentConfig &config);

/** Serialize @p manifest as the current JSON object's members. */
void writeManifestFields(JsonWriter &json, const RunManifest &manifest);

/** Serialize @p result as a JSON object value. */
void writeResultJson(JsonWriter &json, const SimResult &result);

/**
 * Write `<config.statsJsonDir>/<run>/stats.json` (when statsJsonDir
 * is set) and `<config.traceOutDir>/<run>/trace.{csv,bin}` (when
 * traceOutDir is set and @p trace is non-null). Directories are
 * created as needed. No-op when neither output is enabled.
 */
void exportRun(const ExperimentConfig &config, SchemeKind scheme,
               const std::string &workload, const System &system,
               const SimResult &result, const WriteTraceSink *trace);

/**
 * Write `<config.statsJsonDir>/sweep.json`: the sweep manifest plus
 * every cell's SimResult in canonical (workload, scheme) order.
 * No-op when statsJsonDir is empty.
 */
void exportSweep(const ExperimentConfig &config, const Matrix &matrix);

} // namespace ladder

#endif // LADDER_SIM_STATS_EXPORT_HH
