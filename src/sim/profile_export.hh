/**
 * @file
 * Chrome-trace-event (Perfetto-loadable) profile export: serialize
 * the host-side spans and counters recorded by common/profiler —
 * one track per thread — together with a *sim-time* occupancy
 * timeline synthesized from the per-run write/read traces the sink
 * recorded (one process per run cell, one track per channel), so a
 * single timeline shows both clocks side by side.
 *
 * Event mapping (JSON "traceEvents" array, ts/dur in microseconds):
 *   - host span      -> "X" complete event, pid 1, tid = thread id
 *   - host counter   -> "C" counter event, pid 1
 *   - thread names   -> "M" thread_name metadata ("ladder-wk-3", ...)
 *   - sim W/R event  -> "X" on pid 2+cell, tid = channel; writes
 *                       occupy [dispatch, dispatch+tWR], reads
 *                       [completion-latency, completion]
 *
 * Wall-clock timestamps make the profile inherently non-deterministic,
 * so it is a diagnostic output: profile-out=/profile= are excluded
 * from manifests and goldens (inManifest=false), and with both unset
 * nothing here runs.
 */

#ifndef LADDER_SIM_PROFILE_EXPORT_HH
#define LADDER_SIM_PROFILE_EXPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/profiler.hh"
#include "sim/experiment.hh"

namespace ladder
{

/** One (scheme, workload) cell whose sim trace joins the timeline. */
using ProfileCell = std::pair<SchemeKind, std::string>;

/** Whether @p config asks for profiling at all. */
inline bool
profilingRequested(const ExperimentConfig &config)
{
    return !config.profileOut.empty() || config.profileSummary;
}

/**
 * Turn profiling on when @p config requests it and it is not already
 * on (so a bench running several sweeps keeps accumulating into one
 * session instead of clearing between sweeps). Called by
 * runMatrixParallel and the single-run drivers; harmless no-op when
 * profiling is not requested.
 */
void beginProfiling(const ExperimentConfig &config);

/**
 * Export everything recorded so far: write the Chrome-trace JSON to
 * config.profileOut (when set) and print the per-span aggregate
 * summary to stderr (when config.profileSummary). @p cells names the
 * run cells whose recorded sim traces (under config.traceOutDir)
 * should be synthesized into sim-time tracks. Call only after the
 * sweep's worker pool has joined. Repeated calls rewrite the file
 * with the cumulative session, so multi-sweep benches end with a
 * complete profile.
 */
void exportProfile(const ExperimentConfig &config,
                   const std::vector<ProfileCell> &cells);

/**
 * Serialize @p logs (plus sim tracks for @p cells) as one Chrome
 * trace JSON document — the testable core of exportProfile.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<prof::ThreadLog> &logs,
                      const ExperimentConfig &config,
                      const std::vector<ProfileCell> &cells);

} // namespace ladder

#endif // LADDER_SIM_PROFILE_EXPORT_HH
