/**
 * @file
 * Experiment harness helpers shared by the benchmark binaries: build
 * a System for a (scheme, workload) pair, run the measured window,
 * normalize against the baseline, and print paper-style tables.
 */

#ifndef LADDER_SIM_EXPERIMENT_HH
#define LADDER_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/system.hh"
#include "wear/policy.hh"

namespace ladder
{

/**
 * One per-cell parameter override from a sweep spec's "cells" array:
 * registry assignments applied only to the (scheme, workload) cells
 * that match. "*" matches every scheme / workload. Layering within a
 * run: sweep "params" < matching cells (in spec order) < CLI
 * key=value — see resolveExperiment and runOne.
 */
struct SweepCellOverride
{
    std::string scheme = "*";   //!< scheme display name or "*"
    std::string workload = "*"; //!< workload display name or "*"
    /** Registry key=value assignments, pre-validated at resolve. */
    std::vector<std::pair<std::string, std::string>> params;
};

/**
 * Shared experiment knobs (env LADDER_BENCH_SCALE multiplies sizes).
 *
 * Every field here — and every field of the embedded SystemConfig
 * template and WearPolicy — is declared in the typed parameter
 * registry (sim/config_resolve), which is the single source of truth
 * for names, ranges, and doc strings. Add a field without registering
 * it and it stays unreachable from config files and the CLI.
 */
struct ExperimentConfig
{
    std::uint64_t warmupInstr = 1'500'000;
    std::uint64_t measureInstr = 400'000;
    unsigned granularity = 8;
    double rangeShrink = 1.0;
    std::uint64_t seed = 1;
    FnwMode fnwMode = FnwMode::Classical;
    SchemeOptions schemeOptions{};
    /**
     * Template for every per-cell SystemConfig built by
     * makeSystemConfig: geometry, crossbar, controller, cache, and
     * core parameters set here (e.g. from a config file) reach every
     * run of the sweep. Per-cell fields (scheme, workloads, seed,
     * epochCycles, ...) are overwritten per run.
     */
    SystemConfig system{};
    /** Wear-leveling policy knobs (§6.4 benches and demos). */
    WearPolicy wear{};
    /** Cross-check derived latency surfaces with the full MNA solver
     *  (fig11's former ad-hoc `mna=1` flag). */
    bool checkMna = false;
    /** Print the full statistics tree after single runs. */
    bool printStats = false;
    /**
     * Scale factor on L2/L3 capacities and working sets (tests use
     * small values so caches reach steady state within short runs).
     */
    double cacheScale = 1.0;
    /**
     * Sweep parallelism for runMatrixParallel: number of concurrent
     * runOne jobs. 0 selects hardware_concurrency; 1 runs the sweep
     * serially on the calling thread. Results are bit-identical for
     * every value — each run owns its System, Rng, and Stats, so
     * scheduling order cannot leak into the metrics.
     */
    unsigned jobs = 0;
    /**
     * When non-empty, each run writes
     * `<statsJsonDir>/<scheme>__<workload>/stats.json` and the sweep
     * writes `<statsJsonDir>/sweep.json` (see stats_export.hh).
     */
    std::string statsJsonDir;
    /**
     * When non-empty, each run writes its measured-window write/read
     * trace to `<traceOutDir>/<scheme>__<workload>/trace.<ext>`.
     */
    std::string traceOutDir;
    std::string traceFormat = "csv"; //!< "csv", "bin" (v1), "bin2"
    /**
     * Stream each run's trace to disk *while it executes* through a
     * bounded queue and a background writer thread, instead of
     * buffering every record until the end: peak trace memory becomes
     * O(traceChunkRecords) regardless of run length, and the emitted
     * bytes are identical to the buffered serialization. Requires
     * traceFormat "csv" or "bin2" (the v1 header needs the total
     * record count up front).
     */
    bool traceStream = false;
    /** Records per chunk for streaming and the "bin2" format. */
    std::uint64_t traceChunkRecords = 64 * 1024;
    /** Core cycles per stat snapshot (0 = no epoch series). */
    std::uint64_t epochCycles = 0;
    /**
     * Include volatile manifest fields (wall clock, job count) in the
     * JSON outputs. Off by default so identical configs produce
     * byte-identical files at any `jobs=` value.
     */
    bool volatileManifest = false;
    /**
     * When non-empty, enable host-side profiling (common/profiler)
     * and write a Chrome-trace-event JSON timeline — loadable in
     * Perfetto or chrome://tracing — to this path after the sweep:
     * per-thread host spans plus, when traceOutDir is also set, a
     * sim-time occupancy track per channel synthesized from the
     * recorded write/read traces. Unset (the default), every
     * instrumented site costs one relaxed atomic load and simulation
     * outputs stay byte-identical.
     */
    std::string profileOut;
    /**
     * Enable profiling and print an aggregate per-span summary to
     * stderr after the sweep, with or without profileOut.
     */
    bool profileSummary = false;
    /**
     * Live-telemetry sampling period in milliseconds (sim/telemetry):
     * every interval a background publisher atomically renames a
     * heartbeat.json snapshot of the metrics registry into the run
     * directory. 0 (the default) disables the publisher, leaving each
     * instrumented site at its one-relaxed-load cost. Manifest-
     * excluded: outputs are byte-identical either way.
     */
    std::uint64_t telemetryIntervalMs = 0;
    /**
     * Directory for heartbeat.json ('' = next to stats-json output).
     */
    std::string telemetryOut;
    /**
     * Consecutive stalled-sim-tick samples before the telemetry
     * watchdog warns with the active profiler spans (0 = off).
     */
    unsigned telemetryWatchdogIntervals = 10;
    /**
     * Final one-line run summary on stderr: "off" or "auto" (print
     * only when stderr is a TTY, keeping CI logs clean).
     */
    std::string progress = "auto";
    /**
     * Resolver-internal (not registry parameters): per-cell overrides
     * from the sweep spec's "cells" array, and the raw CLI key=value
     * assignments re-applied after any matching cell so the command
     * line keeps the last word. Both are filled by resolveExperiment
     * and consumed by runOne.
     */
    std::vector<SweepCellOverride> cellOverrides;
    std::vector<std::pair<std::string, std::string>> cliAssignments;
};

/**
 * Defaults scaled by the LADDER_BENCH_SCALE environment variable
 * (e.g. 4 runs 4x longer windows).
 */
ExperimentConfig defaultExperimentConfig();

/** Resolve a display name to the list of per-core workloads. */
std::vector<std::string> workloadPrograms(const std::string &name);

/** Build the SystemConfig for one (scheme, workload) run. */
SystemConfig makeSystemConfig(SchemeKind scheme,
                              const std::string &workload,
                              const ExperimentConfig &config);

/**
 * Build the per-run trace sink for one (scheme, workload) cell:
 * nullptr when tracing is off, a buffered sink (serialized by
 * exportRun after the run) by default, or — with config.traceStream —
 * a streaming sink that flushes chunks to the unique per-cell trace
 * path while the run executes. Callers owning the run loop must call
 * finish() on a streaming sink before exportRun.
 */
std::unique_ptr<WriteTraceSink>
makeTraceSink(SchemeKind scheme, const std::string &workload,
              const ExperimentConfig &config);

/** Build, warm up, and measure one run. */
SimResult runOne(SchemeKind scheme, const std::string &workload,
                 const ExperimentConfig &config);

/** Results of a (scheme x workload) sweep. */
struct Matrix
{
    std::vector<SchemeKind> schemes;
    std::vector<std::string> workloads;
    std::map<std::pair<std::string, std::string>, SimResult> results;

    const SimResult &
    at(SchemeKind kind, const std::string &workload) const
    {
        return results.at({schemeKindName(kind), workload});
    }
};

/**
 * Run the full (scheme x workload) sweep, scheduling each runOne as
 * an independent job on config.jobs worker threads (0 = one per
 * hardware thread, 1 = serial on the calling thread).
 *
 * Results are committed into the Matrix in canonical (workload,
 * scheme) order once every job has finished, so the returned Matrix
 * is bit-identical regardless of the job count or scheduling order.
 * Progress is reported on stderr (interactive terminals only) from an
 * atomic completion counter. The first exception thrown by any run is
 * rethrown here after the remaining jobs drain.
 */
Matrix runMatrixParallel(const std::vector<SchemeKind> &schemes,
                         const std::vector<std::string> &workloads,
                         const ExperimentConfig &config);

/**
 * Weighted speedup of @p result over @p baseline: mean of per-core
 * IPC ratios (equals the plain IPC ratio for single programs).
 */
double speedupOver(const SimResult &result, const SimResult &baseline);

/** Fixed-width table printing used by every bench binary. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> columns,
                          unsigned width = 14);
    void printHeader() const;
    void printRow(const std::string &label,
                  const std::vector<double> &values,
                  int precision = 3) const;

  private:
    std::vector<std::string> columns_;
    unsigned width_;
};

} // namespace ladder

#endif // LADDER_SIM_EXPERIMENT_HH
