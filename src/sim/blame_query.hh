/**
 * @file
 * Blame-profile analytics over attribution traces: load the v3 /
 * attribution-CSV traces a sweep wrote (trace.attribution=1), reduce
 * each run's per-write blame components to percentile + share
 * profiles, render per-scheme×workload tables, and diff two runs'
 * profiles with a relative threshold. This is the engine behind the
 * `ladder_blame` CLI; it lives in the library so tests can drive the
 * exact load/reduce/diff logic — and the 0/1/2 exit contract — against
 * generated traces.
 */

#ifndef LADDER_SIM_BLAME_QUERY_HH
#define LADDER_SIM_BLAME_QUERY_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ctrl/controller.hh"

namespace ladder
{

/** Percentile reduction of one blame component over a run's writes. */
struct BlameComponentProfile
{
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    double maxNs = 0.0;
    double meanNs = 0.0;
    /** Fraction of the run's summed blame held by this component. */
    double share = 0.0;
};

/** One run's (scheme×workload cell's) reduced blame profile. */
struct BlameProfile
{
    std::string label; //!< run dir name or the CLI path itself
    std::uint64_t writes = 0;
    BlameComponentProfile components[blameComponentCount];
};

/**
 * Load @p path — an attribution trace file, a run directory holding
 * one (trace.csv/trace.bin), or a sweep trace-out directory whose
 * subdirectories are runs — appending one profile per run found.
 * Returns false with @p error set when nothing loads, a trace is
 * malformed, or a trace lacks the attribution block (the caller asked
 * a blame question of a blame-free trace: a usage error, exit 2).
 */
bool loadBlameProfiles(const std::string &path,
                       std::vector<BlameProfile> &out,
                       std::string &error);

/** One component compared across two runs (diff mode). */
struct BlameDiff
{
    std::string run;       //!< run label present in both sides
    std::string component; //!< blame component name
    double baseMeanNs = 0.0;
    double otherMeanNs = 0.0;
    /** (other-base)/|base| of mean ns per write; |other| if base 0. */
    double relDelta = 0.0;
    bool flagged = false; //!< |relDelta| exceeded the threshold
};

/**
 * Compare the per-component mean blame of every run present in both
 * profile sets; rows ordered by (run, component declaration order).
 */
std::vector<BlameDiff>
diffBlameProfiles(const std::vector<BlameProfile> &base,
                  const std::vector<BlameProfile> &other,
                  double threshold);

/**
 * The full `ladder_blame` command: parse @p args (everything after
 * argv[0]), print to @p out and errors to @p err, return the process
 * exit code — 0 clean, 1 when a diff flagged a blame shift, 2 on
 * usage or load errors (including traces without attribution).
 *
 *   ladder_blame PATH...                    per-run blame tables
 *   ladder_blame diff A B [threshold=REL]   flag |rel delta|>REL (0.1)
 *
 * Both modes accept format=table|csv (default table); csv emits
 * `run,component,p50_ns,p99_ns,max_ns,mean_ns,share_pct` rows (diff:
 * `run,component,base_mean_ns,other_mean_ns,rel_delta,flagged`). The
 * exit contract is format-independent.
 */
int ladderBlameMain(const std::vector<std::string> &args,
                    std::ostream &out, std::ostream &err);

} // namespace ladder

#endif // LADDER_SIM_BLAME_QUERY_HH
