#include "profile_export.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/json.hh"
#include "common/log.hh"
#include "ctrl/controller.hh"
#include "ctrl/trace_reader.hh"
#include "sim/stats_export.hh"

namespace ladder
{

namespace
{

/** Host wall-clock tracks live on pid 1; sim-time cells on 2+. */
constexpr int hostPid = 1;

/**
 * Upper bound on synthesized sim-time events, so profiling a long
 * trace cannot produce a multi-GB JSON. Overflow is reported, never
 * silent.
 */
constexpr std::uint64_t maxSimEvents = 200'000;

/** ns of host time -> trace-event microseconds. */
double
usFromNs(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e3;
}

/** picosecond sim ticks -> trace-event microseconds. */
double
usFromTicks(std::uint64_t ticks)
{
    return static_cast<double>(ticks) / 1e6;
}

void
metadataEvent(JsonWriter &json, const char *kind, int pid,
              std::uint64_t tid, const std::string &name)
{
    json.beginObject();
    json.field("ph", "M");
    json.field("name", kind);
    json.field("pid", pid);
    json.field("tid", tid);
    json.key("args");
    json.beginObject();
    json.field("name", name);
    json.endObject();
    json.endObject();
}

void
writeHostEvents(JsonWriter &json,
                const std::vector<prof::ThreadLog> &logs)
{
    metadataEvent(json, "process_name", hostPid, 0,
                  "ladder host (wall clock)");
    for (const prof::ThreadLog &log : logs) {
        std::string name = log.name.empty()
                               ? "thread-" + std::to_string(log.threadId)
                               : log.name;
        metadataEvent(json, "thread_name", hostPid, log.threadId,
                      name);
        for (const prof::Span &span : log.spans) {
            json.beginObject();
            json.field("ph", "X");
            json.field("name", span.name);
            json.field("cat", "host");
            json.field("pid", hostPid);
            json.field("tid", log.threadId);
            json.field("ts", usFromNs(span.startNs));
            json.field("dur",
                       usFromNs(span.endNs >= span.startNs
                                    ? span.endNs - span.startNs
                                    : 0));
            json.endObject();
        }
        for (const prof::CounterSample &counter : log.counters) {
            json.beginObject();
            json.field("ph", "C");
            json.field("name", counter.name);
            json.field("pid", hostPid);
            json.field("tid", log.threadId);
            json.field("ts", usFromNs(counter.tsNs));
            json.key("args");
            json.beginObject();
            json.field("value", counter.value);
            json.endObject();
            json.endObject();
        }
    }
}

/** Blame sub-slice tracks sit after the channel occupancy tracks. */
constexpr std::uint64_t blameTidBase = 256;

/**
 * Attributed write: per-component sub-slices on a dedicated blame
 * track plus a flow (ph s/t/f) linking enqueue -> dispatch ->
 * completion, so Perfetto draws the causal chain across tracks.
 * Returns the number of trace events emitted (counted against the
 * sim-event budget like the occupancy spans).
 */
std::uint64_t
writeBlameSlices(JsonWriter &json, const CtrlTraceRecord &rec,
                 int pid, std::uint64_t flowId)
{
    const std::int64_t components[blameComponentCount] = {
        rec.attr.depTicks,     rec.attr.queueTicks,
        rec.attr.bankTicks,    rec.attr.rcdTicks,
        rec.attr.baseTicks,    rec.attr.locationTicks,
        rec.attr.contentTicks, rec.attr.schemeTicks};
    // Wait components precede the dispatch tick; the service side
    // (rcd onwards) starts at it. Sum of all eight spans
    // enqueue..completion exactly (the controller's invariant).
    std::int64_t waitTicks = 0;
    for (unsigned i = 0; i < 3; ++i)
        waitTicks += components[i];
    const std::uint64_t blameTid = blameTidBase + rec.channel;
    std::uint64_t emitted = 0;
    double cursorUs =
        usFromTicks(rec.tick) - usFromTicks(static_cast<std::uint64_t>(
                                    waitTicks > 0 ? waitTicks : 0));
    const double enqueueUs = cursorUs;
    for (unsigned i = 0; i < blameComponentCount; ++i) {
        // Signed components keep the cursor honest; only positive
        // ones are drawable slices.
        if (components[i] > 0) {
            json.beginObject();
            json.field("ph", "X");
            json.field("name", blameComponentNames()[i]);
            json.field("cat", "blame");
            json.field("pid", pid);
            json.field("tid", blameTid);
            json.field("ts", cursorUs);
            json.field("dur",
                       usFromTicks(static_cast<std::uint64_t>(
                           components[i])));
            json.endObject();
            ++emitted;
        }
        cursorUs += static_cast<double>(components[i]) / 1e6;
    }
    const double completionUs = cursorUs;
    // Flow arrows: start at enqueue on the blame track, step at
    // dispatch on the channel occupancy track, end at completion.
    const char *phases[3] = {"s", "t", "f"};
    const double ts[3] = {enqueueUs, usFromTicks(rec.tick),
                          completionUs};
    const std::uint64_t tids[3] = {blameTid, rec.channel, blameTid};
    for (unsigned i = 0; i < 3; ++i) {
        json.beginObject();
        json.field("ph", phases[i]);
        json.field("id", flowId);
        json.field("name", "write path");
        json.field("cat", "blame");
        json.field("pid", pid);
        json.field("tid", tids[i]);
        json.field("ts", ts[i]);
        if (phases[i][0] == 'f')
            json.field("bp", "e");
        json.endObject();
        ++emitted;
    }
    return emitted;
}

/**
 * One run cell's recorded trace as a sim-time process: a track per
 * channel, writes occupying their dispatch..dispatch+tWR window and
 * reads their (completion-latency)..completion window. Attribution
 * traces (v3 / attr CSV) additionally get per-channel blame tracks
 * with per-component sub-slices and enqueue->dispatch->completion
 * flows (see writeBlameSlices).
 */
std::uint64_t
writeSimCell(JsonWriter &json, const ExperimentConfig &config,
             const ProfileCell &cell, int pid, std::uint64_t budget)
{
    const std::string run = runDirName(cell.first, cell.second);
    const std::string path =
        traceFilePath(config, cell.first, cell.second).string();
    TraceReader reader;
    if (!reader.open(path)) {
        warn("profile: skipping sim track for %s: %s", run.c_str(),
             reader.error().c_str());
        return 0;
    }
    metadataEvent(json, "process_name", pid, 0, "sim time: " + run);
    std::vector<bool> channelNamed;
    std::vector<bool> blameNamed;
    CtrlTraceRecord rec;
    std::uint64_t emitted = 0;
    std::uint64_t flowId = 0;
    while (emitted < budget && reader.next(rec)) {
        const std::size_t channel = rec.channel;
        if (channel >= channelNamed.size())
            channelNamed.resize(channel + 1, false);
        if (!channelNamed[channel]) {
            metadataEvent(json, "thread_name", pid, channel,
                          "channel " + std::to_string(channel));
            channelNamed[channel] = true;
        }
        const bool isWrite =
            rec.kind == CtrlTraceRecord::Kind::Write;
        const double durUs =
            static_cast<double>(rec.latencyNs) / 1e3;
        double tsUs = usFromTicks(rec.tick);
        if (!isWrite)
            tsUs = std::max(0.0, tsUs - durUs);
        json.beginObject();
        json.field("ph", "X");
        json.field("name", isWrite ? "write" : "read");
        json.field("cat", "sim");
        json.field("pid", pid);
        json.field("tid",
                   static_cast<std::uint64_t>(rec.channel));
        json.field("ts", tsUs);
        json.field("dur", durUs);
        json.key("args");
        json.beginObject();
        json.field("queue_depth", rec.queueDepth);
        if (isWrite)
            json.field("lrs_count",
                       static_cast<unsigned>(rec.lrsCount));
        json.endObject();
        json.endObject();
        // Companion counter track: per-channel queue depth over sim
        // time, so Perfetto draws the fill level next to the
        // occupancy spans. Budgeted as part of the same record.
        json.beginObject();
        json.field("ph", "C");
        json.field("name",
                   "ch" + std::to_string(channel) +
                       (isWrite ? " write queue" : " read queue"));
        json.field("pid", pid);
        json.field("ts", usFromTicks(rec.tick));
        json.key("args");
        json.beginObject();
        json.field("value", rec.queueDepth);
        json.endObject();
        json.endObject();
        ++emitted;
        if (reader.attribution() && isWrite) {
            if (channel >= blameNamed.size())
                blameNamed.resize(channel + 1, false);
            if (!blameNamed[channel]) {
                metadataEvent(json, "thread_name", pid,
                              blameTidBase + channel,
                              "channel " + std::to_string(channel) +
                                  " blame");
                blameNamed[channel] = true;
            }
            emitted +=
                writeBlameSlices(json, rec, pid, flowId++);
        }
    }
    if (!reader.ok()) {
        warn("profile: sim track for %s truncated: %s", run.c_str(),
             reader.error().c_str());
    } else if (emitted == budget && reader.next(rec)) {
        warn("profile: sim track cap (%llu events) reached; "
             "remaining records of %s dropped",
             static_cast<unsigned long long>(maxSimEvents),
             run.c_str());
    }
    return emitted;
}

void
printSummary(const std::vector<prof::ThreadLog> &logs)
{
    struct Agg
    {
        std::uint64_t calls = 0;
        std::uint64_t totalNs = 0;
    };
    std::map<std::string, Agg> byName;
    for (const prof::ThreadLog &log : logs) {
        for (const prof::Span &span : log.spans) {
            Agg &agg = byName[span.name];
            ++agg.calls;
            agg.totalNs += span.endNs >= span.startNs
                               ? span.endNs - span.startNs
                               : 0;
        }
    }
    std::vector<std::pair<std::string, Agg>> rows(byName.begin(),
                                                  byName.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.totalNs > b.second.totalNs;
              });
    std::fprintf(stderr, "--- host profile (wall clock) ---\n");
    std::fprintf(stderr, "%-32s %10s %14s %12s\n", "span", "calls",
                 "total ms", "mean us");
    for (const auto &row : rows) {
        double totalMs =
            static_cast<double>(row.second.totalNs) / 1e6;
        double meanUs = static_cast<double>(row.second.totalNs) /
                        1e3 /
                        static_cast<double>(row.second.calls);
        std::fprintf(stderr, "%-32s %10llu %14.3f %12.3f\n",
                     row.first.c_str(),
                     static_cast<unsigned long long>(
                         row.second.calls),
                     totalMs, meanUs);
    }
}

} // namespace

void
beginProfiling(const ExperimentConfig &config)
{
    if (!profilingRequested(config) || prof::enabled())
        return;
    prof::setCurrentThreadName("ladder-main");
    prof::enable();
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<prof::ThreadLog> &logs,
                 const ExperimentConfig &config,
                 const std::vector<ProfileCell> &cells)
{
    JsonWriter json(os);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();
    writeHostEvents(json, logs);
    if (!config.traceOutDir.empty()) {
        std::uint64_t emitted = 0;
        int pid = hostPid + 1;
        for (const ProfileCell &cell : cells) {
            emitted += writeSimCell(json, config, cell, pid++,
                                    maxSimEvents - emitted);
        }
    }
    json.endArray();
    json.endObject();
    os << "\n";
    ladder_assert(json.balanced(), "unbalanced profile writer");
}

void
exportProfile(const ExperimentConfig &config,
              const std::vector<ProfileCell> &cells)
{
    if (!profilingRequested(config))
        return;
    std::vector<prof::ThreadLog> logs = prof::collect();
    if (!config.profileOut.empty()) {
        std::filesystem::path path(config.profileOut);
        if (path.has_parent_path())
            std::filesystem::create_directories(path.parent_path());
        std::ofstream os(path);
        ladder_assert(os.good(), "cannot write profile %s",
                      config.profileOut.c_str());
        writeChromeTrace(os, logs, config, cells);
        inform("wrote profile timeline to %s (open in "
               "https://ui.perfetto.dev or chrome://tracing)",
               config.profileOut.c_str());
    }
    if (config.profileSummary)
        printSummary(logs);
}

} // namespace ladder
