/**
 * @file
 * Full-system assembly (paper Table 2): trace-driven cores, the
 * content-carrying cache hierarchy, one memory controller per channel
 * with the selected write scheme, the ReRAM backing store, and the
 * circuit-derived timing model — wired onto a single event queue.
 *
 * Scaling note: cache capacities and working sets default to ~8x below
 * the paper's (paper: 4MB L2 + 32MB L3, 500M-instruction windows) so
 * every benchmark binary completes in seconds. Ratios (working set :
 * LLC, queue depths, timing parameters) follow the paper; set
 * SystemConfig::paperScale to restore the full sizes.
 */

#ifndef LADDER_SIM_SYSTEM_HH
#define LADDER_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "cpu/core.hh"
#include "ctrl/controller.hh"
#include "mem/backing_store.hh"
#include "schemes/factory.hh"
#include "trace/workload_frontend.hh"
#include "trace/workloads.hh"

namespace ladder
{

/** Everything needed to build a System. */
struct SystemConfig
{
    MemoryGeometry geometry{};
    CrossbarParams crossbar{};
    ControllerConfig controller{};
    HierarchyParams caches{};
    CoreParams core{};
    SchemeKind scheme = SchemeKind::Baseline;
    SchemeOptions schemeOptions{};
    unsigned tableGranularity = 8;
    double rangeShrink = 1.0; //!< §7 process-variation ablation
    /**
     * One name = single-programmed; four = a mix. Names resolve
     * through the workload frontend: the paper's synthetics, the
     * generator families, or `trace:<path>` external replay.
     */
    std::vector<std::string> workloads{"lbm"};
    /** External-replay knobs (registry group extern.*). */
    WorkloadFrontendOptions frontend{};
    /**
     * Optional recorded trace files, one per core; when set (same
     * count as workloads) each core replays its file instead of
     * synthesizing traffic. First-touch page content defaults to
     * zeros for replayed traces.
     */
    std::vector<std::string> traceFiles;
    double workingSetScale = 1.0;
    double dataPageFraction = 0.75;
    double backgroundDensity = 0.4;  //!< LRS fraction of other rows
    std::uint64_t seed = 1;
    bool paperScale = false;
    /**
     * Verify the precomputed latency surfaces at init: exact
     * bit-identity of every surface cell and index map against the
     * bucketed tables, plus a circuit re-evaluation of every table
     * corner against the generating fast model under
     * latencyErrorBudget. Fatal on any violation; memoized per shared
     * timing model so sweeps pay the cost once.
     */
    bool latencySurfaceCheck = false;
    /** Relative latency error tolerated by the surface check. */
    double latencyErrorBudget = 0.05;
    /**
     * Core-clock cycles between periodic stat snapshots during the
     * measured window (0 = no epoch time series). Each snapshot
     * flattens every registered stat group — controllers, cores, and
     * the cache hierarchy — into one value vector sampled at the same
     * tick; see epochNames() / epochs().
     */
    std::uint64_t epochCycles = 0;
    /**
     * Channel-engine worker affinity: "cores" pins each persistent
     * channel worker to a CPU (pool.pin= knob); "off" leaves
     * placement to the OS scheduler. A host-performance hint only.
     */
    std::string poolPin = "off";
};

/** One periodic flattened-stats sample of the measured window. */
struct EpochSnapshot
{
    Tick tick = 0;              //!< absolute event-queue time
    std::vector<double> values; //!< parallel to System::epochNames()
};

/** Outcome of one measured simulation window. */
struct SimResult
{
    std::vector<double> coreIpc;
    double ipc = 0.0; //!< core 0 (single) or sum (mix; use coreIpc)
    std::uint64_t instructions = 0;
    double elapsedNs = 0.0;
    double avgReadLatencyNs = 0.0;
    double avgWriteServiceNs = 0.0;
    double avgWriteTwrNs = 0.0;
    std::uint64_t dataReads = 0;
    std::uint64_t metadataReads = 0;
    std::uint64_t smbReads = 0;
    std::uint64_t dataWrites = 0;
    std::uint64_t metadataWrites = 0;
    double readEnergyPj = 0.0;
    double writeEnergyPj = 0.0;
    double fnwFlips = 0.0;
    double fnwCancelled = 0.0;
    double estCounterDiffMean = 0.0; //!< Est - accurate (own content)
    double estimatedCwMean = 0.0;
    double accurateCwMean = 0.0;
    double spillInsertions = 0.0;
};

/** The assembled machine. */
class System
{
  public:
    explicit System(const SystemConfig &config);

    /**
     * Run @p warmupInstr then a measured window of @p measureInstr
     * instructions per core; returns the window's metrics.
     */
    SimResult run(std::uint64_t warmupInstr,
                  std::uint64_t measureInstr);

    MemoryController &controller(unsigned channel);
    unsigned channels() const;
    BackingStore &store() { return *store_; }
    EventQueue &events() { return events_; }
    Core &core(unsigned i) { return *cores_[i]; }
    CacheHierarchy &hierarchy() { return *hierarchy_; }
    unsigned coreCount() const
    {
        return static_cast<unsigned>(cores_.size());
    }
    const SystemConfig &config() const { return config_; }
    WriteScheme &scheme() { return *scheme_; }

    /** Install a wear-leveling remapper on every controller. */
    void setRemapper(AddressRemapper *remapper);

    /**
     * Install a trace sink on every controller (nullptr = off). Must
     * outlive any subsequent run(); records arrive in event order.
     */
    void attachTraceSink(WriteTraceSink *sink);

    /** Dump all statistics. */
    void dumpStats(std::ostream &os);

    /**
     * Every stat group, in fixed registration order: controllers
     * first (ctrl0..), then cores (core0..), then the cache hierarchy
     * (cache<i> folding each core's private L1/L2, then the shared
     * l3). Epoch snapshots flatten the same order, so controller
     * epoch names keep their historical positions.
     */
    const std::vector<StatGroup> &statGroups() const
    {
        return statGroups_;
    }

    /** Flattened stat names sampled by epoch snapshots. */
    const std::vector<std::string> &epochNames() const
    {
        return epochNames_;
    }

    /** Epoch time series from the most recent measured window. */
    const std::vector<EpochSnapshot> &epochs() const
    {
        return epochs_;
    }

  private:
    SystemConfig config_;
    EventQueue events_;
    const TimingModel *timing_;
    std::unique_ptr<BackingStore> store_;
    std::shared_ptr<MetadataLayout> layout_;
    std::shared_ptr<WriteScheme> scheme_;
    std::vector<std::unique_ptr<MemoryController>> controllers_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<StatGroup> statGroups_;
    AddressRemapper *remapper_ = nullptr;
    WriteTraceSink *traceSink_ = nullptr;
    std::vector<std::string> epochNames_;
    std::vector<EpochSnapshot> epochs_;

    /**
     * Channel engine (controller.channelThreads > 0): every channel
     * owns an event queue; windows of `lookahead_` ticks run the
     * frontend serially, then all channel queues (inline or on the
     * persistent pool), then merge side effects in channel order.
     * Disabled (falling back to the shared queue) when a remapper is
     * installed, since wear-leveling copies lines across channels.
     */
    bool channelEngine_ = false;
    Tick lookahead_ = 1;
    Tick epochTicks_ = 0;         //!< measured-window epoch period
    Tick nextEpochTick_ = maxTick; //!< next snapshot (window clamp)
    std::vector<std::unique_ptr<EventQueue>> channelQueues_;
    std::vector<ChannelOutbox> outboxes_;
    /** Per-channel trace buffers, merged by (tick, channel) into the
     *  attached sink at every barrier. */
    std::vector<std::unique_ptr<WriteTraceSink>> traceStaging_;
    std::unique_ptr<ThreadPool> channelPool_;
    /** Interned Perfetto counter-track names (lazy, profiling only). */
    std::vector<const char *> evqDepthCounterNames_;

    void resetStats();
    void captureEpoch(Tick when);
    void scheduleEpochSnapshot(Tick when, Tick epochTicks,
                               const unsigned *pending);
    void runEventLoop();
    void runWindowedLoop();
    void mergeTraceStaging();
    void disableChannelEngine(const char *reason);
};

/** Apply the paper's full-scale parameters to a config. */
void applyPaperScale(SystemConfig &config);

} // namespace ladder

#endif // LADDER_SIM_SYSTEM_HH
