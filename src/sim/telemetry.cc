#include "telemetry.hh"

#include <unistd.h>

#if defined(__linux__)
#include <pthread.h>
#endif

#include <condition_variable>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/json.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/profiler.hh"

namespace ladder
{

namespace
{

namespace fs = std::filesystem;

std::uint64_t
wallUnixMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

/** Require an unsigned-number member of @p doc. */
bool
numberField(const JsonValue &doc, const char *key, std::uint64_t &out,
            std::string &error)
{
    if (!doc.has(key) || !doc.at(key).isNumber()) {
        error = std::string("missing numeric field '") + key + "'";
        return false;
    }
    out = static_cast<std::uint64_t>(doc.at(key).number);
    return true;
}

} // namespace

void
writeHeartbeatJson(std::ostream &os, const Heartbeat &hb)
{
    JsonWriter json(os);
    json.beginObject();
    json.field("schema_version", hb.schemaVersion);
    json.field("seq", hb.seq);
    json.field("wall_unix_ms", hb.wallUnixMs);
    json.field("uptime_ms", hb.uptimeMs);
    json.field("interval_ms", hb.intervalMs);
    json.field("sim_tick", hb.simTick);
    json.field("cells_done", hb.cellsDone);
    json.field("cells_total", hb.cellsTotal);
    json.field("eta_seconds", hb.etaSeconds);
    json.key("counters");
    json.beginObject();
    for (const auto &entry : hb.counters)
        json.field(entry.first, entry.second);
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &entry : hb.gauges)
        json.field(entry.first, entry.second);
    json.endObject();
    json.key("rates_per_s");
    json.beginObject();
    for (const auto &entry : hb.ratesPerSec)
        json.field(entry.first, entry.second);
    json.endObject();
    json.endObject();
    os << "\n";
}

bool
parseHeartbeat(const std::string &text, Heartbeat &out,
               std::string &error)
{
    JsonValue doc;
    try {
        doc = parseJson(text);
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
    if (!doc.isObject()) {
        error = "heartbeat is not a JSON object";
        return false;
    }
    std::uint64_t version = 0;
    if (!numberField(doc, "schema_version", version, error))
        return false;
    if (version != static_cast<std::uint64_t>(heartbeatSchemaVersion)) {
        error = "unsupported heartbeat schema version " +
                std::to_string(version);
        return false;
    }
    out = Heartbeat{};
    out.schemaVersion = static_cast<int>(version);
    if (!numberField(doc, "seq", out.seq, error) ||
        !numberField(doc, "wall_unix_ms", out.wallUnixMs, error) ||
        !numberField(doc, "uptime_ms", out.uptimeMs, error) ||
        !numberField(doc, "interval_ms", out.intervalMs, error) ||
        !numberField(doc, "sim_tick", out.simTick, error) ||
        !numberField(doc, "cells_done", out.cellsDone, error) ||
        !numberField(doc, "cells_total", out.cellsTotal, error))
        return false;
    if (doc.has("eta_seconds") && doc.at("eta_seconds").isNumber())
        out.etaSeconds = doc.at("eta_seconds").number;
    auto mapOf = [&](const char *key, auto &dest) {
        if (!doc.has(key) || !doc.at(key).isObject())
            return;
        for (const auto &entry : doc.at(key).object) {
            if (entry.second.isNumber())
                dest[entry.first] =
                    static_cast<typename std::decay_t<
                        decltype(dest)>::mapped_type>(
                        entry.second.number);
        }
    };
    mapOf("counters", out.counters);
    mapOf("gauges", out.gauges);
    mapOf("rates_per_s", out.ratesPerSec);
    return true;
}

bool
readHeartbeatFile(const std::string &path, Heartbeat &out,
                  std::string &error)
{
    fs::path file(path);
    std::error_code ec;
    if (fs::is_directory(file, ec))
        file /= heartbeatFileName;
    std::ifstream is(file, std::ios::binary);
    if (!is.good()) {
        error = "cannot read '" + file.string() + "'";
        return false;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (!parseHeartbeat(buffer.str(), out, error)) {
        error = file.string() + ": " + error;
        return false;
    }
    return true;
}

TelemetryOptions
telemetryOptions(const ExperimentConfig &config)
{
    TelemetryOptions options;
    options.intervalMs = config.telemetryIntervalMs;
    options.watchdogIntervals = config.telemetryWatchdogIntervals;
    options.dir = !config.telemetryOut.empty() ? config.telemetryOut
                                               : config.statsJsonDir;
    if (options.intervalMs > 0 && options.dir.empty()) {
        warn("telemetry.interval-ms set but neither telemetry.out "
             "nor stats-json names a directory; telemetry is off");
        options.intervalMs = 0;
    }
    return options;
}

struct TelemetryPublisher::Impl
{
    TelemetryOptions options;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable stopCv;
    bool stopping = false;
    bool joined = false;
    std::atomic<std::uint64_t> published{0};

    std::chrono::steady_clock::time_point start;
    std::uint64_t seq = 0;
    /** Previous sample's counters, for rates. */
    std::map<std::string, std::uint64_t> prevCounters;
    std::uint64_t prevUptimeMs = 0;
    /** Watchdog state: last tick and how long it has been stuck. */
    std::uint64_t lastTick = 0;
    unsigned stuckIntervals = 0;
    bool stallReported = false;
    /** Gauge name -> interned profiler counter-track name. */
    std::unordered_map<std::string, const char *> profNames;

    void
    publish(const Heartbeat &hb)
    {
        fs::path dir(options.dir);
        std::error_code ec;
        fs::create_directories(dir, ec);
        fs::path tmp = dir / (std::string(heartbeatFileName) + ".tmp");
        fs::path final = dir / heartbeatFileName;
        {
            std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
            if (!os.good()) {
                warn_once("telemetry: cannot write '%s'",
                          tmp.string().c_str());
                return;
            }
            writeHeartbeatJson(os, hb);
        }
        // Atomic rename: readers see the previous or the new
        // heartbeat, never a partial file.
        fs::rename(tmp, final, ec);
        if (ec) {
            warn_once("telemetry: rename to '%s' failed: %s",
                      final.string().c_str(), ec.message().c_str());
            return;
        }
        published.fetch_add(1, std::memory_order_relaxed);
    }

    Heartbeat
    sample()
    {
        Heartbeat hb;
        hb.seq = seq++;
        hb.wallUnixMs = wallUnixMs();
        hb.uptimeMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        hb.intervalMs = options.intervalMs;
        for (const metrics::Sample &s : metrics::snapshot()) {
            if (s.kind == metrics::Kind::Counter)
                hb.counters[s.name] = s.value;
            else
                hb.gauges[s.name] = s.value;
        }
        auto gauge = [&](const char *name) -> std::uint64_t {
            auto it = hb.gauges.find(name);
            return it != hb.gauges.end() ? it->second : 0;
        };
        auto counter = [&](const char *name) -> std::uint64_t {
            auto it = hb.counters.find(name);
            return it != hb.counters.end() ? it->second : 0;
        };
        hb.simTick = gauge(metrics::names::simTick);
        hb.cellsDone = counter(metrics::names::cellsDone);
        hb.cellsTotal = gauge(metrics::names::cellsTotal);
        if (hb.cellsDone > 0 && hb.cellsTotal >= hb.cellsDone) {
            hb.etaSeconds =
                static_cast<double>(hb.uptimeMs) * 1e-3 *
                static_cast<double>(hb.cellsTotal - hb.cellsDone) /
                static_cast<double>(hb.cellsDone);
        }
        const double dtSec =
            static_cast<double>(hb.uptimeMs - prevUptimeMs) * 1e-3;
        if (dtSec > 0.0 && !prevCounters.empty()) {
            for (const auto &entry : hb.counters) {
                auto prev = prevCounters.find(entry.first);
                std::uint64_t before = prev != prevCounters.end()
                                           ? prev->second
                                           : 0;
                if (entry.second >= before)
                    hb.ratesPerSec[entry.first] =
                        static_cast<double>(entry.second - before) /
                        dtSec;
            }
        }
        prevCounters = hb.counters;
        prevUptimeMs = hb.uptimeMs;
        return hb;
    }

    /** Mirror the per-channel gauges onto host Perfetto counter
     *  tracks ("C" events) when profiling is also on. */
    void
    feedProfilerTracks(const Heartbeat &hb)
    {
        if (!prof::enabled())
            return;
        for (const auto &entry : hb.gauges) {
            if (entry.first.rfind("ctrl.ch", 0) != 0)
                continue;
            auto it = profNames.find(entry.first);
            if (it == profNames.end()) {
                it = profNames
                         .emplace(entry.first,
                                  prof::internName(entry.first))
                         .first;
            }
            prof::recordCounter(it->second,
                                static_cast<double>(entry.second));
        }
    }

    void
    watchdog(const Heartbeat &hb)
    {
        if (options.watchdogIntervals == 0)
            return;
        const bool running =
            hb.cellsTotal > 0 && hb.cellsDone < hb.cellsTotal;
        if (!running || hb.simTick != lastTick) {
            lastTick = hb.simTick;
            stuckIntervals = 0;
            stallReported = false;
            return;
        }
        ++stuckIntervals;
        if (stallReported || stuckIntervals < options.watchdogIntervals)
            return;
        stallReported = true;
        std::string where;
        for (const prof::ActiveSpan &span : prof::activeSpans()) {
            if (!where.empty())
                where += ", ";
            where += span.threadName.empty()
                         ? "thread " + std::to_string(span.threadId)
                         : span.threadName;
            where += " in '";
            where += span.name;
            where += "'";
        }
        warn("telemetry watchdog: sim tick stuck at %llu for %u "
             "intervals (%llu ms) with %llu/%llu cells done%s%s",
             static_cast<unsigned long long>(hb.simTick),
             stuckIntervals,
             static_cast<unsigned long long>(stuckIntervals *
                                             options.intervalMs),
             static_cast<unsigned long long>(hb.cellsDone),
             static_cast<unsigned long long>(hb.cellsTotal),
             where.empty() ? "" : "; active spans: ",
             where.c_str());
    }

    void
    loop()
    {
#if defined(__linux__)
        pthread_setname_np(pthread_self(), "ladder-telem");
#endif
        prof::setCurrentThreadName("ladder-telem");
        std::unique_lock<std::mutex> lock(mutex);
        for (;;) {
            stopCv.wait_for(
                lock, std::chrono::milliseconds(options.intervalMs),
                [this]() { return stopping; });
            if (stopping)
                return; // stop() publishes the final heartbeat
            lock.unlock();
            Heartbeat hb = sample();
            feedProfilerTracks(hb);
            watchdog(hb);
            publish(hb);
            lock.lock();
        }
    }
};

TelemetryPublisher::TelemetryPublisher(const TelemetryOptions &options)
    : impl_(std::make_unique<Impl>())
{
    ladder_assert(options.active(),
                  "TelemetryPublisher needs an interval and a "
                  "directory");
    impl_->options = options;
    impl_->start = std::chrono::steady_clock::now();
    impl_->thread = std::thread([this]() { impl_->loop(); });
}

TelemetryPublisher::~TelemetryPublisher()
{
    stop();
}

void
TelemetryPublisher::stop()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        if (impl_->joined)
            return;
        impl_->stopping = true;
    }
    impl_->stopCv.notify_all();
    impl_->thread.join();
    impl_->joined = true;
    // One final snapshot so the run directory keeps a post-mortem
    // view (cells done, final counters) after the process exits.
    impl_->publish(impl_->sample());
}

std::uint64_t
TelemetryPublisher::published() const
{
    return impl_->published.load(std::memory_order_relaxed);
}

TelemetryScope::TelemetryScope(const ExperimentConfig &config,
                               std::uint64_t cellsTotal)
    : start_(std::chrono::steady_clock::now())
{
    TelemetryOptions options = telemetryOptions(config);
    summaryWanted_ =
        config.progress == "auto" && isatty(fileno(stderr));
    metricsWanted_ = options.active() || summaryWanted_;
    if (!metricsWanted_)
        return;
    cellsDoneId_ = metrics::registerCounter(metrics::names::cellsDone);
    const std::uint32_t totalId =
        metrics::registerGauge(metrics::names::cellsTotal);
    metrics::enable();
    metrics::set(totalId, cellsTotal);
    if (options.active())
        publisher_ = std::make_unique<TelemetryPublisher>(options);
}

TelemetryScope::~TelemetryScope()
{
    if (!metricsWanted_)
        return;
    publisher_.reset(); // final heartbeat before the summary
    if (summaryWanted_) {
        std::uint64_t writes = 0, reads = 0, cells = 0;
        for (const metrics::Sample &s : metrics::snapshot()) {
            if (s.name == metrics::names::cellsDone)
                cells = s.value;
            else if (s.name.rfind("ctrl.ch", 0) == 0) {
                if (s.name.size() >= 7 &&
                    s.name.compare(s.name.size() - 7, 7, ".writes") ==
                        0)
                    writes += s.value;
                else if (s.name.size() >= 6 &&
                         s.name.compare(s.name.size() - 6, 6,
                                        ".reads") == 0)
                    reads += s.value;
            }
        }
        const double wallSec =
            std::chrono::duration_cast<std::chrono::duration<double>>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::fprintf(
            stderr,
            "progress: %llu cell%s in %.2f s — %llu writes (%.0f/s), "
            "%llu reads\n",
            static_cast<unsigned long long>(cells),
            cells == 1 ? "" : "s", wallSec,
            static_cast<unsigned long long>(writes),
            wallSec > 0.0 ? static_cast<double>(writes) / wallSec
                          : 0.0,
            static_cast<unsigned long long>(reads));
    }
    metrics::disable();
}

void
TelemetryScope::noteCellDone()
{
    if (metricsWanted_)
        metrics::add(cellsDoneId_);
}

void
TelemetryScope::stopPublisher()
{
    publisher_.reset();
}

} // namespace ladder
