#include "experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "trace/workloads.hh"

namespace ladder
{

ExperimentConfig
defaultExperimentConfig()
{
    ExperimentConfig config;
    if (const char *env = std::getenv("LADDER_BENCH_SCALE")) {
        double scale = std::atof(env);
        if (scale > 0.0) {
            config.warmupInstr = static_cast<std::uint64_t>(
                config.warmupInstr * scale);
            config.measureInstr = static_cast<std::uint64_t>(
                config.measureInstr * scale);
        }
    }
    return config;
}

std::vector<std::string>
workloadPrograms(const std::string &name)
{
    if (!isMixWorkload(name))
        return {name};
    for (const auto &mix : mixWorkloads()) {
        if (mix.first == name)
            return mix.second;
    }
    fatal("unknown mix '%s'", name.c_str());
}

SystemConfig
makeSystemConfig(SchemeKind scheme, const std::string &workload,
                 const ExperimentConfig &config)
{
    SystemConfig sys;
    sys.scheme = scheme;
    sys.schemeOptions = config.schemeOptions;
    sys.schemeOptions.tableGranularity = config.granularity;
    sys.tableGranularity = config.granularity;
    sys.rangeShrink = config.rangeShrink;
    sys.workloads = workloadPrograms(workload);
    sys.seed = config.seed;
    sys.controller.fnwMode = config.fnwMode;
    if (config.cacheScale != 1.0) {
        auto scale = [&](std::size_t bytes) {
            std::size_t scaled = static_cast<std::size_t>(
                static_cast<double>(bytes) * config.cacheScale);
            // Keep a sane minimum and way-divisibility.
            return std::max<std::size_t>(scaled, 8 * 1024);
        };
        sys.caches.l2.sizeBytes = scale(sys.caches.l2.sizeBytes);
        sys.caches.l3.sizeBytes = scale(sys.caches.l3.sizeBytes);
        sys.workingSetScale *= config.cacheScale;
    }
    return sys;
}

SimResult
runOne(SchemeKind scheme, const std::string &workload,
       const ExperimentConfig &config)
{
    System system(makeSystemConfig(scheme, workload, config));
    return system.run(config.warmupInstr, config.measureInstr);
}

double
speedupOver(const SimResult &result, const SimResult &baseline)
{
    ladder_assert(result.coreIpc.size() == baseline.coreIpc.size(),
                  "speedup: mismatched core counts");
    double acc = 0.0;
    for (std::size_t c = 0; c < result.coreIpc.size(); ++c) {
        ladder_assert(baseline.coreIpc[c] > 0.0,
                      "speedup: zero baseline IPC");
        acc += result.coreIpc[c] / baseline.coreIpc[c];
    }
    return acc / static_cast<double>(result.coreIpc.size());
}

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned width)
    : columns_(std::move(columns)), width_(width)
{
}

void
TablePrinter::printHeader() const
{
    std::printf("%-10s", "workload");
    for (const auto &column : columns_)
        std::printf(" %*s", width_, column.c_str());
    std::printf("\n");
    unsigned total = 10 + static_cast<unsigned>(columns_.size()) *
                              (width_ + 1);
    for (unsigned i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
}

void
TablePrinter::printRow(const std::string &label,
                       const std::vector<double> &values,
                       int precision) const
{
    std::printf("%-10s", label.c_str());
    for (double value : values)
        std::printf(" %*.*f", width_, precision, value);
    std::printf("\n");
}

} // namespace ladder
