#include "experiment.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>

#include "common/log.hh"
#include "common/profiler.hh"
#include "common/thread_pool.hh"
#include "sim/config_resolve.hh"
#include "sim/profile_export.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"
#include "trace/workloads.hh"

namespace ladder
{

ExperimentConfig
defaultExperimentConfig()
{
    // Read the environment once under C++11 magic-static init so
    // sweep workers calling this concurrently never race on getenv.
    static const double benchScale = []() {
        if (const char *env = std::getenv("LADDER_BENCH_SCALE")) {
            double scale = std::atof(env);
            if (scale > 0.0)
                return scale;
        }
        return 1.0;
    }();
    ExperimentConfig config;
    config.warmupInstr = static_cast<std::uint64_t>(
        config.warmupInstr * benchScale);
    config.measureInstr = static_cast<std::uint64_t>(
        config.measureInstr * benchScale);
    return config;
}

std::vector<std::string>
workloadPrograms(const std::string &name)
{
    if (!isMixWorkload(name))
        return {name};
    for (const auto &mix : mixWorkloads()) {
        if (mix.first == name)
            return mix.second;
    }
    fatal("unknown mix '%s'", name.c_str());
}

SystemConfig
makeSystemConfig(SchemeKind scheme, const std::string &workload,
                 const ExperimentConfig &config)
{
    // Start from the experiment's SystemConfig template so registry
    // overrides (geometry, queues, cache sizes, ...) reach every cell;
    // per-cell fields below overwrite whatever the template held.
    SystemConfig sys = config.system;
    sys.scheme = scheme;
    sys.schemeOptions = config.schemeOptions;
    sys.schemeOptions.tableGranularity = config.granularity;
    sys.tableGranularity = config.granularity;
    sys.rangeShrink = config.rangeShrink;
    sys.workloads = workloadPrograms(workload);
    sys.seed = config.seed;
    sys.controller.fnwMode = config.fnwMode;
    sys.epochCycles = config.epochCycles;
    if (config.cacheScale != 1.0) {
        auto scale = [&](std::size_t bytes) {
            std::size_t scaled = static_cast<std::size_t>(
                static_cast<double>(bytes) * config.cacheScale);
            // Keep a sane minimum and way-divisibility.
            return std::max<std::size_t>(scaled, 8 * 1024);
        };
        sys.caches.l2.sizeBytes = scale(sys.caches.l2.sizeBytes);
        sys.caches.l3.sizeBytes = scale(sys.caches.l3.sizeBytes);
        sys.workingSetScale *= config.cacheScale;
    }
    return sys;
}

std::unique_ptr<WriteTraceSink>
makeTraceSink(SchemeKind scheme, const std::string &workload,
              const ExperimentConfig &config)
{
    if (config.traceOutDir.empty())
        return nullptr;
    const bool attribution = config.system.controller.attribution;
    if (attribution && config.traceFormat == "bin")
        fatal("trace.attribution=1 requires trace-format csv or bin2 "
              "(the v1 binary has no attribution block)");
    if (!config.traceStream) {
        auto sink = std::make_unique<WriteTraceSink>();
        sink->setAttribution(attribution);
        return sink;
    }
    // Streaming mode opens the (unique, per-cell) output file up
    // front and flushes chunks while the run executes.
    std::filesystem::path path =
        traceFilePath(config, scheme, workload);
    std::filesystem::create_directories(path.parent_path());
    TraceStreamOptions options;
    options.chunkRecords =
        static_cast<std::size_t>(config.traceChunkRecords);
    return std::make_unique<WriteTraceSink>(
        path.string(), traceFormatFromName(config.traceFormat),
        options, attribution);
}

/**
 * Layer any matching sweep-spec "cells" overrides (in spec order)
 * over @p config for one (scheme, workload) cell, then re-apply the
 * CLI assignments so the command line keeps the last word. Returns
 * @p config unchanged when no cell matches.
 */
static ExperimentConfig
cellConfig(SchemeKind scheme, const std::string &workload,
           const ExperimentConfig &config)
{
    ExperimentConfig effective = config;
    const std::string schemeName = schemeKindName(scheme);
    bool matched = false;
    for (const SweepCellOverride &cell : config.cellOverrides) {
        if (cell.scheme != "*" && cell.scheme != schemeName)
            continue;
        if (cell.workload != "*" && cell.workload != workload)
            continue;
        matched = true;
        for (const auto &kv : cell.params)
            experimentRegistry().set(effective, kv.first, kv.second,
                                     "sweep cell [" + cell.scheme +
                                         " x " + cell.workload + "]");
    }
    if (matched) {
        for (const auto &kv : config.cliAssignments)
            experimentRegistry().set(effective, kv.first, kv.second,
                                     "command line");
    }
    return effective;
}

SimResult
runOne(SchemeKind scheme, const std::string &workload,
       const ExperimentConfig &baseConfig)
{
    // Per-cell parameter overrides resolve here so every downstream
    // consumer (System, trace sink, stats export) sees the same
    // effective configuration — the per-run manifest's
    // resolved_config therefore reflects the overridden values.
    const ExperimentConfig config =
        cellConfig(scheme, workload, baseConfig);
    // Dynamic per-cell label; interned once per run, null (and free)
    // when profiling is off.
    prof::Scope cellSpan(
        prof::enabled()
            ? prof::internName("run " + runDirName(scheme, workload))
            : nullptr);
    System system(makeSystemConfig(scheme, workload, config));
    std::unique_ptr<WriteTraceSink> trace =
        makeTraceSink(scheme, workload, config);
    if (trace)
        system.attachTraceSink(trace.get());
    SimResult result =
        system.run(config.warmupInstr, config.measureInstr);
    if (trace)
        trace->finish();
    exportRun(config, scheme, workload, system, result, trace.get());
    return result;
}

Matrix
runMatrixParallel(const std::vector<SchemeKind> &schemes,
                  const std::vector<std::string> &workloads,
                  const ExperimentConfig &config)
{
    beginProfiling(config);

    Matrix matrix;
    matrix.schemes = schemes;
    matrix.workloads = workloads;

    struct Job
    {
        SchemeKind scheme;
        std::string workload;
    };
    std::vector<Job> plan;
    for (const auto &workload : workloads)
        for (SchemeKind kind : schemes)
            plan.push_back({kind, workload});
    const std::size_t total = plan.size();

    unsigned jobs = config.jobs != 0 ? config.jobs
                                     : ThreadPool::defaultJobs();
    if (total < jobs)
        jobs = static_cast<unsigned>(total);
    if (jobs == 0)
        jobs = 1;

    // Live telemetry: heartbeat publisher, sweep-progress metrics,
    // and the final progress= summary line (all off by default).
    TelemetryScope telemetry(config, total);

    // Progress only on interactive terminals; keep piped/teed output
    // free of carriage-return noise.
    const bool interactive = isatty(fileno(stderr));
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;
    auto report = [&](const Job &job) {
        std::size_t n = ++done;
        telemetry.noteCellDone();
        if (!interactive)
            return;
        std::lock_guard<std::mutex> lock(progressMutex);
        std::fprintf(stderr, "\r[%zu/%zu] %-14s %-10s", n, total,
                     schemeKindName(job.scheme).c_str(),
                     job.workload.c_str());
        std::fflush(stderr);
    };

    // Each slot is owned by exactly one job until the barrier below,
    // then committed into the map in canonical (workload, scheme)
    // order so the result is independent of completion order.
    std::vector<SimResult> slots(total);
    if (jobs <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            slots[i] = runOne(plan[i].scheme, plan[i].workload,
                              config);
            report(plan[i]);
        }
    } else {
        ThreadPool pool(jobs);
        std::vector<std::future<void>> futures;
        futures.reserve(total);
        for (std::size_t i = 0; i < total; ++i) {
            futures.push_back(pool.submit([&, i]() {
                slots[i] = runOne(plan[i].scheme, plan[i].workload,
                                  config);
                report(plan[i]);
            }));
        }
        // get() rethrows the first failed run's exception, matching
        // the serial path; every job has finished by the time the
        // pool's futures resolve, so no slot is written afterwards.
        for (auto &future : futures)
            future.get();
    }
    if (interactive)
        std::fprintf(stderr, "\r%60s\r", "");

    for (std::size_t i = 0; i < total; ++i) {
        matrix.results[{schemeKindName(plan[i].scheme),
                        plan[i].workload}] = std::move(slots[i]);
    }
    // Publisher off before profile export: collect() requires every
    // recording thread (the publisher included) to be quiescent.
    telemetry.stopPublisher();
    // After the barrier: the sweep index is written exactly once, in
    // canonical order, so it cannot depend on completion order.
    exportSweep(config, matrix);
    if (profilingRequested(config)) {
        std::vector<ProfileCell> cells;
        for (std::size_t i = 0; i < total; ++i)
            cells.push_back({plan[i].scheme, plan[i].workload});
        exportProfile(config, cells);
    }
    return matrix;
}

double
speedupOver(const SimResult &result, const SimResult &baseline)
{
    ladder_assert(result.coreIpc.size() == baseline.coreIpc.size(),
                  "speedup: mismatched core counts");
    double acc = 0.0;
    for (std::size_t c = 0; c < result.coreIpc.size(); ++c) {
        ladder_assert(baseline.coreIpc[c] > 0.0,
                      "speedup: zero baseline IPC");
        acc += result.coreIpc[c] / baseline.coreIpc[c];
    }
    return acc / static_cast<double>(result.coreIpc.size());
}

TablePrinter::TablePrinter(std::vector<std::string> columns,
                           unsigned width)
    : columns_(std::move(columns)), width_(width)
{
}

void
TablePrinter::printHeader() const
{
    std::printf("%-10s", "workload");
    for (const auto &column : columns_)
        std::printf(" %*s", width_, column.c_str());
    std::printf("\n");
    unsigned total = 10 + static_cast<unsigned>(columns_.size()) *
                              (width_ + 1);
    for (unsigned i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
}

void
TablePrinter::printRow(const std::string &label,
                       const std::vector<double> &values,
                       int precision) const
{
    std::printf("%-10s", label.c_str());
    for (double value : values)
        std::printf(" %*.*f", width_, precision, value);
    std::printf("\n");
}

} // namespace ladder
