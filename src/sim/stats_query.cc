#include "stats_query.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <set>
#include <sstream>

namespace ladder
{

namespace
{

/**
 * Generic recursive flatten: objects extend the dotted prefix,
 * arrays use the element index, numbers and bools become rows.
 */
void
flattenValue(const std::string &prefix, const JsonValue &v,
             std::map<std::string, double> &out)
{
    switch (v.type) {
    case JsonValue::Type::Number:
        out[prefix] = v.number;
        break;
    case JsonValue::Type::Bool:
        out[prefix] = v.boolean ? 1.0 : 0.0;
        break;
    case JsonValue::Type::Object:
        for (const auto &[k, child] : v.object)
            flattenValue(prefix.empty() ? k : prefix + "." + k,
                         child, out);
        break;
    case JsonValue::Type::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i)
            flattenValue(prefix + "." + std::to_string(i),
                         v.array[i], out);
        break;
    default:
        break;
    }
}

/**
 * Flatten one StatGroup JSON node under its own group name
 * (matching StatGroup::visit's naming), recursing into children.
 * Histogram bucket-count arrays are omitted — per-bucket rows drown
 * the table without being useful to diff.
 */
void
flattenStatGroup(const JsonValue &group,
                 std::map<std::string, double> &out)
{
    if (!group.isObject() || !group.has("name"))
        return;
    const std::string &name = group.at("name").string;
    if (group.has("scalars"))
        flattenValue(name, group.at("scalars"), out);
    if (group.has("averages"))
        flattenValue(name, group.at("averages"), out);
    if (group.has("histograms") &&
        group.at("histograms").isObject()) {
        for (const auto &[hname, hist] :
             group.at("histograms").object) {
            if (!hist.isObject())
                continue;
            for (const auto &[field, fv] : hist.object) {
                if (field == "counts")
                    continue;
                flattenValue(name + "." + hname + "." + field, fv,
                             out);
            }
        }
    }
    if (group.has("children") && group.at("children").isArray())
        for (const JsonValue &child : group.at("children").array)
            flattenStatGroup(child, out);
}

std::map<std::string, double>
flattenStatsJson(const JsonValue &doc)
{
    std::map<std::string, double> out;
    if (doc.has("result"))
        flattenValue("result", doc.at("result"), out);
    if (doc.has("resolved_config"))
        flattenValue("resolved_config", doc.at("resolved_config"),
                     out);
    if (doc.has("solver"))
        flattenValue("solver", doc.at("solver"), out);
    if (doc.has("stats") && doc.at("stats").isArray())
        for (const JsonValue &group : doc.at("stats").array)
            flattenStatGroup(group, out);
    return out;
}

std::map<std::string, double>
flattenSweepJson(const JsonValue &doc)
{
    std::map<std::string, double> out;
    for (const JsonValue &cell : doc.at("cells").array) {
        if (!cell.isObject() || !cell.has("run") ||
            !cell.has("result"))
            continue;
        flattenValue(cell.at("run").string, cell.at("result"), out);
    }
    return out;
}

/** Resolve a CLI path argument to the stats file it names. */
bool
resolveStatsFile(const std::string &path, std::string &file,
                 std::string &error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (const char *name : {"sweep.json", "stats.json"}) {
            fs::path candidate = fs::path(path) / name;
            if (fs::is_regular_file(candidate, ec)) {
                file = candidate.string();
                return true;
            }
        }
        error = path + ": no sweep.json or stats.json inside";
        return false;
    }
    if (fs::is_regular_file(path, ec)) {
        file = path;
        return true;
    }
    error = path + ": no such file or directory";
    return false;
}

std::string
formatValue(double v)
{
    std::ostringstream os;
    os << std::setprecision(9) << v;
    return os.str();
}

/** Output encodings of the merge table / diff report. */
enum class OutputFormat
{
    Table,
    Csv,
    Json,
};

/** CSV field, quoted only when it contains a delimiter or quote. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Minimal JSON string escape (names/labels are plain paths). */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

void
printMergeCsv(std::ostream &out,
              const std::vector<StatSource> &sources,
              const std::set<std::string> &names)
{
    out << "stat";
    for (const StatSource &src : sources)
        out << "," << csvField(src.label);
    out << "\n";
    for (const std::string &name : names) {
        out << csvField(name);
        for (const StatSource &src : sources) {
            auto it = src.values.find(name);
            out << ",";
            if (it != src.values.end())
                out << formatValue(it->second);
        }
        out << "\n";
    }
}

void
printMergeJson(std::ostream &out,
               const std::vector<StatSource> &sources,
               const std::set<std::string> &names)
{
    out << "{\n  \"runs\": [";
    for (std::size_t i = 0; i < sources.size(); ++i)
        out << (i ? ", " : "") << jsonString(sources[i].label);
    out << "],\n  \"stats\": {";
    bool firstName = true;
    for (const std::string &name : names) {
        out << (firstName ? "\n" : ",\n") << "    "
            << jsonString(name) << ": [";
        firstName = false;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            auto it = sources[i].values.find(name);
            out << (i ? ", " : "")
                << (it != sources[i].values.end()
                        ? formatValue(it->second)
                        : std::string("null"));
        }
        out << "]";
    }
    out << "\n  }\n}\n";
}

void
printDiffCsv(std::ostream &out, const std::vector<StatDiff> &diffs)
{
    out << "stat,base,other,rel_delta,flagged\n";
    for (const StatDiff &d : diffs)
        out << csvField(d.name) << "," << formatValue(d.base) << ","
            << formatValue(d.other) << "," << formatValue(d.relDelta)
            << "," << (d.flagged ? 1 : 0) << "\n";
}

void
printDiffJson(std::ostream &out, const StatSource &base,
              const StatSource &other,
              const std::vector<StatDiff> &diffs, double threshold,
              std::size_t flagged)
{
    out << "{\n  \"base\": " << jsonString(base.label)
        << ",\n  \"other\": " << jsonString(other.label)
        << ",\n  \"threshold\": " << formatValue(threshold)
        << ",\n  \"flagged\": " << flagged << ",\n  \"diffs\": [";
    for (std::size_t i = 0; i < diffs.size(); ++i) {
        const StatDiff &d = diffs[i];
        out << (i ? ",\n" : "\n") << "    {\"stat\": "
            << jsonString(d.name) << ", \"base\": "
            << formatValue(d.base) << ", \"other\": "
            << formatValue(d.other) << ", \"rel_delta\": "
            << formatValue(d.relDelta) << ", \"flagged\": "
            << (d.flagged ? "true" : "false") << "}";
    }
    out << "\n  ]\n}\n";
}

/** Union of glob-selected stat names across all sources. */
std::set<std::string>
selectNames(const std::vector<StatSource> &sources,
            const std::string &glob)
{
    std::set<std::string> names;
    for (const StatSource &src : sources)
        for (const auto &[name, value] : src.values)
            if (statGlobMatch(glob, name))
                names.insert(name);
    return names;
}

void
printTable(std::ostream &out,
           const std::vector<StatSource> &sources,
           const std::set<std::string> &names)
{
    std::size_t nameWidth = 4;
    for (const std::string &name : names)
        nameWidth = std::max(nameWidth, name.size());
    std::vector<std::size_t> widths;
    for (const StatSource &src : sources)
        widths.push_back(std::max<std::size_t>(src.label.size(), 8));

    out << std::left << std::setw(static_cast<int>(nameWidth))
        << "stat";
    for (std::size_t i = 0; i < sources.size(); ++i)
        out << "  " << std::right
            << std::setw(static_cast<int>(widths[i]))
            << sources[i].label;
    out << "\n";
    for (const std::string &name : names) {
        out << std::left << std::setw(static_cast<int>(nameWidth))
            << name;
        for (std::size_t i = 0; i < sources.size(); ++i) {
            auto it = sources[i].values.find(name);
            out << "  " << std::right
                << std::setw(static_cast<int>(widths[i]))
                << (it != sources[i].values.end()
                        ? formatValue(it->second)
                        : "-");
        }
        out << "\n";
    }
    out << "(" << names.size() << " stats x " << sources.size()
        << " runs)\n";
}

int
usage(std::ostream &err)
{
    err << "usage: ladder_query [GLOB] PATH... [format=FMT] "
           "[--list-stats]\n"
           "       ladder_query diff [GLOB] BASE OTHER "
           "[threshold=REL] [format=FMT]\n"
           "PATH: a sweep.json/stats.json file or a directory "
           "holding one.\n"
           "GLOB: stat-name filter with * and ? (quote it). diff "
           "exits 1\n"
           "when any selected stat moves by more than REL (default "
           "0.02)\nrelative to BASE.\n"
           "FMT: table (default), csv, or json.\n"
           "--list-stats: print the glob-selected stat names of the "
           "merged\ntable, one per line (discover names for GLOB "
           "selection).\n";
    return 2;
}

} // namespace

bool
statGlobMatch(const std::string &pattern, const std::string &name)
{
    if (pattern.empty())
        return true;
    // Iterative wildcard match with the classic star-backtrack.
    std::size_t p = 0, n = 0;
    std::size_t starP = std::string::npos, starN = 0;
    while (n < name.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == name[n])) {
            ++p;
            ++n;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starN = n;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            n = ++starN;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::map<std::string, double>
flattenStatsDocument(const JsonValue &doc)
{
    if (!doc.isObject())
        return {};
    if (doc.has("cells") && doc.at("cells").isArray())
        return flattenSweepJson(doc);
    return flattenStatsJson(doc);
}

bool
loadStatSource(const std::string &path, StatSource &out,
               std::string &error)
{
    std::string file;
    if (!resolveStatsFile(path, file, error))
        return false;
    std::ifstream is(file);
    if (!is.good()) {
        error = file + ": cannot open";
        return false;
    }
    std::ostringstream text;
    text << is.rdbuf();
    out.label = path;
    while (out.label.size() > 1 && out.label.back() == '/')
        out.label.pop_back();
    out.values = flattenStatsDocument(parseJson(text.str()));
    if (out.values.empty()) {
        error = file + ": no numeric stats found "
                       "(not a sweep.json/stats.json?)";
        return false;
    }
    return true;
}

std::vector<StatDiff>
diffStatSources(const StatSource &base, const StatSource &other,
                const std::string &glob, double threshold)
{
    std::vector<StatDiff> diffs;
    for (const auto &[name, baseValue] : base.values) {
        if (!statGlobMatch(glob, name))
            continue;
        auto it = other.values.find(name);
        if (it == other.values.end())
            continue;
        StatDiff d;
        d.name = name;
        d.base = baseValue;
        d.other = it->second;
        if (baseValue != 0.0)
            d.relDelta = (d.other - d.base) / std::abs(d.base);
        else
            d.relDelta = d.other == 0.0 ? 0.0 : std::abs(d.other);
        d.flagged = std::abs(d.relDelta) > threshold;
        diffs.push_back(std::move(d));
    }
    return diffs;
}

int
ladderQueryMain(const std::vector<std::string> &args,
                std::ostream &out, std::ostream &err)
{
    std::vector<std::string> positional;
    double threshold = 0.02;
    bool diffMode = false;
    bool listStats = false;
    OutputFormat format = OutputFormat::Table;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (i == 0 && arg == "diff") {
            diffMode = true;
        } else if (arg == "--list-stats") {
            listStats = true;
        } else if (arg.rfind("format=", 0) == 0) {
            const std::string text = arg.substr(7);
            if (text == "table") {
                format = OutputFormat::Table;
            } else if (text == "csv") {
                format = OutputFormat::Csv;
            } else if (text == "json") {
                format = OutputFormat::Json;
            } else {
                err << "ladder_query: bad format '" << text
                    << "' (table, csv, or json)\n";
                return 2;
            }
        } else if (arg.rfind("threshold=", 0) == 0) {
            char *end = nullptr;
            const std::string text = arg.substr(10);
            threshold = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' ||
                threshold < 0.0) {
                err << "ladder_query: bad threshold '" << text
                    << "'\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(err);
            return 0;
        } else {
            positional.push_back(arg);
        }
    }

    // A leading positional that exists on disk is a PATH; anything
    // else is the stat-name glob.
    std::string glob;
    if (!positional.empty()) {
        std::error_code ec;
        if (!std::filesystem::exists(positional.front(), ec)) {
            glob = positional.front();
            positional.erase(positional.begin());
        }
    }

    if (positional.empty() || (diffMode && positional.size() != 2))
        return usage(err);
    if (diffMode && listStats)
        return usage(err);

    std::vector<StatSource> sources;
    for (const std::string &path : positional) {
        StatSource src;
        std::string error;
        if (!loadStatSource(path, src, error)) {
            err << "ladder_query: " << error << "\n";
            return 2;
        }
        sources.push_back(std::move(src));
    }

    if (!diffMode) {
        std::set<std::string> names = selectNames(sources, glob);
        if (listStats) {
            for (const std::string &name : names)
                out << name << "\n";
            return 0;
        }
        switch (format) {
        case OutputFormat::Table:
            printTable(out, sources, names);
            break;
        case OutputFormat::Csv:
            printMergeCsv(out, sources, names);
            break;
        case OutputFormat::Json:
            printMergeJson(out, sources, names);
            break;
        }
        return 0;
    }

    std::vector<StatDiff> diffs =
        diffStatSources(sources[0], sources[1], glob, threshold);
    std::size_t flagged = 0;
    for (const StatDiff &d : diffs)
        if (d.flagged)
            ++flagged;
    if (format == OutputFormat::Csv) {
        printDiffCsv(out, diffs);
        return flagged == 0 ? 0 : 1;
    }
    if (format == OutputFormat::Json) {
        printDiffJson(out, sources[0], sources[1], diffs, threshold,
                      flagged);
        return flagged == 0 ? 0 : 1;
    }
    flagged = 0;
    std::size_t nameWidth = 4;
    for (const StatDiff &d : diffs)
        nameWidth = std::max(nameWidth, d.name.size());
    out << std::left << std::setw(static_cast<int>(nameWidth))
        << "stat"
        << "  " << std::right << std::setw(14) << sources[0].label
        << "  " << std::setw(14) << sources[1].label << "  "
        << std::setw(9) << "rel" << "\n";
    for (const StatDiff &d : diffs) {
        out << std::left << std::setw(static_cast<int>(nameWidth))
            << d.name << "  " << std::right << std::setw(14)
            << formatValue(d.base) << "  " << std::setw(14)
            << formatValue(d.other) << "  " << std::setw(8)
            << std::fixed << std::setprecision(2)
            << d.relDelta * 100.0 << "%";
        out.unsetf(std::ios::floatfield);
        if (d.flagged) {
            out << "  REGRESSION";
            ++flagged;
        }
        out << "\n";
    }
    out << "(" << diffs.size() << " stats compared, " << flagged
        << " beyond " << threshold * 100.0 << "% threshold)\n";
    return flagged == 0 ? 0 : 1;
}

} // namespace ladder
