#include "blame_query.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <ostream>

#include "ctrl/trace_reader.hh"
#include "ctrl/trace_sink.hh"

namespace ladder
{

namespace
{

/** Signed per-component sample buckets for one run. */
struct RawSamples
{
    std::vector<std::int32_t> ticks[blameComponentCount];
};

/**
 * Percentile of a sample set by nearest-rank on the sorted copy —
 * deterministic, no interpolation, matching the histogram exports.
 */
double
percentileNs(std::vector<std::int32_t> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    auto index = static_cast<std::size_t>(
        std::llround(q * static_cast<double>(sorted.size() - 1)));
    return static_cast<double>(sorted[index]) / 1000.0;
}

/** Reduce one run's raw samples to its percentile/share profile. */
BlameProfile
reduceProfile(std::string label, RawSamples &raw)
{
    BlameProfile profile;
    profile.label = std::move(label);
    profile.writes =
        static_cast<std::uint64_t>(raw.ticks[0].size());
    double totalBlame = 0.0;
    double sums[blameComponentCount] = {};
    for (unsigned c = 0; c < blameComponentCount; ++c) {
        for (std::int32_t t : raw.ticks[c])
            sums[c] += static_cast<double>(t) / 1000.0;
        totalBlame += sums[c];
    }
    for (unsigned c = 0; c < blameComponentCount; ++c) {
        auto &samples = raw.ticks[c];
        std::sort(samples.begin(), samples.end());
        BlameComponentProfile &p = profile.components[c];
        p.p50Ns = percentileNs(samples, 0.50);
        p.p99Ns = percentileNs(samples, 0.99);
        p.maxNs = samples.empty()
                      ? 0.0
                      : static_cast<double>(samples.back()) / 1000.0;
        p.meanNs = profile.writes == 0
                       ? 0.0
                       : sums[c] /
                             static_cast<double>(profile.writes);
        p.share = totalBlame == 0.0 ? 0.0 : sums[c] / totalBlame;
    }
    return profile;
}

/** Load one attribution trace file into a profile. */
bool
loadTraceProfile(const std::string &path, const std::string &label,
                 std::vector<BlameProfile> &out, std::string &error)
{
    TraceReader reader;
    if (!reader.open(path)) {
        error = path + ": " + reader.error();
        return false;
    }
    if (!reader.attribution()) {
        error = path +
                ": trace has no attribution block (rerun the sweep "
                "with trace.attribution=1)";
        return false;
    }
    RawSamples raw;
    CtrlTraceRecord rec;
    while (reader.next(rec)) {
        if (rec.kind != CtrlTraceRecord::Kind::Write)
            continue;
        const std::int32_t components[blameComponentCount] = {
            rec.attr.depTicks,     rec.attr.queueTicks,
            rec.attr.bankTicks,    rec.attr.rcdTicks,
            rec.attr.baseTicks,    rec.attr.locationTicks,
            rec.attr.contentTicks, rec.attr.schemeTicks};
        for (unsigned c = 0; c < blameComponentCount; ++c)
            raw.ticks[c].push_back(components[c]);
    }
    if (!reader.ok()) {
        error = path + ": " + reader.error();
        return false;
    }
    out.push_back(reduceProfile(label, raw));
    return true;
}

/** trace.csv / trace.bin inside @p dir, or empty when absent. */
std::string
traceFileIn(const std::filesystem::path &dir)
{
    for (const char *name : {"trace.csv", "trace.bin"}) {
        std::filesystem::path candidate = dir / name;
        std::error_code ec;
        if (std::filesystem::is_regular_file(candidate, ec))
            return candidate.string();
    }
    return {};
}

} // namespace

bool
loadBlameProfiles(const std::string &path,
                  std::vector<BlameProfile> &out, std::string &error)
{
    std::error_code ec;
    if (std::filesystem::is_regular_file(path, ec))
        return loadTraceProfile(path, path, out, error);
    if (!std::filesystem::is_directory(path, ec)) {
        error = path + ": no such file or directory";
        return false;
    }
    // A run directory holds the trace directly; a sweep trace-out
    // directory holds one run directory per cell.
    std::string direct = traceFileIn(path);
    if (!direct.empty())
        return loadTraceProfile(direct, path, out, error);
    // Deterministic order regardless of directory enumeration.
    std::vector<std::filesystem::path> runs;
    for (const auto &entry :
         std::filesystem::directory_iterator(path)) {
        if (entry.is_directory() &&
            !traceFileIn(entry.path()).empty())
            runs.push_back(entry.path());
    }
    std::sort(runs.begin(), runs.end());
    if (runs.empty()) {
        error = path + ": no trace.csv/trace.bin found (not a run "
                       "or trace-out directory?)";
        return false;
    }
    for (const auto &run : runs) {
        if (!loadTraceProfile(traceFileIn(run),
                              run.filename().string(), out, error))
            return false;
    }
    return true;
}

std::vector<BlameDiff>
diffBlameProfiles(const std::vector<BlameProfile> &base,
                  const std::vector<BlameProfile> &other,
                  double threshold)
{
    std::map<std::string, const BlameProfile *> otherByLabel;
    for (const BlameProfile &profile : other)
        otherByLabel[profile.label] = &profile;
    std::vector<BlameDiff> diffs;
    for (const BlameProfile &b : base) {
        auto it = otherByLabel.find(b.label);
        if (it == otherByLabel.end())
            continue;
        const BlameProfile &o = *it->second;
        for (unsigned c = 0; c < blameComponentCount; ++c) {
            BlameDiff d;
            d.run = b.label;
            d.component = blameComponentNames()[c];
            d.baseMeanNs = b.components[c].meanNs;
            d.otherMeanNs = o.components[c].meanNs;
            if (d.baseMeanNs != 0.0)
                d.relDelta = (d.otherMeanNs - d.baseMeanNs) /
                             std::abs(d.baseMeanNs);
            else
                d.relDelta = d.otherMeanNs == 0.0
                                 ? 0.0
                                 : std::abs(d.otherMeanNs);
            d.flagged = std::abs(d.relDelta) > threshold;
            diffs.push_back(std::move(d));
        }
    }
    return diffs;
}

namespace
{

int
usage(std::ostream &err)
{
    err << "usage: ladder_blame PATH... [format=table|csv]\n"
           "       ladder_blame diff A B [threshold=REL] "
           "[format=table|csv]\n"
           "\n"
           "PATH is an attribution trace (trace.attribution=1), a "
           "run directory,\nor a sweep trace-out directory. diff "
           "flags components whose mean\nblame moved more than REL "
           "(default 0.1) and exits 1.\n";
    return 2;
}

void
printTables(std::ostream &out,
            const std::vector<BlameProfile> &profiles)
{
    char buf[160];
    for (const BlameProfile &profile : profiles) {
        std::snprintf(buf, sizeof(buf), "%s (%llu writes)\n",
                      profile.label.c_str(),
                      static_cast<unsigned long long>(
                          profile.writes));
        out << buf;
        std::snprintf(buf, sizeof(buf),
                      "  %-10s %12s %12s %12s %12s %8s\n",
                      "component", "p50_ns", "p99_ns", "max_ns",
                      "mean_ns", "share");
        out << buf;
        for (unsigned c = 0; c < blameComponentCount; ++c) {
            const BlameComponentProfile &p = profile.components[c];
            std::snprintf(buf, sizeof(buf),
                          "  %-10s %12.3f %12.3f %12.3f %12.3f "
                          "%7.2f%%\n",
                          blameComponentNames()[c], p.p50Ns, p.p99Ns,
                          p.maxNs, p.meanNs, p.share * 100.0);
            out << buf;
        }
    }
}

void
printCsv(std::ostream &out,
         const std::vector<BlameProfile> &profiles)
{
    out << "run,component,p50_ns,p99_ns,max_ns,mean_ns,share_pct\n";
    char buf[160];
    for (const BlameProfile &profile : profiles) {
        for (unsigned c = 0; c < blameComponentCount; ++c) {
            const BlameComponentProfile &p = profile.components[c];
            std::snprintf(buf, sizeof(buf),
                          "%s,%s,%.3f,%.3f,%.3f,%.3f,%.2f\n",
                          profile.label.c_str(),
                          blameComponentNames()[c], p.p50Ns, p.p99Ns,
                          p.maxNs, p.meanNs, p.share * 100.0);
            out << buf;
        }
    }
}

} // namespace

int
ladderBlameMain(const std::vector<std::string> &args,
                std::ostream &out, std::ostream &err)
{
    std::vector<std::string> positional;
    double threshold = 0.1;
    bool diffMode = false;
    bool csv = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (i == 0 && arg == "diff") {
            diffMode = true;
        } else if (arg.rfind("format=", 0) == 0) {
            const std::string text = arg.substr(7);
            if (text == "csv") {
                csv = true;
            } else if (text != "table") {
                err << "ladder_blame: bad format '" << text
                    << "' (table or csv)\n";
                return 2;
            }
        } else if (arg.rfind("threshold=", 0) == 0) {
            char *end = nullptr;
            const std::string text = arg.substr(10);
            threshold = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' ||
                threshold < 0.0) {
                err << "ladder_blame: bad threshold '" << text
                    << "'\n";
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(err);
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.empty() || (diffMode && positional.size() != 2))
        return usage(err);

    if (!diffMode) {
        std::vector<BlameProfile> profiles;
        for (const std::string &path : positional) {
            std::string error;
            if (!loadBlameProfiles(path, profiles, error)) {
                err << "ladder_blame: " << error << "\n";
                return 2;
            }
        }
        if (csv)
            printCsv(out, profiles);
        else
            printTables(out, profiles);
        return 0;
    }

    std::vector<BlameProfile> base, other;
    std::string error;
    if (!loadBlameProfiles(positional[0], base, error) ||
        !loadBlameProfiles(positional[1], other, error)) {
        err << "ladder_blame: " << error << "\n";
        return 2;
    }
    std::vector<BlameDiff> diffs =
        diffBlameProfiles(base, other, threshold);
    if (diffs.empty()) {
        err << "ladder_blame: no common runs between '"
            << positional[0] << "' and '" << positional[1] << "'\n";
        return 2;
    }
    std::size_t flagged = 0;
    char buf[200];
    if (csv) {
        out << "run,component,base_mean_ns,other_mean_ns,rel_delta,"
               "flagged\n";
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%-32s %-10s %14s %14s %9s\n", "run",
                      "component", "base_mean_ns", "other_mean_ns",
                      "rel");
        out << buf;
    }
    for (const BlameDiff &d : diffs) {
        if (d.flagged)
            ++flagged;
        if (csv) {
            std::snprintf(buf, sizeof(buf),
                          "%s,%s,%.3f,%.3f,%.4f,%d\n", d.run.c_str(),
                          d.component.c_str(), d.baseMeanNs,
                          d.otherMeanNs, d.relDelta,
                          d.flagged ? 1 : 0);
            out << buf;
        } else {
            std::snprintf(buf, sizeof(buf),
                          "%-32s %-10s %14.3f %14.3f %8.2f%%%s\n",
                          d.run.c_str(), d.component.c_str(),
                          d.baseMeanNs, d.otherMeanNs,
                          d.relDelta * 100.0,
                          d.flagged ? "  BLAME SHIFT" : "");
            out << buf;
        }
    }
    if (!csv) {
        out << "(" << diffs.size() << " components compared, "
            << flagged << " beyond " << threshold * 100.0
            << "% threshold)\n";
    }
    return flagged == 0 ? 0 : 1;
}

} // namespace ladder
