#include "latency.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/profiler.hh"

namespace ladder
{

double
ResetLatencyLaw::latencyNs(double dropVolts) const
{
    double t = cNs * std::exp(-kPerVolt * std::abs(dropVolts));
    return std::clamp(t, fastNs, slowNs);
}

ResetLatencyLaw
ResetLatencyLaw::calibrate(double bestDropVolts, double worstDropVolts,
                           double fast, double slow)
{
    PROF_SCOPE("latency_calibrate");
    ladder_assert(bestDropVolts > worstDropVolts,
                  "calibrate: best drop (%f) must exceed worst (%f)",
                  bestDropVolts, worstDropVolts);
    ladder_assert(slow > fast && fast > 0.0,
                  "calibrate: need slow > fast > 0");
    ResetLatencyLaw law;
    law.fastNs = fast;
    law.slowNs = slow;
    law.kPerVolt =
        std::log(slow / fast) / (bestDropVolts - worstDropVolts);
    law.cNs = fast * std::exp(law.kPerVolt * bestDropVolts);
    return law;
}

ResetLatencyLaw
ResetLatencyLaw::shrinkDynamicRange(double factor) const
{
    ladder_assert(factor >= 1.0, "shrink factor must be >= 1");
    // A device with less process variation keeps its worst-case spec
    // (the baseline's fixed tWR) but its best case degrades toward
    // it: shrink anchored at the slow end (paper §7).
    double newFast = slowNs - (slowNs - fastNs) / factor;
    double bestDrop = std::log(cNs / fastNs) / kPerVolt;
    double worstDrop = std::log(cNs / slowNs) / kPerVolt;
    return calibrate(bestDrop, worstDrop, newFast, slowNs);
}

} // namespace ladder
