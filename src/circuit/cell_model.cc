#include "cell_model.hh"

#include <cmath>

#include "common/log.hh"

namespace ladder
{

CellModel::CellModel(const CrossbarParams &params) : params_(params)
{
    ladder_assert(params.selectorNonlinearity > 1.0,
                  "selector nonlinearity must exceed 1");
    ladder_assert(params.writeVolts > 0.0, "write voltage must be > 0");

    // Solve sinh(B*Vw) / sinh(B*Vw/2) = kappa by bisection. The ratio is
    // monotonically increasing in B from 2 (B -> 0) to infinity.
    const double vw = params.writeVolts;
    const double kappa = params.selectorNonlinearity;
    auto ratio = [vw](double b) {
        return std::sinh(b * vw) / std::sinh(b * vw / 2.0);
    };
    double lo = 1e-9;
    double hi = 1.0;
    while (ratio(hi) < kappa)
        hi *= 2.0;
    for (int iter = 0; iter < 200; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (ratio(mid) < kappa)
            lo = mid;
        else
            hi = mid;
    }
    b_ = 0.5 * (lo + hi);
    sinhBVw_ = std::sinh(b_ * vw);
}

double
CellModel::nominalConductance(CellState state) const
{
    return state == CellState::LRS ? 1.0 / params_.lrsOhms
                                   : 1.0 / params_.hrsOhms;
}

double
CellModel::current(CellState state, double volts) const
{
    const double mag = std::abs(volts);
    const double isat =
        params_.writeVolts * nominalConductance(state) / sinhBVw_;
    double i = isat * std::sinh(b_ * mag);
    return volts >= 0.0 ? i : -i;
}

double
CellModel::conductance(CellState state, double volts) const
{
    const double mag = std::abs(volts);
    // As V -> 0 the sinh law has a finite slope Isat * B; use it to keep
    // the Picard iteration well conditioned for unselected cells.
    const double isat =
        params_.writeVolts * nominalConductance(state) / sinhBVw_;
    if (mag < 1e-6)
        return isat * b_;
    return isat * std::sinh(b_ * mag) / mag;
}

} // namespace ladder
