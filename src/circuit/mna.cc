#include "mna.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/profiler.hh"
#include "solvers.hh"
#include "sparse.hh"

namespace ladder
{

CrossbarMna::CrossbarMna(const CrossbarParams &params)
    : params_(params), cell_(params)
{
}

std::size_t
CrossbarMna::wlNode(std::size_t i, std::size_t j) const
{
    return i * params_.cols + j;
}

std::size_t
CrossbarMna::blNode(std::size_t i, std::size_t j) const
{
    return params_.rows * params_.cols + j * params_.rows + i;
}

std::vector<std::size_t>
CrossbarMna::selectedBitlines(const ResetCondition &cond) const
{
    std::vector<std::size_t> bls;
    const std::size_t base = cond.byteOffset * params_.selectedCells;
    for (std::size_t k = 0; k < params_.selectedCells; ++k) {
        std::size_t bl = base + k;
        ladder_assert(bl < params_.cols,
                      "selected bitline %zu beyond crossbar", bl);
        bls.push_back(bl);
    }
    return bls;
}

std::vector<CellState>
CrossbarMna::worstCasePattern(const ResetCondition &cond) const
{
    const std::size_t n = params_.rows;
    const std::size_t m = params_.cols;
    std::vector<CellState> pattern(n * m, CellState::HRS);
    const auto bls = selectedBitlines(cond);

    // LRS cells along the selected wordline: pack from the far end,
    // skipping the selected columns (those are forced LRS separately).
    unsigned placed = 0;
    for (std::size_t j = m; j-- > 0 && placed < cond.wlLrsCount;) {
        if (std::find(bls.begin(), bls.end(), j) != bls.end())
            continue;
        pattern[cond.wordline * m + j] = CellState::LRS;
        ++placed;
    }
    // LRS cells along each selected bitline: pack from the far end,
    // skipping the selected row.
    for (std::size_t bl : bls) {
        placed = 0;
        for (std::size_t i = n; i-- > 0 && placed < cond.blLrsCount;) {
            if (i == cond.wordline)
                continue;
            pattern[i * m + bl] = CellState::LRS;
            ++placed;
        }
    }
    return pattern;
}

CrossbarMna::Solution
CrossbarMna::solve(const std::vector<CellState> &pattern,
                   const WriteOperation &op) const
{
    PROF_SCOPE("mna_solve");
    const std::size_t n = params_.rows;
    const std::size_t m = params_.cols;
    ladder_assert(pattern.size() == n * m, "pattern size mismatch");
    ladder_assert(op.wordline < n, "selected wordline out of range");

    std::vector<CellState> states = pattern;
    for (std::size_t bl : op.bitlines) {
        ladder_assert(bl < m, "selected bitline out of range");
        // RESET targets are in LRS (they hold a '1' being cleared).
        states[op.wordline * m + bl] = CellState::LRS;
    }

    std::vector<bool> selectedBl(m, false);
    for (std::size_t bl : op.bitlines)
        selectedBl[bl] = true;

    const double vw = params_.writeVolts;
    const double vb = params_.biasVolts;
    const double gWire = 1.0 / params_.wireOhms;
    const double gIn = 1.0 / params_.inputOhms;
    const double gOut = 1.0 / params_.outputOhms;

    const std::size_t total = 2 * n * m;

    // Initial voltage guess: lines sit at their driver potentials.
    std::vector<double> volts(total);
    for (std::size_t i = 0; i < n; ++i) {
        double v = (i == op.wordline) ? 0.0 : vb;
        for (std::size_t j = 0; j < m; ++j)
            volts[wlNode(i, j)] = v;
    }
    for (std::size_t j = 0; j < m; ++j) {
        double v = selectedBl[j] ? vw : vb;
        for (std::size_t i = 0; i < n; ++i)
            volts[blNode(i, j)] = v;
    }

    Solution sol;
    const std::size_t maxPicard = 60;
    const double tol = 1e-7;

    std::vector<double> x = volts;
    for (std::size_t iter = 0; iter < maxPicard; ++iter) {
        std::vector<Triplet> trip;
        trip.reserve(10 * n * m);
        std::vector<double> rhs(total, 0.0);

        // Wordline wire segments and drivers.
        for (std::size_t i = 0; i < n; ++i) {
            double vSrc = (i == op.wordline) ? 0.0 : vb;
            std::size_t n0 = wlNode(i, 0);
            trip.push_back({n0, n0, gIn});
            rhs[n0] += gIn * vSrc;
            for (std::size_t j = 0; j + 1 < m; ++j) {
                std::size_t a = wlNode(i, j);
                std::size_t b = wlNode(i, j + 1);
                trip.push_back({a, a, gWire});
                trip.push_back({b, b, gWire});
                trip.push_back({a, b, -gWire});
                trip.push_back({b, a, -gWire});
            }
        }
        // Bitline wire segments and drivers.
        for (std::size_t j = 0; j < m; ++j) {
            double vSrc = selectedBl[j] ? vw : vb;
            std::size_t n0 = blNode(0, j);
            trip.push_back({n0, n0, gOut});
            rhs[n0] += gOut * vSrc;
            for (std::size_t i = 0; i + 1 < n; ++i) {
                std::size_t a = blNode(i, j);
                std::size_t b = blNode(i + 1, j);
                trip.push_back({a, a, gWire});
                trip.push_back({b, b, gWire});
                trip.push_back({a, b, -gWire});
                trip.push_back({b, a, -gWire});
            }
        }
        // Cells: conductance linearized at the current voltage drop.
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
                std::size_t a = wlNode(i, j);
                std::size_t b = blNode(i, j);
                double drop = volts[b] - volts[a];
                double g = cell_.conductance(states[i * m + j], drop);
                // Half-selected cells carry the calibrated sneak
                // scales (see CrossbarParams).
                if (selectedBl[j] && i != op.wordline)
                    g *= params_.blSneakScale;
                else if (i == op.wordline && !selectedBl[j])
                    g *= params_.wlSneakScale;
                trip.push_back({a, a, g});
                trip.push_back({b, b, g});
                trip.push_back({a, b, -g});
                trip.push_back({b, a, -g});
            }
        }

        SparseMatrix mat(total, std::move(trip));
        CgResult cg = conjugateGradient(mat, rhs, x, 1e-11);
        if (!cg.converged) {
            // Every Picard iteration of every bucket would repeat
            // this; one report per process is plenty.
            warn_once("crossbar MNA: CG stalled at residual %g",
                      cg.residualNorm);
        }

        double maxDelta = 0.0;
        for (std::size_t k = 0; k < total; ++k) {
            double next = 0.5 * volts[k] + 0.5 * x[k];
            maxDelta = std::max(maxDelta, std::abs(next - volts[k]));
            volts[k] = next;
        }
        sol.picardIterations = iter + 1;
        if (maxDelta < tol) {
            sol.converged = true;
            break;
        }
    }

    SolverInstrumentation::instance().notePicard(
        sol.picardIterations, sol.converged);

    sol.wlVolts.assign(volts.begin(), volts.begin() + n * m);
    sol.blVolts.assign(volts.begin() + n * m, volts.end());

    sol.minDropVolts = std::numeric_limits<double>::max();
    for (std::size_t bl : op.bitlines) {
        double drop = volts[blNode(op.wordline, bl)] -
                      volts[wlNode(op.wordline, bl)];
        sol.cellDrops.push_back(std::abs(drop));
        sol.minDropVolts = std::min(sol.minDropVolts, std::abs(drop));
    }
    if (op.bitlines.empty())
        sol.minDropVolts = 0.0;

    // Total power delivered by all non-ground sources.
    double power = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double vSrc = (i == op.wordline) ? 0.0 : vb;
        double current = gIn * (vSrc - volts[wlNode(i, 0)]);
        power += vSrc * current;
    }
    for (std::size_t j = 0; j < m; ++j) {
        double vSrc = selectedBl[j] ? vw : vb;
        double current = gOut * (vSrc - volts[blNode(0, j)]);
        power += vSrc * current;
    }
    sol.sourcePowerWatts = power;
    return sol;
}

ResetEvaluation
CrossbarMna::evaluate(const ResetCondition &cond) const
{
    WriteOperation op;
    op.wordline = cond.wordline;
    op.bitlines = selectedBitlines(cond);
    Solution sol = solve(worstCasePattern(cond), op);

    ResetEvaluation eval;
    eval.minDropVolts = sol.minDropVolts;
    eval.maxDropVolts =
        sol.cellDrops.empty()
            ? 0.0
            : *std::max_element(sol.cellDrops.begin(),
                                sol.cellDrops.end());
    eval.sourcePowerWatts = sol.sourcePowerWatts;
    eval.iterations = sol.picardIterations;
    eval.converged = sol.converged;
    return eval;
}

} // namespace ladder
