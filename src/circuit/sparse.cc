#include "sparse.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

SparseMatrix::SparseMatrix(std::size_t n, std::vector<Triplet> triplets)
    : n_(n)
{
    for (const auto &t : triplets) {
        ladder_assert(t.row < n && t.col < n,
                      "triplet (%zu, %zu) outside %zu x %zu matrix",
                      t.row, t.col, n, n);
    }
    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &a, const Triplet &b) {
                  if (a.row != b.row)
                      return a.row < b.row;
                  return a.col < b.col;
              });

    rowPtr_.assign(n_ + 1, 0);
    colIdx_.reserve(triplets.size());
    values_.reserve(triplets.size());

    std::size_t i = 0;
    while (i < triplets.size()) {
        std::size_t row = triplets[i].row;
        std::size_t col = triplets[i].col;
        double sum = 0.0;
        while (i < triplets.size() && triplets[i].row == row &&
               triplets[i].col == col) {
            sum += triplets[i].value;
            ++i;
        }
        colIdx_.push_back(col);
        values_.push_back(sum);
        rowPtr_[row + 1] = colIdx_.size();
    }
    // Rows with no entries keep the previous offset.
    for (std::size_t r = 1; r <= n_; ++r)
        rowPtr_[r] = std::max(rowPtr_[r], rowPtr_[r - 1]);
}

void
SparseMatrix::multiply(const std::vector<double> &x,
                       std::vector<double> &y) const
{
    ladder_assert(x.size() == n_, "matvec: dimension mismatch");
    y.assign(n_, 0.0);
    for (std::size_t r = 0; r < n_; ++r) {
        double acc = 0.0;
        for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
            acc += values_[k] * x[colIdx_[k]];
        y[r] = acc;
    }
}

std::vector<double>
SparseMatrix::diagonal() const
{
    std::vector<double> d(n_, 0.0);
    for (std::size_t r = 0; r < n_; ++r) {
        for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
            if (colIdx_[k] == r)
                d[r] = values_[k];
        }
    }
    return d;
}

double
SparseMatrix::at(std::size_t row, std::size_t col) const
{
    ladder_assert(row < n_ && col < n_, "at(): out of range");
    for (std::size_t k = rowPtr_[row]; k < rowPtr_[row + 1]; ++k) {
        if (colIdx_[k] == col)
            return values_[k];
    }
    return 0.0;
}

std::vector<double>
SparseMatrix::toDense() const
{
    std::vector<double> dense(n_ * n_, 0.0);
    for (std::size_t r = 0; r < n_; ++r)
        for (std::size_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k)
            dense[r * n_ + colIdx_[k]] = values_[k];
    return dense;
}

} // namespace ladder
