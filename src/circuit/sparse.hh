/**
 * @file
 * Compressed sparse row matrices for the crossbar MNA system. The
 * conductance matrices we assemble are symmetric positive definite, so a
 * dedicated SPD path (conjugate gradient) lives in solvers.hh.
 */

#ifndef LADDER_CIRCUIT_SPARSE_HH
#define LADDER_CIRCUIT_SPARSE_HH

#include <cstddef>
#include <vector>

namespace ladder
{

/** A (row, col, value) contribution used while assembling a matrix. */
struct Triplet
{
    std::size_t row;
    std::size_t col;
    double value;
};

/**
 * Square sparse matrix in CSR form. Duplicate triplets are summed during
 * construction, which matches the "stamping" style of MNA assembly.
 */
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /** Build an n x n CSR matrix from triplets (duplicates summed). */
    SparseMatrix(std::size_t n, std::vector<Triplet> triplets);

    std::size_t size() const { return n_; }
    std::size_t nonZeros() const { return values_.size(); }

    /** y = A * x */
    void multiply(const std::vector<double> &x,
                  std::vector<double> &y) const;

    /** Diagonal entries (zero when absent); used for Jacobi scaling. */
    std::vector<double> diagonal() const;

    /** Entry accessor (slow; for tests). */
    double at(std::size_t row, std::size_t col) const;

    /** Convert to a dense row-major matrix (tests / small systems). */
    std::vector<double> toDense() const;

  private:
    std::size_t n_ = 0;
    std::vector<std::size_t> rowPtr_;
    std::vector<std::size_t> colIdx_;
    std::vector<double> values_;
};

} // namespace ladder

#endif // LADDER_CIRCUIT_SPARSE_HH
