/**
 * @file
 * Evaluator-agreement cross-check: sweep two circuit evaluators (the
 * fast sneak-path model and the full MNA solver, or any other pair
 * that evaluates a ResetCondition) over a (location × content) grid
 * and bound how far apart the latencies they imply are, under an
 * explicit relative error budget.
 *
 * This is the circuit-layer contract behind the precomputed latency
 * surfaces: the surfaces are generated from the fast model, so the
 * surface's physical fidelity is exactly the fast model's agreement
 * with MNA — which this API measures and test_latency_surface
 * enforces. The grid always includes both endpoints of every axis
 * (wordline 0 / rows-1, slot 0 / last, LRS 0 / max), so the boundary
 * operating points are always checked.
 */

#ifndef LADDER_CIRCUIT_MODEL_CHECK_HH
#define LADDER_CIRCUIT_MODEL_CHECK_HH

#include <cstddef>
#include <functional>

#include "cell_model.hh"
#include "latency.hh"
#include "reset_condition.hh"

namespace ladder
{

/** Callable evaluating the circuit at one operating point (same shape
 * as the reram layer's ResetEvaluator). */
using CircuitEvaluator =
    std::function<ResetEvaluation(const ResetCondition &)>;

/** Outcome of an evaluator-agreement sweep. */
struct ModelAgreement
{
    std::size_t points = 0;
    std::size_t violations = 0;
    /** Largest |drop(reference) - drop(candidate)| seen (V). */
    double maxAbsDropDeltaVolts = 0.0;
    /** Signed relative latency error with the largest magnitude:
     * (candidate - reference) / reference. */
    double maxRelLatencyError = 0.0;
    double budget = 0.0;

    bool ok() const { return points > 0 && violations == 0; }
};

/**
 * Sweep @p reference and @p candidate over a grid of
 * @p locationSteps × @p locationSteps × @p contentSteps ×
 * @p contentSteps operating points (wordline × byte slot × WL LRS ×
 * BL LRS, each axis sampled endpoint-inclusive) and flag points where
 * the law-mapped latencies disagree by more than @p relLatencyBudget
 * relative to the reference.
 */
ModelAgreement checkEvaluatorAgreement(const CrossbarParams &params,
                                       const ResetLatencyLaw &law,
                                       const CircuitEvaluator &reference,
                                       const CircuitEvaluator &candidate,
                                       unsigned locationSteps,
                                       unsigned contentSteps,
                                       double relLatencyBudget);

} // namespace ladder

#endif // LADDER_CIRCUIT_MODEL_CHECK_HH
