/**
 * @file
 * The abstract operating point a RESET latency evaluation is performed
 * at. Both the full MNA solver and the fast sneak-path model evaluate
 * the same condition so they can be cross-validated.
 */

#ifndef LADDER_CIRCUIT_RESET_CONDITION_HH
#define LADDER_CIRCUIT_RESET_CONDITION_HH

#include <cstddef>

namespace ladder
{

/**
 * One RESET operating point in a single mat.
 *
 * A mat write RESETs up to `selectedCells` bits of one byte: the cells
 * on wordline @p wordline at bitlines [8*byteOffset, 8*byteOffset+7].
 * Content enters through the number of LRS (logical '1') cells on the
 * selected wordline and on each selected bitline; the evaluators place
 * those LRS cells in the worst-case (far-end) positions so the derived
 * latency is always sufficient.
 */
struct ResetCondition
{
    std::size_t wordline = 0;   //!< selected wordline index
    std::size_t byteOffset = 0; //!< selected byte slot (bitline / 8)
    unsigned wlLrsCount = 0;    //!< LRS cells along the selected WL
    unsigned blLrsCount = 0;    //!< LRS cells along each selected BL
};

/** Electrical outcome of evaluating one ResetCondition. */
struct ResetEvaluation
{
    double minDropVolts = 0.0;      //!< worst (smallest) |Vd| among
                                    //!< the selected cells
    double maxDropVolts = 0.0;      //!< best |Vd| among selected cells
    double sourcePowerWatts = 0.0;  //!< total power from all sources
    std::size_t iterations = 0;     //!< nonlinear iterations used
    bool converged = false;
};

} // namespace ladder

#endif // LADDER_CIRCUIT_RESET_CONDITION_HH
