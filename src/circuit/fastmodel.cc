#include "fastmodel.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/profiler.hh"
#include "solvers.hh"

namespace ladder
{

SneakPathModel::SneakPathModel(const CrossbarParams &params)
    : params_(params), cell_(params)
{
}

ResetEvaluation
SneakPathModel::evaluate(const ResetCondition &cond) const
{
    PROF_SCOPE("fastmodel_solve");
    const std::size_t n = params_.rows;
    const std::size_t m = params_.cols;
    const std::size_t nSel = params_.selectedCells;
    ladder_assert(cond.wordline < n, "wordline out of range");
    ladder_assert((cond.byteOffset + 1) * nSel <= m,
                  "byte offset out of range");

    const double vw = params_.writeVolts;
    const double vb = params_.biasVolts;
    const double gWire = 1.0 / params_.wireOhms;
    const double gIn = 1.0 / params_.inputOhms;
    const double gOut = 1.0 / params_.outputOhms;

    const std::size_t blBase = cond.byteOffset * nSel;

    // Worst-case LRS placement on the selected wordline: cluster at the
    // far (high-index) end, skipping the selected byte columns.
    std::vector<CellState> wlState(m, CellState::HRS);
    {
        unsigned placed = 0;
        for (std::size_t j = m; j-- > 0 && placed < cond.wlLrsCount;) {
            if (j >= blBase && j < blBase + nSel)
                continue;
            wlState[j] = CellState::LRS;
            ++placed;
        }
    }
    // Worst-case LRS placement on the selected bitlines: far end,
    // skipping the selected row.
    std::vector<CellState> blState(n, CellState::HRS);
    {
        unsigned placed = 0;
        for (std::size_t i = n; i-- > 0 && placed < cond.blLrsCount;) {
            if (i == cond.wordline)
                continue;
            blState[i] = CellState::LRS;
            ++placed;
        }
    }

    // State of the fixed-point loop.
    std::vector<double> vWl(m, 0.0);            // selected WL nodes
    std::vector<double> vBl(n, vw);             // selected BL nodes
                                                // (shared shape; each
                                                // selected BL carries its
                                                // own current below)
    std::vector<double> cellCurrent(nSel, 0.0); // per selected cell

    // Initial guess for the cell currents: the nominal LRS current at
    // the ideal drop Vw.
    for (auto &i : cellCurrent)
        i = cell_.current(CellState::LRS, vw);

    ResetEvaluation eval;
    const std::size_t maxIter = 200;
    const double tol = 2e-7;
    const double damping = 0.35;

    std::vector<double> sub(std::max(n, m)), diag(std::max(n, m)),
        sup(std::max(n, m)), rhs(std::max(n, m));

    std::vector<double> drops(nSel, vw);
    double biasPower = 0.0;
    double drvPower = 0.0;

    for (std::size_t iter = 0; iter < maxIter; ++iter) {
        // --- Selected wordline solve (driver to ground at j = 0). ---
        sub.assign(m, 0.0);
        diag.assign(m, 0.0);
        sup.assign(m, 0.0);
        rhs.assign(m, 0.0);
        biasPower = 0.0;
        for (std::size_t j = 0; j < m; ++j) {
            if (j > 0) {
                sub[j] = -gWire;
                diag[j] += gWire;
            }
            if (j + 1 < m) {
                sup[j] = -gWire;
                diag[j] += gWire;
            }
            if (j == 0)
                diag[j] += gIn; // grounded driver, no RHS term
            if (j >= blBase && j < blBase + nSel) {
                // Fully selected cell: known current injection.
                rhs[j] += cellCurrent[j - blBase];
            } else {
                // Half-selected cell shunting to the V/2 bias plane.
                double drop = vb - vWl[j];
                double g = cell_.conductance(wlState[j], drop) *
                           params_.wlSneakScale;
                diag[j] += g;
                rhs[j] += g * vb;
                biasPower += vb * g * drop;
            }
        }
        std::vector<double> newWl = rhs;
        {
            std::vector<double> s(sub.begin(), sub.begin() + m);
            std::vector<double> d(diag.begin(), diag.begin() + m);
            std::vector<double> u(sup.begin(), sup.begin() + m);
            solveTridiagonal(s, d, u, newWl);
        }

        // --- Selected bitline solve (driver at i = 0 at Vw). ---
        // All selected bitlines share identical structure and loads
        // and carry cell currents within a fraction of a percent of
        // each other (they differ only through adjacent wordline
        // nodes), so one representative line solved with the mean
        // cell current stands for all of them. The per-cell drops
        // still differ through the wordline side.
        double meanCurrent = 0.0;
        for (double i : cellCurrent)
            meanCurrent += i;
        meanCurrent /= static_cast<double>(nSel);

        sub.assign(n, 0.0);
        diag.assign(n, 0.0);
        sup.assign(n, 0.0);
        rhs.assign(n, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            if (i > 0) {
                sub[i] = -gWire;
                diag[i] += gWire;
            }
            if (i + 1 < n) {
                sup[i] = -gWire;
                diag[i] += gWire;
            }
            if (i == 0) {
                diag[i] += gOut;
                rhs[i] += gOut * vw;
            }
            if (i == cond.wordline) {
                rhs[i] -= meanCurrent;
            } else {
                double drop = vBl[i] - vb;
                double g = cell_.conductance(blState[i], drop) *
                           params_.blSneakScale;
                diag[i] += g;
                rhs[i] += g * vb;
            }
        }
        std::vector<double> newBl = rhs;
        solveTridiagonal(sub, diag, sup, newBl);
        double blAtSel = newBl[cond.wordline];
        drvPower = static_cast<double>(nSel) * vw * gOut *
                   (vw - newBl[0]);
        std::vector<double> newBlAtSel(nSel, blAtSel);

        // --- Cell current update with damping. ---
        double maxDelta = 0.0;
        for (std::size_t k = 0; k < nSel; ++k) {
            double drop = newBlAtSel[k] - newWl[blBase + k];
            double iNew = cell_.current(CellState::LRS, drop);
            double iNext =
                damping * cellCurrent[k] + (1.0 - damping) * iNew;
            maxDelta =
                std::max(maxDelta, std::abs(iNext - cellCurrent[k]));
            cellCurrent[k] = iNext;
            drops[k] = std::abs(drop);
        }
        for (std::size_t j = 0; j < m; ++j) {
            double next = damping * vWl[j] + (1.0 - damping) * newWl[j];
            maxDelta = std::max(maxDelta, std::abs(next - vWl[j]));
            vWl[j] = next;
        }
        for (std::size_t i = 0; i < n; ++i) {
            double next = damping * vBl[i] + (1.0 - damping) * newBl[i];
            maxDelta = std::max(maxDelta, std::abs(next - vBl[i]));
            vBl[i] = next;
        }

        eval.iterations = iter + 1;
        // Current scale is ~1e-4 A, voltage ~1 V; a combined absolute
        // tolerance works for both.
        if (maxDelta < tol) {
            eval.converged = true;
            break;
        }
    }

    eval.minDropVolts = *std::min_element(drops.begin(), drops.end());
    eval.maxDropVolts = *std::max_element(drops.begin(), drops.end());
    eval.sourcePowerWatts = drvPower + std::max(biasPower, 0.0);
    SolverInstrumentation::instance().notePicard(eval.iterations,
                                                 eval.converged);
    return eval;
}

} // namespace ladder
