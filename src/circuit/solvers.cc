#include "solvers.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/profiler.hh"

namespace ladder
{

namespace
{

double
dot(const std::vector<double> &a, const std::vector<double> &b)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
norm2(const std::vector<double> &a)
{
    return std::sqrt(dot(a, a));
}

} // anonymous namespace

SolverInstrumentation &
SolverInstrumentation::instance()
{
    static SolverInstrumentation inst;
    return inst;
}

void
SolverInstrumentation::noteCg(const CgResult &result,
                              double relativeResidual)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.cgSolves;
    counters_.cgIterations += result.iterations;
    if (!result.converged)
        ++counters_.cgStalls;
    counters_.cgMaxResidual =
        std::max(counters_.cgMaxResidual, relativeResidual);
}

void
SolverInstrumentation::notePicard(std::size_t iterations,
                                  bool converged)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.picardSolves;
    counters_.picardIterations += iterations;
    if (!converged)
        ++counters_.picardStalls;
}

SolverCounters
SolverInstrumentation::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
SolverInstrumentation::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = SolverCounters{};
}

CgResult
conjugateGradient(const SparseMatrix &a, const std::vector<double> &b,
                  std::vector<double> &x, double tol,
                  std::size_t maxIter)
{
    PROF_SCOPE("cg_solve");
    const std::size_t n = a.size();
    ladder_assert(b.size() == n, "cg: rhs dimension mismatch");
    if (x.size() != n)
        x.assign(n, 0.0);
    if (maxIter == 0)
        maxIter = 10 * n + 100;

    std::vector<double> diag = a.diagonal();
    std::vector<double> invDiag(n);
    for (std::size_t i = 0; i < n; ++i)
        invDiag[i] = diag[i] != 0.0 ? 1.0 / diag[i] : 1.0;

    std::vector<double> r(n), z(n), p(n), ap(n);
    a.multiply(x, ap);
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - ap[i];

    const double bNorm = norm2(b);
    const double target = tol * (bNorm > 0.0 ? bNorm : 1.0);

    const double residualScale = bNorm > 0.0 ? 1.0 / bNorm : 1.0;

    CgResult result;
    double rNorm = norm2(r);
    if (rNorm <= target) {
        result.converged = true;
        result.residualNorm = rNorm;
        SolverInstrumentation::instance().noteCg(
            result, rNorm * residualScale);
        return result;
    }

    for (std::size_t i = 0; i < n; ++i)
        z[i] = invDiag[i] * r[i];
    p = z;
    double rz = dot(r, z);

    for (std::size_t iter = 0; iter < maxIter; ++iter) {
        a.multiply(p, ap);
        double pap = dot(p, ap);
        if (pap <= 0.0) {
            // Not SPD (or breakdown); bail with current iterate.
            break;
        }
        double alpha = rz / pap;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        rNorm = norm2(r);
        result.iterations = iter + 1;
        if (rNorm <= target) {
            result.converged = true;
            break;
        }
        for (std::size_t i = 0; i < n; ++i)
            z[i] = invDiag[i] * r[i];
        double rzNew = dot(r, z);
        double beta = rzNew / rz;
        rz = rzNew;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = z[i] + beta * p[i];
    }
    result.residualNorm = rNorm;
    SolverInstrumentation::instance().noteCg(result,
                                             rNorm * residualScale);
    return result;
}

void
denseSolveInPlace(std::vector<double> &dense, std::vector<double> &b,
                  std::size_t n)
{
    ladder_assert(dense.size() == n * n && b.size() == n,
                  "denseSolve: dimension mismatch");
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        double best = std::abs(dense[col * n + col]);
        for (std::size_t r = col + 1; r < n; ++r) {
            double v = std::abs(dense[r * n + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        ladder_assert(best > 0.0, "denseSolve: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(dense[col * n + c], dense[pivot * n + c]);
            std::swap(b[col], b[pivot]);
        }
        double inv = 1.0 / dense[col * n + col];
        for (std::size_t r = col + 1; r < n; ++r) {
            double factor = dense[r * n + col] * inv;
            if (factor == 0.0)
                continue;
            dense[r * n + col] = 0.0;
            for (std::size_t c = col + 1; c < n; ++c)
                dense[r * n + c] -= factor * dense[col * n + c];
            b[r] -= factor * b[col];
        }
    }
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= dense[ri * n + c] * b[c];
        b[ri] = acc / dense[ri * n + ri];
    }
}

void
solveTridiagonal(std::vector<double> &sub, std::vector<double> &diag,
                 std::vector<double> &sup, std::vector<double> &rhs)
{
    const std::size_t n = diag.size();
    ladder_assert(sub.size() == n && sup.size() == n && rhs.size() == n,
                  "tridiag: dimension mismatch");
    for (std::size_t i = 1; i < n; ++i) {
        double w = sub[i] / diag[i - 1];
        diag[i] -= w * sup[i - 1];
        rhs[i] -= w * rhs[i - 1];
    }
    rhs[n - 1] /= diag[n - 1];
    for (std::size_t i = n - 1; i-- > 0;)
        rhs[i] = (rhs[i] - sup[i] * rhs[i + 1]) / diag[i];
}

} // namespace ladder
