/**
 * @file
 * Linear solvers for the crossbar circuit simulation: Jacobi-
 * preconditioned conjugate gradient for the (SPD) MNA systems, dense
 * Gaussian elimination as a validation reference, and the Thomas
 * algorithm for the tridiagonal line systems of the fast sneak-path
 * model.
 */

#ifndef LADDER_CIRCUIT_SOLVERS_HH
#define LADDER_CIRCUIT_SOLVERS_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sparse.hh"

namespace ladder
{

/** Outcome of an iterative solve. */
struct CgResult
{
    bool converged = false;
    std::size_t iterations = 0;
    double residualNorm = 0.0;
};

/**
 * Process-wide solver-effort counters snapshotted into run manifests
 * and stats.json. Only order-independent aggregates are kept (integer
 * sums and maxima), so totals are bit-identical however the parallel
 * sweep interleaves the table builds that drive the solves.
 */
struct SolverCounters
{
    std::uint64_t cgSolves = 0;
    std::uint64_t cgIterations = 0;
    std::uint64_t cgStalls = 0;      //!< solves that hit the cap
    double cgMaxResidual = 0.0;      //!< worst relative residual left
    std::uint64_t picardSolves = 0;  //!< nonlinear outer solves (MNA
                                     //!< Picard + fast-model loops)
    std::uint64_t picardIterations = 0;
    std::uint64_t picardStalls = 0;
};

/** Thread-safe accumulator behind the counters above. */
class SolverInstrumentation
{
  public:
    static SolverInstrumentation &instance();

    void noteCg(const CgResult &result, double relativeResidual);
    void notePicard(std::size_t iterations, bool converged);

    SolverCounters snapshot() const;
    void reset();

  private:
    mutable std::mutex mutex_;
    SolverCounters counters_;
};

/**
 * Solve A x = b for SPD A with Jacobi-preconditioned conjugate gradient.
 *
 * @param a SPD system matrix.
 * @param b Right-hand side.
 * @param x In: initial guess (warm start). Out: solution.
 * @param tol Relative residual tolerance (||r|| / ||b||).
 * @param maxIter Iteration cap (0 means 10 * n).
 */
CgResult conjugateGradient(const SparseMatrix &a,
                           const std::vector<double> &b,
                           std::vector<double> &x,
                           double tol = 1e-10,
                           std::size_t maxIter = 0);

/**
 * Solve a dense system by Gaussian elimination with partial pivoting.
 * Intended for validation on small systems only (O(n^3)).
 *
 * @param dense Row-major n x n matrix (modified in place).
 * @param b Right-hand side (modified in place; becomes the solution).
 */
void denseSolveInPlace(std::vector<double> &dense,
                       std::vector<double> &b,
                       std::size_t n);

/**
 * Solve a tridiagonal system with the Thomas algorithm.
 *
 * diag/rhs are modified in place; the solution is returned in rhs.
 * sub[i] couples row i to i-1 (sub[0] unused); sup[i] couples row i to
 * i+1 (sup[n-1] unused).
 */
void solveTridiagonal(std::vector<double> &sub,
                      std::vector<double> &diag,
                      std::vector<double> &sup,
                      std::vector<double> &rhs);

} // namespace ladder

#endif // LADDER_CIRCUIT_SOLVERS_HH
