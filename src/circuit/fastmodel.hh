/**
 * @file
 * Fast sneak-path macromodel of a crossbar RESET.
 *
 * Instead of solving all rows*cols*2 MNA nodes, the model keeps only the
 * lines that matter to first order for the selected cells' voltage drop:
 * the selected wordline and the selected bitlines, each discretized into
 * per-crosspoint nodes. Half-selected cells hang off these lines as
 * voltage-dependent shunt loads to the V/2 bias (unselected lines are
 * assumed to sit at their driver potential, the standard approximation
 * in crossbar design-space studies). Each line is then a tridiagonal
 * system solved with the Thomas algorithm inside a damped fixed-point
 * loop that exchanges the selected-cell currents between the wordline
 * and bitline solves.
 *
 * Cost is O(rows + cols) per nonlinear iteration, microseconds per
 * operating point, which lets the memory simulator build full timing
 * tables at startup. Accuracy is validated against CrossbarMna in the
 * test suite.
 */

#ifndef LADDER_CIRCUIT_FASTMODEL_HH
#define LADDER_CIRCUIT_FASTMODEL_HH

#include <cstddef>
#include <vector>

#include "cell_model.hh"
#include "reset_condition.hh"

namespace ladder
{

/** Fast 1-D coupled-line crossbar RESET evaluator. */
class SneakPathModel
{
  public:
    explicit SneakPathModel(const CrossbarParams &params);

    /** Evaluate one RESET operating point. */
    ResetEvaluation evaluate(const ResetCondition &cond) const;

    const CellModel &cellModel() const { return cell_; }
    const CrossbarParams &params() const { return params_; }

  private:
    CrossbarParams params_;
    CellModel cell_;
};

} // namespace ladder

#endif // LADDER_CIRCUIT_FASTMODEL_HH
