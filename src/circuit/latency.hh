/**
 * @file
 * The RESET latency law t = C * exp(-k * |Vd|) (Yu & Wong, IEEE EDL'10;
 * paper §2.1) and its calibration against the circuit model so that the
 * full operating envelope spans the paper's tWR range of 29-658 ns
 * (Table 2).
 */

#ifndef LADDER_CIRCUIT_LATENCY_HH
#define LADDER_CIRCUIT_LATENCY_HH

namespace ladder
{

/**
 * Exponential RESET-time law. The output is clamped to the calibrated
 * [fastNs, slowNs] envelope so that numerical noise in the circuit
 * solve can never produce an unsafe (too small) or absurd latency.
 */
struct ResetLatencyLaw
{
    double cNs = 0.0;      //!< prefactor C (ns)
    double kPerVolt = 0.0; //!< exponent slope k (1/V)
    double fastNs = 29.0;  //!< clamp floor
    double slowNs = 658.0; //!< clamp ceiling

    /** Latency (ns) for a given voltage drop across the cell. */
    double latencyNs(double dropVolts) const;

    /**
     * Fit C and k such that the best-case drop maps to @p fast and the
     * worst-case drop maps to @p slow.
     *
     * @pre bestDrop > worstDrop (more voltage means faster RESET).
     */
    static ResetLatencyLaw calibrate(double bestDropVolts,
                                     double worstDropVolts,
                                     double fast = 29.0,
                                     double slow = 658.0);

    /**
     * A law with the dynamic range shrunk by @p factor around the fast
     * end: slow' = fast + (slow - fast) / factor, k scaled to match.
     * Used by the §7 process-variability ablation.
     */
    ResetLatencyLaw shrinkDynamicRange(double factor) const;
};

} // namespace ladder

#endif // LADDER_CIRCUIT_LATENCY_HH
