/**
 * @file
 * Full modified-nodal-analysis simulation of a ReRAM crossbar under the
 * V/2 write-biasing scheme (paper Fig. 1 and §5). Every wordline and
 * bitline is discretized into per-crosspoint nodes with wire parasitics;
 * cells couple the two planes through the nonlinear 1S1R law. The
 * resulting SPD conductance system is solved with preconditioned CG
 * inside a damped Picard iteration over the cell conductances.
 *
 * This is the reference ("HSPICE-accurate" in spirit) model. It is
 * O(rows*cols) unknowns per solve, so the memory-system simulator uses
 * the fast sneak-path model instead; tests cross-validate the two.
 */

#ifndef LADDER_CIRCUIT_MNA_HH
#define LADDER_CIRCUIT_MNA_HH

#include <cstddef>
#include <vector>

#include "cell_model.hh"
#include "reset_condition.hh"

namespace ladder
{

/** The cells selected by one mat write. */
struct WriteOperation
{
    std::size_t wordline = 0;
    std::vector<std::size_t> bitlines;
};

/** Full crossbar MNA simulator. */
class CrossbarMna
{
  public:
    explicit CrossbarMna(const CrossbarParams &params);

    /** Full node-level solution. */
    struct Solution
    {
        std::vector<double> wlVolts;   //!< rows*cols wordline nodes
        std::vector<double> blVolts;   //!< rows*cols bitline nodes
        std::vector<double> cellDrops; //!< |Vd| per selected cell
        double minDropVolts = 0.0;
        double sourcePowerWatts = 0.0;
        std::size_t picardIterations = 0;
        bool converged = false;
    };

    /**
     * Solve the crossbar for an explicit cell-state pattern.
     *
     * @param pattern rows*cols row-major cell states.
     * @param op The selected wordline/bitlines (cells forced to LRS
     *           as RESET targets).
     */
    Solution solve(const std::vector<CellState> &pattern,
                   const WriteOperation &op) const;

    /**
     * Evaluate an abstract ResetCondition by materializing the
     * worst-case pattern (LRS cells clustered at the far ends) and
     * running the full solve.
     */
    ResetEvaluation evaluate(const ResetCondition &cond) const;

    /**
     * Build the worst-case pattern for a condition: wlLrsCount LRS
     * cells packed at the far end of the selected wordline and
     * blLrsCount packed at the far end of each selected bitline.
     */
    std::vector<CellState>
    worstCasePattern(const ResetCondition &cond) const;

    /** The selected bitlines implied by a condition's byte offset. */
    std::vector<std::size_t>
    selectedBitlines(const ResetCondition &cond) const;

    const CellModel &cellModel() const { return cell_; }

  private:
    CrossbarParams params_;
    CellModel cell_;

    std::size_t wlNode(std::size_t i, std::size_t j) const;
    std::size_t blNode(std::size_t i, std::size_t j) const;
};

} // namespace ladder

#endif // LADDER_CIRCUIT_MNA_HH
