/**
 * @file
 * ReRAM cell + selector electrical model and the crossbar parameters of
 * the paper's Table 1.
 *
 * The composite 1S1R cell is modelled with the standard sinh-type
 * selector I-V law: I(V) = Isat * sinh(B * V), scaled so that at the
 * full write voltage the composite presents its nominal state
 * resistance, and so that the selector nonlinearity
 * kappa = I(Vw) / I(Vw/2) matches the configured value (200 in the
 * paper). This is the same phenomenological model used by the crossbar
 * design-space literature the paper builds on (Xu et al. HPCA'15,
 * Niu et al. ISLPED'12).
 */

#ifndef LADDER_CIRCUIT_CELL_MODEL_HH
#define LADDER_CIRCUIT_CELL_MODEL_HH

#include <cstddef>

namespace ladder
{

/** Crossbar electrical parameters (paper Table 1). */
struct CrossbarParams
{
    std::size_t rows = 512;        //!< wordlines per mat
    std::size_t cols = 512;        //!< bitlines per mat
    std::size_t selectedCells = 8; //!< bits RESET per mat per write
    double lrsOhms = 10e3;         //!< LRS resistance
    double hrsOhms = 2e6;          //!< HRS resistance
    double selectorNonlinearity = 200.0;
    double inputOhms = 100.0;      //!< wordline driver resistance
    double outputOhms = 100.0;     //!< bitline driver resistance
    double wireOhms = 2.5;         //!< per-segment wire resistance
    double writeVolts = 3.0;       //!< RESET voltage V
    double biasVolts = 1.5;        //!< half-select bias V/2

    /**
     * Calibration of the phenomenological selector model against the
     * paper's published latency surfaces (Figs. 4b/11). The paper's
     * circuit simulations show RESET latency dominated by the
     * *wordline* data pattern; a static sinh selector model under-
     * weights that dependence because the half-selected sneak is
     * self-limited at the operating point. wlSneakScale boosts the
     * effective sneak conductance of half-selected LRS cells along the
     * selected wordline (capturing transient/pre-switch currents);
     * blSneakScale correspondingly scales the selected-bitline sneak.
     * Both are applied identically in the fast sneak-path model and
     * the full MNA so cross-validation stays meaningful; set both to
     * 1.0 for the uncalibrated symmetric model.
     */
    double wlSneakScale = 3.0;
    double blSneakScale = 1.0;
};

/** Resistive state of one cell. */
enum class CellState : unsigned char
{
    HRS = 0, //!< high-resistance state, logical '0'
    LRS = 1, //!< low-resistance state, logical '1'
};

/**
 * Voltage-dependent composite conductance of a 1S1R cell.
 *
 * The law is I(V) = (Vw / Rstate) * sinh(B V) / sinh(B Vw), giving
 * effective conductance g(V) = I(V) / V. B is solved numerically from
 * the nonlinearity constraint sinh(B Vw) / sinh(B Vw / 2) = kappa.
 */
class CellModel
{
  public:
    explicit CellModel(const CrossbarParams &params);

    /** Conductance (S) of a cell in @p state with @p volts across it. */
    double conductance(CellState state, double volts) const;

    /** Current (A) through a cell in @p state at @p volts. */
    double current(CellState state, double volts) const;

    /** The fitted sinh steepness B (1/V). */
    double steepness() const { return b_; }

    /**
     * Linear (selector-free) conductance of a state; the value the
     * composite approaches at the full write voltage.
     */
    double nominalConductance(CellState state) const;

    const CrossbarParams &params() const { return params_; }

  private:
    CrossbarParams params_;
    double b_ = 0.0;       //!< sinh steepness
    double sinhBVw_ = 0.0; //!< cached sinh(B * Vw)
};

} // namespace ladder

#endif // LADDER_CIRCUIT_CELL_MODEL_HH
