#include "model_check.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"

namespace ladder
{

namespace
{

/** @p steps endpoint-inclusive samples of [0, maxValue]. */
std::vector<unsigned>
axisSamples(unsigned steps, unsigned maxValue)
{
    std::vector<unsigned> out;
    if (steps <= 1 || maxValue == 0) {
        out.push_back(0);
        if (maxValue > 0)
            out.push_back(maxValue);
        return out;
    }
    for (unsigned i = 0; i < steps; ++i)
        out.push_back(static_cast<unsigned>(
            static_cast<std::size_t>(i) * maxValue / (steps - 1)));
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

ModelAgreement
checkEvaluatorAgreement(const CrossbarParams &params,
                        const ResetLatencyLaw &law,
                        const CircuitEvaluator &reference,
                        const CircuitEvaluator &candidate,
                        unsigned locationSteps, unsigned contentSteps,
                        double relLatencyBudget)
{
    ladder_assert(locationSteps > 0 && contentSteps > 0,
                  "agreement sweep needs at least one step per axis");
    ModelAgreement agg;
    agg.budget = relLatencyBudget;
    const unsigned rows = static_cast<unsigned>(params.rows);
    const unsigned cols = static_cast<unsigned>(params.cols);
    const unsigned slots =
        cols / static_cast<unsigned>(params.selectedCells);

    const auto wls = axisSamples(locationSteps, rows - 1);
    const auto slotsAxis = axisSamples(locationSteps, slots - 1);
    const auto wlCounts = axisSamples(contentSteps, cols);
    const auto blCounts = axisSamples(contentSteps, rows);

    double maxMagnitude = 0.0;
    for (unsigned wl : wls) {
        for (unsigned slot : slotsAxis) {
            for (unsigned cw : wlCounts) {
                for (unsigned cbl : blCounts) {
                    ResetCondition cond;
                    cond.wordline = wl;
                    cond.byteOffset = slot;
                    cond.wlLrsCount = cw;
                    cond.blLrsCount = cbl;
                    ResetEvaluation re = reference(cond);
                    ResetEvaluation ce = candidate(cond);
                    double refNs = law.latencyNs(re.minDropVolts);
                    double candNs = law.latencyNs(ce.minDropVolts);
                    ladder_assert(refNs > 0.0,
                                  "reference latency must be positive");
                    double rel = (candNs - refNs) / refNs;
                    ++agg.points;
                    agg.maxAbsDropDeltaVolts = std::max(
                        agg.maxAbsDropDeltaVolts,
                        std::abs(re.minDropVolts - ce.minDropVolts));
                    if (std::abs(rel) > std::abs(maxMagnitude))
                        maxMagnitude = rel;
                    if (std::abs(rel) > relLatencyBudget)
                        ++agg.violations;
                }
            }
        }
    }
    agg.maxRelLatencyError = maxMagnitude;
    return agg;
}

} // namespace ladder
