#include "hwcost.hh"

#include <cmath>

namespace ladder
{

namespace
{

ModuleCost
fromGates(const std::string &name, double gates, unsigned logicDepth,
          double activity, const TechParams &tech)
{
    ModuleCost cost;
    cost.name = name;
    cost.areaMm2 = gates * tech.nand2AreaUm2 * 1e-6;
    cost.powerMw = gates * tech.dynPowerUwPerGate * activity * 1e-3;
    cost.latencyNs = logicDepth * tech.gateDelayPs * 1e-3;
    return cost;
}

} // anonymous namespace

ModuleCost
updateModuleCost(const TechParams &tech)
{
    // 64 byte-popcount units (~25 gates each), 4 subgroup 16-input
    // max trees (~16 x 30 gates each), 4 quantizers and write-queue
    // interface registers: ~7.6k NAND2 equivalents, ~9 logic levels.
    const double gates = 64 * 25 + 4 * 16 * 30 + 4 * 40 + 4000;
    return fromGates("LRS-metadata Update Module", gates, 9, 1.0,
                     tech);
}

ModuleCost
queryModuleCost(const TechParams &tech)
{
    // Metadata address generator (~600), 4 adder trees summing 64
    // decoded 4-bit counters (~4 x 900), subgroup max + bucketizer
    // (~300), table index logic (~150): ~5.9k gates, ~18 levels
    // (adder-tree depth dominates).
    const double gates = 600 + 4 * 900 + 300 + 150 + 1300;
    return fromGates("Latency Query Module", gates, 18, 2.2, tech);
}

ModuleCost
metadataCacheCost(std::size_t sizeBytes, const TechParams &tech)
{
    (void)tech;
    // CACTI-7 style scaling anchored at the paper's 64KB 4-way point
    // (0.2442 mm^2, 48.83 mW, 0.81 ns): area/power ~linear in
    // capacity, latency ~sqrt.
    const double refBytes = 64.0 * 1024.0;
    double scale = static_cast<double>(sizeBytes) / refBytes;
    ModuleCost cost;
    cost.name = "LRS-metadata Cache (" +
                std::to_string(sizeBytes / 1024) + "KB)";
    cost.areaMm2 = 0.2442 * scale;
    cost.powerMw = 48.83 * scale;
    cost.latencyNs = 0.81 * std::sqrt(scale);
    return cost;
}

ModuleCost
timingTableCost(unsigned granularity, const TechParams &tech)
{
    // One byte per entry; SRAM-register file cost ~10 gates per bit.
    double bytes = static_cast<double>(granularity) * granularity *
                   granularity;
    ModuleCost cost =
        fromGates("Write Timing Tables", bytes * 8 * 10 / 4, 4, 0.3,
                  tech);
    cost.name = "Write Timing Tables (" +
                std::to_string(static_cast<unsigned>(bytes)) + "B)";
    return cost;
}

std::vector<ModuleCost>
table4(const TechParams &tech)
{
    return {updateModuleCost(tech), queryModuleCost(tech),
            metadataCacheCost(64 * 1024, tech)};
}

} // namespace ladder
