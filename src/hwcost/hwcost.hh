/**
 * @file
 * Analytical area/power/latency model for LADDER's controller-side
 * logic (paper Table 4). The paper synthesized the two logic blocks
 * with Synopsys DC on FreePDK45 and modelled the metadata cache with
 * CACTI 7; this module reproduces that accounting analytically from
 * gate counts and standard 45nm cell characteristics, so the numbers
 * can be re-derived and scaled (e.g. other cache sizes).
 */

#ifndef LADDER_HWCOST_HWCOST_HH
#define LADDER_HWCOST_HWCOST_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ladder
{

/** Synthesis-style cost of one hardware block. */
struct ModuleCost
{
    std::string name;
    double areaMm2 = 0.0;
    double powerMw = 0.0;
    double latencyNs = 0.0;
};

/** 45nm standard-cell technology constants (FreePDK45-like). */
struct TechParams
{
    double nand2AreaUm2 = 0.798;    //!< NAND2-equivalent cell area
    double dynPowerUwPerGate = 0.5; //!< at ~2GHz toggle activity
    double gateDelayPs = 18.0;      //!< FO4-ish delay per level
};

/**
 * LRS-metadata Update Module: 64 parallel per-byte popcounts, the
 * subgroup max trees and the 2-bit quantizers (paper Fig. 9a).
 */
ModuleCost updateModuleCost(const TechParams &tech = {});

/**
 * Latency Query Module: metadata line address generation, 4 subgroup
 * adder trees over 64 decoded counters and the timing-table lookup
 * (paper Fig. 9b).
 */
ModuleCost queryModuleCost(const TechParams &tech = {});

/**
 * LRS-metadata cache cost, CACTI-style scaling from the 64KB 4-way
 * reference point.
 */
ModuleCost metadataCacheCost(std::size_t sizeBytes,
                             const TechParams &tech = {});

/** The write timing tables' on-chip buffer (512B for 8x8x8). */
ModuleCost timingTableCost(unsigned granularity = 8,
                           const TechParams &tech = {});

/** All Table-4 rows in order. */
std::vector<ModuleCost> table4(const TechParams &tech = {});

} // namespace ladder

#endif // LADDER_HWCOST_HWCOST_HH
