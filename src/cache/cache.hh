/**
 * @file
 * A content-carrying set-associative write-back cache. Unlike a pure
 * hit/miss model, lines hold their 64-byte payloads so dirty evictions
 * deliver real bit patterns to the ReRAM controller — the signal
 * LADDER's content-aware latency depends on.
 */

#ifndef LADDER_CACHE_CACHE_HH
#define LADDER_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace ladder
{

/** Geometry of one cache level. */
struct CacheParams
{
    std::size_t sizeBytes = 32 * 1024;
    unsigned ways = 2;
};

/** An evicted line returned from insert(). */
struct CacheVictim
{
    bool valid = false;
    bool dirty = false;
    Addr addr = invalidAddr;
    LineData data{};
};

/** One level of write-back cache with LRU replacement. */
class Cache
{
  public:
    Cache(const CacheParams &params, std::string name);

    /** Line payload if present (updates recency); else nullptr. */
    LineData *probe(Addr lineAddr);

    /** Presence check without recency update. */
    bool contains(Addr lineAddr) const;

    /** Mark a (present) line dirty. */
    void markDirty(Addr lineAddr);

    /** Whether a (present) line is dirty. */
    bool isDirty(Addr lineAddr) const;

    /**
     * Insert a line (no-op refresh if already present, merging the
     * dirty flag and payload). Returns the evicted victim, if any.
     */
    CacheVictim insert(Addr lineAddr, const LineData &data, bool dirty);

    /** Drop a line without writeback. */
    void invalidate(Addr lineAddr);

    /** Invalidate everything (returns dirty lines for writeback). */
    std::vector<CacheVictim> flush();

    const std::string &name() const { return name_; }
    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    StatScalar hits;
    StatScalar misses;
    StatScalar evictions;
    StatScalar dirtyEvictions;

    /**
     * Register this cache's statistics into @p group, each name
     * prefixed with @p prefix (e.g. "l1_" to fold the private levels
     * of one core into a single group).
     */
    void regStats(StatGroup &group, const std::string &prefix = "");

  private:
    struct Way
    {
        Addr addr = invalidAddr;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
        LineData data{};
    };

    std::string name_;
    unsigned sets_;
    unsigned ways_;
    std::uint64_t useCounter_ = 0;
    std::vector<Way> lines_;

    unsigned setIndex(Addr lineAddr) const;
    Way *find(Addr lineAddr);
    const Way *find(Addr lineAddr) const;
};

} // namespace ladder

#endif // LADDER_CACHE_CACHE_HH
