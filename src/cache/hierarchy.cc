#include "hierarchy.hh"

#include <cstring>

#include "common/log.hh"

namespace ladder
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &params)
    : params_(params)
{
    ladder_assert(params.cores > 0, "hierarchy with zero cores");
    for (unsigned c = 0; c < params.cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            params.l1, "l1." + std::to_string(c)));
        l2_.push_back(std::make_unique<Cache>(
            params.l2, "l2." + std::to_string(c)));
    }
    l3_ = std::make_unique<Cache>(params.l3, "l3");
}

void
CacheHierarchy::writebackInto(Cache &level, Cache *below, Addr addr,
                              const LineData &data,
                              std::vector<Writeback> &writebacks)
{
    if (level.contains(addr)) {
        level.insert(addr, data, true); // merge + mark dirty
        return;
    }
    CacheVictim victim = level.insert(addr, data, true);
    if (!victim.valid || !victim.dirty)
        return;
    if (below)
        writebackInto(*below, below == l3_.get() ? nullptr : l3_.get(),
                      victim.addr, victim.data, writebacks);
    else
        writebacks.emplace_back(victim.addr, victim.data);
}

void
CacheHierarchy::installClean(unsigned core, Cache &level, Cache *below,
                             Addr addr, const LineData &data,
                             std::vector<Writeback> &writebacks)
{
    (void)core;
    // Never clobber an existing copy with a (possibly stale) clean
    // fill: whatever the level holds is at least as recent.
    if (level.contains(addr))
        return;
    CacheVictim victim = level.insert(addr, data, false);
    if (!victim.valid || !victim.dirty)
        return;
    if (below)
        writebackInto(*below, below == l3_.get() ? nullptr : l3_.get(),
                      victim.addr, victim.data, writebacks);
    else
        writebacks.emplace_back(victim.addr, victim.data);
}

std::optional<CacheHierarchy::ReadResult>
CacheHierarchy::read(unsigned core, Addr lineAddr,
                     std::vector<Writeback> &writebacks)
{
    ladder_assert(core < params_.cores, "core id out of range");
    if (LineData *line = l1_[core]->probe(lineAddr))
        return ReadResult{params_.l1HitNs, *line};

    if (LineData *line = l2_[core]->probe(lineAddr)) {
        LineData data = *line;
        // Promote a clean copy; dirtiness stays at the lower level.
        installClean(core, *l1_[core], l2_[core].get(), lineAddr, data,
                     writebacks);
        return ReadResult{params_.l2HitNs, data};
    }

    if (LineData *line = l3_->probe(lineAddr)) {
        LineData data = *line;
        installClean(core, *l2_[core], l3_.get(), lineAddr, data,
                     writebacks);
        installClean(core, *l1_[core], l2_[core].get(), lineAddr, data,
                     writebacks);
        return ReadResult{params_.l3HitNs, data};
    }
    return std::nullopt;
}

std::optional<double>
CacheHierarchy::write(unsigned core, Addr lineAddr, unsigned offset,
                      const std::uint8_t *bytes,
                      std::vector<Writeback> &writebacks)
{
    ladder_assert(core < params_.cores, "core id out of range");
    ladder_assert(offset + 8 <= lineBytes, "store crosses line");

    if (LineData *line = l1_[core]->probe(lineAddr)) {
        std::memcpy(line->data() + offset, bytes, 8);
        l1_[core]->markDirty(lineAddr);
        return params_.l1HitNs;
    }
    if (LineData *line = l2_[core]->probe(lineAddr)) {
        LineData data = *line;
        std::memcpy(data.data() + offset, bytes, 8);
        // Allocate dirty in L1; the stale L2 copy stays and will be
        // overwritten by the eventual L1 writeback.
        writebackInto(*l1_[core], l2_[core].get(), lineAddr, data,
                      writebacks);
        return params_.l2HitNs;
    }
    if (LineData *line = l3_->probe(lineAddr)) {
        LineData data = *line;
        std::memcpy(data.data() + offset, bytes, 8);
        writebackInto(*l1_[core], l2_[core].get(), lineAddr, data,
                      writebacks);
        return params_.l3HitNs;
    }
    return std::nullopt;
}

void
CacheHierarchy::fill(unsigned core, Addr lineAddr, const LineData &data,
                     std::vector<Writeback> &writebacks)
{
    ladder_assert(core < params_.cores, "core id out of range");
    installClean(core, *l3_, nullptr, lineAddr, data, writebacks);
    installClean(core, *l2_[core], l3_.get(), lineAddr, data,
                 writebacks);
    installClean(core, *l1_[core], l2_[core].get(), lineAddr, data,
                 writebacks);
}

std::vector<Writeback>
CacheHierarchy::flushAll()
{
    std::vector<Writeback> out;
    // Upper levels first so their dirty data lands in lower levels.
    for (unsigned c = 0; c < params_.cores; ++c) {
        for (auto &victim : l1_[c]->flush())
            writebackInto(*l2_[c], l3_.get(), victim.addr, victim.data,
                          out);
    }
    for (unsigned c = 0; c < params_.cores; ++c) {
        for (auto &victim : l2_[c]->flush())
            writebackInto(*l3_, nullptr, victim.addr, victim.data, out);
    }
    for (auto &victim : l3_->flush())
        out.emplace_back(victim.addr, victim.data);
    return out;
}

} // namespace ladder
