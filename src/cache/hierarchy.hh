/**
 * @file
 * Three-level content-carrying cache hierarchy (private L1/L2 per
 * core, shared L3), functional-timing style: hits resolve immediately
 * with a fixed latency, misses are filled by the caller after the
 * memory round trip. Dirty victims cascade downward with
 * allocate-on-writeback; L3 dirty victims are returned to the caller
 * for delivery to the memory controller.
 *
 * The evaluated workloads run one program per core in disjoint
 * address regions, so no coherence protocol is needed.
 */

#ifndef LADDER_CACHE_HIERARCHY_HH
#define LADDER_CACHE_HIERARCHY_HH

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cache/cache.hh"

namespace ladder
{

/** Hierarchy geometry and hit latencies. */
struct HierarchyParams
{
    CacheParams l1{32 * 1024, 2};
    CacheParams l2{512 * 1024, 8};
    CacheParams l3{2 * 1024 * 1024, 16};
    double l1HitNs = 1.0;
    double l2HitNs = 4.0;
    double l3HitNs = 12.0;
    unsigned cores = 1;
};

/** A dirty line bound for main memory. */
using Writeback = std::pair<Addr, LineData>;

/** The multi-level cache model. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams &params);

    /** Successful read: payload + hit latency. */
    struct ReadResult
    {
        double latencyNs = 0.0;
        LineData data{};
    };

    /**
     * Look up a read. Hits promote into the upper levels. A miss
     * returns nullopt; the caller fetches from memory and calls
     * fill().
     *
     * @param writebacks Out: dirty L3 victims displaced by promotion.
     */
    std::optional<ReadResult> read(unsigned core, Addr lineAddr,
                                   std::vector<Writeback> &writebacks);

    /**
     * Apply an 8-byte store. Returns the hit latency, or nullopt on a
     * full miss (write-allocate: fetch the line, fill(), retry).
     */
    std::optional<double> write(unsigned core, Addr lineAddr,
                                unsigned offset,
                                const std::uint8_t *bytes,
                                std::vector<Writeback> &writebacks);

    /**
     * Install a line after its memory fill returned.
     *
     * @param writebacks Out: dirty L3 victims to send to memory.
     */
    void fill(unsigned core, Addr lineAddr, const LineData &data,
              std::vector<Writeback> &writebacks);

    /** Write back and drop every dirty line (tests / drain). */
    std::vector<Writeback> flushAll();

    Cache &l1(unsigned core) { return *l1_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &l3() { return *l3_; }
    const HierarchyParams &params() const { return params_; }

  private:
    HierarchyParams params_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;

    /** Insert a dirty victim into @p level, cascading further. */
    void writebackInto(Cache &level, Cache *below, Addr addr,
                       const LineData &data,
                       std::vector<Writeback> &writebacks);

    /** Insert a clean fill into a level, cascading its victim. */
    void installClean(unsigned core, Cache &level, Cache *below,
                      Addr addr, const LineData &data,
                      std::vector<Writeback> &writebacks);
};

} // namespace ladder

#endif // LADDER_CACHE_HIERARCHY_HH
