#include "cache.hh"

#include "common/log.hh"

namespace ladder
{

Cache::Cache(const CacheParams &params, std::string name)
    : name_(std::move(name)), ways_(params.ways)
{
    ladder_assert(params.ways > 0, "%s: zero ways", name_.c_str());
    std::size_t entries = params.sizeBytes / lineBytes;
    ladder_assert(entries >= params.ways && entries % params.ways == 0,
                  "%s: size/ways mismatch", name_.c_str());
    sets_ = static_cast<unsigned>(entries / params.ways);
    lines_.resize(entries);
}

void
Cache::regStats(StatGroup &group, const std::string &prefix)
{
    group.regScalar(prefix + "hits", &hits, "lookup hits");
    group.regScalar(prefix + "misses", &misses, "lookup misses");
    group.regScalar(prefix + "evictions", &evictions,
                    "lines displaced by insertion");
    group.regScalar(prefix + "dirty_evictions", &dirtyEvictions,
                    "displaced lines needing writeback");
}

unsigned
Cache::setIndex(Addr lineAddr) const
{
    return static_cast<unsigned>((lineAddr / lineBytes) % sets_);
}

Cache::Way *
Cache::find(Addr lineAddr)
{
    unsigned set = setIndex(lineAddr);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = lines_[set * ways_ + w];
        if (way.valid && way.addr == lineAddr)
            return &way;
    }
    return nullptr;
}

const Cache::Way *
Cache::find(Addr lineAddr) const
{
    return const_cast<Cache *>(this)->find(lineAddr);
}

LineData *
Cache::probe(Addr lineAddr)
{
    Way *way = find(lineAddr);
    if (!way) {
        ++misses;
        return nullptr;
    }
    ++hits;
    way->lastUse = ++useCounter_;
    return &way->data;
}

bool
Cache::contains(Addr lineAddr) const
{
    return find(lineAddr) != nullptr;
}

void
Cache::markDirty(Addr lineAddr)
{
    Way *way = find(lineAddr);
    ladder_assert(way, "%s: markDirty on absent line", name_.c_str());
    way->dirty = true;
}

bool
Cache::isDirty(Addr lineAddr) const
{
    const Way *way = find(lineAddr);
    ladder_assert(way, "%s: isDirty on absent line", name_.c_str());
    return way->dirty;
}

CacheVictim
Cache::insert(Addr lineAddr, const LineData &data, bool dirty)
{
    CacheVictim victim;
    if (Way *existing = find(lineAddr)) {
        existing->data = data;
        existing->dirty = existing->dirty || dirty;
        existing->lastUse = ++useCounter_;
        return victim;
    }
    unsigned set = setIndex(lineAddr);
    Way *target = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = lines_[set * ways_ + w];
        if (!way.valid) {
            target = &way;
            break;
        }
        if (!target || way.lastUse < target->lastUse)
            target = &way;
    }
    if (target->valid) {
        ++evictions;
        victim.valid = true;
        victim.dirty = target->dirty;
        victim.addr = target->addr;
        victim.data = target->data;
        if (target->dirty)
            ++dirtyEvictions;
    }
    target->addr = lineAddr;
    target->valid = true;
    target->dirty = dirty;
    target->data = data;
    target->lastUse = ++useCounter_;
    return victim;
}

void
Cache::invalidate(Addr lineAddr)
{
    if (Way *way = find(lineAddr)) {
        way->valid = false;
        way->dirty = false;
        way->addr = invalidAddr;
    }
}

std::vector<CacheVictim>
Cache::flush()
{
    std::vector<CacheVictim> dirty;
    for (auto &way : lines_) {
        if (way.valid && way.dirty) {
            CacheVictim v;
            v.valid = true;
            v.dirty = true;
            v.addr = way.addr;
            v.data = way.data;
            dirty.push_back(v);
        }
        way.valid = false;
        way.dirty = false;
        way.addr = invalidAddr;
    }
    return dirty;
}

} // namespace ladder
