/**
 * @file
 * Start-Gap vertical wear-leveling (Qureshi et al., MICRO'09). One
 * spare "gap" line rotates through the region; every psi data writes
 * the gap moves down by one slot (copying the displaced line), and a
 * full revolution advances the start pointer, slowly rotating the
 * logical-to-physical mapping so hot lines sweep the whole region.
 */

#ifndef LADDER_WEAR_START_GAP_HH
#define LADDER_WEAR_START_GAP_HH

#include <cstdint>

#include "common/stats.hh"
#include "ctrl/controller.hh"

namespace ladder
{

/** Line-granularity Start-Gap remapper. */
class StartGapRemapper : public AddressRemapper
{
  public:
    /**
     * @param regionBase First byte of the leveled region (line
     *        aligned).
     * @param lines Logical lines in the region (physical = lines+1,
     *        the extra one is the gap).
     * @param psi Data writes between gap movements (100 in the
     *        original paper; ~1% overhead).
     */
    StartGapRemapper(Addr regionBase, std::uint64_t lines,
                     unsigned psi = 100);

    Addr remap(Addr lineAddr) override;
    void noteDataWrite(Addr physLineAddr) override;
    std::vector<RemapMove> collectMoves() override;

    std::uint64_t gapMoves() const { return gapMoves_; }
    std::uint64_t start() const { return start_; }
    std::uint64_t gap() const { return gap_; }

    StatScalar movesInjected;

  private:
    Addr base_;
    std::uint64_t lines_;
    unsigned psi_;
    std::uint64_t start_ = 0;
    std::uint64_t gap_;
    unsigned writesSinceMove_ = 0;
    std::uint64_t gapMoves_ = 0;
    std::vector<RemapMove> pending_;

    Addr slotAddr(std::uint64_t slot) const;
};

} // namespace ladder

#endif // LADDER_WEAR_START_GAP_HH
