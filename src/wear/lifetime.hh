/**
 * @file
 * Device lifetime estimation (paper §6.4). A crossbar's endurance is
 * set by its worst cell; wear-leveling spreads writes so the system
 * lifetime approaches the ideal (total endurance / write rate). The
 * model consumes the controller's per-page write counts and reports
 * lifetimes relative to a baseline run, which is how the paper states
 * its results (e.g. LADDER-Hybrid retains 97.1% of baseline lifetime).
 */

#ifndef LADDER_WEAR_LIFETIME_HH
#define LADDER_WEAR_LIFETIME_HH

#include <cstdint>
#include <unordered_map>

#include "reram/geometry.hh"

namespace ladder
{

/** Inputs/outputs of a lifetime estimate. */
struct LifetimeEstimate
{
    std::uint64_t totalWrites = 0;
    std::uint64_t maxPageWrites = 0;
    double unevenness = 1.0; //!< max / mean page writes
    /** Relative lifetime without wear-leveling (worst page bound). */
    double unleveledYears = 0.0;
    /** Relative lifetime with ideal-ish leveling (rate bound). */
    double leveledYears = 0.0;
};

/**
 * Estimate lifetime from per-page write counts.
 *
 * @param pageWrites Writes per page over the measured window.
 * @param windowSeconds Simulated duration of the window.
 * @param touchedPages Pages participating in leveling (the region
 *        writes spread over); 0 = use the touched set.
 * @param cellEnduranceWrites Per-cell endurance (1e8 typical ReRAM).
 * @param levelingEfficiency Fraction of ideal spreading the deployed
 *        wear-leveling achieves (Start-Gap ~0.5, segment ~0.6).
 */
LifetimeEstimate
estimateLifetime(const std::unordered_map<std::uint64_t,
                                          std::uint32_t> &pageWrites,
                 double windowSeconds,
                 std::uint64_t touchedPages = 0,
                 double cellEnduranceWrites = 1e8,
                 double levelingEfficiency = 0.5);

} // namespace ladder

#endif // LADDER_WEAR_LIFETIME_HH
