#include "start_gap.hh"

#include "common/log.hh"

namespace ladder
{

StartGapRemapper::StartGapRemapper(Addr regionBase, std::uint64_t lines,
                                   unsigned psi)
    : base_(regionBase), lines_(lines), psi_(psi), gap_(lines)
{
    ladder_assert(regionBase % lineBytes == 0,
                  "region base not line aligned");
    ladder_assert(lines > 0, "empty start-gap region");
    ladder_assert(psi > 0, "psi must be positive");
}

Addr
StartGapRemapper::slotAddr(std::uint64_t slot) const
{
    return base_ + slot * lineBytes;
}

Addr
StartGapRemapper::remap(Addr lineAddr)
{
    if (lineAddr < base_ ||
        lineAddr >= base_ + lines_ * lineBytes)
        return lineAddr; // outside the leveled region

    std::uint64_t logical = (lineAddr - base_) / lineBytes;
    // Classic Start-Gap mapping: rotate over the N logical slots,
    // then step over the gap to land in the N+1 physical slots.
    std::uint64_t slot = (logical + start_) % lines_;
    if (slot >= gap_)
        ++slot;
    return slotAddr(slot);
}

void
StartGapRemapper::noteDataWrite(Addr physLineAddr)
{
    if (physLineAddr < base_ ||
        physLineAddr >= base_ + (lines_ + 1) * lineBytes)
        return;
    if (++writesSinceMove_ < psi_)
        return;
    writesSinceMove_ = 0;
    ++gapMoves_;
    // Move the gap down one slot: the line in the slot below the gap
    // is copied into the current gap position.
    if (gap_ == 0) {
        // Full revolution: advance start; gap wraps to the top.
        start_ = (start_ + 1) % lines_;
        gap_ = lines_;
        return;
    }
    RemapMove move;
    move.from = slotAddr(gap_ - 1);
    move.to = slotAddr(gap_);
    pending_.push_back(move);
    ++movesInjected;
    --gap_;
}

std::vector<RemapMove>
StartGapRemapper::collectMoves()
{
    std::vector<RemapMove> moves;
    moves.swap(pending_);
    return moves;
}

} // namespace ladder
