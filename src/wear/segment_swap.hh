/**
 * @file
 * Segment-based vertical wear-leveling (Zhou et al., ISCA'09 style):
 * the region is divided into large segments; after every K data
 * writes, the hottest segment of the epoch is swapped with a randomly
 * chosen cold one, copying both segments' lines. Segment remapping
 * preserves page-to-metadata-line locality for LADDER (paper Fig. 18b)
 * because whole pages move together.
 */

#ifndef LADDER_WEAR_SEGMENT_SWAP_HH
#define LADDER_WEAR_SEGMENT_SWAP_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "ctrl/controller.hh"

namespace ladder
{

/** Periodic hottest/coldest segment swapper. */
class SegmentSwapRemapper : public AddressRemapper
{
  public:
    /**
     * @param regionBase First byte of the leveled region.
     * @param segments Number of segments.
     * @param segmentBytes Segment size (e.g. 256KB scaled from the
     *        papers' 1-16MB).
     * @param swapPeriod Data writes between swaps.
     */
    SegmentSwapRemapper(Addr regionBase, unsigned segments,
                        std::uint64_t segmentBytes,
                        std::uint64_t swapPeriod,
                        std::uint64_t seed = 7);

    Addr remap(Addr lineAddr) override;
    void noteDataWrite(Addr physLineAddr) override;
    std::vector<RemapMove> collectMoves() override;

    std::uint64_t swaps() const { return swaps_; }

    StatScalar linesCopied;

  private:
    Addr base_;
    unsigned segments_;
    std::uint64_t segmentBytes_;
    std::uint64_t swapPeriod_;
    Rng rng_;
    std::vector<unsigned> mapping_;     //!< logical -> physical seg
    std::vector<std::uint64_t> epochWrites_; //!< per physical segment
    std::uint64_t writesThisEpoch_ = 0;
    std::uint64_t swaps_ = 0;
    std::vector<RemapMove> pending_;

    unsigned physSegmentOf(Addr physLineAddr) const;
};

} // namespace ladder

#endif // LADDER_WEAR_SEGMENT_SWAP_HH
