#include "segment_swap.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

SegmentSwapRemapper::SegmentSwapRemapper(Addr regionBase,
                                         unsigned segments,
                                         std::uint64_t segmentBytes,
                                         std::uint64_t swapPeriod,
                                         std::uint64_t seed)
    : base_(regionBase),
      segments_(segments),
      segmentBytes_(segmentBytes),
      swapPeriod_(swapPeriod),
      rng_(seed)
{
    ladder_assert(segments > 1, "need at least two segments");
    ladder_assert(segmentBytes % MemoryGeometry::pageBytes == 0,
                  "segments must be whole pages");
    mapping_.resize(segments);
    for (unsigned s = 0; s < segments; ++s)
        mapping_[s] = s;
    epochWrites_.assign(segments, 0);
}

Addr
SegmentSwapRemapper::remap(Addr lineAddr)
{
    if (lineAddr < base_ ||
        lineAddr >= base_ + segments_ * segmentBytes_)
        return lineAddr;
    std::uint64_t offset = lineAddr - base_;
    unsigned logical = static_cast<unsigned>(offset / segmentBytes_);
    std::uint64_t within = offset % segmentBytes_;
    return base_ + mapping_[logical] * segmentBytes_ + within;
}

unsigned
SegmentSwapRemapper::physSegmentOf(Addr physLineAddr) const
{
    return static_cast<unsigned>((physLineAddr - base_) /
                                 segmentBytes_);
}

void
SegmentSwapRemapper::noteDataWrite(Addr physLineAddr)
{
    if (physLineAddr < base_ ||
        physLineAddr >= base_ + segments_ * segmentBytes_)
        return;
    ++epochWrites_[physSegmentOf(physLineAddr)];
    if (++writesThisEpoch_ < swapPeriod_)
        return;
    writesThisEpoch_ = 0;

    // Swap the epoch's hottest physical segment with a random cold
    // one (below-median write count).
    unsigned hot = static_cast<unsigned>(
        std::max_element(epochWrites_.begin(), epochWrites_.end()) -
        epochWrites_.begin());
    unsigned cold = hot;
    for (unsigned tries = 0; tries < 8 && cold == hot; ++tries) {
        unsigned candidate =
            static_cast<unsigned>(rng_.nextBounded(segments_));
        if (epochWrites_[candidate] * 2 <= epochWrites_[hot])
            cold = candidate;
    }
    if (cold == hot) {
        std::fill(epochWrites_.begin(), epochWrites_.end(), 0);
        return;
    }

    // Queue line copies for both directions. The store content swap
    // is performed through the controller's injected writes; the
    // mapping flips first so in-flight copies forward correctly.
    unsigned hotLogical = 0, coldLogical = 0;
    for (unsigned s = 0; s < segments_; ++s) {
        if (mapping_[s] == hot)
            hotLogical = s;
        if (mapping_[s] == cold)
            coldLogical = s;
    }
    std::swap(mapping_[hotLogical], mapping_[coldLogical]);
    ++swaps_;

    std::uint64_t lines = segmentBytes_ / lineBytes;
    for (std::uint64_t l = 0; l < lines; ++l) {
        RemapMove a;
        a.from = base_ + hot * segmentBytes_ + l * lineBytes;
        a.to = base_ + cold * segmentBytes_ + l * lineBytes;
        pending_.push_back(a);
        RemapMove b;
        b.from = a.to;
        b.to = a.from;
        pending_.push_back(b);
        linesCopied += 2;
    }
    std::fill(epochWrites_.begin(), epochWrites_.end(), 0);
}

std::vector<RemapMove>
SegmentSwapRemapper::collectMoves()
{
    std::vector<RemapMove> moves;
    moves.swap(pending_);
    return moves;
}

} // namespace ladder
