/**
 * @file
 * Leader-style access-latency-aware page remapping (Zhang et al.,
 * DATE'16; paper §8 related work): frequently written pages migrate
 * to wordlines close to the write drivers, where RESET is inherently
 * fast, trading page copies for permanently cheaper writes. The paper
 * notes LADDER can incorporate such remapping on top; this remapper
 * lets the benches quantify that.
 */

#ifndef LADDER_WEAR_LEADER_HH
#define LADDER_WEAR_LEADER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "ctrl/controller.hh"
#include "reram/geometry.hh"

namespace ladder
{

/** Hot-page to near-wordline remapper. */
class LeaderRemapper : public AddressRemapper
{
  public:
    /**
     * @param geo Module geometry (wordline decode).
     * @param dataPages Pages eligible for remapping.
     * @param epochWrites Data writes per migration decision.
     * @param nearRows Wordline indices considered "fast" targets.
     */
    LeaderRemapper(const MemoryGeometry &geo, std::uint64_t dataPages,
                   std::uint64_t epochWrites = 2000,
                   unsigned nearRows = 64);

    Addr remap(Addr lineAddr) override;
    void noteDataWrite(Addr physLineAddr) override;
    std::vector<RemapMove> collectMoves() override;

    std::uint64_t migrations() const { return migrations_; }

    StatScalar pagesCopied;

  private:
    MemoryGeometry geo_;
    AddressMap map_;
    std::uint64_t dataPages_;
    std::uint64_t epochWrites_;
    unsigned nearRows_;

    /** Bidirectional page mapping (identity when absent). */
    std::unordered_map<std::uint64_t, std::uint64_t> forward_;
    std::unordered_map<std::uint64_t, std::uint64_t> epochCounts_;
    std::uint64_t writesThisEpoch_ = 0;
    std::uint64_t migrations_ = 0;
    std::uint64_t nearCursor_ = 0; //!< next near page to consider
    std::vector<RemapMove> pending_;

    std::uint64_t mappedPage(std::uint64_t page) const;
    void swapPages(std::uint64_t a, std::uint64_t b);
};

} // namespace ladder

#endif // LADDER_WEAR_LEADER_HH
