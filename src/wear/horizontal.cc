#include "horizontal.hh"

namespace ladder
{

HorizontalWearScheme::HorizontalWearScheme(
    std::shared_ptr<WriteScheme> inner, unsigned rotatePeriod)
    : inner_(std::move(inner)), rotatePeriod_(rotatePeriod)
{
}

unsigned
HorizontalWearScheme::rotationOf(Addr lineAddr) const
{
    auto it = state_.find(lineAddr);
    return it == state_.end() ? 0 : it->second.first;
}

void
HorizontalWearScheme::noteWrite(Addr lineAddr)
{
    auto &entry = state_[lineAddr];
    if (++entry.second >= rotatePeriod_) {
        entry.second = 0;
        entry.first = (entry.first + 1) % lineBytes;
    }
}

LineData
HorizontalWearScheme::encodeData(Addr addr, const LineData &data) const
{
    unsigned rot = rotationOf(addr);
    LineData rotated;
    for (unsigned i = 0; i < lineBytes; ++i)
        rotated[(i + rot) % lineBytes] = data[i];
    return inner_->encodeData(addr, rotated);
}

LineData
HorizontalWearScheme::decodeData(Addr addr, const LineData &data) const
{
    LineData rotated = inner_->decodeData(addr, data);
    unsigned rot = rotationOf(addr);
    LineData out;
    for (unsigned i = 0; i < lineBytes; ++i)
        out[i] = rotated[(i + rot) % lineBytes];
    return out;
}

} // namespace ladder
