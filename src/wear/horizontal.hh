/**
 * @file
 * Horizontal wear-leveling (Zhou et al., ISCA'09; DEUCE-style byte
 * rotation): the bytes of a block rotate within the line by one mat
 * position every R writes to that block, so hot bytes visit every mat.
 * Implemented as a decorator around the active write scheme's data
 * encoding; the rotation amount is tracked per block and advances at
 * write time. No metadata address changes are needed (paper §6.4).
 */

#ifndef LADDER_WEAR_HORIZONTAL_HH
#define LADDER_WEAR_HORIZONTAL_HH

#include <memory>
#include <unordered_map>

#include "ctrl/controller.hh"
#include "ctrl/scheme.hh"

namespace ladder
{

/** Scheme decorator adding per-block byte rotation. */
class HorizontalWearScheme : public WriteScheme
{
  public:
    /**
     * @param inner The real write scheme.
     * @param rotatePeriod Writes to a block between rotation steps.
     */
    HorizontalWearScheme(std::shared_ptr<WriteScheme> inner,
                         unsigned rotatePeriod = 4);

    std::string name() const override
    {
        return inner_->name() + "+HWL";
    }
    void onWriteEnqueued(MemoryController &ctrl,
                         WriteEntry &entry) override
    {
        // Advance the block's rotation before the controller encodes
        // the payload; reads of the not-yet-written line are served by
        // write-queue forwarding, so no stale decode is observable.
        noteWrite(entry.addr);
        inner_->onWriteEnqueued(ctrl, entry);
    }
    WriteDecision decideWrite(MemoryController &ctrl, WriteEntry &entry,
                              const LineData &finalData) override
    {
        return inner_->decideWrite(ctrl, entry, finalData);
    }
    void onWriteComplete(MemoryController &ctrl,
                         WriteEntry &entry) override
    {
        inner_->onWriteComplete(ctrl, entry);
    }
    bool constrainedFnw() const override
    {
        return inner_->constrainedFnw();
    }

    LineData encodeData(Addr addr, const LineData &data) const override;
    LineData decodeData(Addr addr, const LineData &data) const override;

    /** Advance a block's rotation; called by the write path owner. */
    void noteWrite(Addr lineAddr);

    unsigned rotationOf(Addr lineAddr) const;

  private:
    std::shared_ptr<WriteScheme> inner_;
    unsigned rotatePeriod_;
    /** Per-block (rotation, writes-since-rotate). */
    mutable std::unordered_map<Addr, std::pair<unsigned, unsigned>>
        state_;
};

} // namespace ladder

#endif // LADDER_WEAR_HORIZONTAL_HH
