#include "lifetime.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

LifetimeEstimate
estimateLifetime(
    const std::unordered_map<std::uint64_t, std::uint32_t> &pageWrites,
    double windowSeconds, std::uint64_t touchedPages,
    double cellEnduranceWrites, double levelingEfficiency)
{
    ladder_assert(windowSeconds > 0.0, "lifetime: empty window");
    LifetimeEstimate est;
    for (const auto &entry : pageWrites) {
        est.totalWrites += entry.second;
        est.maxPageWrites = std::max<std::uint64_t>(est.maxPageWrites,
                                                    entry.second);
    }
    if (est.totalWrites == 0)
        return est;

    std::uint64_t pages =
        touchedPages ? touchedPages : pageWrites.size();
    ladder_assert(pages > 0, "lifetime: zero pages");
    double meanPerPage =
        static_cast<double>(est.totalWrites) /
        static_cast<double>(pages);
    est.unevenness =
        static_cast<double>(est.maxPageWrites) / meanPerPage;

    constexpr double secondsPerYear = 365.25 * 24 * 3600;

    // Without leveling the hottest page's hottest line dies first; a
    // page holds 64 lines but a hot page usually concentrates on a
    // few, so we bound with the page rate directly.
    double worstPageRate =
        static_cast<double>(est.maxPageWrites) / windowSeconds;
    est.unleveledYears =
        cellEnduranceWrites / worstPageRate / secondsPerYear;

    // With leveling, writes spread across the whole leveled region at
    // the configured efficiency.
    double ratePerPage =
        static_cast<double>(est.totalWrites) / windowSeconds /
        static_cast<double>(pages);
    est.leveledYears = cellEnduranceWrites * levelingEfficiency /
                       ratePerPage / secondsPerYear;
    return est;
}

} // namespace ladder
