#include "leader.hh"

#include <algorithm>

#include "common/log.hh"

namespace ladder
{

LeaderRemapper::LeaderRemapper(const MemoryGeometry &geo,
                               std::uint64_t dataPages,
                               std::uint64_t epochWrites,
                               unsigned nearRows)
    : geo_(geo),
      map_(geo),
      dataPages_(dataPages),
      epochWrites_(epochWrites),
      nearRows_(nearRows)
{
    ladder_assert(dataPages_ > 0, "empty region");
    ladder_assert(epochWrites_ > 0, "epoch must be positive");
}

std::uint64_t
LeaderRemapper::mappedPage(std::uint64_t page) const
{
    auto it = forward_.find(page);
    return it == forward_.end() ? page : it->second;
}

Addr
LeaderRemapper::remap(Addr lineAddr)
{
    std::uint64_t page = lineAddr / MemoryGeometry::pageBytes;
    if (page >= dataPages_)
        return lineAddr;
    std::uint64_t target = mappedPage(page);
    return target * MemoryGeometry::pageBytes +
           lineAddr % MemoryGeometry::pageBytes;
}

void
LeaderRemapper::swapPages(std::uint64_t a, std::uint64_t b)
{
    // a and b are *physical* pages; rewire the logical pages that
    // currently map onto them.
    std::uint64_t logicalA = a, logicalB = b;
    for (const auto &entry : forward_) {
        if (entry.second == a)
            logicalA = entry.first;
        if (entry.second == b)
            logicalB = entry.first;
    }
    forward_[logicalA] = b;
    forward_[logicalB] = a;
    if (forward_[logicalA] == logicalA)
        forward_.erase(logicalA);
    if (forward_[logicalB] == logicalB)
        forward_.erase(logicalB);
}

void
LeaderRemapper::noteDataWrite(Addr physLineAddr)
{
    std::uint64_t physPage =
        physLineAddr / MemoryGeometry::pageBytes;
    if (physPage >= dataPages_)
        return;
    ++epochCounts_[physPage];
    if (++writesThisEpoch_ < epochWrites_)
        return;
    writesThisEpoch_ = 0;

    // Hottest physical page of the epoch; migrate it if it sits on a
    // far (slow) wordline.
    auto hottest = std::max_element(
        epochCounts_.begin(), epochCounts_.end(),
        [](const auto &x, const auto &y) {
            return x.second < y.second;
        });
    if (hottest == epochCounts_.end()) {
        return;
    }
    std::uint64_t hotPage = hottest->first;
    epochCounts_.clear();

    BlockLocation hotLoc =
        map_.decode(hotPage * MemoryGeometry::pageBytes);
    if (hotLoc.wordline < nearRows_)
        return; // already fast

    // Find a near-row physical page that was cold this epoch, by
    // scanning the page space from a rotating cursor.
    for (std::uint64_t tried = 0; tried < dataPages_; ++tried) {
        std::uint64_t candidate = nearCursor_;
        nearCursor_ = (nearCursor_ + 1) % dataPages_;
        BlockLocation loc =
            map_.decode(candidate * MemoryGeometry::pageBytes);
        if (loc.wordline >= nearRows_ || candidate == hotPage)
            continue;
        // Swap page contents (both directions) and the mapping.
        swapPages(hotPage, candidate);
        for (unsigned l = 0; l < MemoryGeometry::blocksPerPage; ++l) {
            RemapMove toFast;
            toFast.from = hotPage * MemoryGeometry::pageBytes +
                          l * lineBytes;
            toFast.to = candidate * MemoryGeometry::pageBytes +
                        l * lineBytes;
            pending_.push_back(toFast);
            RemapMove toSlow;
            toSlow.from = toFast.to;
            toSlow.to = toFast.from;
            pending_.push_back(toSlow);
        }
        pagesCopied += 2;
        ++migrations_;
        return;
    }
}

std::vector<RemapMove>
LeaderRemapper::collectMoves()
{
    std::vector<RemapMove> moves;
    moves.swap(pending_);
    return moves;
}

} // namespace ladder
