/**
 * @file
 * Wear-policy knobs shared by the wear-leveling benches and demos
 * (§6.4). Kept header-only so the experiment config can embed them
 * without linking the wear library; the registry in
 * sim/config_resolve exposes each field as `wear.*`.
 */

#ifndef LADDER_WEAR_POLICY_HH
#define LADDER_WEAR_POLICY_HH

namespace ladder
{

/** Tunables for Start-Gap leveling and lifetime estimation. */
struct WearPolicy
{
    /** Data writes between Start-Gap gap movements (paper: 100). */
    unsigned startGapPsi = 100;
    /** Mean cell endurance in writes (lifetime estimation). */
    double cellEndurance = 1e8;
    /**
     * Fraction of ideal write spreading the deployed wear-leveling
     * achieves (Start-Gap ~0.5, segment-based ~0.6).
     */
    double levelingEfficiency = 0.5;
};

} // namespace ladder

#endif // LADDER_WEAR_POLICY_HH
