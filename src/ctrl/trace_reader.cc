#include "trace_reader.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hh"
#include "common/log.hh"
#include "ctrl/trace_wire.hh"

namespace ladder
{

namespace
{

std::uint32_t
readU32(const char *buf)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(buf[i]);
    return v;
}

std::uint64_t
readU64(const char *buf)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(buf[i]);
    return v;
}

std::uint16_t
readU16(const char *buf)
{
    return static_cast<std::uint16_t>(
        static_cast<unsigned char>(buf[0]) |
        (static_cast<unsigned char>(buf[1]) << 8));
}

/**
 * Decode one record (24 base bytes, plus the 32-byte blame block when
 * @p attribution is set); false on an invalid kind byte.
 */
bool
decodeRecord(const char *buf, CtrlTraceRecord &out, bool attribution)
{
    out.tick = readU64(buf);
    unsigned char kind = static_cast<unsigned char>(buf[8]);
    if (kind > 1)
        return false;
    out.kind = static_cast<CtrlTraceRecord::Kind>(kind);
    out.channel = static_cast<unsigned char>(buf[9]);
    out.wordline = readU16(buf + 10);
    out.bitline = readU16(buf + 12);
    out.lrsCount = readU16(buf + 14);
    std::uint32_t latencyBits = readU32(buf + 16);
    static_assert(sizeof(latencyBits) == sizeof(out.latencyNs));
    std::memcpy(&out.latencyNs, &latencyBits, sizeof(out.latencyNs));
    out.queueDepth = readU32(buf + 20);
    out.attr = WriteAttribution{};
    if (attribution) {
        std::int32_t *components[8] = {
            &out.attr.depTicks,  &out.attr.queueTicks,
            &out.attr.bankTicks, &out.attr.rcdTicks,
            &out.attr.baseTicks, &out.attr.locationTicks,
            &out.attr.contentTicks, &out.attr.schemeTicks};
        for (int i = 0; i < 8; ++i)
            *components[i] = static_cast<std::int32_t>(
                readU32(buf + 24 + 4 * i));
    }
    return true;
}

} // namespace

bool
TraceReader::fail(const std::string &msg)
{
    if (error_.empty())
        error_ = msg;
    return false;
}

bool
TraceReader::readExact(char *buf, std::size_t len, const char *what)
{
    is_->read(buf, static_cast<std::streamsize>(len));
    if (static_cast<std::size_t>(is_->gcount()) != len)
        return fail(strPrintf("truncated trace: short read in %s",
                              what));
    return true;
}

bool
TraceReader::open(const std::string &path)
{
    auto file = std::make_unique<std::ifstream>(
        path, std::ios::binary);
    if (!file->is_open()) {
        is_.reset();
        return fail(
            strPrintf("cannot open trace file %s", path.c_str()));
    }
    file->seekg(0, std::ios::end);
    std::streamoff size = file->tellg();
    if (size < 0) {
        is_.reset();
        return fail(strPrintf("cannot size trace file %s",
                              path.c_str()));
    }
    file->seekg(0, std::ios::beg);
    is_ = std::move(file);
    fileSize_ = static_cast<std::uint64_t>(size);
    return parseHeader();
}

bool
TraceReader::openBuffer(std::string bytes)
{
    fileSize_ = bytes.size();
    is_ = std::make_unique<std::istringstream>(
        std::move(bytes), std::ios::binary);
    return parseHeader();
}

bool
TraceReader::parseHeader()
{
    error_.clear();
    totalRecords_ = 0;
    recordsRead_ = 0;
    chunkCapacity_ = 0;
    chunks_.clear();
    chunkBuf_.clear();
    chunkIndex_ = 0;
    chunkPos_ = 0;
    csvDone_ = false;
    tickWindowSet_ = false;
    minTick_ = 0;
    maxTick_ = ~std::uint64_t{0};
    chunksDecoded_ = 0;
    version_ = 0;
    format_ = TraceFormat::Csv;
    attribution_ = false;
    recordBytes_ = traceRecordBytes;

    if (fileSize_ == 0)
        return fail("empty trace file");

    char magic[sizeof(traceFileMagic)] = {};
    std::size_t probe = std::min<std::size_t>(fileSize_,
                                              sizeof(magic));
    if (!readExact(magic, probe, "magic probe"))
        return false;
    if (probe == sizeof(magic) &&
        std::memcmp(magic, traceFileMagic, sizeof(magic)) == 0) {
        char rest[8];
        if (!readExact(rest, sizeof(rest), "file header"))
            return false;
        version_ = readU32(rest);
        if (version_ == 1) {
            format_ = TraceFormat::BinaryV1;
            totalRecords_ = readU32(rest + 4);
            return parseV1();
        }
        if (version_ == traceBaseVersion ||
            version_ == traceAttrVersion) {
            format_ = TraceFormat::BinaryV2;
            attribution_ = version_ == traceAttrVersion;
            recordBytes_ = attribution_ ? traceAttrRecordBytes
                                        : traceRecordBytes;
            chunkCapacity_ = readU32(rest + 4);
            return parseV2();
        }
        return fail(strPrintf("unsupported trace version %u",
                              version_));
    }

    // Not a binary trace: require the exact CSV header row.
    is_->clear();
    is_->seekg(0, std::ios::beg);
    std::string line;
    if (!std::getline(*is_, line))
        return fail("unrecognized trace: no CSV header row");
    const std::string expected(traceCsvHeader,
                               sizeof(traceCsvHeader) - 2); // no \n
    const std::string expectedAttr(traceCsvHeaderAttr,
                                   sizeof(traceCsvHeaderAttr) - 2);
    if (line == expectedAttr)
        attribution_ = true;
    else if (line != expected)
        return fail("unrecognized trace: neither binary magic nor "
                    "the CSV header row");
    format_ = TraceFormat::Csv;
    return true;
}

bool
TraceReader::parseV1()
{
    std::uint64_t expected =
        traceFileHeaderBytes + totalRecords_ * traceRecordBytes;
    if (fileSize_ < expected)
        return fail(strPrintf(
            "truncated v1 trace: %llu bytes for %llu records "
            "(need %llu)",
            static_cast<unsigned long long>(fileSize_),
            static_cast<unsigned long long>(totalRecords_),
            static_cast<unsigned long long>(expected)));
    if (fileSize_ > expected)
        return fail(strPrintf(
            "v1 trace has %llu trailing bytes after the last record",
            static_cast<unsigned long long>(fileSize_ - expected)));
    return true;
}

bool
TraceReader::parseV2()
{
    const std::uint64_t minFooter =
        traceFooterPrefixBytes + 4; // prefix + footer CRC
    if (fileSize_ <
        traceFileHeaderBytes + minFooter + traceTrailerBytes)
        return fail("truncated v2 trace: too small for header, "
                    "footer, and trailer");

    // Trailer: footer offset + end magic.
    is_->seekg(static_cast<std::streamoff>(fileSize_ -
                                           traceTrailerBytes),
               std::ios::beg);
    char trailer[traceTrailerBytes];
    if (!readExact(trailer, sizeof(trailer), "v2 trailer"))
        return false;
    if (std::memcmp(trailer + 8, traceEndMagic,
                    sizeof(traceEndMagic)) != 0)
        return fail("corrupt v2 trace: bad end magic (file "
                    "truncated or not finished?)");
    std::uint64_t footerOffset = readU64(trailer);
    if (footerOffset < traceFileHeaderBytes ||
        footerOffset + minFooter + traceTrailerBytes > fileSize_)
        return fail("corrupt v2 trace: footer offset out of range");

    // Footer: prefix + index + CRC.
    std::uint64_t footerLen =
        fileSize_ - traceTrailerBytes - footerOffset;
    is_->seekg(static_cast<std::streamoff>(footerOffset),
               std::ios::beg);
    std::string footer(footerLen, '\0');
    if (!readExact(footer.data(), footerLen, "v2 footer"))
        return false;
    if (std::memcmp(footer.data(), traceFooterMagic,
                    sizeof(traceFooterMagic)) != 0)
        return fail("corrupt v2 trace: bad footer magic");
    std::uint32_t chunkCount = readU32(footer.data() + 4);
    totalRecords_ = readU64(footer.data() + 8);
    std::uint64_t expectedLen =
        traceFooterPrefixBytes +
        static_cast<std::uint64_t>(chunkCount) *
            traceIndexEntryBytes +
        4;
    if (footerLen != expectedLen)
        return fail("corrupt v2 trace: footer length does not match "
                    "its chunk count");
    std::uint32_t storedCrc = readU32(footer.data() + footerLen - 4);
    if (crc32(footer.data(), footerLen - 4) != storedCrc)
        return fail("corrupt v2 trace: footer CRC mismatch");

    // Chunk index: contiguous chunks from the header to the footer,
    // full chunks everywhere but the tail, counts summing to the
    // declared total.
    if (chunkCount > 0 && chunkCapacity_ == 0)
        return fail("corrupt v2 trace: zero chunk capacity");
    chunks_.reserve(chunkCount);
    std::uint64_t offset = traceFileHeaderBytes;
    std::uint64_t firstRecord = 0;
    for (std::uint32_t i = 0; i < chunkCount; ++i) {
        const char *entry = footer.data() + traceFooterPrefixBytes +
                            static_cast<std::size_t>(i) *
                                traceIndexEntryBytes;
        ChunkEntry chunk;
        chunk.offset = readU64(entry);
        chunk.records = readU32(entry + 8);
        chunk.crc = readU32(entry + 12);
        chunk.firstRecord = firstRecord;
        if (chunk.offset != offset)
            return fail(strPrintf(
                "corrupt v2 trace: chunk %u offset mismatch", i));
        if (chunk.records == 0 || chunk.records > chunkCapacity_)
            return fail(strPrintf(
                "corrupt v2 trace: chunk %u record count out of "
                "range", i));
        if (i + 1 < chunkCount && chunk.records != chunkCapacity_)
            return fail(strPrintf(
                "corrupt v2 trace: short chunk %u before the tail",
                i));
        offset += traceChunkHeaderBytes +
                  static_cast<std::uint64_t>(chunk.records) *
                      recordBytes_;
        firstRecord += chunk.records;
        chunks_.push_back(chunk);
    }
    if (offset != footerOffset)
        return fail("corrupt v2 trace: chunks do not fill the space "
                    "before the footer");
    if (firstRecord != totalRecords_)
        return fail("corrupt v2 trace: chunk counts do not sum to "
                    "the footer total");
    return true;
}

bool
TraceReader::loadChunk(std::size_t index)
{
    const ChunkEntry &entry = chunks_[index];
    is_->clear();
    is_->seekg(static_cast<std::streamoff>(entry.offset),
               std::ios::beg);
    char header[traceChunkHeaderBytes];
    if (!readExact(header, sizeof(header), "chunk header"))
        return false;
    if (std::memcmp(header, traceChunkMagic,
                    sizeof(traceChunkMagic)) != 0)
        return fail(strPrintf(
            "corrupt v2 trace: bad magic on chunk %zu", index));
    if (readU32(header + 4) != entry.records)
        return fail(strPrintf(
            "corrupt v2 trace: chunk %zu count disagrees with the "
            "index", index));
    if (readU32(header + 8) != entry.crc)
        return fail(strPrintf(
            "corrupt v2 trace: chunk %zu CRC disagrees with the "
            "index", index));
    std::string payload(
        static_cast<std::size_t>(entry.records) * recordBytes_,
        '\0');
    if (!readExact(payload.data(), payload.size(), "chunk payload"))
        return false;
    if (crc32(payload.data(), payload.size()) != entry.crc)
        return fail(strPrintf(
            "corrupt v2 trace: chunk %zu payload CRC mismatch",
            index));
    chunkBuf_.clear();
    chunkBuf_.reserve(entry.records);
    for (std::uint32_t i = 0; i < entry.records; ++i) {
        CtrlTraceRecord r;
        if (!decodeRecord(payload.data() +
                              static_cast<std::size_t>(i) *
                                  recordBytes_,
                          r, attribution_))
            return fail(strPrintf(
                "corrupt v2 trace: invalid record kind in chunk %zu",
                index));
        chunkBuf_.push_back(r);
    }
    ++chunksDecoded_;
    return true;
}

void
TraceReader::setTickWindow(std::uint64_t minTick,
                           std::uint64_t maxTick)
{
    tickWindowSet_ = true;
    minTick_ = minTick;
    maxTick_ = maxTick;
}

bool
TraceReader::peekChunkTicks(std::size_t index, std::uint64_t &first,
                            std::uint64_t &last)
{
    const ChunkEntry &entry = chunks_[index];
    // The tick is the first 8 bytes of the 24-byte record, and
    // records land in simulation-time order, so the chunk's tick
    // range comes from two tiny reads — no CRC, no decode.
    char buf[8];
    is_->clear();
    is_->seekg(static_cast<std::streamoff>(
                   entry.offset + traceChunkHeaderBytes),
               std::ios::beg);
    if (!readExact(buf, sizeof(buf), "chunk first-tick peek"))
        return false;
    first = readU64(buf);
    is_->seekg(static_cast<std::streamoff>(
                   entry.offset + traceChunkHeaderBytes +
                   static_cast<std::uint64_t>(entry.records - 1) *
                       recordBytes_),
               std::ios::beg);
    if (!readExact(buf, sizeof(buf), "chunk last-tick peek"))
        return false;
    last = readU64(buf);
    return true;
}

bool
TraceReader::next(CtrlTraceRecord &out)
{
    if (!ok() || !is_)
        return false;
    switch (format_) {
    case TraceFormat::Csv:
        return nextCsv(out);
    case TraceFormat::BinaryV1: {
        if (recordsRead_ == totalRecords_)
            return false;
        char buf[traceRecordBytes];
        if (!readExact(buf, sizeof(buf), "v1 record"))
            return false;
        if (!decodeRecord(buf, out, /*attribution=*/false))
            return fail(strPrintf(
                "corrupt v1 trace: invalid record kind at record "
                "%llu",
                static_cast<unsigned long long>(recordsRead_)));
        ++recordsRead_;
        return true;
    }
    case TraceFormat::BinaryV2:
        while (chunkPos_ >= chunkBuf_.size()) {
            if (chunkIndex_ >= chunks_.size())
                return false;
            if (tickWindowSet_) {
                std::uint64_t first = 0, last = 0;
                if (!peekChunkTicks(chunkIndex_, first, last))
                    return false;
                if (last < minTick_ || first > maxTick_) {
                    ++chunkIndex_;
                    continue;
                }
            }
            if (!loadChunk(chunkIndex_))
                return false;
            ++chunkIndex_;
            chunkPos_ = 0;
        }
        out = chunkBuf_[chunkPos_++];
        ++recordsRead_;
        return true;
    }
    return false;
}

bool
TraceReader::nextCsv(CtrlTraceRecord &out)
{
    if (csvDone_)
        return false;
    std::string line;
    if (!std::getline(*is_, line)) {
        csvDone_ = true;
        return false;
    }
    char type = 0;
    unsigned long long tick = 0;
    unsigned channel = 0, wordline = 0, bitline = 0, lrs = 0,
             queueDepth = 0;
    float latency = 0.0f;
    WriteAttribution attr{};
    int consumed = 0;
    int fields;
    bool rowOk;
    if (attribution_) {
        fields = std::sscanf(
            line.c_str(),
            "%c,%llu,%u,%u,%u,%u,%f,%u,%d,%d,%d,%d,%d,%d,%d,%d%n",
            &type, &tick, &channel, &wordline, &bitline, &lrs,
            &latency, &queueDepth, &attr.depTicks, &attr.queueTicks,
            &attr.bankTicks, &attr.rcdTicks, &attr.baseTicks,
            &attr.locationTicks, &attr.contentTicks,
            &attr.schemeTicks, &consumed);
        rowOk = fields == 16;
    } else {
        fields = std::sscanf(line.c_str(), "%c,%llu,%u,%u,%u,%u,%f,%u%n",
                             &type, &tick, &channel, &wordline,
                             &bitline, &lrs, &latency, &queueDepth,
                             &consumed);
        rowOk = fields == 8;
    }
    if (!rowOk ||
        consumed != static_cast<int>(line.size()) ||
        (type != 'W' && type != 'R') || channel > 0xFF ||
        wordline > 0xFFFF || bitline > 0xFFFF || lrs > 0xFFFF)
        return fail(strPrintf(
            "malformed CSV trace row %llu: '%.60s'",
            static_cast<unsigned long long>(recordsRead_ + 1),
            line.c_str()));
    out.tick = tick;
    out.kind = type == 'W' ? CtrlTraceRecord::Kind::Write
                           : CtrlTraceRecord::Kind::Read;
    out.channel = static_cast<std::uint8_t>(channel);
    out.wordline = static_cast<std::uint16_t>(wordline);
    out.bitline = static_cast<std::uint16_t>(bitline);
    out.lrsCount = static_cast<std::uint16_t>(lrs);
    out.latencyNs = latency;
    out.queueDepth = queueDepth;
    out.attr = attr;
    ++recordsRead_;
    return true;
}

bool
TraceReader::seekChunk(std::size_t index)
{
    if (!ok() || !is_)
        return false;
    if (format_ != TraceFormat::BinaryV2)
        return fail("seekChunk: only the v2 chunked format supports "
                    "seeking");
    if (index >= chunks_.size())
        return fail(strPrintf(
            "seekChunk: chunk %zu out of range (trace has %zu)",
            index, chunks_.size()));
    if (!loadChunk(index))
        return false;
    chunkIndex_ = index + 1;
    chunkPos_ = 0;
    recordsRead_ = chunks_[index].firstRecord;
    return true;
}

TraceSummary
summarizeTrace(TraceReader &reader)
{
    TraceSummary s;
    CtrlTraceRecord r;
    bool first = true;
    while (reader.next(r)) {
        ++s.records;
        if (first) {
            s.firstTick = r.tick;
            first = false;
        }
        s.lastTick = r.tick;
        if (r.channel >= s.perChannel.size())
            s.perChannel.resize(r.channel + 1, 0);
        ++s.perChannel[r.channel];
        if (r.kind == CtrlTraceRecord::Kind::Write) {
            ++s.writes;
            s.writeLatencySumNs += r.latencyNs;
            s.maxWriteLatencyNs =
                std::max(s.maxWriteLatencyNs, r.latencyNs);
            s.maxLrsCount = std::max(s.maxLrsCount, r.lrsCount);
        } else {
            ++s.reads;
            s.readLatencySumNs += r.latencyNs;
            s.maxReadLatencyNs =
                std::max(s.maxReadLatencyNs, r.latencyNs);
        }
        s.maxQueueDepth = std::max(s.maxQueueDepth, r.queueDepth);
    }
    return s;
}

} // namespace ladder
