#include "trace_sink.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#endif

#include "common/bounded_queue.hh"
#include "common/crc32.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/profiler.hh"
#include "ctrl/trace_wire.hh"

namespace ladder
{

namespace
{

metrics::MetricId
traceChunksMetric()
{
    static const metrics::MetricId id =
        metrics::registerCounter("trace.chunks_flushed");
    return id;
}

metrics::MetricId
traceStallsMetric()
{
    static const metrics::MetricId id =
        metrics::registerCounter("trace.backpressure_stalls");
    return id;
}

void
appendU16(std::string &out, std::uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/**
 * Append one record in the fixed little-endian layout: the 24 base
 * bytes, plus the 32-byte blame block when @p attribution is set
 * (signed components stored as two's-complement u32).
 */
void
appendRecord(std::string &out, const CtrlTraceRecord &r,
             bool attribution)
{
    appendU64(out, r.tick);
    out.push_back(static_cast<char>(r.kind));
    out.push_back(static_cast<char>(r.channel));
    appendU16(out, r.wordline);
    appendU16(out, r.bitline);
    appendU16(out, r.lrsCount);
    std::uint32_t latencyBits;
    static_assert(sizeof(latencyBits) == sizeof(r.latencyNs));
    std::memcpy(&latencyBits, &r.latencyNs, sizeof(latencyBits));
    appendU32(out, latencyBits);
    appendU32(out, r.queueDepth);
    if (attribution) {
        const std::int32_t components[8] = {
            r.attr.depTicks,  r.attr.queueTicks,
            r.attr.bankTicks, r.attr.rcdTicks,
            r.attr.baseTicks, r.attr.locationTicks,
            r.attr.contentTicks, r.attr.schemeTicks};
        for (std::int32_t c : components)
            appendU32(out, static_cast<std::uint32_t>(c));
    }
}

void
appendCsvRow(std::string &out, const CtrlTraceRecord &r,
             bool attribution)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%c,%llu,%u,%u,%u,%u,%.3f,%u",
                  r.kind == CtrlTraceRecord::Kind::Write ? 'W' : 'R',
                  static_cast<unsigned long long>(r.tick), r.channel,
                  r.wordline, r.bitline, r.lrsCount,
                  static_cast<double>(r.latencyNs), r.queueDepth);
    out += buf;
    if (attribution) {
        std::snprintf(buf, sizeof(buf), ",%d,%d,%d,%d,%d,%d,%d,%d",
                      r.attr.depTicks, r.attr.queueTicks,
                      r.attr.bankTicks, r.attr.rcdTicks,
                      r.attr.baseTicks, r.attr.locationTicks,
                      r.attr.contentTicks, r.attr.schemeTicks);
        out += buf;
    }
    out += '\n';
}

/** v2/v3 file header: magic, version, chunk capacity. */
std::string
serializeV2Header(std::size_t chunkRecords, bool attribution)
{
    std::string out(traceFileMagic, sizeof(traceFileMagic));
    appendU32(out, attribution ? traceAttrVersion : traceBaseVersion);
    appendU32(out, static_cast<std::uint32_t>(chunkRecords));
    return out;
}

struct ChunkIndexEntry
{
    std::uint64_t offset = 0; //!< file offset of the chunk magic
    std::uint32_t records = 0;
    std::uint32_t crc = 0;
};

/** One v2/v3 chunk: magic, count, payload CRC-32, packed records. */
std::string
serializeV2Chunk(const CtrlTraceRecord *records, std::size_t count,
                 std::uint32_t *crcOut, bool attribution)
{
    std::string payload;
    payload.reserve(count * (attribution ? traceAttrRecordBytes
                                         : traceRecordBytes));
    for (std::size_t i = 0; i < count; ++i)
        appendRecord(payload, records[i], attribution);
    std::uint32_t crc = crc32(payload.data(), payload.size());
    if (crcOut)
        *crcOut = crc;
    std::string out(traceChunkMagic, sizeof(traceChunkMagic));
    appendU32(out, static_cast<std::uint32_t>(count));
    appendU32(out, crc);
    out += payload;
    return out;
}

/** v2 footer + trailer for the given chunk index. */
std::string
serializeV2Footer(const std::vector<ChunkIndexEntry> &index,
                  std::uint64_t totalRecords,
                  std::uint64_t footerOffset)
{
    std::string footer(traceFooterMagic, sizeof(traceFooterMagic));
    appendU32(footer, static_cast<std::uint32_t>(index.size()));
    appendU64(footer, totalRecords);
    for (const ChunkIndexEntry &entry : index) {
        appendU64(footer, entry.offset);
        appendU32(footer, entry.records);
        appendU32(footer, entry.crc);
    }
    appendU32(footer, crc32(footer.data(), footer.size()));
    appendU64(footer, footerOffset);
    footer.append(traceEndMagic, sizeof(traceEndMagic));
    return footer;
}

} // namespace

TraceFormat
traceFormatFromName(const std::string &name)
{
    if (name == "csv")
        return TraceFormat::Csv;
    if (name == "bin")
        return TraceFormat::BinaryV1;
    if (name == "bin2")
        return TraceFormat::BinaryV2;
    fatal("trace-format must be 'csv', 'bin', or 'bin2', got '%s'",
          name.c_str());
}

std::string
traceFormatExtension(TraceFormat format)
{
    return format == TraceFormat::Csv ? "csv" : "bin";
}

/**
 * Streaming state: the output stream, the writer thread, and the
 * bounded chunk queue between them. The simulation thread owns the
 * fill chunk; the writer thread owns the ofstream and the chunk index
 * while running (the index is read by the finisher only after join).
 */
struct WriteTraceSink::Stream
{
    explicit Stream(std::size_t maxQueuedChunks)
        : queue(maxQueuedChunks)
    {
    }

    std::ofstream os;
    BoundedQueue<std::vector<CtrlTraceRecord>> queue;
    std::thread writer;
    std::atomic<std::size_t> inFlight{0}; //!< queued, unwritten records
    std::atomic<bool> failed{false};
    std::uint64_t offset = 0; //!< bytes written so far
    std::uint64_t written = 0; //!< records written so far
    std::vector<ChunkIndexEntry> index;
    bool finished = false;
};

WriteTraceSink::WriteTraceSink() = default;

WriteTraceSink::WriteTraceSink(const std::string &path,
                               TraceFormat format,
                               const TraceStreamOptions &options,
                               bool attribution)
    : path_(path), format_(format), options_(options),
      attribution_(attribution)
{
    ladder_assert(format_ != TraceFormat::BinaryV1,
                  "streaming trace requires 'csv' or 'bin2' (the v1 "
                  "header carries the record count up front)");
    ladder_assert(options_.chunkRecords > 0,
                  "streaming trace: zero chunk size");
    ladder_assert(options_.maxQueuedChunks > 0,
                  "streaming trace: zero queue capacity");
    records_.reserve(options_.chunkRecords);
    startStream();
}

WriteTraceSink::~WriteTraceSink()
{
    if (stream_ && !stream_->finished) {
        // Flush on destruction; IO failures still panic via the
        // ladder_assert in finish(), which is fine — panic aborts.
        finish();
    }
}

void
WriteTraceSink::startStream()
{
    auto stream = std::make_unique<Stream>(options_.maxQueuedChunks);
    stream->os.open(path_, std::ios::binary | std::ios::trunc);
    ladder_assert(stream->os.good(), "cannot open trace file %s",
                  path_.c_str());
    std::string header =
        format_ == TraceFormat::BinaryV2
            ? serializeV2Header(options_.chunkRecords, attribution_)
            : std::string(attribution_ ? traceCsvHeaderAttr
                                       : traceCsvHeader);
    stream->os.write(header.data(),
                     static_cast<std::streamsize>(header.size()));
    stream->offset = header.size();
    Stream *raw = stream.get();
    TraceFormat format = format_;
    bool attribution = attribution_;
    stream->writer = std::thread([raw, format, attribution]() {
#if defined(__linux__)
        pthread_setname_np(pthread_self(), "ladder-trace");
#endif
        prof::setCurrentThreadName("ladder-trace");
        while (auto chunk = raw->queue.pop()) {
            if (!raw->failed.load(std::memory_order_relaxed)) {
                PROF_SCOPE("trace_flush");
                if (metrics::enabled())
                    metrics::add(traceChunksMetric());
                std::string bytes;
                if (format == TraceFormat::BinaryV2) {
                    ChunkIndexEntry entry;
                    entry.offset = raw->offset;
                    entry.records =
                        static_cast<std::uint32_t>(chunk->size());
                    bytes = serializeV2Chunk(chunk->data(),
                                             chunk->size(), &entry.crc,
                                             attribution);
                    raw->index.push_back(entry);
                } else {
                    for (const CtrlTraceRecord &r : *chunk)
                        appendCsvRow(bytes, r, attribution);
                }
                raw->os.write(
                    bytes.data(),
                    static_cast<std::streamsize>(bytes.size()));
                raw->offset += bytes.size();
                raw->written += chunk->size();
                if (!raw->os.good())
                    raw->failed.store(true,
                                      std::memory_order_relaxed);
            }
            // On failure keep draining so the producer never blocks
            // on a queue nobody is emptying.
            raw->inFlight.fetch_sub(chunk->size(),
                                    std::memory_order_relaxed);
        }
    });
    stream_ = std::move(stream);
}

void
WriteTraceSink::pushChunk(std::vector<CtrlTraceRecord> &&chunk)
{
    if (chunk.empty())
        return;
    stream_->inFlight.fetch_add(chunk.size(),
                                std::memory_order_relaxed);
    // Blocks while the queue is full: backpressure instead of
    // unbounded buffering when the disk cannot keep up. The size
    // probe is racy, which is fine for a stall tally.
    if (metrics::enabled() &&
        stream_->queue.size() >= stream_->queue.capacity())
        metrics::add(traceStallsMetric());
    bool pushed = stream_->queue.push(std::move(chunk));
    ladder_assert(pushed, "trace chunk pushed after finish()");
}

void
WriteTraceSink::stopStream(bool writeFooter)
{
    Stream &stream = *stream_;
    stream.queue.close();
    if (stream.writer.joinable())
        stream.writer.join();
    if (writeFooter && format_ == TraceFormat::BinaryV2) {
        std::string footer = serializeV2Footer(
            stream.index, stream.written, stream.offset);
        stream.os.write(footer.data(),
                        static_cast<std::streamsize>(footer.size()));
    }
    if (writeFooter) {
        stream.os.flush();
        if (!stream.os.good())
            stream.failed.store(true, std::memory_order_relaxed);
    }
    stream.os.close();
    stream.finished = true;
    ladder_assert(!stream.failed.load(), "write error on trace file %s",
                  path_.c_str());
}

void
WriteTraceSink::record(const CtrlTraceRecord &r)
{
    if (!stream_) {
        records_.push_back(r);
        ++total_;
        peakBuffered_ = std::max(peakBuffered_, records_.size());
        return;
    }
    ladder_assert(!stream_->finished, "record() after finish()");
    records_.push_back(r);
    ++total_;
    std::size_t resident =
        records_.size() +
        stream_->inFlight.load(std::memory_order_relaxed);
    peakBuffered_ = std::max(peakBuffered_, resident);
    if (records_.size() >= options_.chunkRecords) {
        std::vector<CtrlTraceRecord> chunk;
        chunk.reserve(options_.chunkRecords);
        chunk.swap(records_);
        pushChunk(std::move(chunk));
    }
}

void
WriteTraceSink::clear()
{
    if (stream_) {
        // Restart the file from scratch: drop the fill chunk, retire
        // the writer (discarded bytes included), truncate, re-open.
        records_.clear();
        stopStream(/*writeFooter=*/false);
        stream_.reset();
        startStream();
    } else {
        records_.clear();
    }
    total_ = 0;
}

void
WriteTraceSink::finish()
{
    if (!stream_ || stream_->finished)
        return;
    pushChunk(std::move(records_));
    records_ = {};
    stopStream(/*writeFooter=*/true);
}

const std::vector<CtrlTraceRecord> &
WriteTraceSink::records() const
{
    ladder_assert(!stream_,
                  "records() is buffered-mode only (streaming traces "
                  "live on disk; use TraceReader)");
    return records_;
}

void
WriteTraceSink::setAttribution(bool attribution)
{
    ladder_assert(!stream_,
                  "setAttribution() is buffered-mode only (streaming "
                  "sinks fix the format at construction)");
    attribution_ = attribution;
}

void
WriteTraceSink::writeCsv(std::ostream &os) const
{
    ladder_assert(!stream_, "writeCsv() is buffered-mode only");
    PROF_SCOPE("trace_flush");
    if (attribution_)
        os.write(traceCsvHeaderAttr, sizeof(traceCsvHeaderAttr) - 1);
    else
        os.write(traceCsvHeader, sizeof(traceCsvHeader) - 1);
    std::string row;
    for (const CtrlTraceRecord &r : records_) {
        row.clear();
        appendCsvRow(row, r, attribution_);
        os.write(row.data(), static_cast<std::streamsize>(row.size()));
    }
}

void
WriteTraceSink::writeBinary(std::ostream &os) const
{
    ladder_assert(!stream_, "writeBinary() is buffered-mode only");
    ladder_assert(!attribution_,
                  "the v1 binary has no attribution block; use csv "
                  "or bin2 with trace.attribution");
    PROF_SCOPE("trace_flush");
    std::string out(traceFileMagic, sizeof(traceFileMagic));
    appendU32(out, 1);
    appendU32(out, static_cast<std::uint32_t>(records_.size()));
    for (const CtrlTraceRecord &r : records_)
        appendRecord(out, r, /*attribution=*/false);
    os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

void
WriteTraceSink::writeBinaryV2(std::ostream &os,
                              std::size_t chunkRecords) const
{
    ladder_assert(!stream_, "writeBinaryV2() is buffered-mode only");
    PROF_SCOPE("trace_flush");
    ladder_assert(chunkRecords > 0, "writeBinaryV2: zero chunk size");
    std::string header = serializeV2Header(chunkRecords, attribution_);
    os.write(header.data(),
             static_cast<std::streamsize>(header.size()));
    std::uint64_t offset = header.size();
    std::vector<ChunkIndexEntry> index;
    for (std::size_t start = 0; start < records_.size();
         start += chunkRecords) {
        std::size_t count =
            std::min(chunkRecords, records_.size() - start);
        ChunkIndexEntry entry;
        entry.offset = offset;
        entry.records = static_cast<std::uint32_t>(count);
        std::string chunk = serializeV2Chunk(records_.data() + start,
                                             count, &entry.crc,
                                             attribution_);
        os.write(chunk.data(),
                 static_cast<std::streamsize>(chunk.size()));
        offset += chunk.size();
        index.push_back(entry);
    }
    std::string footer =
        serializeV2Footer(index, records_.size(), offset);
    os.write(footer.data(),
             static_cast<std::streamsize>(footer.size()));
}

} // namespace ladder
