#include "trace_sink.hh"

#include <cstdio>
#include <cstring>

namespace ladder
{

void
WriteTraceSink::writeCsv(std::ostream &os) const
{
    os << "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
          "queue_depth\n";
    char buf[128];
    for (const CtrlTraceRecord &r : records_) {
        std::snprintf(
            buf, sizeof(buf), "%c,%llu,%u,%u,%u,%u,%.3f,%u\n",
            r.kind == CtrlTraceRecord::Kind::Write ? 'W' : 'R',
            static_cast<unsigned long long>(r.tick), r.channel,
            r.wordline, r.bitline, r.lrsCount,
            static_cast<double>(r.latencyNs), r.queueDepth);
        os << buf;
    }
}

void
WriteTraceSink::writeBinary(std::ostream &os) const
{
    // Header: magic, version, record count.
    const char magic[8] = {'L', 'A', 'D', 'D', 'R', 'T', 'R', 'C'};
    os.write(magic, sizeof(magic));
    auto writeU32 = [&os](std::uint32_t v) {
        char b[4];
        for (int i = 0; i < 4; ++i)
            b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
        os.write(b, 4);
    };
    auto writeU64 = [&os](std::uint64_t v) {
        char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
        os.write(b, 8);
    };
    writeU32(1);
    writeU32(static_cast<std::uint32_t>(records_.size()));
    for (const CtrlTraceRecord &r : records_) {
        writeU64(r.tick);
        os.put(static_cast<char>(r.kind));
        os.put(static_cast<char>(r.channel));
        auto writeU16 = [&os](std::uint16_t v) {
            os.put(static_cast<char>(v & 0xFF));
            os.put(static_cast<char>((v >> 8) & 0xFF));
        };
        writeU16(r.wordline);
        writeU16(r.bitline);
        writeU16(r.lrsCount);
        std::uint32_t latencyBits;
        static_assert(sizeof(latencyBits) == sizeof(r.latencyNs));
        std::memcpy(&latencyBits, &r.latencyNs, sizeof(latencyBits));
        writeU32(latencyBits);
        writeU32(r.queueDepth);
    }
}

} // namespace ladder
