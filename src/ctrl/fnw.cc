#include "fnw.hh"

namespace ladder
{

FnwDecision
fnwDecide(const LineData &stored, const LineData &data, FnwMode mode)
{
    FnwDecision out;
    BitTransitions plain = countTransitions(stored, data);

    if (mode == FnwMode::Off) {
        out.data = data;
        out.transitions = plain.resets + plain.sets;
        out.resets = plain.resets;
        out.sets = plain.sets;
        return out;
    }

    LineData inverted = invertLine(data);
    BitTransitions flippedT = countTransitions(stored, inverted);
    unsigned plainCost = plain.resets + plain.sets;
    unsigned flipCost = flippedT.resets + flippedT.sets;

    bool wantFlip = flipCost < plainCost;
    if (wantFlip && mode == FnwMode::Constrained) {
        // The counting constraint: the written variant must not hold
        // more '1's than the unflipped data.
        if (popcountLine(inverted) > popcountLine(data)) {
            wantFlip = false;
            out.flipCancelled = true;
        }
    }

    if (wantFlip) {
        out.flip = true;
        out.data = inverted;
        out.transitions = flipCost;
        out.resets = flippedT.resets;
        out.sets = flippedT.sets;
    } else {
        out.data = data;
        out.transitions = plainCost;
        out.resets = plain.resets;
        out.sets = plain.sets;
    }
    return out;
}

} // namespace ladder
