/**
 * @file
 * Robust reader for every trace encoding the sink can emit: CSV, the
 * legacy v1 packed binary, and the v2 chunked binary (see
 * trace_sink.hh for the wire formats). Designed for consumption by
 * external tools (trace_cat, analysis scripts, tests), so malformed
 * input is *never* undefined behaviour or a crash: every validation
 * failure — bad magic, unsupported version, truncated header,
 * mid-record EOF, CRC mismatch, inconsistent chunk index, malformed
 * CSV row — turns into `ok() == false` with a human-readable error()
 * and next() returning false.
 *
 * Sequential iteration works on all formats; the v2 chunk index
 * additionally supports O(1) seeking to any chunk. Memory use is
 * bounded by one chunk (v2) or one record (v1/CSV), so arbitrarily
 * long traces can be scanned.
 */

#ifndef LADDER_CTRL_TRACE_READER_HH
#define LADDER_CTRL_TRACE_READER_HH

#include <cstdint>
#include <istream>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/trace_sink.hh"

namespace ladder
{

/** Streaming parser over one trace file or in-memory buffer. */
class TraceReader
{
  public:
    TraceReader() = default;

    /**
     * Open a trace file, auto-detecting the encoding, and validate
     * its framing (v1: size check; v2: trailer, footer CRC, chunk
     * index consistency). Returns false with error() set on any
     * problem.
     */
    bool open(const std::string &path);

    /** Same as open(), over an in-memory copy of the bytes. */
    bool openBuffer(std::string bytes);

    /** True while no validation failure has occurred. */
    bool ok() const { return error_.empty(); }

    /** Description of the first failure (empty while ok()). */
    const std::string &error() const { return error_; }

    TraceFormat format() const { return format_; }

    /** Binary container version (1, 2, or 3; 0 for CSV). */
    std::uint32_t version() const { return version_; }

    /**
     * Whether records carry the blame block (binary v3 or the
     * attribution CSV header); attr fields read as zero otherwise.
     */
    bool attribution() const { return attribution_; }

    /**
     * Total record count when the container declares it (v1 header,
     * v2 footer); false for CSV, where the count is only known once
     * iteration completes.
     */
    bool knownTotal() const { return format_ != TraceFormat::Csv; }
    std::uint64_t totalRecords() const { return totalRecords_; }

    /**
     * Restrict iteration to records with minTick <= tick <= maxTick.
     * On the v2 format this is pushed down to the chunk index:
     * records are appended in simulation-time order, so a chunk's
     * tick range is [first record tick, last record tick], peekable
     * from 16 bytes without decoding — chunks entirely outside the
     * window are skipped whole, never CRC-checked or decoded (see
     * chunksDecoded()). Boundary chunks can still deliver records
     * just outside the window, so callers wanting an exact cut must
     * keep their per-record filter; v1/CSV have no index and are
     * filtered by the caller alone. Call before iterating.
     */
    void setTickWindow(std::uint64_t minTick, std::uint64_t maxTick);

    /** Chunks CRC-checked + decoded so far (v2; skipping counter). */
    std::uint64_t chunksDecoded() const { return chunksDecoded_; }

    /**
     * Read the next record into @p out. Returns false at clean end of
     * trace *or* on error — check ok() to tell the two apart.
     */
    bool next(CtrlTraceRecord &out);

    /** Records delivered by next() so far. */
    std::uint64_t recordsRead() const { return recordsRead_; }

    // --- v2 chunk index access (chunkCount() == 0 for v1/CSV) ---

    std::size_t chunkCount() const { return chunks_.size(); }

    /** Record count of chunk @p index. */
    std::uint32_t chunkRecords(std::size_t index) const
    {
        return chunks_.at(index).records;
    }

    /** Index of the first record in chunk @p index. */
    std::uint64_t chunkFirstRecord(std::size_t index) const
    {
        return chunks_.at(index).firstRecord;
    }

    /**
     * Position iteration at the first record of chunk @p index
     * (v2 only). Returns false with error() set when out of range or
     * the chunk fails validation.
     */
    bool seekChunk(std::size_t index);

  private:
    struct ChunkEntry
    {
        std::uint64_t offset = 0;
        std::uint32_t records = 0;
        std::uint32_t crc = 0;
        std::uint64_t firstRecord = 0;
    };

    bool fail(const std::string &msg);
    bool readExact(char *buf, std::size_t len, const char *what);
    bool parseHeader();
    bool parseV1();
    bool parseV2();
    bool loadChunk(std::size_t index);
    bool nextCsv(CtrlTraceRecord &out);
    /** Peek chunk @p index's first/last record ticks (no decode). */
    bool peekChunkTicks(std::size_t index, std::uint64_t &first,
                        std::uint64_t &last);

    std::unique_ptr<std::istream> is_;
    std::string error_;
    TraceFormat format_ = TraceFormat::Csv;
    std::uint32_t version_ = 0;
    std::uint64_t totalRecords_ = 0;
    std::uint64_t recordsRead_ = 0;
    std::uint64_t fileSize_ = 0;
    std::uint32_t chunkCapacity_ = 0;
    bool attribution_ = false;
    /** Serialized record size for the detected binary version. */
    std::size_t recordBytes_ = traceRecordBytes;
    std::vector<ChunkEntry> chunks_;
    // Decoded records of the currently loaded v2 chunk.
    std::vector<CtrlTraceRecord> chunkBuf_;
    std::size_t chunkIndex_ = 0; //!< next chunk to load
    std::size_t chunkPos_ = 0;   //!< next record within chunkBuf_
    bool csvDone_ = false;
    bool tickWindowSet_ = false;
    std::uint64_t minTick_ = 0;
    std::uint64_t maxTick_ = ~std::uint64_t{0};
    std::uint64_t chunksDecoded_ = 0;
};

/** Aggregate statistics over a whole trace (see summarizeTrace). */
struct TraceSummary
{
    std::uint64_t records = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t firstTick = 0;
    std::uint64_t lastTick = 0;
    double writeLatencySumNs = 0.0;
    double readLatencySumNs = 0.0;
    float maxWriteLatencyNs = 0.0f;
    float maxReadLatencyNs = 0.0f;
    std::uint32_t maxQueueDepth = 0;
    std::uint16_t maxLrsCount = 0;
    std::vector<std::uint64_t> perChannel; //!< records per channel
};

/**
 * Drain @p reader from its current position, accumulating a summary.
 * Check reader.ok() afterwards — a summary of a corrupt trace covers
 * only the records before the failure.
 */
TraceSummary summarizeTrace(TraceReader &reader);

} // namespace ladder

#endif // LADDER_CTRL_TRACE_READER_HH
