#include "controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/metrics.hh"
#include "common/profiler.hh"
#include "reram/latency_surface.hh"

namespace ladder
{

const char *const *
blameComponentNames()
{
    static const char *const names[blameComponentCount] = {
        "dep",  "queue", "bank",     "rcd",
        "base", "location", "content", "scheme"};
    return names;
}

MemoryController::MemoryController(EventQueue &events,
                                   const ControllerConfig &cfg,
                                   const MemoryGeometry &geo,
                                   unsigned channel, BackingStore &store,
                                   const TimingModel &timing,
                                   std::shared_ptr<WriteScheme> scheme)
    : events_(&events),
      cfg_(cfg),
      geo_(geo),
      map_(geo),
      channel_(channel),
      store_(store),
      timing_(timing),
      scheme_(std::move(scheme)),
      metaCache_(cfg.metadataCacheBytes, cfg.metadataCacheWays)
{
    ladder_assert(scheme_ != nullptr, "controller needs a scheme");
    ladder_assert(cfg_.subarraysPerBank > 0, "need >= 1 subarray");
    // Histogram envelopes: writes span tRCD + the paper's 29-658 ns
    // tWR range; reads add queueing on top of ~32 ns of service, so
    // they get a wider range. Out-of-range samples land in the
    // overflow bucket rather than being lost.
    readLatencyHistNs.init(0.0, 2000.0, 50);
    writeServiceHistNs.init(0.0, 700.0, 35);
    // Blame components: the wait-side ones (dep/queue/bank) share the
    // read-latency envelope, the latency-side ones the tWR envelope.
    for (unsigned i = 0; i < blameComponentCount; ++i) {
        if (i < 3)
            blameHistNs[i].init(0.0, 2000.0, 50);
        else
            blameHistNs[i].init(0.0, 700.0, 35);
    }
    bankBusyUntil_.assign(
        static_cast<std::size_t>(geo_.ranksPerChannel) *
            geo_.banksPerRank * cfg_.subarraysPerBank,
        0);
    tRcd_ = nsToTicks(cfg_.tRcdNs);
    tCl_ = nsToTicks(cfg_.tClNs);
    tBurst_ = nsToTicks(cfg_.tBurstNs);

    // Live-telemetry handles. Registration is idempotent, so every
    // run of a sweep shares the per-channel ids; the per-write uses
    // below cost one relaxed load while telemetry is off.
    const std::string ch = "ctrl.ch" + std::to_string(channel_) + ".";
    mWrites_ = metrics::registerCounter(ch + "writes");
    mReads_ = metrics::registerCounter(ch + "reads");
    mWqDepth_ = metrics::registerGauge(ch + "wq_depth");
    mRqDepth_ = metrics::registerGauge(ch + "rq_depth");
    mResetTicks_ = metrics::registerCounter(ch + "reset_ticks");
    mSchemeWrites_ = metrics::registerCounter(
        "ctrl.scheme." + scheme_->name() + ".writes");
    mSimTick_ = metrics::registerGauge(metrics::names::simTick);
    if (cfg_.attribution) {
        // Global (not per-channel) blame tick counters; their rates
        // drive ladder_top's tail-blame line.
        for (unsigned i = 0; i < blameComponentCount; ++i)
            mBlame_[i] = metrics::registerCounter(
                std::string("ctrl.blame.") + blameComponentNames()[i] +
                "_ticks");
    }
}

void
MemoryController::regStats(StatGroup &group)
{
    group.regScalar("data_reads", &dataReads, "demand reads serviced");
    group.regScalar("metadata_reads", &metadataReads,
                    "LRS-metadata line fills");
    group.regScalar("smb_reads", &smbReads, "stale-memory-block reads");
    group.regScalar("data_writes", &dataWrites, "data writes serviced");
    group.regScalar("metadata_writes", &metadataWrites,
                    "LRS-metadata writebacks");
    group.regScalar("fnw_flips", &fnwFlips, "FNW inversions applied");
    group.regScalar("fnw_cancelled", &fnwCancelled,
                    "FNW flips vetoed by counting constraint");
    group.regScalar("drain_entries", &drainEntries,
                    "write-drain mode entries");
    group.regScalar("spill_insertions", &spillInsertions,
                    "metadata fills parked in the spill buffer");
    group.regAverage("read_latency_ns", &readLatencyNs,
                     "demand read queue+service latency");
    group.regAverage("write_service_ns", &writeServiceNs,
                     "data write tRCD+tWR");
    group.regAverage("write_twr_ns", &writeLatencyOnlyNs,
                     "data write tWR only");
    group.regAverage("write_queue_ns", &writeQueueTimeNs,
                     "data write queueing time");
    group.regHistogram("read_latency_hist_ns", &readLatencyHistNs,
                       "demand read latency distribution");
    group.regHistogram("write_service_hist_ns", &writeServiceHistNs,
                       "data write service time distribution");
    if (cfg_.attribution) {
        // Registered only when attribution is on so attribution-off
        // stats.json stays byte-identical to pre-attribution output.
        for (unsigned i = 0; i < blameComponentCount; ++i) {
            const std::string name = blameComponentNames()[i];
            group.regAverage("blame_" + name + "_ns", &blameAvgNs[i],
                             "write blame: " + name + " component");
            group.regHistogram("blame_" + name + "_hist_ns",
                               &blameHistNs[i],
                               "write blame distribution: " + name);
        }
    }
    group.regScalar("read_energy_pj", &readEnergyPj, "");
    group.regScalar("write_energy_pj", &writeEnergyPj, "");
    group.regScalar("data_write_energy_pj", &dataWriteEnergyPj, "");
    group.regScalar("meta_write_energy_pj", &metaWriteEnergyPj, "");
    group.regScalar("cell_resets", &cellResets, "");
    group.regScalar("cell_sets", &cellSets, "");
}

Addr
MemoryController::physAddr(Addr lineAddr)
{
    ladder_assert(lineAddr % lineBytes == 0,
                  "address 0x%llx not line aligned",
                  static_cast<unsigned long long>(lineAddr));
    return remapper_ ? remapper_->remap(lineAddr) : lineAddr;
}

unsigned
MemoryController::bankIndex(const BlockLocation &loc) const
{
    unsigned bank = loc.rank * geo_.banksPerRank + loc.bank;
    unsigned subarray = loc.matGroup % cfg_.subarraysPerBank;
    return bank * cfg_.subarraysPerBank + subarray;
}

bool
MemoryController::canAcceptRead() const
{
    return readQueue_.size() < cfg_.readQueueEntries;
}

bool
MemoryController::canAcceptWrite() const
{
    return writeQueue_.size() < cfg_.writeQueueEntries;
}

void
MemoryController::addRetryListener(std::function<void()> listener)
{
    retryListeners_.push_back(std::move(listener));
}

void
MemoryController::notifyRetry()
{
    // Retry listeners poke the cores (frontend domain). In engine
    // mode a channel worker only flags its outbox; the System fires
    // deliverRetries() at the barrier, in channel order.
    if (outbox_) {
        outbox_->retryPending = true;
        return;
    }
    for (auto &listener : retryListeners_)
        listener();
}

void
MemoryController::deliverRetries()
{
    for (auto &listener : retryListeners_)
        listener();
}

LineData
MemoryController::readLogical(Addr physLineAddr)
{
    LineData raw = store_.read(physLineAddr);
    if (store_.flipped(physLineAddr))
        raw = invertLine(raw);
    return scheme_->decodeData(physLineAddr, raw);
}

LineData
MemoryController::functionalRead(Addr lineAddr)
{
    return readLogical(physAddr(lineAddr));
}

void
MemoryController::functionalWrite(Addr lineAddr, const LineData &data)
{
    Addr phys = physAddr(lineAddr);
    LineData encoded = scheme_->encodeData(phys, data);
    FnwMode mode = cfg_.fnwMode;
    if (mode != FnwMode::Off && scheme_->constrainedFnw())
        mode = FnwMode::Constrained;
    const LineData &stored = store_.read(phys);
    FnwDecision fnw = fnwDecide(stored, encoded, mode);
    store_.setFlipped(phys, fnw.flip);
    store_.write(phys, fnw.data);
}

void
MemoryController::enqueueRead(Addr lineAddr, ReadCallback callback)
{
    ladder_assert(canAcceptRead(), "read queue overflow");
    Addr phys = physAddr(lineAddr);
    BlockLocation loc = map_.decode(phys);
    ladder_assert(loc.channel == channel_,
                  "read for channel %u routed to controller %u",
                  loc.channel, channel_);
    ++dataReads;

    // Forward from a queued or in-flight write to the same block. The
    // forwarding completion never touches the array, so in engine mode
    // it schedules on the frontend queue (enqueueRead only executes in
    // the serial frontend phase): the latency samples then interleave
    // with this controller's channel-phase samples at a fixed point in
    // the window, independent of worker count.
    EventQueue &fwdQueue = frontendQueue_ ? *frontendQueue_ : *events_;
    for (const auto &entry : writeQueue_) {
        if (entry.addr == phys && !entry.isMetadataWrite) {
            LineData data = entry.data;
            Tick when = curTick() + tCl_;
            Tick enq = curTick();
            fwdQueue.schedule(when, [this, callback, data, when, enq]() {
                readLatencyNs.sample(ticksToNs(when - enq));
                readLatencyHistNs.sample(ticksToNs(when - enq));
                callback(data, when);
            });
            return;
        }
    }
    auto inflight = inFlightWrites_.find(phys);
    if (inflight != inFlightWrites_.end()) {
        LineData data = inflight->second;
        Tick when = curTick() + tCl_;
        Tick enq = curTick();
        fwdQueue.schedule(when, [this, callback, data, when, enq]() {
            readLatencyNs.sample(ticksToNs(when - enq));
            readLatencyHistNs.sample(ticksToNs(when - enq));
            callback(data, when);
        });
        return;
    }

    // Merge with a pending read of the same line (controller MSHR).
    for (auto &entry : readQueue_) {
        if (entry.addr == phys && entry.kind == ReadKind::Data) {
            entry.callbacks.push_back(std::move(callback));
            return;
        }
    }

    ReadEntry entry;
    entry.id = nextId_++;
    entry.addr = phys;
    entry.kind = ReadKind::Data;
    entry.enqueueTick = curTick();
    entry.loc = loc;
    entry.callbacks.push_back(std::move(callback));
    readQueue_.push_back(std::move(entry));
    if (metrics::enabled())
        metrics::set(mRqDepth_, readQueue_.size());
    requestSchedule();
}

void
MemoryController::enqueueWrite(Addr lineAddr, const LineData &data)
{
    ladder_assert(canAcceptWrite(), "write queue overflow");
    Addr phys = physAddr(lineAddr);
    BlockLocation loc = map_.decode(phys);
    ladder_assert(loc.channel == channel_,
                  "write for channel %u routed to controller %u",
                  loc.channel, channel_);

    // Coalesce with a queued (not yet dispatched) write.
    for (auto &entry : writeQueue_) {
        if (entry.addr == phys && !entry.isMetadataWrite) {
            entry.data = data;
            entry.physData = scheme_->encodeData(phys, data);
            return;
        }
    }

    WriteEntry entry;
    entry.id = nextId_++;
    entry.addr = phys;
    entry.data = data;
    entry.loc = loc;
    entry.enqueueTick = curTick();
    entry.readyTick = entry.enqueueTick;
    // Hook first: wear-leveling decorators may advance per-line state
    // that the encoding depends on.
    scheme_->onWriteEnqueued(*this, entry);
    entry.physData = scheme_->encodeData(phys, data);

    if (entry.needsSmb) {
        entry.smbReady = false;
        ReadEntry smb;
        smb.id = nextId_++;
        smb.addr = phys;
        smb.kind = ReadKind::StaleBlock;
        smb.enqueueTick = curTick();
        smb.loc = loc;
        smb.writeId = entry.id;
        internalReads_.push_back(std::move(smb));
        ++smbReads;
    }
    handleMetadataNeeds(entry);
    writeQueue_.push_back(std::move(entry));
    if (metrics::enabled())
        metrics::set(mWqDepth_, writeQueue_.size());
    requestSchedule();
}

void
MemoryController::injectWrite(Addr lineAddr, const LineData &data)
{
    Addr phys = physAddr(lineAddr);
    BlockLocation loc = map_.decode(phys);
    WriteEntry entry;
    entry.id = nextId_++;
    entry.addr = phys;
    entry.data = data;
    entry.loc = loc;
    entry.enqueueTick = curTick();
    entry.readyTick = entry.enqueueTick;
    // Hook first: wear-leveling decorators may advance per-line state
    // that the encoding depends on.
    scheme_->onWriteEnqueued(*this, entry);
    entry.physData = scheme_->encodeData(phys, data);
    if (entry.needsSmb) {
        entry.smbReady = false;
        ReadEntry smb;
        smb.id = nextId_++;
        smb.addr = phys;
        smb.kind = ReadKind::StaleBlock;
        smb.enqueueTick = curTick();
        smb.loc = loc;
        smb.writeId = entry.id;
        internalReads_.push_back(std::move(smb));
        ++smbReads;
    }
    handleMetadataNeeds(entry);
    writeQueue_.push_back(std::move(entry));
    requestSchedule();
}

void
MemoryController::handleMetadataNeeds(WriteEntry &entry)
{
    for (Addr metaAddr : entry.metaAddrs) {
        // A fill already on its way? Join it.
        bool joined = false;
        for (auto &fill : pendingFills_) {
            if (fill.metaAddr == metaAddr) {
                fill.waitingWrites.push_back(entry.id);
                ++entry.metaPending;
                joined = true;
                break;
            }
        }
        if (joined)
            continue;

        MetaLookup result = metaCache_.lookupForWrite(metaAddr);
        if (result == MetaLookup::Hit)
            continue; // sharer counted inside the cache
        PendingMetaFill fill;
        fill.metaAddr = metaAddr;
        fill.waitingWrites.push_back(entry.id);
        ++entry.metaPending;
        if (result == MetaLookup::Miss) {
            fill.issued = true;
            pendingFills_.push_back(fill);
            issueMetaFill(pendingFills_.back());
        } else {
            // Every way pinned: park in the spill buffer.
            fill.issued = false;
            pendingFills_.push_back(fill);
            spillBuffer_.push_back(metaAddr);
            ++spillInsertions;
            ladder_assert(spillBuffer_.size() <=
                              cfg_.spillBufferEntries * 4,
                          "spill buffer runaway");
        }
    }
}

void
MemoryController::issueMetaFill(PendingMetaFill &fill)
{
    ReadEntry meta;
    meta.id = nextId_++;
    meta.addr = fill.metaAddr;
    meta.kind = ReadKind::Metadata;
    meta.enqueueTick = curTick();
    meta.loc = map_.decode(fill.metaAddr);
    internalReads_.push_back(std::move(meta));
    ++metadataReads;
    requestSchedule();
}

void
MemoryController::retrySpills()
{
    for (std::size_t i = 0; i < spillBuffer_.size();) {
        Addr metaAddr = spillBuffer_[i];
        if (!metaCache_.canAllocate(metaAddr)) {
            ++i;
            continue;
        }
        for (auto &fill : pendingFills_) {
            if (fill.metaAddr == metaAddr && !fill.issued) {
                fill.issued = true;
                issueMetaFill(fill);
                break;
            }
        }
        spillBuffer_.erase(spillBuffer_.begin() +
                           static_cast<long>(i));
    }
}

void
MemoryController::enqueueMetadataWrite(Addr metaAddr)
{
    WriteEntry entry;
    entry.id = nextId_++;
    entry.addr = metaAddr;
    entry.loc = map_.decode(metaAddr);
    entry.enqueueTick = curTick();
    entry.readyTick = entry.enqueueTick;
    entry.isMetadataWrite = true;
    metaWrites_.push_back(std::move(entry));
    requestSchedule();
}

WriteEntry *
MemoryController::findWrite(std::uint64_t id)
{
    for (auto &entry : writeQueue_) {
        if (entry.id == id)
            return &entry;
    }
    return nullptr;
}

void
MemoryController::requestSchedule()
{
    if (schedulePending_)
        return;
    schedulePending_ = true;
    events_->schedule(curTick(), [this]() {
        schedulePending_ = false;
        runSchedule();
    });
}

void
MemoryController::updateMode()
{
    std::size_t high = static_cast<std::size_t>(
        cfg_.drainHighWatermark * cfg_.writeQueueEntries);
    std::size_t low = static_cast<std::size_t>(
        cfg_.drainLowWatermark * cfg_.writeQueueEntries);
    if (!drainMode_) {
        bool forced = writeQueue_.size() >= high;
        bool opportunistic = readQueue_.empty() &&
                             (!writeQueue_.empty() ||
                              !metaWrites_.empty());
        if (forced || opportunistic) {
            drainMode_ = true;
            ++drainEntries;
        }
    } else {
        bool drained = writeQueue_.size() <= low && metaWrites_.empty();
        bool readsWaiting = !readQueue_.empty();
        if (drained && readsWaiting)
            drainMode_ = false;
        else if (writeQueue_.empty() && metaWrites_.empty())
            drainMode_ = false;
    }
}

void
MemoryController::runSchedule()
{
    updateMode();
    while (true) {
        // Command-issue rate limiting (one command per tBURST).
        if (lastIssueTick_ != 0 &&
            events_->now() < lastIssueTick_ + tBurst_) {
            Tick when = lastIssueTick_ + tBurst_;
            events_->schedule(when, [this]() { requestSchedule(); });
            return;
        }
        bool progress = false;
        if (drainMode_) {
            progress = issueOneWrite();
            if (!progress)
                progress = issueOneInternal();
            // Don't idle the channel while queued writes wait on
            // their metadata/SMB reads: let demand reads through.
            if (!progress)
                progress = issueOneRead(readQueue_);
        } else {
            progress = issueOneRead(readQueue_);
            if (!progress)
                progress = issueOneInternal();
        }
        if (!progress)
            break;
        updateMode();
    }
}

bool
MemoryController::issueOneRead(std::deque<ReadEntry> &queue)
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        ReadEntry &entry = queue[i];
        unsigned bank = bankIndex(entry.loc);
        if (bankBusyUntil_[bank] > events_->now())
            continue;
        ReadEntry taken = std::move(entry);
        queue.erase(queue.begin() + static_cast<long>(i));
        Tick busy = events_->now() + tRcd_ + tCl_;
        bankBusyUntil_[bank] = busy;
        lastIssueTick_ = events_->now();
        Tick respond = busy + tBurst_;
        readEnergyPj += cfg_.readEnergyPj;
        bool wasFull = queue.size() + 1 >= cfg_.readQueueEntries;
        events_->schedule(respond,
                         [this, e = std::move(taken), respond]() mutable {
                             completeRead(std::move(e), respond);
                         });
        if (&queue == &readQueue_ && wasFull)
            notifyRetry();
        return true;
    }
    return false;
}

bool
MemoryController::issueOneInternal()
{
    return issueOneRead(internalReads_);
}

void
MemoryController::completeRead(ReadEntry entry, Tick when)
{
    switch (entry.kind) {
      case ReadKind::Data: {
        LineData logical = readLogical(entry.addr);
        double latencyNs = ticksToNs(when - entry.enqueueTick);
        readLatencyNs.sample(latencyNs);
        readLatencyHistNs.sample(latencyNs);
        if (metrics::enabled()) {
            metrics::add(mReads_);
            metrics::set(mRqDepth_, readQueue_.size());
            metrics::set(mSimTick_, events_->now());
        }
        if (traceSink_) {
            CtrlTraceRecord r;
            r.tick = when;
            r.kind = CtrlTraceRecord::Kind::Read;
            r.channel = static_cast<std::uint8_t>(channel_);
            r.wordline = static_cast<std::uint16_t>(entry.loc.wordline);
            r.bitline =
                static_cast<std::uint16_t>(entry.loc.worstBitline());
            r.latencyNs = static_cast<float>(latencyNs);
            r.queueDepth =
                static_cast<std::uint32_t>(readQueue_.size());
            traceSink_->record(r);
        }
        // Completion callbacks climb back into the cores (frontend
        // domain). Engine mode parks them in the outbox for the
        // barrier to deliver; the payload keeps the true completion
        // tick even though delivery lands at the window boundary.
        if (outbox_) {
            outbox_->deliveries.push_back(
                {when,
                 [cbs = std::move(entry.callbacks), logical, when]() {
                     for (auto &cb : cbs)
                         cb(logical, when);
                 }});
        } else {
            for (auto &cb : entry.callbacks)
                cb(logical, when);
        }
        break;
      }
      case ReadKind::Metadata: {
        auto it = std::find_if(pendingFills_.begin(),
                               pendingFills_.end(),
                               [&](const PendingMetaFill &f) {
                                   return f.metaAddr == entry.addr &&
                                          f.issued;
                               });
        if (it == pendingFills_.end())
            break; // stale fill (shouldn't happen)
        Addr victim = invalidAddr;
        unsigned sharers =
            static_cast<unsigned>(it->waitingWrites.size());
        if (!metaCache_.insert(entry.addr, sharers, victim)) {
            // All ways got pinned while the fill was in flight; retry
            // through the spill path.
            it->issued = false;
            spillBuffer_.push_back(entry.addr);
            ++spillInsertions;
            break;
        }
        if (victim != invalidAddr)
            enqueueMetadataWrite(victim);
        for (std::uint64_t id : it->waitingWrites) {
            if (WriteEntry *w = findWrite(id)) {
                ladder_assert(w->metaPending > 0,
                              "metadata fill underflow");
                --w->metaPending;
                if (cfg_.attribution && w->ready())
                    w->readyTick = events_->now();
            }
        }
        pendingFills_.erase(it);
        break;
      }
      case ReadKind::StaleBlock: {
        if (WriteEntry *w = findWrite(entry.writeId)) {
            w->smbData = store_.read(entry.addr);
            w->smbReady = true;
            if (cfg_.attribution && w->ready())
                w->readyTick = events_->now();
        }
        break;
      }
    }
    requestSchedule();
}

const TimingEntry &
MemoryController::ladderTiming(unsigned wordline, unsigned bitline,
                               unsigned lrsCount) const
{
    if (cfg_.latencySurface && timing_.ladderSurface) {
        PROF_COUNTER("surface_lookups", 1.0);
        return timing_.ladderSurface->lookup(wordline, bitline,
                                             lrsCount);
    }
    return timing_.ladder.lookup(wordline, bitline, lrsCount);
}

const TimingEntry &
MemoryController::blpTiming(unsigned wordline, unsigned bitline,
                            unsigned lrsCount) const
{
    if (cfg_.latencySurface && timing_.blpSurface) {
        PROF_COUNTER("surface_lookups", 1.0);
        return timing_.blpSurface->lookup(wordline, bitline, lrsCount);
    }
    return timing_.blp.lookup(wordline, bitline, lrsCount);
}

const TimingEntry &
MemoryController::locationTiming(unsigned wordline,
                                 unsigned bitline) const
{
    if (cfg_.latencySurface && timing_.locationSurface) {
        PROF_COUNTER("surface_lookups", 1.0);
        return timing_.locationSurface->lookup(wordline, bitline, 0);
    }
    return timing_.location.lookup(wordline, bitline, 0);
}

double
MemoryController::metadataWriteLatencyNs(const BlockLocation &loc,
                                         double &powerMw) const
{
    // Metadata blocks have no LRS counters of their own: downgrade to
    // the location-only (content worst-cased) model (paper §3.3).
    const TimingEntry &entry =
        locationTiming(loc.wordline, loc.worstBitline());
    powerMw = entry.powerMw;
    return entry.latencyNs;
}

WriteAttribution
MemoryController::attributeDispatch(const WriteEntry &entry,
                                    const WriteDecision &decision,
                                    Tick prevBankBusy)
{
    const auto sgn = [](Tick t) {
        return static_cast<std::int64_t>(t);
    };
    const Tick now = events_->now();
    const WriteBlameHint hint =
        scheme_->attributeWrite(*this, entry, decision);

    // Wait-side components: enqueue -> ready (dependency stalls),
    // ready -> dispatch split into bank-busy time and residual
    // queueing. prevBankBusy <= now at dispatch (the bank was free),
    // so the clamp only guards readiness after the bank went idle.
    const std::int64_t dep =
        sgn(entry.readyTick) - sgn(entry.enqueueTick);
    const std::int64_t wait = sgn(now) - sgn(entry.readyTick);
    const std::int64_t bank = std::clamp<std::int64_t>(
        sgn(prevBankBusy) - sgn(entry.readyTick), 0, wait);

    // Latency-side components: telescope the decided tWR through the
    // scheme's blame anchors so the four parts sum to nsToTicks(tWR)
    // exactly regardless of rounding.
    const std::int64_t twr = sgn(nsToTicks(decision.latencyNs));
    const std::int64_t base = sgn(nsToTicks(hint.baseNs));
    const std::int64_t loc = sgn(nsToTicks(hint.locationNs));
    const std::int64_t con = sgn(nsToTicks(hint.contentNs));

    WriteAttribution a;
    a.depTicks = static_cast<std::int32_t>(dep);
    a.queueTicks = static_cast<std::int32_t>(wait - bank);
    a.bankTicks = static_cast<std::int32_t>(bank);
    a.rcdTicks = static_cast<std::int32_t>(tRcd_);
    a.baseTicks = static_cast<std::int32_t>(base);
    a.locationTicks = static_cast<std::int32_t>(loc - base);
    a.contentTicks = static_cast<std::int32_t>(con - loc);
    a.schemeTicks = static_cast<std::int32_t>(twr - con);

    // The decomposition is exact by construction: everything
    // telescopes to completion - enqueue. Guards against a scheme
    // handing back anchors on a different timing scale.
    const Tick busy = now + tRcd_ + nsToTicks(decision.latencyNs);
    ladder_assert(
        static_cast<std::int64_t>(a.depTicks) + a.queueTicks +
                a.bankTicks + a.rcdTicks + a.baseTicks +
                a.locationTicks + a.contentTicks + a.schemeTicks ==
            sgn(busy) - sgn(entry.enqueueTick),
        "blame components do not sum to the observed write latency "
        "(scheme %s)",
        scheme_->name().c_str());

    const std::int32_t components[blameComponentCount] = {
        a.depTicks,  a.queueTicks,    a.bankTicks,   a.rcdTicks,
        a.baseTicks, a.locationTicks, a.contentTicks, a.schemeTicks};
    for (unsigned i = 0; i < blameComponentCount; ++i) {
        // Not ticksToNs: components are signed and must not wrap
        // through the unsigned Tick conversion.
        const double ns = static_cast<double>(components[i]) / 1000.0;
        blameAvgNs[i].sample(ns);
        blameHistNs[i].sample(ns);
    }
    if (metrics::enabled()) {
        for (unsigned i = 0; i < blameComponentCount; ++i) {
            if (components[i] > 0)
                metrics::add(mBlame_[i],
                             static_cast<std::uint64_t>(
                                 components[i]));
        }
    }
    return a;
}

bool
MemoryController::issueOneWrite()
{
    // Metadata writebacks first: they unblock metadata cache fills.
    for (std::size_t i = 0; i < metaWrites_.size(); ++i) {
        WriteEntry &entry = metaWrites_[i];
        unsigned bank = bankIndex(entry.loc);
        if (bankBusyUntil_[bank] > events_->now())
            continue;
        WriteEntry taken = std::move(entry);
        metaWrites_.erase(metaWrites_.begin() + static_cast<long>(i));
        double powerMw = 0.0;
        double latencyNs = metadataWriteLatencyNs(taken.loc, powerMw);
        Tick busy = events_->now() + tRcd_ + nsToTicks(latencyNs);
        bankBusyUntil_[bank] = busy;
        lastIssueTick_ = events_->now();
        events_->schedule(
            busy, [this, e = std::move(taken), latencyNs, powerMw,
                   busy]() mutable {
                completeWrite(std::move(e), latencyNs, powerMw, busy);
            });
        return true;
    }

    // Data writes: oldest fully-ready entry with a free bank.
    for (std::size_t i = 0; i < writeQueue_.size(); ++i) {
        WriteEntry &entry = writeQueue_[i];
        if (!entry.ready())
            continue;
        unsigned bank = bankIndex(entry.loc);
        if (bankBusyUntil_[bank] > events_->now())
            continue;
        // Same-address ordering: a write must not overtake an older
        // pending read of the same block.
        bool hazard = false;
        for (const ReadEntry &read : readQueue_) {
            if (read.addr == entry.addr && read.id < entry.id) {
                hazard = true;
                break;
            }
        }
        if (hazard)
            continue;

        WriteEntry taken = std::move(entry);
        writeQueue_.erase(writeQueue_.begin() + static_cast<long>(i));

        // Flip-N-Write against the currently stored bits.
        FnwMode mode = cfg_.fnwMode;
        if (mode != FnwMode::Off && scheme_->constrainedFnw())
            mode = FnwMode::Constrained;
        const LineData &stored = store_.read(taken.addr);
        FnwDecision fnw = fnwDecide(stored, taken.physData, mode);
        if (fnw.flip)
            ++fnwFlips;
        if (fnw.flipCancelled)
            ++fnwCancelled;

        // One ground-truth content scan per dispatch, shared by the
        // scheme decision, power accounting, and the trace record
        // (the store cannot change before completeWrite persists).
        taken.dispatchCw = store_.maxMatLrsCount(taken.loc.pageIndex);
        taken.dispatchCbl = store_.maxSelectedBitlineLrs(taken.addr);

        WriteDecision decision =
            scheme_->decideWrite(*this, taken, fnw.data);
        // Energy uses the scheme-independent content-true power model
        // so Fig. 17 comparisons are fair across schemes.
        if (!timing_.power.empty()) {
            decision.powerMw =
                timing_.power.lookup(taken.loc.wordline,
                                     taken.loc.worstBitline(),
                                     taken.dispatchCw,
                                     taken.dispatchCbl) *
                decision.powerScale;
        }

        WriteAttribution attr{};
        if (cfg_.attribution)
            attr = attributeDispatch(taken, decision,
                                     bankBusyUntil_[bank]);

        if (traceSink_) {
            CtrlTraceRecord r;
            r.tick = events_->now();
            r.kind = CtrlTraceRecord::Kind::Write;
            r.channel = static_cast<std::uint8_t>(channel_);
            r.wordline = static_cast<std::uint16_t>(taken.loc.wordline);
            r.bitline =
                static_cast<std::uint16_t>(taken.loc.worstBitline());
            r.lrsCount = static_cast<std::uint16_t>(taken.dispatchCw);
            r.latencyNs = static_cast<float>(decision.latencyNs);
            r.queueDepth =
                static_cast<std::uint32_t>(writeQueue_.size());
            r.attr = attr;
            traceSink_->record(r);
        }

        Tick busy = events_->now() + tRcd_ + nsToTicks(decision.latencyNs);
        if (metrics::enabled()) {
            metrics::add(mWrites_);
            metrics::add(mSchemeWrites_);
            metrics::add(mResetTicks_,
                         static_cast<std::uint64_t>(
                             nsToTicks(decision.latencyNs)));
            metrics::set(mWqDepth_, writeQueue_.size());
            metrics::set(mSimTick_, events_->now());
        }
        bankBusyUntil_[bank] = busy;
        lastIssueTick_ = events_->now();
        writeQueueTimeNs.sample(
            ticksToNs(events_->now() - taken.enqueueTick));
        inFlightWrites_[taken.addr] = taken.data;
        bool wasFull =
            writeQueue_.size() + 1 >= cfg_.writeQueueEntries;
        taken.schemeScratch = fnw.flip ? 1u : 0u;
        taken.physData = fnw.data;
        events_->schedule(
            busy, [this, e = std::move(taken),
                   latencyNs = decision.latencyNs,
                   powerMw = decision.powerMw, busy]() mutable {
                completeWrite(std::move(e), latencyNs, powerMw, busy);
            });
        if (wasFull)
            notifyRetry();
        return true;
    }
    return false;
}

void
MemoryController::completeWrite(WriteEntry entry, double latencyNs,
                                double powerMw, Tick when)
{
    (void)when;
    double energyPj = powerMw * latencyNs;
    if (entry.isMetadataWrite) {
        ++metadataWrites;
        metaWriteEnergyPj += energyPj;
        writeEnergyPj += energyPj;
        ++pageWrites_[entry.addr / MemoryGeometry::pageBytes];
    } else {
        store_.setFlipped(entry.addr, entry.schemeScratch != 0);
        BitTransitions t = store_.write(entry.addr, entry.physData);
        cellResets += t.resets;
        cellSets += t.sets;
        energyPj += (t.resets + t.sets) * cfg_.transitionEnergyPj;
        ++dataWrites;
        dataWriteEnergyPj += energyPj;
        writeEnergyPj += energyPj;
        writeServiceNs.sample(cfg_.tRcdNs + latencyNs);
        writeServiceHistNs.sample(cfg_.tRcdNs + latencyNs);
        writeLatencyOnlyNs.sample(latencyNs);
        ++pageWrites_[entry.addr / MemoryGeometry::pageBytes];
        inFlightWrites_.erase(entry.addr);

        scheme_->onWriteComplete(*this, entry);
        for (Addr metaAddr : entry.metaAddrs) {
            if (metaCache_.contains(metaAddr))
                metaCache_.releaseSharer(metaAddr);
        }
        retrySpills();

        if (remapper_ && !entry.isRemapCopy) {
            remapper_->noteDataWrite(entry.addr);
            for (const RemapMove &move : remapper_->collectMoves()) {
                // Copy the line: logical content out of the old slot,
                // rewritten (re-encoded) into the new physical slot.
                LineData logical = readLogical(move.from);
                injectPhysicalWrite(move.to, logical);
            }
        }
    }
    requestSchedule();
}

void
MemoryController::injectPhysicalWrite(Addr physTo, const LineData &data)
{
    BlockLocation loc = map_.decode(physTo);
    WriteEntry entry;
    entry.id = nextId_++;
    entry.addr = physTo;
    entry.data = data;
    entry.loc = loc;
    entry.enqueueTick = curTick();
    entry.readyTick = entry.enqueueTick;
    entry.isRemapCopy = true;
    scheme_->onWriteEnqueued(*this, entry);
    entry.physData = scheme_->encodeData(physTo, data);
    if (entry.needsSmb) {
        entry.smbReady = false;
        ReadEntry smb;
        smb.id = nextId_++;
        smb.addr = physTo;
        smb.kind = ReadKind::StaleBlock;
        smb.enqueueTick = curTick();
        smb.loc = loc;
        smb.writeId = entry.id;
        internalReads_.push_back(std::move(smb));
        ++smbReads;
    }
    handleMetadataNeeds(entry);
    writeQueue_.push_back(std::move(entry));
    requestSchedule();
}

} // namespace ladder
