/**
 * @file
 * The per-channel ReRAM memory controller (paper Fig. 5/6, Table 2).
 *
 * Responsibilities:
 *  - 32-entry read queue and 64-entry write queue with write-drain
 *    mode switching at the 85% high-water mark;
 *  - bank timing (tRCD/tCL/tBURST, variable tWR from the active
 *    write scheme);
 *  - internal reads on behalf of schemes: LRS-metadata line fills and
 *    stale-memory-block (SMB) reads, which contend with demand reads
 *    for banks but are tracked separately;
 *  - the LRS-metadata cache with sharer pinning and the spill buffer;
 *  - Flip-N-Write at dispatch;
 *  - energy and service-time accounting for every operation class.
 */

#ifndef LADDER_CTRL_CONTROLLER_HH
#define LADDER_CTRL_CONTROLLER_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "ctrl/fnw.hh"
#include "ctrl/metadata_cache.hh"
#include "ctrl/scheme.hh"
#include "ctrl/trace_sink.hh"
#include "mem/backing_store.hh"
#include "mem/request.hh"
#include "reram/timing_tables.hh"

namespace ladder
{

/** A line copy a wear-leveling step requires (physical addresses). */
struct RemapMove
{
    Addr from = invalidAddr;
    Addr to = invalidAddr;
};

/** Remaps line addresses ahead of decode (wear-leveling hook). */
class AddressRemapper
{
  public:
    virtual ~AddressRemapper() = default;
    /** Physical line address after remapping. */
    virtual Addr remap(Addr lineAddr) = 0;
    /** Observe a serviced data write (drives remap epochs). */
    virtual void noteDataWrite(Addr physLineAddr) { (void)physLineAddr; }
    /** Line copies the controller must perform for pending remaps. */
    virtual std::vector<RemapMove> collectMoves() { return {}; }
};

/** Controller configuration (paper Table 2 defaults). */
struct ControllerConfig
{
    unsigned readQueueEntries = 32;
    unsigned writeQueueEntries = 64;
    double drainHighWatermark = 0.85;
    double drainLowWatermark = 0.5;
    double tRcdNs = 13.75;
    double tClNs = 13.75;
    double tBurstNs = 5.0;
    /**
     * Concurrent accesses per bank to distinct mat-group subarrays
     * (the paper's banks hold 4 x 64-mat groups sharing peripheral
     * logic; accesses to different groups overlap).
     */
    unsigned subarraysPerBank = 4;
    std::size_t metadataCacheBytes = 64 * 1024;
    unsigned metadataCacheWays = 4;
    unsigned spillBufferEntries = 16;
    FnwMode fnwMode = FnwMode::Classical;
    double readEnergyPj = 250.0;   //!< per demand/metadata/SMB read
    double transitionEnergyPj = 1.0; //!< per cell switched
    /**
     * Resolve per-write timings through the dense precomputed latency
     * surfaces (O(1): two index loads + one entry load) instead of the
     * bucketed table lookups. Bit-identical results either way — the
     * surfaces are dense copies of the tables — so this is purely a
     * host-performance switch (`latency.surface=` in experiments).
     */
    bool latencySurface = true;
    /**
     * Channel-engine workers: 0 runs the legacy single global event
     * queue; N >= 1 gives every channel its own event queue driven by
     * the windowed barrier protocol (byte-identical results for every
     * N >= 1 — the worker count only changes wall-clock time).
     */
    unsigned channelThreads = 0;
    /**
     * Barrier horizon for the channel engine, in ns (0 = auto: tRCD +
     * tCL). Larger windows amortize barrier cost; the horizon
     * quantizes cross-channel delivery ticks, so it is a simulation
     * parameter — results are invariant in channelThreads at a fixed
     * lookahead, not across lookaheads.
     */
    double lookaheadNs = 0.0;
    /**
     * Per-write causal latency attribution: decompose every data
     * write's end-to-end latency into blame components (dependency /
     * queue / bank / tRCD / base / location / content / scheme) that
     * sum exactly to completion - enqueue in ticks. Off by default —
     * the dispatch hot path then does no attribution work at all and
     * every export stays byte-identical to pre-attribution builds.
     * Components feed the trace sink (v3 records), the blame stat
     * group, and the live blame-rate metrics.
     */
    bool attribution = false;
};

/** Number of blame components in the attribution decomposition. */
inline constexpr unsigned blameComponentCount = 8;

/** Canonical component names, in WriteAttribution field order. */
const char *const *blameComponentNames();

/**
 * Deferred cross-domain effects a channel accumulates while running a
 * window: read-completion callbacks into the cores (frontend domain)
 * and retry notifications. The System drains outboxes at each barrier
 * in ascending channel order, preserving the original completion
 * ticks in the payloads while scheduling the callbacks at the window
 * boundary on the frontend queue.
 */
struct ChannelOutbox
{
    struct Delivery
    {
        Tick when; //!< original completion tick (callback payload)
        std::function<void()> fn;
    };
    std::vector<Delivery> deliveries;
    bool retryPending = false;
};

/** Per-channel memory controller. */
class MemoryController
{
  public:
    MemoryController(EventQueue &events, const ControllerConfig &cfg,
                     const MemoryGeometry &geo, unsigned channel,
                     BackingStore &store, const TimingModel &timing,
                     std::shared_ptr<WriteScheme> scheme);

    // ------------------------------------------------------------------
    // Processor-side interface
    // ------------------------------------------------------------------

    bool canAcceptRead() const;
    bool canAcceptWrite() const;

    /**
     * Enqueue a demand read.
     * @pre canAcceptRead()
     */
    void enqueueRead(Addr lineAddr, ReadCallback callback);

    /**
     * Enqueue a (posted) data write.
     * @pre canAcceptWrite()
     */
    void enqueueWrite(Addr lineAddr, const LineData &data);

    /** Notified whenever queue space frees up. */
    void addRetryListener(std::function<void()> listener);

    /**
     * Timing-free (functional) accesses used for cache warmup: they
     * move real data through encode/FNW/store exactly like timed
     * operations but produce no events, queue activity, or stats.
     */
    LineData functionalRead(Addr lineAddr);
    void functionalWrite(Addr lineAddr, const LineData &data);

    // ------------------------------------------------------------------
    // Scheme-facing interface
    // ------------------------------------------------------------------

    BackingStore &store() { return store_; }
    const TimingModel &timing() const { return timing_; }

    /** Whether timing lookups resolve through the dense surfaces. */
    bool surfaceEnabled() const { return cfg_.latencySurface; }

    /**
     * Timing lookups for schemes: the ⟨WL, BL, LRS⟩ -> entry
     * resolution, through the dense surface when enabled and the
     * bucketed table otherwise (identical results by construction).
     * Schemes should call these instead of touching timing().ladder
     * and friends so every dispatch honours the surface switch.
     */
    const TimingEntry &ladderTiming(unsigned wordline,
                                    unsigned bitline,
                                    unsigned lrsCount) const;
    const TimingEntry &blpTiming(unsigned wordline, unsigned bitline,
                                 unsigned lrsCount) const;
    const TimingEntry &locationTiming(unsigned wordline,
                                      unsigned bitline) const;
    MetadataCache &metadataCache() { return metaCache_; }
    const MemoryGeometry &geometry() const { return geo_; }
    const AddressMap &addressMap() const { return map_; }
    EventQueue &events() { return *events_; }

    /** Install a wear-leveling remapper (nullptr = identity). */
    void setRemapper(AddressRemapper *remapper) { remapper_ = remapper; }

    // ------------------------------------------------------------------
    // Channel-engine wiring (all nullptr/shared in legacy mode)
    // ------------------------------------------------------------------

    /** Point the controller at a different event queue (its own
     *  per-channel queue when the engine is on, or back to the shared
     *  queue when it is torn down). Only legal while no controller
     *  events are scheduled. */
    void rebindEventQueue(EventQueue &events) { events_ = &events; }

    /** Frontend clock override: while set, curTick() reads this clock
     *  instead of the controller's own queue. The System sets it for
     *  the serial frontend phase of every window so processor-side
     *  entry points timestamp against frontend time. */
    void setFrontendClock(const Tick *clock) { frontendClock_ = clock; }

    /** Frontend event queue for forwarding-path read completions
     *  (write-queue hits complete without touching the channel's
     *  array, so their callbacks belong to the frontend domain). */
    void setFrontendQueue(EventQueue *queue) { frontendQueue_ = queue; }

    /** Outbox for deferred cross-domain effects (nullptr = deliver
     *  inline, the legacy behaviour). */
    void setOutbox(ChannelOutbox *outbox) { outbox_ = outbox; }

    /** Fire the retry listeners now (barrier-phase delivery of a
     *  deferred notifyRetry). */
    void deliverRetries();

    /**
     * Install a cycle-level event trace sink (nullptr = off). The
     * sink must outlive the controller's simulation; it receives one
     * record per data-write dispatch and per demand-read completion.
     */
    void setTraceSink(WriteTraceSink *sink) { traceSink_ = sink; }

    /**
     * Enqueue a metadata writeback (bypasses the data write queue cap
     * via an overflow list so fills can always evict).
     */
    void enqueueMetadataWrite(Addr metaAddr);

    /**
     * Inject extra write traffic that bypasses queue admission (used
     * by wear-leveling segment swaps). Accounted as data writes.
     */
    void injectWrite(Addr lineAddr, const LineData &data);

    /**
     * Inject a write to an already-physical address (no remapping);
     * used for wear-leveling line copies.
     */
    void injectPhysicalWrite(Addr physTo, const LineData &data);

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    StatScalar dataReads, metadataReads, smbReads;
    StatScalar dataWrites, metadataWrites;
    StatScalar fnwFlips, fnwCancelled;
    StatScalar drainEntries;
    StatScalar spillInsertions;
    StatAverage readLatencyNs;     //!< demand reads: queue + service
    StatAverage writeServiceNs;    //!< data writes: tRCD + tWR
    StatAverage writeLatencyOnlyNs; //!< data writes: tWR only
    StatAverage writeQueueTimeNs;
    /** Distribution of demand-read queue+service latency (ns). */
    StatHistogram readLatencyHistNs;
    /** Distribution of data-write service (tRCD + tWR) latency (ns). */
    StatHistogram writeServiceHistNs;
    /**
     * Per-component blame decomposition of data-write latency (ns),
     * indexed by blameComponentNames() order. Registered into the
     * stat group only when cfg.attribution is on, so attribution-off
     * stats.json stays byte-identical.
     */
    StatAverage blameAvgNs[blameComponentCount];
    StatHistogram blameHistNs[blameComponentCount];
    StatScalar readEnergyPj, writeEnergyPj;
    StatScalar dataWriteEnergyPj, metaWriteEnergyPj;
    StatScalar cellResets, cellSets;

    /** Register all stats into @p group. */
    void regStats(StatGroup &group);

    /** Per-page write counts (lifetime analysis). */
    const std::unordered_map<std::uint64_t, std::uint32_t> &
    pageWriteCounts() const
    {
        return pageWrites_;
    }

    /** Demand reads currently outstanding (for drain decisions). */
    std::size_t pendingReads() const { return readQueue_.size(); }
    std::size_t pendingWrites() const { return writeQueue_.size(); }

    const WriteScheme &scheme() const { return *scheme_; }

  private:
    struct ReadEntry
    {
        std::uint64_t id;
        Addr addr;
        ReadKind kind;
        Tick enqueueTick;
        BlockLocation loc;
        std::vector<ReadCallback> callbacks; //!< demand reads
        std::uint64_t writeId = 0;           //!< SMB: dependent write
    };

    struct PendingMetaFill
    {
        Addr metaAddr;
        std::vector<std::uint64_t> waitingWrites;
        bool issued = false;
    };

    EventQueue *events_;
    const Tick *frontendClock_ = nullptr;
    EventQueue *frontendQueue_ = nullptr;
    ChannelOutbox *outbox_ = nullptr;
    ControllerConfig cfg_;
    MemoryGeometry geo_;
    AddressMap map_;
    unsigned channel_;
    BackingStore &store_;
    const TimingModel &timing_;
    std::shared_ptr<WriteScheme> scheme_;
    MetadataCache metaCache_;
    AddressRemapper *remapper_ = nullptr;
    WriteTraceSink *traceSink_ = nullptr;

    std::deque<ReadEntry> readQueue_;      //!< demand reads
    std::deque<ReadEntry> internalReads_;  //!< metadata + SMB reads
    std::deque<WriteEntry> writeQueue_;    //!< data writes
    std::deque<WriteEntry> metaWrites_;    //!< metadata writebacks
    std::deque<Addr> spillBuffer_;         //!< blocked metadata fills
    std::vector<PendingMetaFill> pendingFills_;

    std::vector<Tick> bankBusyUntil_; //!< per (rank, bank) in channel
    Tick lastIssueTick_ = 0;
    bool drainMode_ = false;
    bool schedulePending_ = false;
    std::uint64_t nextId_ = 1;
    std::vector<std::function<void()>> retryListeners_;
    std::unordered_map<std::uint64_t, std::uint32_t> pageWrites_;
    std::unordered_map<Addr, LineData> inFlightWrites_;

    /** Live-telemetry handles (common/metrics), registered in the
     *  constructor; every use is gated on metrics::enabled(). */
    std::uint32_t mWrites_, mReads_, mWqDepth_, mRqDepth_;
    std::uint32_t mResetTicks_, mSchemeWrites_, mSimTick_;
    /** Blame tick counters (registered only with cfg.attribution). */
    std::uint32_t mBlame_[blameComponentCount] = {};

    Tick tRcd_, tCl_, tBurst_;

    /** Current time for timestamping: the frontend clock while a
     *  frontend-phase call is executing, the controller's own queue
     *  otherwise. Identical to events_->now() in legacy mode. */
    Tick
    curTick() const
    {
        return frontendClock_ ? *frontendClock_ : events_->now();
    }

    Addr physAddr(Addr lineAddr);
    unsigned bankIndex(const BlockLocation &loc) const;
    void requestSchedule();
    void runSchedule();
    void updateMode();
    bool issueOneRead(std::deque<ReadEntry> &queue);
    bool issueOneWrite();
    bool issueOneInternal();
    WriteEntry *findWrite(std::uint64_t id);
    void completeRead(ReadEntry entry, Tick when);
    void completeWrite(WriteEntry entry, double latencyNs,
                       double powerMw, Tick when);
    /**
     * Causal blame decomposition of one data-write dispatch (only
     * called with cfg.attribution on). @p prevBankBusy is the bank's
     * busy-until tick before this dispatch claims it. Samples the
     * blame stats and metrics as a side effect and asserts the exact
     * component-sum invariant.
     */
    WriteAttribution attributeDispatch(const WriteEntry &entry,
                                       const WriteDecision &decision,
                                       Tick prevBankBusy);
    void handleMetadataNeeds(WriteEntry &entry);
    void issueMetaFill(PendingMetaFill &fill);
    void retrySpills();
    void notifyRetry();
    LineData readLogical(Addr physLineAddr);
    double metadataWriteLatencyNs(const BlockLocation &loc,
                                  double &powerMw) const;
};

} // namespace ladder

#endif // LADDER_CTRL_CONTROLLER_HH
