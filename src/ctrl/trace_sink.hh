/**
 * @file
 * Cycle-level event trace sink for the memory controller. Each data
 * write dispatch and each completed demand read appends one fixed
 * record. Two operating modes:
 *
 *  - Buffered (default): records accumulate in memory and are
 *    serialized once at the end of a run — CSV (self-describing,
 *    plottable), the legacy v1 packed binary, or the v2 chunked
 *    binary.
 *  - Streaming: constructed with an output path, the sink appends
 *    records into fixed-size chunks that are handed to a background
 *    writer thread over a bounded queue with backpressure, so peak
 *    trace memory is O(chunk size) however long the run is. Streaming
 *    emits CSV or the v2 chunked binary and produces bytes identical
 *    to the buffered serialization of the same record sequence.
 *
 * Records are appended from the (single-threaded) event loop of one
 * System, in event order, so a trace is deterministic for a given run
 * regardless of sweep parallelism — each run owns its own sink.
 *
 * v2 chunked wire format (all integers little-endian; full field
 * tables in EXPERIMENTS.md):
 *
 *   file header   "LADDRTRC" u32 version=2, u32 chunkCapacity
 *   chunk*        "CHNK" u32 recordCount, u32 payloadCrc32,
 *                 recordCount x 24-byte records
 *   footer        "FTER" u32 chunkCount, u64 totalRecords,
 *                 chunkCount x { u64 offset, u32 count, u32 crc32 },
 *                 u32 footerCrc32
 *   trailer       u64 footerOffset, "LADDREND"
 *
 * Every chunk except the last holds exactly chunkCapacity records;
 * chunk payloads and the footer are CRC-32 protected, and the trailer
 * lets readers seek straight to the index.
 */

#ifndef LADDER_CTRL_TRACE_SINK_HH
#define LADDER_CTRL_TRACE_SINK_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ladder
{

/**
 * Causal blame decomposition of one write's end-to-end latency,
 * carried per record when attribution is on (v3 binary / attribution
 * CSV). Every field is a signed tick (picosecond) count; the
 * controller guarantees the eight components sum exactly to
 * completionTick - enqueueTick of the write. Reads carry all zeros.
 */
struct WriteAttribution
{
    std::int32_t depTicks = 0;      //!< retry/spill/dependency stall
    std::int32_t queueTicks = 0;    //!< ready but queued, bank free
    std::int32_t bankTicks = 0;     //!< ready but bank busy
    std::int32_t rcdTicks = 0;      //!< activation (tRCD)
    std::int32_t baseTicks = 0;     //!< scheme best-case tWR floor
    std::int32_t locationTicks = 0; //!< WL/BL region penalty
    std::int32_t contentTicks = 0;  //!< LRS-count penalty
    std::int32_t schemeTicks = 0;   //!< scheme mechanics (phases etc.)
};

/** One traced controller event (fixed 24-byte wire format). */
struct CtrlTraceRecord
{
    enum class Kind : std::uint8_t { Write = 0, Read = 1 };

    std::uint64_t tick = 0;      //!< dispatch (write) / completion (read)
    Kind kind = Kind::Write;
    std::uint8_t channel = 0;
    std::uint16_t wordline = 0;  //!< selected row within the mats
    std::uint16_t bitline = 0;   //!< worst (farthest) selected bitline
    std::uint16_t lrsCount = 0;  //!< wordline LRS ('1') count (writes)
    float latencyNs = 0.0f;      //!< chosen tWR (write) / total (read)
    std::uint32_t queueDepth = 0; //!< same-class queue depth at event
    WriteAttribution attr{};     //!< serialized in v3 / attr CSV only
};

/** Serialized size of one record in v1/v2 binary traces. */
inline constexpr std::size_t traceRecordBytes = 24;

/**
 * Serialized record size in the v3 (attribution) binary: the 24 base
 * bytes followed by the eight blame components as little-endian
 * signed 32-bit tick counts, in WriteAttribution declaration order.
 */
inline constexpr std::size_t traceAttrRecordBytes = 56;

/** On-disk trace encodings ("csv", "bin", "bin2" on command lines). */
enum class TraceFormat { Csv, BinaryV1, BinaryV2 };

/** Parse a trace-format= value; fatal() on an unknown name. */
TraceFormat traceFormatFromName(const std::string &name);

/** File name extension for a format ("csv" or "bin"). */
std::string traceFormatExtension(TraceFormat format);

/** Knobs for the streaming mode. */
struct TraceStreamOptions
{
    /** Records per chunk (chunk = unit of buffering and flushing). */
    std::size_t chunkRecords = 64 * 1024;
    /**
     * Bounded-queue capacity in chunks between the simulation thread
     * and the writer thread; when full, record() blocks
     * (backpressure) instead of growing the buffer.
     */
    std::size_t maxQueuedChunks = 4;
};

/** Trace buffer with buffered and streaming operation (see @file). */
class WriteTraceSink
{
  public:
    /** Buffered mode: keep everything in memory until serialized. */
    WriteTraceSink();

    /**
     * Streaming mode: open @p path (truncating) and flush chunks of
     * records to it from a background writer thread as the run
     * progresses. @p format must be Csv or BinaryV2 — the v1 binary
     * header carries the total record count up front and cannot be
     * streamed. Call finish() (or let the destructor) to flush the
     * final partial chunk and the v2 footer.
     */
    WriteTraceSink(const std::string &path, TraceFormat format,
                   const TraceStreamOptions &options = {},
                   bool attribution = false);

    ~WriteTraceSink();

    WriteTraceSink(const WriteTraceSink &) = delete;
    WriteTraceSink &operator=(const WriteTraceSink &) = delete;

    void record(const CtrlTraceRecord &r);

    /** Records accepted since construction or the last clear(). */
    std::size_t size() const { return total_; }

    /**
     * Drop everything recorded so far. In streaming mode the output
     * file is truncated and restarted, so the ramp records a run
     * discards never reach the final trace.
     */
    void clear();

    bool streaming() const { return stream_ != nullptr; }

    /**
     * Whether serializations carry the per-record blame block (CSV
     * attribution columns / binary v3). Streaming sinks fix this at
     * construction (the header is written up front); buffered sinks
     * may toggle it any time before serialization.
     */
    bool attribution() const { return attribution_; }

    /** Buffered mode only: select attribution serialization. */
    void setAttribution(bool attribution);

    /** Streaming output path (empty in buffered mode). */
    const std::string &path() const { return path_; }

    /**
     * Streaming mode: flush the final partial chunk, write the v2
     * footer, join the writer thread, and close the file. Idempotent;
     * record() must not be called afterwards. Buffered mode: no-op.
     */
    void finish();

    /**
     * High-water mark of records resident in this sink at any instant
     * (buffered mode: the full buffer; streaming mode: the fill chunk
     * plus queued and in-flight chunks). The bounded-memory guarantee
     * is `peak <= chunkRecords * (maxQueuedChunks + 2)` in streaming
     * mode, which tests assert.
     */
    std::size_t peakBufferedRecords() const
    {
        return peakBuffered_;
    }

    /** Buffered-mode record access (asserts in streaming mode). */
    const std::vector<CtrlTraceRecord> &records() const;

    /** Write `type,tick,channel,wordline,bitline,...` CSV rows. */
    void writeCsv(std::ostream &os) const;

    /**
     * Write the legacy packed v1 binary: a 16-byte header
     * ("LADDRTRC", u32 version=1, u32 record count) followed by the
     * records in the fixed little-endian layout.
     */
    void writeBinary(std::ostream &os) const;

    /**
     * Write the v2 chunked binary with @p chunkRecords records per
     * chunk — byte-identical to what a streaming sink with the same
     * chunk size would emit for the same record sequence.
     */
    void writeBinaryV2(std::ostream &os,
                       std::size_t chunkRecords) const;

  private:
    struct Stream;

    void startStream();
    void pushChunk(std::vector<CtrlTraceRecord> &&chunk);
    void stopStream(bool writeFooter);

    std::string path_;          //!< streaming only
    TraceFormat format_ = TraceFormat::Csv;
    TraceStreamOptions options_{};
    bool attribution_ = false;
    std::unique_ptr<Stream> stream_; //!< non-null in streaming mode

    std::vector<CtrlTraceRecord> records_; //!< buffer / fill chunk
    std::size_t total_ = 0;
    std::size_t peakBuffered_ = 0;
};

} // namespace ladder

#endif // LADDER_CTRL_TRACE_SINK_HH
