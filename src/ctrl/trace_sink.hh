/**
 * @file
 * Cycle-level event trace sink for the memory controller. Each data
 * write dispatch and each completed demand read appends one fixed
 * record; the buffer is written out once at the end of a run as CSV
 * (self-describing, plottable) or as packed little-endian binary
 * (compact, for long traces).
 *
 * Records are appended from the (single-threaded) event loop of one
 * System, in event order, so a trace is deterministic for a given run
 * regardless of sweep parallelism — each run owns its own sink.
 */

#ifndef LADDER_CTRL_TRACE_SINK_HH
#define LADDER_CTRL_TRACE_SINK_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/types.hh"

namespace ladder
{

/** One traced controller event (fixed 24-byte wire format). */
struct CtrlTraceRecord
{
    enum class Kind : std::uint8_t { Write = 0, Read = 1 };

    std::uint64_t tick = 0;      //!< dispatch (write) / completion (read)
    Kind kind = Kind::Write;
    std::uint8_t channel = 0;
    std::uint16_t wordline = 0;  //!< selected row within the mats
    std::uint16_t bitline = 0;   //!< worst (farthest) selected bitline
    std::uint16_t lrsCount = 0;  //!< wordline LRS ('1') count (writes)
    float latencyNs = 0.0f;      //!< chosen tWR (write) / total (read)
    std::uint32_t queueDepth = 0; //!< same-class queue depth at event
};

/** In-memory trace buffer with CSV / binary serialization. */
class WriteTraceSink
{
  public:
    void
    record(const CtrlTraceRecord &r)
    {
        records_.push_back(r);
    }

    const std::vector<CtrlTraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** Write `type,tick,channel,wordline,bitline,...` CSV rows. */
    void writeCsv(std::ostream &os) const;

    /**
     * Write the packed binary form: a 16-byte header ("LADDRTRC",
     * u32 version, u32 record count) followed by the records in the
     * fixed little-endian layout documented in EXPERIMENTS.md.
     */
    void writeBinary(std::ostream &os) const;

  private:
    std::vector<CtrlTraceRecord> records_;
};

} // namespace ladder

#endif // LADDER_CTRL_TRACE_SINK_HH
