/**
 * @file
 * Flip-N-Write (Cho & Lee, MICRO'09) and LADDER's counting-safe variant
 * (paper §3.3).
 *
 * Classical FNW writes either the data or its complement, whichever
 * changes fewer cells relative to the currently stored bits. LADDER
 * adds the constraint that the chosen variant must not contain more
 * '1's than the unflipped data, so the controller-maintained LRS
 * counters (which are upper bounds) stay sound.
 */

#ifndef LADDER_CTRL_FNW_HH
#define LADDER_CTRL_FNW_HH

#include "common/bitops.hh"

namespace ladder
{

/** Outcome of an FNW decision. */
struct FnwDecision
{
    bool flip = false;          //!< write the complement
    LineData data{};            //!< the variant actually written
    unsigned transitions = 0;   //!< bit changes vs. stored content
    unsigned resets = 0;        //!< 1 -> 0 changes (RESET operations)
    unsigned sets = 0;          //!< 0 -> 1 changes (SET operations)
    bool flipCancelled = false; //!< flip was beneficial but vetoed by
                                //!< the LADDER counting constraint
};

/** FNW policy flavour. */
enum class FnwMode
{
    Off,        //!< always write the data as-is
    Classical,  //!< minimize transitions
    Constrained //!< minimize transitions unless '1's would increase
};

/**
 * Decide what to write for @p data given the currently @p stored bits.
 *
 * @param stored Raw bits currently in the crossbar.
 * @param data Raw bits the controller wants stored (post-encoding).
 * @param mode Policy flavour.
 */
FnwDecision fnwDecide(const LineData &stored, const LineData &data,
                      FnwMode mode);

} // namespace ladder

#endif // LADDER_CTRL_FNW_HH
