#include "metadata_cache.hh"

#include "common/log.hh"

namespace ladder
{

MetadataCache::MetadataCache(std::size_t sizeBytes, unsigned ways)
    : ways_(ways)
{
    ladder_assert(ways > 0, "metadata cache needs at least one way");
    std::size_t entries = sizeBytes / lineBytes;
    ladder_assert(entries >= ways && entries % ways == 0,
                  "metadata cache size/ways mismatch");
    sets_ = static_cast<unsigned>(entries / ways);
    lines_.resize(entries);
}

unsigned
MetadataCache::setIndex(Addr metaAddr) const
{
    // XOR-folded index: metadata line numbers carry the channel and
    // bank interleaving in their low bits, so a plain modulo would
    // leave a per-controller stride pattern that uses only a fraction
    // of the sets.
    std::uint64_t line = metaAddr / lineBytes;
    line ^= line >> 8;
    line ^= line >> 16;
    return static_cast<unsigned>(line % sets_);
}

MetadataCache::Way *
MetadataCache::find(Addr metaAddr)
{
    unsigned set = setIndex(metaAddr);
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = lines_[set * ways_ + w];
        if (way.valid && way.addr == metaAddr)
            return &way;
    }
    return nullptr;
}

const MetadataCache::Way *
MetadataCache::find(Addr metaAddr) const
{
    return const_cast<MetadataCache *>(this)->find(metaAddr);
}

bool
MetadataCache::contains(Addr metaAddr) const
{
    return find(metaAddr) != nullptr;
}

MetaLookup
MetadataCache::lookupForWrite(Addr metaAddr)
{
    Way *way = find(metaAddr);
    if (way) {
        ++hits;
        ++way->sharers;
        way->lastUse = ++useCounter_;
        return MetaLookup::Hit;
    }
    ++misses;
    if (canAllocate(metaAddr))
        return MetaLookup::Miss;
    ++blockedLookups;
    return MetaLookup::Blocked;
}

bool
MetadataCache::canAllocate(Addr metaAddr) const
{
    unsigned set = setIndex(metaAddr);
    for (unsigned w = 0; w < ways_; ++w) {
        const Way &way = lines_[set * ways_ + w];
        if (!way.valid || way.sharers == 0)
            return true;
    }
    return false;
}

bool
MetadataCache::insert(Addr metaAddr, unsigned sharers,
                      Addr &evictedDirty)
{
    evictedDirty = invalidAddr;
    if (Way *existing = find(metaAddr)) {
        // Raced with another fill for the same line.
        existing->sharers += sharers;
        existing->lastUse = ++useCounter_;
        return true;
    }
    unsigned set = setIndex(metaAddr);
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &way = lines_[set * ways_ + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.sharers != 0)
            continue;
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (!victim)
        return false;
    if (victim->valid && victim->dirty) {
        evictedDirty = victim->addr;
        ++dirtyEvictions;
    }
    victim->addr = metaAddr;
    victim->valid = true;
    victim->dirty = false;
    victim->sharers = sharers;
    victim->lastUse = ++useCounter_;
    ++insertions;
    return true;
}

void
MetadataCache::markDirty(Addr metaAddr)
{
    Way *way = find(metaAddr);
    ladder_assert(way, "markDirty: line 0x%llx not resident",
                  static_cast<unsigned long long>(metaAddr));
    way->dirty = true;
    way->lastUse = ++useCounter_;
}

void
MetadataCache::addSharer(Addr metaAddr, unsigned count)
{
    Way *way = find(metaAddr);
    ladder_assert(way, "addSharer: line 0x%llx not resident",
                  static_cast<unsigned long long>(metaAddr));
    way->sharers += count;
}

void
MetadataCache::releaseSharer(Addr metaAddr)
{
    Way *way = find(metaAddr);
    ladder_assert(way, "releaseSharer: line 0x%llx not resident",
                  static_cast<unsigned long long>(metaAddr));
    ladder_assert(way->sharers > 0, "releaseSharer: underflow");
    --way->sharers;
}

std::vector<Addr>
MetadataCache::flushDirty()
{
    std::vector<Addr> dirty;
    for (auto &way : lines_) {
        if (way.valid && way.dirty)
            dirty.push_back(way.addr);
        way.valid = false;
        way.dirty = false;
        way.sharers = 0;
        way.addr = invalidAddr;
    }
    return dirty;
}

} // namespace ladder
