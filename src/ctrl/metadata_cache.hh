/**
 * @file
 * The on-chip LRS-metadata cache (paper §3.3): a small set-associative
 * cache of metadata *lines* held in the memory controller. Each tag
 * carries a Sharer count S — the number of write-queue entries whose
 * latency determination depends on that metadata line — so that lines
 * still needed by queued writes are never victimized. When every way
 * of a set is pinned by sharers, the requesting write is parked in the
 * spill buffer until a way becomes evictable.
 *
 * The cache models presence, recency, dirtiness and sharers; metadata
 * *values* are maintained by the scheme that owns them.
 */

#ifndef LADDER_CTRL_METADATA_CACHE_HH
#define LADDER_CTRL_METADATA_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ladder
{

/** Result of a metadata cache lookup. */
enum class MetaLookup
{
    Hit,      //!< line present
    Miss,     //!< line absent, a victim way is available
    Blocked,  //!< line absent and every way pinned by sharers
};

/** Set-associative sharer-aware metadata cache. */
class MetadataCache
{
  public:
    /**
     * @param sizeBytes Total capacity (64KB in the paper).
     * @param ways Associativity (4 in the paper).
     */
    MetadataCache(std::size_t sizeBytes, unsigned ways);

    /** Probe without side effects. */
    bool contains(Addr metaAddr) const;

    /**
     * Look up @p metaAddr for a new dependent write. On a hit the
     * sharer count is incremented and recency updated.
     */
    MetaLookup lookupForWrite(Addr metaAddr);

    /**
     * Insert a line after its memory fill returned.
     *
     * @param sharers Initial sharer count (waiting writes).
     * @param evictedDirty Out: address of a dirty victim that must be
     *        written back, or invalidAddr.
     * @return false when no way could be freed (caller must retry).
     */
    bool insert(Addr metaAddr, unsigned sharers, Addr &evictedDirty);

    /** Whether a set currently has an evictable (S == 0) way. */
    bool canAllocate(Addr metaAddr) const;

    /** Mark a resident line dirty (metadata updated in place). */
    void markDirty(Addr metaAddr);

    /** Add sharers to a resident line. */
    void addSharer(Addr metaAddr, unsigned count = 1);

    /** Release one sharer after the dependent write dispatched. */
    void releaseSharer(Addr metaAddr);

    /** Writes back and invalidates everything (drain/shutdown). */
    std::vector<Addr> flushDirty();

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    StatScalar hits;
    StatScalar misses;
    StatScalar insertions;
    StatScalar dirtyEvictions;
    StatScalar blockedLookups;

  private:
    struct Way
    {
        Addr addr = invalidAddr;
        bool valid = false;
        bool dirty = false;
        unsigned sharers = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned sets_;
    unsigned ways_;
    std::uint64_t useCounter_ = 0;
    std::vector<Way> lines_;

    unsigned setIndex(Addr metaAddr) const;
    Way *find(Addr metaAddr);
    const Way *find(Addr metaAddr) const;
};

} // namespace ladder

#endif // LADDER_CTRL_METADATA_CACHE_HH
