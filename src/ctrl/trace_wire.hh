/**
 * @file
 * Shared wire-format constants of the controller trace encodings,
 * used by the writer (trace_sink) and the reader (trace_reader) so
 * the two cannot drift apart. The byte layouts themselves are
 * documented in trace_sink.hh and EXPERIMENTS.md.
 */

#ifndef LADDER_CTRL_TRACE_WIRE_HH
#define LADDER_CTRL_TRACE_WIRE_HH

#include <cstddef>
#include <cstdint>

namespace ladder
{

inline constexpr char traceFileMagic[8] = {'L', 'A', 'D', 'D',
                                           'R', 'T', 'R', 'C'};
inline constexpr char traceChunkMagic[4] = {'C', 'H', 'N', 'K'};
inline constexpr char traceFooterMagic[4] = {'F', 'T', 'E', 'R'};
inline constexpr char traceEndMagic[8] = {'L', 'A', 'D', 'D',
                                          'R', 'E', 'N', 'D'};

/** CSV header row, including the trailing newline. */
inline constexpr char traceCsvHeader[] =
    "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
    "queue_depth\n";

/**
 * CSV header row of attribution-enabled traces: the base columns
 * plus the eight blame components, each in integer ticks
 * (picoseconds). Reads carry zeros in every blame column.
 */
inline constexpr char traceCsvHeaderAttr[] =
    "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
    "queue_depth,dep_ticks,queue_ticks,bank_ticks,rcd_ticks,"
    "base_ticks,location_ticks,content_ticks,scheme_ticks\n";

/** Binary version of base (24-byte record) chunked traces. */
inline constexpr std::uint32_t traceBaseVersion = 2;

/**
 * Binary version of attribution-enabled traces: identical container
 * framing (chunks, CRCs, footer index, trailer) but every record
 * carries an extra 32-byte blame block — see trace_sink.hh.
 */
inline constexpr std::uint32_t traceAttrVersion = 3;

/** v1/v2 file header size: magic + u32 version + u32 count/capacity. */
inline constexpr std::size_t traceFileHeaderBytes = 16;

/** v2 chunk header: magic + u32 record count + u32 payload CRC. */
inline constexpr std::size_t traceChunkHeaderBytes = 12;

/** v2 fixed footer prefix: magic + u32 chunk count + u64 total. */
inline constexpr std::size_t traceFooterPrefixBytes = 16;

/** v2 per-chunk index entry: u64 offset + u32 count + u32 CRC. */
inline constexpr std::size_t traceIndexEntryBytes = 16;

/** v2 trailer: u64 footer offset + end magic. */
inline constexpr std::size_t traceTrailerBytes = 16;

} // namespace ladder

#endif // LADDER_CTRL_TRACE_WIRE_HH
