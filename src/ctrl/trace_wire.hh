/**
 * @file
 * Shared wire-format constants of the controller trace encodings,
 * used by the writer (trace_sink) and the reader (trace_reader) so
 * the two cannot drift apart. The byte layouts themselves are
 * documented in trace_sink.hh and EXPERIMENTS.md.
 */

#ifndef LADDER_CTRL_TRACE_WIRE_HH
#define LADDER_CTRL_TRACE_WIRE_HH

#include <cstddef>

namespace ladder
{

inline constexpr char traceFileMagic[8] = {'L', 'A', 'D', 'D',
                                           'R', 'T', 'R', 'C'};
inline constexpr char traceChunkMagic[4] = {'C', 'H', 'N', 'K'};
inline constexpr char traceFooterMagic[4] = {'F', 'T', 'E', 'R'};
inline constexpr char traceEndMagic[8] = {'L', 'A', 'D', 'D',
                                          'R', 'E', 'N', 'D'};

/** CSV header row, including the trailing newline. */
inline constexpr char traceCsvHeader[] =
    "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
    "queue_depth\n";

/** v1/v2 file header size: magic + u32 version + u32 count/capacity. */
inline constexpr std::size_t traceFileHeaderBytes = 16;

/** v2 chunk header: magic + u32 record count + u32 payload CRC. */
inline constexpr std::size_t traceChunkHeaderBytes = 12;

/** v2 fixed footer prefix: magic + u32 chunk count + u64 total. */
inline constexpr std::size_t traceFooterPrefixBytes = 16;

/** v2 per-chunk index entry: u64 offset + u32 count + u32 CRC. */
inline constexpr std::size_t traceIndexEntryBytes = 16;

/** v2 trailer: u64 footer offset + end magic. */
inline constexpr std::size_t traceTrailerBytes = 16;

} // namespace ladder

#endif // LADDER_CTRL_TRACE_WIRE_HH
