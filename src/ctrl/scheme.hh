/**
 * @file
 * The write-latency scheme interface: the extension point through which
 * every evaluated design (baseline, Split-reset, BLP, the LADDER
 * variants, Oracle) plugs into the memory controller.
 *
 * The controller owns the mechanics — queues, banks, metadata cache,
 * spill buffer, internal (metadata/SMB) reads — while a scheme decides
 * *what* a write needs before dispatch and *which* RESET latency it is
 * issued with.
 */

#ifndef LADDER_CTRL_SCHEME_HH
#define LADDER_CTRL_SCHEME_HH

#include <string>
#include <vector>

#include "common/bitops.hh"
#include "common/types.hh"
#include "reram/geometry.hh"

namespace ladder
{

class MemoryController;

/** Controller-side state of one queued write. */
struct WriteEntry
{
    std::uint64_t id = 0;
    Addr addr = invalidAddr;       //!< physical (post-remap) address
    LineData data{};               //!< logical payload (CPU view)
    LineData physData{};           //!< encoded payload (pre-FNW)
    BlockLocation loc{};
    Tick enqueueTick = 0;
    /**
     * Tick at which the last scheme-imposed dependency (metadata
     * fill, SMB read, spill retry) resolved; equals enqueueTick for
     * writes that were dispatchable immediately. Maintained only when
     * latency attribution is enabled — the blame decomposition's
     * "retry/spill stall" component is readyTick - enqueueTick.
     */
    Tick readyTick = 0;
    bool isMetadataWrite = false;
    bool isRemapCopy = false; //!< wear-leveling line copy

    /** Dependencies a scheme can impose. */
    bool needsSmb = false;
    bool smbReady = true;
    LineData smbData{};
    std::vector<Addr> metaAddrs;   //!< metadata lines this write needs
    unsigned metaPending = 0;      //!< outstanding metadata fills

    /** Scratch for schemes (e.g. packed partial counters). */
    std::uint32_t schemeScratch = 0;

    /**
     * Ground-truth LRS counts of the target page/line, scanned once by
     * the controller immediately before decideWrite (the store cannot
     * change between then and dispatch accounting). Shared by the
     * scheme decision, the content-true power model, and the trace
     * record, which previously each re-scanned the store.
     */
    unsigned dispatchCw = 0;  //!< max per-mat wordline LRS count
    unsigned dispatchCbl = 0; //!< max selected-bitline LRS count

    bool
    ready() const
    {
        return smbReady && metaPending == 0;
    }
};

/** Latency (and array power) chosen for one write dispatch. */
struct WriteDecision
{
    double latencyNs = 0.0;
    double powerMw = 0.0;
    /**
     * Scaling of the content-true array power used for energy
     * accounting; Split-reset sets < 1 because each half-RESET phase
     * drives half the cells.
     */
    double powerScale = 1.0;
};

/**
 * Causal anchor points a scheme reports for one dispatched write so
 * the controller can decompose the chosen RESET latency into base /
 * location / content / scheme-overhead blame components. All three
 * are latencies in nanoseconds on the scheme's own timing model:
 *
 *   baseNs     — best-case tWR for this scheme (best location AND
 *                best content), the irreducible floor;
 *   locationNs — actual WL/BL region, best content: the increment
 *                over baseNs is the location penalty;
 *   contentNs  — actual location and actual content, before any
 *                scheme-mechanic overhead: the increment over
 *                locationNs is the content penalty, and whatever
 *                remains up to the decided latency (e.g. SplitReset's
 *                second half-RESET phase) is scheme overhead.
 *
 * Invariant expected by the controller: baseNs <= locationNs <=
 * contentNs <= decision.latencyNs on the underlying tables (small
 * rounding deviations are tolerated; components are signed).
 */
struct WriteBlameHint
{
    double baseNs = 0.0;
    double locationNs = 0.0;
    double contentNs = 0.0;
};

/** Per-write latency decision plus bookkeeping performed at dispatch. */
class WriteScheme
{
  public:
    virtual ~WriteScheme() = default;

    /** Short identifier used in reports ("LADDER-Est", ...). */
    virtual std::string name() const = 0;

    /**
     * Hook invoked when a data write enters the write queue. Schemes
     * set entry.needsSmb and/or entry.metaAddrs here; the controller
     * then issues the corresponding internal reads and tracks the
     * dependencies.
     */
    virtual void
    onWriteEnqueued(MemoryController &ctrl, WriteEntry &entry)
    {
        (void)ctrl;
        (void)entry;
    }

    /**
     * RESET latency and power for dispatching @p entry now.
     * @p finalData is the raw bit pattern that will be stored (post
     * encoding and FNW). Called exactly once per write, at dispatch;
     * schemes update their metadata values here.
     */
    virtual WriteDecision decideWrite(MemoryController &ctrl,
                                      WriteEntry &entry,
                                      const LineData &finalData) = 0;

    /**
     * Blame anchors for the write just decided by decideWrite; called
     * only when latency attribution (trace.attribution=) is on, after
     * decideWrite and before the entry leaves the queue. Must not
     * mutate scheme state (decideWrite already updated shadow
     * counters etc.). The default — every anchor at the decided
     * latency — attributes the whole tWR to base cost, which is
     * exact for content/location-oblivious schemes.
     */
    virtual WriteBlameHint
    attributeWrite(const MemoryController &ctrl, const WriteEntry &entry,
                   const WriteDecision &decision) const
    {
        (void)ctrl;
        (void)entry;
        return {decision.latencyNs, decision.latencyNs,
                decision.latencyNs};
    }

    /** Hook after the write has been persisted to the array. */
    virtual void
    onWriteComplete(MemoryController &ctrl, WriteEntry &entry)
    {
        (void)ctrl;
        (void)entry;
    }

    /**
     * Channel-engine support: partition the scheme's mutable state
     * (sampled statistics, shadow-counter caches) into @p channels
     * shards so channel workers touch disjoint shards. Stateless
     * schemes need not override. Called once, before any write is
     * enqueued.
     */
    virtual void
    setChannelShards(unsigned channels)
    {
        (void)channels;
    }

    /**
     * Fold per-channel stat shards into the scheme's primary stats,
     * in ascending channel order (FP summation order is part of the
     * determinism contract). Called at stat-reset and run-end; a
     * no-op for schemes without shards.
     */
    virtual void foldChannelShards() {}

    /**
     * Address-dependent data encoding applied before the bits reach
     * the array (LADDER-Est's intra-line bit shifting). Must be
     * exactly inverted by decodeData.
     */
    virtual LineData
    encodeData(Addr addr, const LineData &data) const
    {
        (void)addr;
        return data;
    }

    /** Inverse of encodeData, applied on the read path. */
    virtual LineData
    decodeData(Addr addr, const LineData &data) const
    {
        (void)addr;
        return data;
    }

    /**
     * FNW flavour this scheme requires: LADDER variants use the
     * counting-safe constrained mode, everything else classical.
     */
    virtual bool constrainedFnw() const { return false; }
};

} // namespace ladder

#endif // LADDER_CTRL_SCHEME_HH
