/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - an internal invariant was violated (a simulator bug); aborts.
 * fatal()  - the user asked for something unsupported/inconsistent; exits.
 * warn()   - something is suspicious but simulation can continue.
 * inform() - a plain status message.
 */

#ifndef LADDER_COMMON_LOG_HH
#define LADDER_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace ladder
{

/** Severity levels for the message sink. */
enum class LogLevel { Info, Warn, Fatal, Panic };

/**
 * Emit a formatted message to stderr with a severity prefix.
 *
 * @param level Message severity.
 * @param msg Pre-formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strPrintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report a user/configuration error and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace ladder

#define panic(...) \
    ::ladder::panicImpl(__FILE__, __LINE__, ::ladder::strPrintf(__VA_ARGS__))

#define fatal(...) \
    ::ladder::fatalImpl(__FILE__, __LINE__, ::ladder::strPrintf(__VA_ARGS__))

#define warn(...) \
    ::ladder::logMessage(::ladder::LogLevel::Warn, \
                         ::ladder::strPrintf(__VA_ARGS__))

#define inform(...) \
    ::ladder::logMessage(::ladder::LogLevel::Info, \
                         ::ladder::strPrintf(__VA_ARGS__))

/** Assert that must hold even in release builds; reports as a panic. */
#define ladder_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ladder::panicImpl(__FILE__, __LINE__, \
                "assertion '" #cond "' failed: " + \
                ::ladder::strPrintf(__VA_ARGS__)); \
        } \
    } while (0)

#endif // LADDER_COMMON_LOG_HH
