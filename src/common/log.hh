/**
 * @file
 * Minimal gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - an internal invariant was violated (a simulator bug); aborts.
 * fatal()  - the user asked for something unsupported/inconsistent; exits.
 * warn()   - something is suspicious but simulation can continue.
 * warn_once() - warn, but only the first time this call site fires
 *               (parallel sweeps would otherwise repeat identical
 *               warnings from every worker).
 * inform() - a plain status message.
 * debugf() - developer chatter, hidden unless LADDER_LOG=debug.
 *
 * The LADDER_LOG environment variable (debug|info|warn) sets the
 * minimum severity that reaches the sink; the default is info.
 * Fatal/panic messages always pass.
 */

#ifndef LADDER_COMMON_LOG_HH
#define LADDER_COMMON_LOG_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace ladder
{

/** Severity levels for the message sink (ascending order). */
enum class LogLevel { Debug, Info, Warn, Fatal, Panic };

/**
 * Emit a formatted message with a severity prefix. Messages below the
 * current threshold (see logThreshold) are dropped; everything else
 * goes to stderr, or to the override sink installed by setLogSink.
 *
 * @param level Message severity.
 * @param msg Pre-formatted message body.
 */
void logMessage(LogLevel level, const std::string &msg);

/**
 * The active severity threshold: LADDER_LOG=debug|info|warn at first
 * use, overridable at runtime via setLogThreshold (tests, tools).
 */
LogLevel logThreshold();

/** Override the severity threshold (wins over LADDER_LOG). */
void setLogThreshold(LogLevel level);

/**
 * Parse a LADDER_LOG value ("debug" | "info" | "warn") into @p out.
 * Returns false — leaving @p out untouched — on anything else,
 * which logThreshold() reports once and treats as "info".
 */
bool parseLogLevelName(const std::string &text, LogLevel &out);

/**
 * Redirect log output (post-filtering) to @p sink instead of stderr;
 * pass nullptr to restore stderr. Used by tests to assert on emitted
 * messages. The sink is called with the sink mutex held, so it must
 * not log.
 */
using LogSinkFn = std::function<void(LogLevel, const std::string &)>;
void setLogSink(LogSinkFn sink);

/** printf-style formatting into a std::string. */
std::string strPrintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report a user/configuration error and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace ladder

#define panic(...) \
    ::ladder::panicImpl(__FILE__, __LINE__, ::ladder::strPrintf(__VA_ARGS__))

#define fatal(...) \
    ::ladder::fatalImpl(__FILE__, __LINE__, ::ladder::strPrintf(__VA_ARGS__))

#define warn(...) \
    ::ladder::logMessage(::ladder::LogLevel::Warn, \
                         ::ladder::strPrintf(__VA_ARGS__))

/**
 * Rate-limited warn: each call site fires at most once per process,
 * however many workers or iterations hit it. The atomic guard makes
 * the "first" race benign under parallel sweeps.
 */
#define warn_once(...) \
    do { \
        static std::atomic<bool> _ladder_warned_once{false}; \
        if (!_ladder_warned_once.exchange( \
                true, std::memory_order_relaxed)) { \
            ::ladder::logMessage( \
                ::ladder::LogLevel::Warn, \
                ::ladder::strPrintf(__VA_ARGS__) + \
                    " (further identical warnings suppressed)"); \
        } \
    } while (0)

#define inform(...) \
    ::ladder::logMessage(::ladder::LogLevel::Info, \
                         ::ladder::strPrintf(__VA_ARGS__))

#define debugf(...) \
    ::ladder::logMessage(::ladder::LogLevel::Debug, \
                         ::ladder::strPrintf(__VA_ARGS__))

/** Assert that must hold even in release builds; reports as a panic. */
#define ladder_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ladder::panicImpl(__FILE__, __LINE__, \
                "assertion '" #cond "' failed: " + \
                ::ladder::strPrintf(__VA_ARGS__)); \
        } \
    } while (0)

#endif // LADDER_COMMON_LOG_HH
