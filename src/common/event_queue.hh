/**
 * @file
 * Discrete-event simulation kernel. A single EventQueue orders callbacks
 * by (tick, priority, sequence); components schedule std::function
 * callbacks and the kernel drives time forward.
 */

#ifndef LADDER_COMMON_EVENT_QUEUE_HH
#define LADDER_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "types.hh"

namespace ladder
{

/** Identifier handed back by schedule() so events can be descheduled. */
using EventId = std::uint64_t;

/**
 * The event queue at the heart of the simulator.
 *
 * Events at the same tick execute in (priority, insertion) order so that
 * behaviour is fully deterministic. Descheduling is lazy: cancelled
 * events stay in the heap but are skipped when popped.
 */
class EventQueue
{
  public:
    /** Default priority for ordinary events. */
    static constexpr int defaultPriority = 0;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p callback at absolute time @p when.
     *
     * @pre when >= now()
     * @return An id usable with deschedule().
     */
    EventId schedule(Tick when, std::function<void()> callback,
                     int priority = defaultPriority);

    /** Schedule @p callback @p delay ticks in the future. */
    EventId scheduleIn(Tick delay, std::function<void()> callback,
                       int priority = defaultPriority);

    /** Cancel a previously scheduled event. Safe to call twice. */
    void deschedule(EventId id);

    /** Whether any live (non-cancelled) events remain. */
    bool empty() const { return live_ == 0; }

    /** Number of live events. */
    std::uint64_t pending() const { return live_; }

    /**
     * Run events until the queue is empty or time would pass @p limit.
     * Events scheduled exactly at @p limit are executed.
     *
     * @return Number of events executed.
     */
    std::uint64_t runUntil(Tick limit = maxTick);

    /**
     * Run every event strictly before @p end, then advance the clock
     * to @p end. This is the channel-engine window primitive: a queue
     * that ran before @p end can accept new work at any tick >= @p end
     * from another clock domain without ever scheduling into its past.
     *
     * @pre end >= now() and end != maxTick
     * @return Number of events executed.
     */
    std::uint64_t runBefore(Tick end);

    /**
     * Tick of the earliest live event, or maxTick when the queue is
     * empty. Prunes cancelled entries from the top of the heap.
     */
    Tick nextEventTick();

    /**
     * Stable pointer to the queue's clock, for components that must
     * read another clock domain's time (e.g. a channel controller
     * executing a frontend-phase call reads the frontend clock).
     */
    const Tick *nowPtr() const { return &now_; }

    /** Execute exactly one event if any; returns false when empty. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        std::function<void()> callback;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return id > other.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    std::vector<EventId> cancelled_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t live_ = 0;
    std::uint64_t executed_ = 0;

    bool isCancelled(EventId id) const;
    void forgetCancelled(EventId id);
};

} // namespace ladder

#endif // LADDER_COMMON_EVENT_QUEUE_HH
