#include "log.hh"

#include <cstdarg>
#include <mutex>
#include <stdexcept>

namespace ladder
{

std::string
strPrintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

namespace
{

std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

LogSinkFn &
sinkOverride()
{
    static LogSinkFn sink;
    return sink;
}

std::atomic<LogLevel> &
thresholdOverride()
{
    // Sentinel Panic+1 is impossible as a threshold: means "unset".
    static std::atomic<LogLevel> t{static_cast<LogLevel>(
        static_cast<int>(LogLevel::Panic) + 1)};
    return t;
}

LogLevel
envThreshold()
{
    static const LogLevel level = []() {
        const char *env = std::getenv("LADDER_LOG");
        if (!env)
            return LogLevel::Info;
        LogLevel parsed = LogLevel::Info;
        if (!parseLogLevelName(env, parsed)) {
            std::fprintf(stderr,
                         "warn: LADDER_LOG='%s' not one of "
                         "debug|info|warn; defaulting to info\n",
                         env);
        }
        return parsed;
    }();
    return level;
}

} // anonymous namespace

bool
parseLogLevelName(const std::string &text, LogLevel &out)
{
    if (text == "debug")
        out = LogLevel::Debug;
    else if (text == "info")
        out = LogLevel::Info;
    else if (text == "warn")
        out = LogLevel::Warn;
    else
        return false;
    return true;
}

LogLevel
logThreshold()
{
    LogLevel override = thresholdOverride().load();
    if (static_cast<int>(override) <=
        static_cast<int>(LogLevel::Panic))
        return override;
    return envThreshold();
}

void
setLogThreshold(LogLevel level)
{
    thresholdOverride().store(level);
}

void
setLogSink(LogSinkFn sink)
{
    std::lock_guard<std::mutex> lock(sinkMutex());
    sinkOverride() = std::move(sink);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    // Fatal/panic always pass; everything else honours the threshold.
    if (level < LogLevel::Fatal && level < logThreshold())
        return;
    const char *prefix = "";
    switch (level) {
      case LogLevel::Debug: prefix = "debug: "; break;
      case LogLevel::Info: prefix = "info: "; break;
      case LogLevel::Warn: prefix = "warn: "; break;
      case LogLevel::Fatal: prefix = "fatal: "; break;
      case LogLevel::Panic: prefix = "panic: "; break;
    }
    // Serialize whole lines so messages from parallel sweep workers
    // never interleave mid-line.
    std::lock_guard<std::mutex> lock(sinkMutex());
    if (sinkOverride()) {
        sinkOverride()(level, msg);
        return;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Panic,
               strPrintf("%s:%d: %s", file, line, msg.c_str()));
    // Throwing instead of abort() keeps the failure testable; the type is
    // std::logic_error because a panic is by definition a program bug.
    throw std::logic_error(msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Fatal,
               strPrintf("%s:%d: %s", file, line, msg.c_str()));
    throw std::runtime_error(msg);
}

} // namespace ladder
