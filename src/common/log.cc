#include "log.hh"

#include <cstdarg>
#include <mutex>
#include <stdexcept>

namespace ladder
{

std::string
strPrintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    const char *prefix = "";
    switch (level) {
      case LogLevel::Info: prefix = "info: "; break;
      case LogLevel::Warn: prefix = "warn: "; break;
      case LogLevel::Fatal: prefix = "fatal: "; break;
      case LogLevel::Panic: prefix = "panic: "; break;
    }
    // Serialize whole lines so messages from parallel sweep workers
    // never interleave mid-line.
    static std::mutex sinkMutex;
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
    std::fflush(stderr);
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Panic,
               strPrintf("%s:%d: %s", file, line, msg.c_str()));
    // Throwing instead of abort() keeps the failure testable; the type is
    // std::logic_error because a panic is by definition a program bug.
    throw std::logic_error(msg);
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Fatal,
               strPrintf("%s:%d: %s", file, line, msg.c_str()));
    throw std::runtime_error(msg);
}

} // namespace ladder
