/**
 * @file
 * Host-side self-profiling: scoped wall-clock spans and counters on
 * per-thread buffers, exported as a Chrome-trace-event timeline (see
 * sim/profile_export). Disabled by default; when disabled, an
 * instrumented site costs exactly one relaxed atomic load and a
 * predictable branch — no clock read, no allocation, no lock — so the
 * macros can live on hot paths (CG inner solves, pool dispatch)
 * without perturbing production runs, and golden outputs stay
 * byte-identical.
 *
 * Threading model: each recording thread appends to its own buffer
 * (registered once under a mutex on first use, lock-free afterwards),
 * so recording never contends across threads. Buffers are owned by a
 * process-wide registry via shared_ptr, so spans survive the exit of
 * the worker threads that recorded them (sweep ThreadPools are
 * destroyed before export). enable()/disable()/collect() are control
 * operations for the coordinating thread; call them only while no
 * instrumented thread is inside a span (in LADDER: before a sweep
 * starts and after its pool has joined).
 */

#ifndef LADDER_COMMON_PROFILER_HH
#define LADDER_COMMON_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ladder::prof
{

namespace detail
{
/** The one global the disabled fast path touches. */
extern std::atomic<bool> g_enabled;
} // namespace detail

/** Whether recording is on: one relaxed load, the disabled cost. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Start collecting. Clears everything recorded by a previous
 * enable()..disable() session. Must not race instrumented threads.
 */
void enable();

/** Stop collecting (recorded data stays available to collect()). */
void disable();

/** Nanoseconds of steady time since the process-wide anchor. */
std::uint64_t nowNs();

/** One completed span on one thread. */
struct Span
{
    const char *name = nullptr; //!< literal or interned (stable)
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
};

/** One timestamped counter sample on one thread. */
struct CounterSample
{
    const char *name = nullptr;
    std::uint64_t tsNs = 0;
    double value = 0.0;
};

/** Everything one thread recorded, snapshot by collect(). */
struct ThreadLog
{
    std::uint64_t threadId = 0; //!< small dense id (registration order)
    std::string name;           //!< from setCurrentThreadName ("" = none)
    std::vector<Span> spans;
    std::vector<CounterSample> counters;
};

/** Append a finished span to the calling thread's buffer. */
void recordSpan(const char *name, std::uint64_t startNs,
                std::uint64_t endNs);

/** Append a counter sample (now) to the calling thread's buffer. */
void recordCounter(const char *name, double value);

/**
 * Label the calling thread in collected logs and exports (workers use
 * their pthread name, e.g. "ladder-wk-3"). Safe to call when
 * profiling is disabled; the name sticks for later sessions.
 */
void setCurrentThreadName(const std::string &name);

/**
 * Return a stable, deduplicated `const char *` for a dynamic span
 * name (e.g. a per-run-cell label built at runtime). The storage
 * lives for the process lifetime. Takes a lock — intern once per
 * run, not per event.
 */
const char *internName(const std::string &name);

/**
 * Snapshot every thread's buffer (including threads that have since
 * exited), in registration order. Call only while no instrumented
 * thread is recording — in LADDER, after the sweep's pool joined.
 */
std::vector<ThreadLog> collect();

/** One thread's innermost open span right now (watchdog reports). */
struct ActiveSpan
{
    std::uint64_t threadId = 0;
    std::string threadName;
    const char *name = nullptr; //!< literal or interned (stable)
};

/**
 * The innermost span currently open on each thread that has one.
 * Unlike collect(), this is safe to call *while* instrumented threads
 * are recording: each thread publishes its current span name through
 * a relaxed atomic slot, so the telemetry watchdog can report where a
 * stalled run is stuck without stopping it.
 */
std::vector<ActiveSpan> activeSpans();

namespace detail
{
/** Publish @p name as the calling thread's open span; returns the
 *  previous one so nested Scopes restore it on exit. */
const char *enterSpan(const char *name);
void exitSpan(const char *previous);
} // namespace detail

/** Disable and drop all recorded data (tests). */
void reset();

/**
 * RAII span: samples the clock on entry and records on exit when
 * profiling was enabled at entry. A null name is allowed and records
 * nothing (lets callers thread optional dynamic labels through).
 */
class Scope
{
  public:
    explicit Scope(const char *name)
        : name_(enabled() ? name : nullptr),
          startNs_(name_ ? nowNs() : 0),
          previous_(name_ ? detail::enterSpan(name_) : nullptr)
    {
    }

    ~Scope()
    {
        if (name_) {
            detail::exitSpan(previous_);
            recordSpan(name_, startNs_, nowNs());
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    const char *name_;
    std::uint64_t startNs_;
    const char *previous_;
};

} // namespace ladder::prof

#define LADDER_PROF_CONCAT2(a, b) a##b
#define LADDER_PROF_CONCAT(a, b) LADDER_PROF_CONCAT2(a, b)

/** Scoped span covering the rest of the enclosing block. */
#define PROF_SCOPE(name) \
    ::ladder::prof::Scope LADDER_PROF_CONCAT(ladder_prof_scope_, \
                                             __LINE__)(name)

/** Timestamped counter sample (Chrome "C" event). */
#define PROF_COUNTER(name, value) \
    do { \
        if (::ladder::prof::enabled()) \
            ::ladder::prof::recordCounter((name), (value)); \
    } while (0)

#endif // LADDER_COMMON_PROFILER_HH
