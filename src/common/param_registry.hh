/**
 * @file
 * Typed parameter registry: the declarative configuration spine.
 *
 * Every tunable of a config struct is declared exactly once — name,
 * type, default (the struct's initializer), valid range or choice
 * set, and a doc string — together with an accessor binding it to the
 * struct field. The registry then provides, for free:
 *
 *   - strict `key=value` assignment with typed parsing, range
 *     checking, and unknown-key rejection (with a near-miss
 *     suggestion, so `measrue=5` tells you about `measure`);
 *   - layered resolution from JSON config files (see applyJson) under
 *     compiled defaults, with the same validation;
 *   - a deterministic JSON dump of the fully-resolved config, used
 *     both for `--dump-config` (loadable back as a config file) and
 *     for the resolved-config block embedded in every run manifest;
 *   - a human-readable help listing of every parameter.
 *
 * The registry itself is struct-agnostic (template on the owner); the
 * LADDER experiment bindings live in sim/config_resolve.
 */

#ifndef LADDER_COMMON_PARAM_REGISTRY_HH
#define LADDER_COMMON_PARAM_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"

namespace ladder
{

namespace param_detail
{

/** Strict full-token parses; return false on any trailing garbage. */
bool parseInt64(const std::string &text, std::int64_t &out);
/**
 * Unsigned parse that *rejects* negative input instead of letting
 * strtoull wrap it around (so `measure=-1` is an error, not ~1.8e19).
 */
bool parseUint64(const std::string &text, std::uint64_t &out,
                 bool &negative);
bool parseDoubleStrict(const std::string &text, double &out);
bool parseBoolStrict(const std::string &text, bool &out);

/** %.17g (round-trip exact), matching the JSON writer's formatting. */
std::string formatDouble(double v);

/** Edit distance for near-miss suggestions. */
unsigned editDistance(const std::string &a, const std::string &b);

/**
 * ` (did you mean 'x'?)` for the closest candidate within a sane
 * edit distance, or "" when nothing is close enough to suggest.
 */
std::string suggestNearest(const std::string &key,
                           const std::vector<std::string> &candidates);

/** Fatal diagnostics shared by every typed setter. */
[[noreturn]] void unknownKeyError(
    const std::string &source, const std::string &key,
    const std::vector<std::string> &candidates);
[[noreturn]] void valueError(const std::string &source,
                             const std::string &key,
                             const std::string &value,
                             const std::string &problem,
                             const std::string &doc);

} // namespace param_detail

/**
 * A registry of typed, documented, range-checked parameters bound to
 * the fields of one config struct of type @p Owner. Declared once
 * (usually behind a function-local static), then used for parsing,
 * dumping, and validation everywhere a config crosses a boundary.
 */
template <typename Owner>
class ParamRegistry
{
  public:
    /** Which parameters a JSON dump includes. */
    enum class Scope
    {
        All,      //!< everything, including output-path/volatile knobs
        Manifest, //!< only parameters that affect simulation results
    };

    /** One declared parameter. */
    struct Param
    {
        std::string name;
        std::string typeName;  //!< "bool", "int", "uint", "double", ...
        std::string doc;
        std::string rangeText; //!< "[lo, hi]" / "{a|b|c}" / ""
        /**
         * Output-location and volatile knobs (stats-json=, jobs=, ...)
         * are excluded from Scope::Manifest dumps so run manifests
         * stay byte-identical across output directories and sweep
         * parallelism.
         */
        bool inManifest = true;
        /** Parse @p value and assign; fatal() with source on error. */
        std::function<void(Owner &, const std::string &value,
                           const std::string &source)>
            set;
        /** Current value rendered as a string (help listing). */
        std::function<std::string(const Owner &)> get;
        /** Current value as a typed JSON value. */
        std::function<void(JsonWriter &, const Owner &)> emit;
    };

    /**
     * Declare an integral parameter. @p ref maps Owner& to the bound
     * field reference; the valid range defaults to the field type's
     * full range, so negative values can never wrap into unsigned
     * fields.
     */
    template <typename T, typename RefFn>
    Param &
    addInt(const std::string &name, RefFn ref, const std::string &doc,
           T lo = std::numeric_limits<T>::min(),
           T hi = std::numeric_limits<T>::max())
    {
        static_assert(std::is_integral_v<T> && !std::is_same_v<T, bool>,
                      "addInt needs a non-bool integral field");
        Param p;
        p.name = name;
        p.doc = doc;
        p.typeName = std::is_signed_v<T> ? "int" : "uint";
        p.rangeText = "[" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "]";
        p.set = [name, doc, ref, lo, hi](Owner &owner,
                                         const std::string &value,
                                         const std::string &source) {
            if constexpr (std::is_signed_v<T>) {
                std::int64_t parsed = 0;
                if (!param_detail::parseInt64(value, parsed)) {
                    param_detail::valueError(source, name, value,
                                             "is not an integer", doc);
                }
                if (parsed < static_cast<std::int64_t>(lo) ||
                    parsed > static_cast<std::int64_t>(hi)) {
                    param_detail::valueError(
                        source, name, value,
                        "is out of range [" + std::to_string(lo) +
                            ", " + std::to_string(hi) + "]",
                        doc);
                }
                ref(owner) = static_cast<T>(parsed);
            } else {
                std::uint64_t parsed = 0;
                bool negative = false;
                if (!param_detail::parseUint64(value, parsed,
                                               negative)) {
                    param_detail::valueError(
                        source, name, value,
                        negative ? "is negative but the parameter is "
                                   "unsigned (range [" +
                                       std::to_string(lo) + ", " +
                                       std::to_string(hi) + "])"
                                 : std::string(
                                       "is not an unsigned integer"),
                        doc);
                }
                if (parsed < static_cast<std::uint64_t>(lo) ||
                    parsed > static_cast<std::uint64_t>(hi)) {
                    param_detail::valueError(
                        source, name, value,
                        "is out of range [" + std::to_string(lo) +
                            ", " + std::to_string(hi) + "]",
                        doc);
                }
                ref(owner) = static_cast<T>(parsed);
            }
        };
        p.get = [ref](const Owner &owner) {
            return std::to_string(ref(const_cast<Owner &>(owner)));
        };
        p.emit = [ref](JsonWriter &json, const Owner &owner) {
            if constexpr (std::is_signed_v<T>) {
                json.value(static_cast<std::int64_t>(
                    ref(const_cast<Owner &>(owner))));
            } else {
                json.value(static_cast<std::uint64_t>(
                    ref(const_cast<Owner &>(owner))));
            }
        };
        return insert(std::move(p));
    }

    /** Declare a floating-point parameter with an inclusive range. */
    template <typename RefFn>
    Param &
    addDouble(const std::string &name, RefFn ref,
              const std::string &doc,
              double lo = std::numeric_limits<double>::lowest(),
              double hi = std::numeric_limits<double>::max())
    {
        Param p;
        p.name = name;
        p.doc = doc;
        p.typeName = "double";
        p.rangeText = "[" + param_detail::formatDouble(lo) + ", " +
                      param_detail::formatDouble(hi) + "]";
        p.set = [name, doc, ref, lo, hi](Owner &owner,
                                         const std::string &value,
                                         const std::string &source) {
            double parsed = 0.0;
            if (!param_detail::parseDoubleStrict(value, parsed)) {
                param_detail::valueError(source, name, value,
                                         "is not a number", doc);
            }
            if (!(parsed >= lo && parsed <= hi)) {
                param_detail::valueError(
                    source, name, value,
                    "is out of range [" +
                        param_detail::formatDouble(lo) + ", " +
                        param_detail::formatDouble(hi) + "]",
                    doc);
            }
            ref(owner) = parsed;
        };
        p.get = [ref](const Owner &owner) {
            return param_detail::formatDouble(
                ref(const_cast<Owner &>(owner)));
        };
        p.emit = [ref](JsonWriter &json, const Owner &owner) {
            json.value(
                static_cast<double>(ref(const_cast<Owner &>(owner))));
        };
        return insert(std::move(p));
    }

    /** Declare a boolean parameter (true/false/1/0/yes/no). */
    template <typename RefFn>
    Param &
    addBool(const std::string &name, RefFn ref, const std::string &doc)
    {
        Param p;
        p.name = name;
        p.doc = doc;
        p.typeName = "bool";
        p.set = [name, doc, ref](Owner &owner,
                                 const std::string &value,
                                 const std::string &source) {
            bool parsed = false;
            if (!param_detail::parseBoolStrict(value, parsed)) {
                param_detail::valueError(
                    source, name, value,
                    "is not a boolean (true/false/1/0/yes/no)", doc);
            }
            ref(owner) = parsed;
        };
        p.get = [ref](const Owner &owner) {
            return ref(const_cast<Owner &>(owner)) ? "true" : "false";
        };
        p.emit = [ref](JsonWriter &json, const Owner &owner) {
            json.value(
                static_cast<bool>(ref(const_cast<Owner &>(owner))));
        };
        return insert(std::move(p));
    }

    /** Declare a free-form string parameter. */
    template <typename RefFn>
    Param &
    addString(const std::string &name, RefFn ref,
              const std::string &doc)
    {
        Param p;
        p.name = name;
        p.doc = doc;
        p.typeName = "string";
        p.set = [ref](Owner &owner, const std::string &value,
                      const std::string &) { ref(owner) = value; };
        p.get = [ref](const Owner &owner) {
            return ref(const_cast<Owner &>(owner));
        };
        p.emit = [ref](JsonWriter &json, const Owner &owner) {
            json.value(ref(const_cast<Owner &>(owner)));
        };
        return insert(std::move(p));
    }

    /** Declare a string parameter restricted to a fixed choice set. */
    template <typename RefFn>
    Param &
    addChoice(const std::string &name, RefFn ref,
              const std::string &doc,
              std::vector<std::string> choices)
    {
        Param p;
        p.name = name;
        p.doc = doc;
        p.typeName = "string";
        p.rangeText = choiceText(choices);
        p.set = [name, doc, ref,
                 choices](Owner &owner, const std::string &value,
                          const std::string &source) {
            for (const auto &choice : choices) {
                if (choice == value) {
                    ref(owner) = value;
                    return;
                }
            }
            param_detail::valueError(
                source, name, value,
                "must be one of " + choiceText(choices) +
                    param_detail::suggestNearest(value, choices),
                doc);
        };
        p.get = [ref](const Owner &owner) {
            return ref(const_cast<Owner &>(owner));
        };
        p.emit = [ref](JsonWriter &json, const Owner &owner) {
            json.value(ref(const_cast<Owner &>(owner)));
        };
        return insert(std::move(p));
    }

    /**
     * Declare an enum-typed parameter via an explicit name<->value
     * mapping (the first entry's name is used when the current value
     * has no mapping, which the registration should make impossible).
     */
    template <typename E, typename RefFn>
    Param &
    addEnum(const std::string &name, RefFn ref, const std::string &doc,
            std::vector<std::pair<std::string, E>> mapping)
    {
        std::vector<std::string> names;
        for (const auto &entry : mapping)
            names.push_back(entry.first);
        Param p;
        p.name = name;
        p.doc = doc;
        p.typeName = "string";
        p.rangeText = choiceText(names);
        p.set = [name, doc, mapping,
                 names, ref](Owner &owner, const std::string &value,
                             const std::string &source) {
            for (const auto &entry : mapping) {
                if (entry.first == value) {
                    ref(owner) = entry.second;
                    return;
                }
            }
            param_detail::valueError(
                source, name, value,
                "must be one of " + choiceText(names) +
                    param_detail::suggestNearest(value, names),
                doc);
        };
        auto render = [mapping](const Owner &owner, RefFn r) {
            E current = r(const_cast<Owner &>(owner));
            for (const auto &entry : mapping) {
                if (entry.second == current)
                    return entry.first;
            }
            return mapping.front().first;
        };
        p.get = [render, ref](const Owner &owner) {
            return render(owner, ref);
        };
        p.emit = [render, ref](JsonWriter &json, const Owner &owner) {
            json.value(render(owner, ref));
        };
        return insert(std::move(p));
    }

    /** Whether @p key is a declared parameter. */
    bool has(const std::string &key) const
    {
        return params_.count(key) != 0;
    }

    /** All declared names in sorted order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(params_.size());
        for (const auto &entry : params_)
            out.push_back(entry.first);
        return out;
    }

    /**
     * Parse and assign one `key=value`; fatal() on unknown key (with
     * a near-miss suggestion), bad type, or out-of-range value. The
     * @p source string names where the assignment came from (command
     * line, a config file path) for the diagnostic.
     */
    void
    set(Owner &owner, const std::string &key, const std::string &value,
        const std::string &source) const
    {
        auto it = params_.find(key);
        if (it == params_.end())
            param_detail::unknownKeyError(source, key, names());
        it->second.set(owner, value, source);
    }

    /**
     * Apply a flat JSON object of key -> scalar assignments (the
     * `config=` file format and the `--dump-config` output). Values
     * may be numbers, strings, or booleans; string values go through
     * the same parser as the command line, so quoting a large integer
     * keeps it exact.
     */
    void
    applyJson(Owner &owner, const JsonValue &object,
              const std::string &source) const
    {
        if (!object.isObject()) {
            fatal("%s: a config file must be one flat JSON object of "
                  "\"key\": value pairs",
                  source.c_str());
        }
        for (const auto &member : object.object) {
            const JsonValue &v = member.second;
            std::string text;
            switch (v.type) {
            case JsonValue::Type::String:
                text = v.string;
                break;
            case JsonValue::Type::Number:
                text = param_detail::formatDouble(v.number);
                break;
            case JsonValue::Type::Bool:
                text = v.boolean ? "true" : "false";
                break;
            default:
                fatal("%s: key '%s' must be a scalar (number, string, "
                      "or boolean)",
                      source.c_str(), member.first.c_str());
            }
            set(owner, member.first, text, source);
        }
    }

    /**
     * Emit the resolved config as one flat JSON object in sorted key
     * order. Scope::All output is loadable back via applyJson;
     * Scope::Manifest omits output-path/volatile parameters so run
     * manifests stay deterministic.
     */
    void
    dumpJson(const Owner &owner, JsonWriter &json, Scope scope) const
    {
        json.beginObject();
        for (const auto &entry : params_) {
            if (scope == Scope::Manifest && !entry.second.inManifest)
                continue;
            json.key(entry.first);
            entry.second.emit(json, owner);
        }
        json.endObject();
    }

    /** Human-readable listing: name, type, current value, doc. */
    void
    help(std::ostream &os, const Owner &current) const
    {
        for (const auto &entry : params_) {
            const Param &p = entry.second;
            os << "  " << p.name;
            for (std::size_t i = p.name.size(); i < 26; ++i)
                os << ' ';
            os << p.typeName;
            for (std::size_t i = p.typeName.size(); i < 8; ++i)
                os << ' ';
            std::string value = p.get(current);
            os << value;
            for (std::size_t i = value.size(); i < 16; ++i)
                os << ' ';
            os << ' ' << p.doc;
            if (!p.rangeText.empty())
                os << ' ' << p.rangeText;
            os << '\n';
        }
    }

    /**
     * The same listing as a GitHub-flavored markdown table — the
     * source of the generated parameter section in EXPERIMENTS.md
     * (scripts/update_experiments_params.py splices the output of
     * `--help-config=md` between its markers, and CI fails when the
     * committed table goes stale). @p current supplies the defaults
     * column, so pass the compiled-default config.
     */
    void
    helpMarkdown(std::ostream &os, const Owner &current) const
    {
        os << "| parameter | type | default | range | description "
              "|\n";
        os << "|---|---|---|---|---|\n";
        for (const auto &entry : params_) {
            const Param &p = entry.second;
            std::string value = p.get(current);
            os << "| `" << p.name << "` | " << p.typeName << " | `"
               << (value.empty() ? "''" : value) << "` | "
               << mdEscape(p.rangeText) << " | " << mdEscape(p.doc)
               << " |\n";
        }
    }

  private:
    std::map<std::string, Param> params_;

    /** Escape '|' so range/doc text cannot break the table row. */
    static std::string
    mdEscape(const std::string &text)
    {
        std::string out;
        out.reserve(text.size());
        for (char c : text) {
            if (c == '|')
                out += "\\|";
            else
                out.push_back(c);
        }
        return out;
    }

    static std::string
    choiceText(const std::vector<std::string> &choices)
    {
        std::string out = "{";
        for (std::size_t i = 0; i < choices.size(); ++i) {
            if (i)
                out += "|";
            out += choices[i];
        }
        out += "}";
        return out;
    }

    Param &
    insert(Param p)
    {
        ladder_assert(params_.count(p.name) == 0,
                      "parameter '%s' registered twice",
                      p.name.c_str());
        std::string name = p.name;
        return params_.emplace(name, std::move(p)).first->second;
    }
};

} // namespace ladder

#endif // LADDER_COMMON_PARAM_REGISTRY_HH
