#include "config.hh"

#include <algorithm>
#include <cstdlib>

#include "log.hh"
#include "param_registry.hh"

namespace ladder
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::setInt(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::setDouble(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::setBool(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not an integer",
              key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '%s': '%s' is not a number",
              key.c_str(), it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(),
          v.c_str());
}

std::vector<std::string>
Config::parseArgs(int argc, const char *const *argv)
{
    std::vector<std::string> leftovers;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0) {
            leftovers.push_back(arg);
            continue;
        }
        set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return leftovers;
}

std::vector<std::string>
Config::parseArgs(int argc, const char *const *argv,
                  const std::vector<std::string> &allowedKeys)
{
    std::vector<std::string> leftovers;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0) {
            leftovers.push_back(arg);
            continue;
        }
        std::string key = arg.substr(0, eq);
        if (std::find(allowedKeys.begin(), allowedKeys.end(), key) ==
            allowedKeys.end()) {
            fatal("command line: unknown key '%s'%s", key.c_str(),
                  param_detail::suggestNearest(key, allowedKeys)
                      .c_str());
        }
        set(key, arg.substr(eq + 1));
    }
    return leftovers;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

} // namespace ladder
