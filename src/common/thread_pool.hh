/**
 * @file
 * A small fixed-size thread pool for embarrassingly parallel sweeps.
 * Jobs are executed FIFO by a fixed set of workers (no work stealing,
 * so a single-worker pool runs jobs exactly in submission order).
 * Exceptions thrown by a job are captured in the std::future returned
 * by submit(); the pool itself never terminates on a job failure.
 *
 * Destruction drains: every job already submitted runs to completion
 * before the workers join, so futures handed out by submit() never
 * dangle.
 */

#ifndef LADDER_COMMON_THREAD_POOL_HH
#define LADDER_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ladder
{

class ThreadPool
{
  public:
    /**
     * Start @p threads workers (0 selects defaultJobs()). The pool is
     * fixed-size; it never grows or shrinks. With @p pinCores worker i
     * is pinned to CPU i modulo the core count (Linux only; silently a
     * no-op elsewhere) — useful for persistent channel workers whose
     * cache locality matters, harmful for oversubscribed sweeps, so it
     * is off by default.
     */
    explicit ThreadPool(unsigned threads = 0, bool pinCores = false);

    /** Drains the queue, finishes running jobs, joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a callable; the returned future yields its result or
     * rethrows the exception it exited with.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        post([task]() { (*task)(); });
        return future;
    }

    /** Block until the queue is empty and no job is running. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Default parallelism: std::thread::hardware_concurrency(), or 1
     * when the runtime cannot determine it.
     */
    static unsigned defaultJobs();

  private:
    void post(std::function<void()> job);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;  //!< queue became non-empty
    std::condition_variable allIdle_;    //!< queue drained, jobs done
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    unsigned active_ = 0; //!< jobs currently executing
    bool stopping_ = false;
};

} // namespace ladder

#endif // LADDER_COMMON_THREAD_POOL_HH
