#include "crc32.hh"

#include <array>

namespace ladder
{

namespace
{

std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = buildTable();
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    return crc;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Final(crc32Update(crc32Init(), data, len));
}

} // namespace ladder
