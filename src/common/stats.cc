#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "log.hh"

namespace ladder
{

void
StatAverage::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
StatAverage::reset()
{
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    count_ = 0;
}

double
StatAverage::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

StatHistogram::StatHistogram(double lo, double hi, unsigned buckets)
{
    init(lo, hi, buckets);
}

void
StatHistogram::init(double lo, double hi, unsigned buckets)
{
    ladder_assert(hi > lo, "histogram: hi <= lo");
    ladder_assert(buckets > 0, "histogram: zero buckets");
    lo_ = lo;
    hi_ = hi;
    counts_.assign(buckets, 0);
    reset();
}

void
StatHistogram::sample(double v)
{
    sum_ += v;
    ++total_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<size_t>(frac * counts_.size());
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

void
StatHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

double
StatHistogram::bucketLo(unsigned i) const
{
    return lo_ + (hi_ - lo_) * i / static_cast<double>(counts_.size());
}

void
StatGroup::regScalar(const std::string &name, StatScalar *stat,
                     const std::string &desc)
{
    scalars_.push_back({name, stat, desc});
}

void
StatGroup::regAverage(const std::string &name, StatAverage *stat,
                      const std::string &desc)
{
    averages_.push_back({name, stat, desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &entry : scalars_) {
        os << std::left << std::setw(48) << (name_ + "." + entry.name)
           << std::right << std::setw(16) << entry.stat->value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
    for (const auto &entry : averages_) {
        os << std::left << std::setw(48)
           << (name_ + "." + entry.name + ".mean")
           << std::right << std::setw(16) << entry.stat->mean();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
    for (const auto *child : children_)
        child->dump(os);
}

void
StatGroup::resetAll()
{
    for (auto &entry : scalars_)
        entry.stat->reset();
    for (auto &entry : averages_)
        entry.stat->reset();
    for (auto *child : children_)
        child->resetAll();
}

} // namespace ladder
