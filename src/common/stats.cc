#include "stats.hh"

#include <algorithm>
#include <iomanip>
#include <limits>

#include "json.hh"
#include "log.hh"

namespace ladder
{

void
StatAverage::sample(double v)
{
    // min_/max_ start at +/-infinity, so the first sample initializes
    // both regardless of its sign (all-negative sets regressed when
    // these were seeded with 0.0).
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
    sum_ += v;
    ++count_;
}

void
StatAverage::reset()
{
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
    count_ = 0;
}

double
StatAverage::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

StatHistogram::StatHistogram(double lo, double hi, unsigned buckets)
{
    init(lo, hi, buckets);
}

void
StatHistogram::init(double lo, double hi, unsigned buckets)
{
    ladder_assert(hi > lo, "histogram: hi <= lo");
    ladder_assert(buckets > 0, "histogram: zero buckets");
    lo_ = lo;
    hi_ = hi;
    counts_.assign(buckets, 0);
    reset();
}

void
StatHistogram::sample(double v)
{
    sum_ += v;
    ++total_;
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    double frac = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<size_t>(frac * counts_.size());
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
}

void
StatHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    total_ = 0;
    sum_ = 0.0;
}

double
StatHistogram::bucketLo(unsigned i) const
{
    return lo_ + (hi_ - lo_) * i / static_cast<double>(counts_.size());
}

void
StatGroup::regScalar(const std::string &name, StatScalar *stat,
                     const std::string &desc)
{
    scalars_.push_back({name, stat, desc});
}

void
StatGroup::regAverage(const std::string &name, StatAverage *stat,
                      const std::string &desc)
{
    averages_.push_back({name, stat, desc});
}

void
StatGroup::regHistogram(const std::string &name, StatHistogram *stat,
                        const std::string &desc)
{
    histograms_.push_back({name, stat, desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &entry : scalars_) {
        os << std::left << std::setw(48) << (name_ + "." + entry.name)
           << std::right << std::setw(16) << entry.stat->value();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
    for (const auto &entry : averages_) {
        os << std::left << std::setw(48)
           << (name_ + "." + entry.name + ".mean")
           << std::right << std::setw(16) << entry.stat->mean();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
    }
    for (const auto &entry : histograms_) {
        const StatHistogram &h = *entry.stat;
        std::string base = name_ + "." + entry.name;
        os << std::left << std::setw(48) << (base + ".samples")
           << std::right << std::setw(16) << h.totalSamples();
        if (!entry.desc.empty())
            os << "  # " << entry.desc;
        os << '\n';
        os << std::left << std::setw(48) << (base + ".mean")
           << std::right << std::setw(16) << h.mean() << '\n';
        os << std::left << std::setw(48) << (base + ".underflow")
           << std::right << std::setw(16) << h.underflow() << '\n';
        os << std::left << std::setw(48) << (base + ".overflow")
           << std::right << std::setw(16) << h.overflow() << '\n';
        os << std::left << std::setw(48) << (base + ".buckets")
           << " |";
        for (unsigned i = 0; i < h.buckets(); ++i)
            os << ' ' << h.bucketCount(i);
        os << '\n';
    }
    for (const auto *child : children_)
        child->dump(os);
}

void
StatGroup::dumpJson(JsonWriter &json) const
{
    json.beginObject();
    json.field("name", name_);
    json.key("scalars");
    json.beginObject();
    for (const auto &entry : scalars_)
        json.field(entry.name, entry.stat->value());
    json.endObject();
    json.key("averages");
    json.beginObject();
    for (const auto &entry : averages_) {
        const StatAverage &a = *entry.stat;
        json.key(entry.name);
        json.beginObject();
        json.field("mean", a.mean());
        json.field("min", a.min());
        json.field("max", a.max());
        json.field("sum", a.sum());
        json.field("count", a.count());
        json.endObject();
    }
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &entry : histograms_) {
        const StatHistogram &h = *entry.stat;
        json.key(entry.name);
        json.beginObject();
        json.field("lo", h.lo());
        json.field("hi", h.hi());
        json.field("bucket_width",
                   h.buckets() ? (h.hi() - h.lo()) / h.buckets()
                               : 0.0);
        json.field("samples", h.totalSamples());
        json.field("mean", h.mean());
        json.field("underflow", h.underflow());
        json.field("overflow", h.overflow());
        json.key("counts");
        json.beginArray();
        for (unsigned i = 0; i < h.buckets(); ++i)
            json.value(h.bucketCount(i));
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.key("children");
    json.beginArray();
    for (const auto *child : children_)
        child->dumpJson(json);
    json.endArray();
    json.endObject();
}

void
StatGroup::visit(
    const std::function<void(const std::string &, double)> &fn) const
{
    for (const auto &entry : scalars_)
        fn(name_ + "." + entry.name, entry.stat->value());
    for (const auto &entry : averages_) {
        fn(name_ + "." + entry.name + ".sum", entry.stat->sum());
        fn(name_ + "." + entry.name + ".count",
           static_cast<double>(entry.stat->count()));
    }
    for (const auto *child : children_)
        child->visit(fn);
}

void
StatGroup::resetAll()
{
    for (auto &entry : scalars_)
        entry.stat->reset();
    for (auto &entry : averages_)
        entry.stat->reset();
    for (auto &entry : histograms_)
        entry.stat->reset();
    for (auto *child : children_)
        child->resetAll();
}

} // namespace ladder
