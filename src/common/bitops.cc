#include "bitops.hh"

#include <cstdlib>
#include <cstring>

#include "log.hh"

#if defined(__x86_64__) && defined(__GNUC__)
#define LADDER_BITOPS_AVX2 1
#include <immintrin.h>
#else
#define LADDER_BITOPS_AVX2 0
#endif

namespace ladder
{

namespace
{

/** Load the 8-byte word starting at line byte @p i. */
inline std::uint64_t
loadWord(const std::uint8_t *p)
{
    std::uint64_t word;
    std::memcpy(&word, p, sizeof(word));
    return word;
}

unsigned
popcountLineWords(const LineData &line)
{
    unsigned total = 0;
    for (size_t i = 0; i < lineBytes; i += 8)
        total += static_cast<unsigned>(
            std::popcount(loadWord(line.data() + i)));
    return total;
}

/**
 * Word-lane popcount over [first, last): whole 8-byte words with the
 * partial head/tail words masked down to the in-range bytes. On a
 * little-endian target byte k of a word loaded from line offset i is
 * line byte i+k, so bytes below `first` are the word's *low* bytes.
 */
unsigned
popcountRangeWords(const LineData &line, size_t first, size_t last)
{
    if (first >= last)
        return 0;
    const size_t lo = first & ~size_t{7};
    const size_t hi = (last + 7) & ~size_t{7};
    unsigned total = 0;
    for (size_t i = lo; i < hi; i += 8) {
        std::uint64_t word = loadWord(line.data() + i);
        if (i < first)
            word &= ~0ull << ((first - i) * 8);
        if (i + 8 > last)
            word &= ~0ull >> ((i + 8 - last) * 8);
        total += static_cast<unsigned>(std::popcount(word));
    }
    return total;
}

unsigned
hammingLineWords(const LineData &a, const LineData &b)
{
    unsigned total = 0;
    for (size_t i = 0; i < lineBytes; i += 8)
        total += static_cast<unsigned>(
            std::popcount(loadWord(a.data() + i) ^
                          loadWord(b.data() + i)));
    return total;
}

BitTransitions
countTransitionsWords(const LineData &before, const LineData &after)
{
    BitTransitions t;
    for (size_t i = 0; i < lineBytes; i += 8) {
        std::uint64_t wb = loadWord(before.data() + i);
        std::uint64_t wa = loadWord(after.data() + i);
        t.resets += static_cast<unsigned>(std::popcount(wb & ~wa));
        t.sets += static_cast<unsigned>(std::popcount(~wb & wa));
    }
    return t;
}

#if LADDER_BITOPS_AVX2

/** Per-byte popcounts of a 32-byte vector via the 4-bit LUT trick. */
__attribute__((target("avx2"))) inline __m256i
bytePopcounts(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0f);
    __m256i lo = _mm256_and_si256(v, nibble);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nibble);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/**
 * Horizontal sum of per-byte counts. Each byte holds at most 16 (two
 * 8-bit popcounts added), so psadbw against zero cannot overflow.
 */
__attribute__((target("avx2"))) inline unsigned
sumBytes(__m256i counts)
{
    __m256i sums = _mm256_sad_epu8(counts, _mm256_setzero_si256());
    return static_cast<unsigned>(
        _mm256_extract_epi64(sums, 0) + _mm256_extract_epi64(sums, 1) +
        _mm256_extract_epi64(sums, 2) + _mm256_extract_epi64(sums, 3));
}

__attribute__((target("avx2"))) inline __m256i
loadHalf(const std::uint8_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

#endif // LADDER_BITOPS_AVX2

} // namespace

bool
bitopsHaveAvx2()
{
#if LADDER_BITOPS_AVX2
    static const bool have = [] {
        if (std::getenv("LADDER_NO_AVX2") != nullptr)
            return false;
        return __builtin_cpu_supports("avx2") != 0;
    }();
    return have;
#else
    return false;
#endif
}

#if LADDER_BITOPS_AVX2

__attribute__((target("avx2"))) unsigned
popcountLineAvx2(const LineData &line)
{
    __m256i a = bytePopcounts(loadHalf(line.data()));
    __m256i b = bytePopcounts(loadHalf(line.data() + 32));
    return sumBytes(_mm256_add_epi8(a, b));
}

__attribute__((target("avx2"))) unsigned
hammingLineAvx2(const LineData &a, const LineData &b)
{
    __m256i x = _mm256_xor_si256(loadHalf(a.data()), loadHalf(b.data()));
    __m256i y = _mm256_xor_si256(loadHalf(a.data() + 32),
                                 loadHalf(b.data() + 32));
    return sumBytes(
        _mm256_add_epi8(bytePopcounts(x), bytePopcounts(y)));
}

__attribute__((target("avx2"))) BitTransitions
countTransitionsAvx2(const LineData &before, const LineData &after)
{
    __m256i b0 = loadHalf(before.data());
    __m256i b1 = loadHalf(before.data() + 32);
    __m256i a0 = loadHalf(after.data());
    __m256i a1 = loadHalf(after.data() + 32);
    // andnot(x, y) = ~x & y: resets are 1->0 bits, sets are 0->1.
    __m256i resets = _mm256_add_epi8(
        bytePopcounts(_mm256_andnot_si256(a0, b0)),
        bytePopcounts(_mm256_andnot_si256(a1, b1)));
    __m256i sets = _mm256_add_epi8(
        bytePopcounts(_mm256_andnot_si256(b0, a0)),
        bytePopcounts(_mm256_andnot_si256(b1, a1)));
    BitTransitions t;
    t.resets = sumBytes(resets);
    t.sets = sumBytes(sets);
    return t;
}

#else // !LADDER_BITOPS_AVX2

// Non-x86 builds keep the symbols (never selected: bitopsHaveAvx2()
// is constant false there) so callers and tests link unchanged.
unsigned
popcountLineAvx2(const LineData &line)
{
    return popcountLineWords(line);
}

unsigned
hammingLineAvx2(const LineData &a, const LineData &b)
{
    return hammingLineWords(a, b);
}

BitTransitions
countTransitionsAvx2(const LineData &before, const LineData &after)
{
    return countTransitionsWords(before, after);
}

#endif // LADDER_BITOPS_AVX2

unsigned
popcountLine(const LineData &line)
{
    if (bitopsHaveAvx2())
        return popcountLineAvx2(line);
    return popcountLineWords(line);
}

unsigned
popcountRange(const LineData &line, size_t first, size_t last)
{
    ladder_assert(first <= last && last <= lineBytes,
                  "range [%zu, %zu) out of bounds", first, last);
    if constexpr (std::endian::native == std::endian::little)
        return popcountRangeWords(line, first, last);
    return popcountRangeScalar(line, first, last);
}

unsigned
maxBytePopcount(const LineData &line, size_t first, size_t last)
{
    ladder_assert(first <= last && last <= lineBytes,
                  "range [%zu, %zu) out of bounds", first, last);
    unsigned best = 0;
    for (size_t i = first; i < last; ++i) {
        unsigned pc = popcount8(line[i]);
        if (pc > best)
            best = pc;
    }
    return best;
}

unsigned
hammingLine(const LineData &a, const LineData &b)
{
    if (bitopsHaveAvx2())
        return hammingLineAvx2(a, b);
    return hammingLineWords(a, b);
}

BitTransitions
countTransitions(const LineData &before, const LineData &after)
{
    if (bitopsHaveAvx2())
        return countTransitionsAvx2(before, after);
    return countTransitionsWords(before, after);
}

unsigned
popcountLineScalar(const LineData &line)
{
    unsigned total = 0;
    for (size_t i = 0; i < lineBytes; ++i)
        total += popcount8(line[i]);
    return total;
}

unsigned
popcountRangeScalar(const LineData &line, size_t first, size_t last)
{
    ladder_assert(first <= last && last <= lineBytes,
                  "range [%zu, %zu) out of bounds", first, last);
    unsigned total = 0;
    for (size_t i = first; i < last; ++i)
        total += popcount8(line[i]);
    return total;
}

unsigned
hammingLineScalar(const LineData &a, const LineData &b)
{
    unsigned total = 0;
    for (size_t i = 0; i < lineBytes; ++i)
        total += popcount8(
            static_cast<std::uint8_t>(a[i] ^ b[i]));
    return total;
}

BitTransitions
countTransitionsScalar(const LineData &before, const LineData &after)
{
    BitTransitions t;
    for (size_t i = 0; i < lineBytes; ++i) {
        t.resets += popcount8(
            static_cast<std::uint8_t>(before[i] & ~after[i]));
        t.sets += popcount8(
            static_cast<std::uint8_t>(~before[i] & after[i]));
    }
    return t;
}

LineData
invertLine(const LineData &line)
{
    LineData out;
    for (size_t i = 0; i < lineBytes; ++i)
        out[i] = static_cast<std::uint8_t>(~line[i]);
    return out;
}

LineData
filledLine(std::uint8_t fill)
{
    LineData out;
    out.fill(fill);
    return out;
}

void
rotateGroupLeft(LineData &line, unsigned group, unsigned amount)
{
    ladder_assert(group < lineBytes / 8, "group %u out of range", group);
    std::uint64_t word;
    std::memcpy(&word, line.data() + group * 8, sizeof(word));
    word = std::rotl(word, static_cast<int>(amount % 64));
    std::memcpy(line.data() + group * 8, &word, sizeof(word));
}

void
transposeGroup(LineData &line, unsigned group)
{
    ladder_assert(group < lineBytes / 8, "group %u out of range", group);
    std::uint64_t x;
    std::memcpy(&x, line.data() + group * 8, sizeof(x));
    // Hacker's Delight 8x8 bit-matrix transpose.
    std::uint64_t t;
    t = (x ^ (x >> 7)) & 0x00aa00aa00aa00aaull;
    x = x ^ t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000cccc0000ccccull;
    x = x ^ t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000f0f0f0f0ull;
    x = x ^ t ^ (t << 28);
    std::memcpy(line.data() + group * 8, &x, sizeof(x));
}

void
rotateGroupRight(LineData &line, unsigned group, unsigned amount)
{
    ladder_assert(group < lineBytes / 8, "group %u out of range", group);
    std::uint64_t word;
    std::memcpy(&word, line.data() + group * 8, sizeof(word));
    word = std::rotr(word, static_cast<int>(amount % 64));
    std::memcpy(line.data() + group * 8, &word, sizeof(word));
}

} // namespace ladder
