#include "bitops.hh"

#include <cstring>

#include "log.hh"

namespace ladder
{

unsigned
popcountLine(const LineData &line)
{
    unsigned total = 0;
    for (size_t i = 0; i < lineBytes; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, line.data() + i, sizeof(word));
        total += static_cast<unsigned>(std::popcount(word));
    }
    return total;
}

unsigned
popcountRange(const LineData &line, size_t first, size_t last)
{
    ladder_assert(first <= last && last <= lineBytes,
                  "range [%zu, %zu) out of bounds", first, last);
    unsigned total = 0;
    for (size_t i = first; i < last; ++i)
        total += popcount8(line[i]);
    return total;
}

unsigned
maxBytePopcount(const LineData &line, size_t first, size_t last)
{
    ladder_assert(first <= last && last <= lineBytes,
                  "range [%zu, %zu) out of bounds", first, last);
    unsigned best = 0;
    for (size_t i = first; i < last; ++i) {
        unsigned pc = popcount8(line[i]);
        if (pc > best)
            best = pc;
    }
    return best;
}

unsigned
hammingLine(const LineData &a, const LineData &b)
{
    unsigned total = 0;
    for (size_t i = 0; i < lineBytes; i += 8) {
        std::uint64_t wa, wb;
        std::memcpy(&wa, a.data() + i, sizeof(wa));
        std::memcpy(&wb, b.data() + i, sizeof(wb));
        total += static_cast<unsigned>(std::popcount(wa ^ wb));
    }
    return total;
}

BitTransitions
countTransitions(const LineData &before, const LineData &after)
{
    BitTransitions t;
    for (size_t i = 0; i < lineBytes; i += 8) {
        std::uint64_t wb, wa;
        std::memcpy(&wb, before.data() + i, sizeof(wb));
        std::memcpy(&wa, after.data() + i, sizeof(wa));
        t.resets += static_cast<unsigned>(std::popcount(wb & ~wa));
        t.sets += static_cast<unsigned>(std::popcount(~wb & wa));
    }
    return t;
}

LineData
invertLine(const LineData &line)
{
    LineData out;
    for (size_t i = 0; i < lineBytes; ++i)
        out[i] = static_cast<std::uint8_t>(~line[i]);
    return out;
}

LineData
filledLine(std::uint8_t fill)
{
    LineData out;
    out.fill(fill);
    return out;
}

void
rotateGroupLeft(LineData &line, unsigned group, unsigned amount)
{
    ladder_assert(group < lineBytes / 8, "group %u out of range", group);
    std::uint64_t word;
    std::memcpy(&word, line.data() + group * 8, sizeof(word));
    word = std::rotl(word, static_cast<int>(amount % 64));
    std::memcpy(line.data() + group * 8, &word, sizeof(word));
}

void
transposeGroup(LineData &line, unsigned group)
{
    ladder_assert(group < lineBytes / 8, "group %u out of range", group);
    std::uint64_t x;
    std::memcpy(&x, line.data() + group * 8, sizeof(x));
    // Hacker's Delight 8x8 bit-matrix transpose.
    std::uint64_t t;
    t = (x ^ (x >> 7)) & 0x00aa00aa00aa00aaull;
    x = x ^ t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000cccc0000ccccull;
    x = x ^ t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x00000000f0f0f0f0ull;
    x = x ^ t ^ (t << 28);
    std::memcpy(line.data() + group * 8, &x, sizeof(x));
}

void
rotateGroupRight(LineData &line, unsigned group, unsigned amount)
{
    ladder_assert(group < lineBytes / 8, "group %u out of range", group);
    std::uint64_t word;
    std::memcpy(&word, line.data() + group * 8, sizeof(word));
    word = std::rotr(word, static_cast<int>(amount % 64));
    std::memcpy(line.data() + group * 8, &word, sizeof(word));
}

} // namespace ladder
