/**
 * @file
 * Bit-manipulation utilities used throughout the LADDER stack: popcounts
 * at byte/line granularity, per-byte maxima, and the bit-level rotation
 * primitive used by the intra-line shifting optimization (paper §4.1).
 *
 * The line-granularity counting kernels (popcountLine, popcountRange,
 * hammingLine, countTransitions) are the content-scan hot path of the
 * write pipeline: every write performs several of them. Each has three
 * implementations:
 *
 *  - a byte-wise *scalar reference* (`...Scalar`), kept as the
 *    semantic specification and used by the property tests;
 *  - a portable uint64-lane version (`std::popcount` over 8-byte
 *    words, partial words masked at unaligned range endpoints);
 *  - an AVX2 kernel (nibble-LUT `pshufb` byte popcount + `psadbw`
 *    horizontal sum) selected by *runtime* dispatch on x86-64, so one
 *    binary runs everywhere. Set LADDER_NO_AVX2=1 to pin the portable
 *    path (e.g. when bisecting a vectorization bug).
 *
 * All three return identical results for all inputs — they count set
 * bits, so there is no floating-point reassociation to worry about —
 * and the equivalence is enforced by an exhaustive sweep in
 * test_bitops (run under ASan/UBSan in CI).
 */

#ifndef LADDER_COMMON_BITOPS_HH
#define LADDER_COMMON_BITOPS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>

#include "types.hh"

namespace ladder
{

/** A 64-byte memory line payload. */
using LineData = std::array<std::uint8_t, lineBytes>;

/** Number of set bits in one byte. */
inline unsigned
popcount8(std::uint8_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/**
 * Whether the AVX2 kernels are compiled in *and* selected at runtime
 * (CPU support present, LADDER_NO_AVX2 unset). Decided once per
 * process, before the first counting call.
 */
bool bitopsHaveAvx2();

/** Number of set bits in an entire 64-byte line. */
unsigned popcountLine(const LineData &line);

/** Number of set bits in a [first, last) byte range of a line. */
unsigned popcountRange(const LineData &line, size_t first, size_t last);

/** Maximum per-byte popcount over a [first, last) byte range. */
unsigned maxBytePopcount(const LineData &line, size_t first, size_t last);

/** Number of differing bits between two lines (Hamming distance). */
unsigned hammingLine(const LineData &a, const LineData &b);

/**
 * Number of 1->0 transitions (RESETs) and 0->1 transitions (SETs) needed
 * to turn @p before into @p after.
 */
struct BitTransitions
{
    unsigned resets = 0; //!< bits going 1 -> 0 (LRS -> HRS)
    unsigned sets = 0;   //!< bits going 0 -> 1 (HRS -> LRS)
};

BitTransitions countTransitions(const LineData &before,
                                const LineData &after);

// --------------------------------------------------------------------
// Scalar reference implementations (the specification the dispatched
// kernels are tested against; byte-at-a-time, no word tricks).
// --------------------------------------------------------------------

unsigned popcountLineScalar(const LineData &line);
unsigned popcountRangeScalar(const LineData &line, size_t first,
                             size_t last);
unsigned hammingLineScalar(const LineData &a, const LineData &b);
BitTransitions countTransitionsScalar(const LineData &before,
                                      const LineData &after);

// --------------------------------------------------------------------
// AVX2 kernels (valid to call only when bitopsHaveAvx2(); exposed so
// the equivalence tests can pin the vector path explicitly).
// --------------------------------------------------------------------

unsigned popcountLineAvx2(const LineData &line);
unsigned hammingLineAvx2(const LineData &a, const LineData &b);
BitTransitions countTransitionsAvx2(const LineData &before,
                                    const LineData &after);

/** Bitwise NOT of an entire line. */
LineData invertLine(const LineData &line);

/** A line with every byte equal to @p fill. */
LineData filledLine(std::uint8_t fill);

/**
 * Rotate the bits of an 8-byte group left by @p amount positions,
 * treating the 8 bytes as a 64-bit little-endian quantity.
 *
 * This is the primitive behind LADDER's intra-line bit-level shifting:
 * the 8 bytes a chip contributes to a line are rotated so that clustered
 * '1' bytes are spread across the chip's 8 mats. Rotation is exactly
 * invertible (rotate right by the same amount).
 *
 * @param line Line to transform (modified in place).
 * @param group Which 8-byte group (0-7) to rotate.
 * @param amount Rotation amount in bits (taken modulo 64).
 */
void rotateGroupLeft(LineData &line, unsigned group, unsigned amount);

/** Inverse of rotateGroupLeft. */
void rotateGroupRight(LineData &line, unsigned group, unsigned amount);

/**
 * Transpose the 8x8 bit matrix formed by an 8-byte group: bit j of
 * byte i swaps with bit i of byte j. A dense byte (e.g. a sign-
 * extension or FP-exponent byte) is thereby spread one bit into each
 * of the 8 bytes — i.e. one bit into each mat of the chip. The
 * transform is an involution (applying it twice restores the data).
 */
void transposeGroup(LineData &line, unsigned group);

} // namespace ladder

#endif // LADDER_COMMON_BITOPS_HH
