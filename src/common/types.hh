/**
 * @file
 * Fundamental type aliases shared across the LADDER codebase.
 */

#ifndef LADDER_COMMON_TYPES_HH
#define LADDER_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace ladder
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** Number of ticks per nanosecond (the base unit is one picosecond). */
constexpr Tick ticksPerNs = 1000;

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs) + 0.5);
}

/** Convert ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Sentinel for "no tick" / "not scheduled". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel for an invalid address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Size of one memory block / cache line in bytes. */
constexpr unsigned lineBytes = 64;

} // namespace ladder

#endif // LADDER_COMMON_TYPES_HH
