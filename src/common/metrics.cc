#include "metrics.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "common/log.hh"

namespace ladder::metrics
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace
{

/**
 * One metric's slot on one thread: a full cache line so two threads
 * bumping adjacent metrics never false-share. The owning thread is
 * the only writer (plain relaxed load+store — single-writer counters
 * need no RMW); snapshot() reads concurrently with relaxed loads.
 */
struct alignas(64) Slot
{
    std::atomic<std::uint64_t> value{0};
};
static_assert(sizeof(Slot) == 64, "one cache line per slot");

constexpr std::size_t slotsPerBlock = 64;
constexpr std::size_t maxBlocks = 256; // 16k metrics is plenty

/**
 * One thread's slots, grown block-at-a-time so registering a metric
 * after a thread started never moves slots other threads may be
 * reading. Blocks are published with release stores by the owning
 * thread and read with acquire loads by snapshot(); jointly owned by
 * the thread (thread_local handle) and the registry (shared_ptr), so
 * counts survive thread exit — sweep pools die before the final
 * snapshot.
 */
struct Slab
{
    std::atomic<Slot *> blocks[maxBlocks] = {};

    ~Slab()
    {
        for (auto &block : blocks)
            delete[] block.load(std::memory_order_relaxed);
    }

    Slot &
    slot(MetricId id)
    {
        std::size_t index = id / slotsPerBlock;
        ladder_assert(index < maxBlocks, "metric id %u out of range",
                      id);
        Slot *block = blocks[index].load(std::memory_order_acquire);
        if (!block) {
            block = new Slot[slotsPerBlock];
            blocks[index].store(block, std::memory_order_release);
        }
        return block[id % slotsPerBlock];
    }

    /** Relaxed read of one slot; 0 when the block was never touched. */
    std::uint64_t
    read(MetricId id) const
    {
        std::size_t index = id / slotsPerBlock;
        const Slot *block =
            index < maxBlocks
                ? blocks[index].load(std::memory_order_acquire)
                : nullptr;
        if (!block)
            return 0;
        return block[id % slotsPerBlock].value.load(
            std::memory_order_relaxed);
    }
};

struct Meta
{
    std::string name;
    Kind kind = Kind::Counter;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, MetricId> byName;
    std::vector<Meta> metas;
    std::vector<std::shared_ptr<Slab>> slabs;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: usable at any exit
    return *r;
}

Slab &
currentSlab()
{
    thread_local std::shared_ptr<Slab> slab = []() {
        auto s = std::make_shared<Slab>();
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.slabs.push_back(s);
        return s;
    }();
    return *slab;
}

MetricId
registerMetric(const std::string &name, Kind kind)
{
    ladder_assert(!name.empty(), "metrics: empty name");
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto it = reg.byName.find(name);
    if (it != reg.byName.end()) {
        ladder_assert(reg.metas[it->second].kind == kind,
                      "metric '%s' re-registered with a different "
                      "kind",
                      name.c_str());
        return it->second;
    }
    MetricId id = static_cast<MetricId>(reg.metas.size());
    ladder_assert(id < slotsPerBlock * maxBlocks,
                  "metrics: registry full");
    reg.metas.push_back({name, kind});
    reg.byName.emplace(name, id);
    return id;
}

} // namespace

namespace detail
{

void
addSlow(std::uint32_t id, std::uint64_t delta)
{
    // Single writer per slot: a relaxed load+store is a full RMW's
    // worth of correctness at plain-store cost.
    std::atomic<std::uint64_t> &v = currentSlab().slot(id).value;
    v.store(v.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

void
setSlow(std::uint32_t id, std::uint64_t value)
{
    currentSlab().slot(id).value.store(value,
                                       std::memory_order_relaxed);
}

} // namespace detail

MetricId
registerCounter(const std::string &name)
{
    return registerMetric(name, Kind::Counter);
}

MetricId
registerGauge(const std::string &name)
{
    return registerMetric(name, Kind::Gauge);
}

std::vector<Sample>
snapshot()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<Sample> out;
    out.reserve(reg.byName.size());
    for (const auto &entry : reg.byName) { // name order
        Sample s;
        s.name = entry.first;
        s.kind = reg.metas[entry.second].kind;
        for (const auto &slab : reg.slabs)
            s.value += slab->read(entry.second);
        out.push_back(std::move(s));
    }
    return out;
}

std::uint64_t
value(MetricId id)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::uint64_t sum = 0;
    for (const auto &slab : reg.slabs)
        sum += slab->read(id);
    return sum;
}

void
enable()
{
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (const auto &slab : reg.slabs) {
            for (const auto &block : slab->blocks) {
                Slot *slots = block.load(std::memory_order_acquire);
                if (!slots)
                    continue;
                for (std::size_t i = 0; i < slotsPerBlock; ++i)
                    slots[i].value.store(0,
                                         std::memory_order_relaxed);
            }
        }
    }
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
reset()
{
    disable();
    enable();
    disable();
}

} // namespace ladder::metrics
