#include "profiler.hh"

#include <chrono>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace ladder::prof
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace
{

/**
 * One thread's append-only buffer. Owned jointly by the thread (via
 * its thread_local handle) and the registry, so the data outlives the
 * thread. The owning thread is the only writer; the coordinator reads
 * via collect() only while writers are quiescent, which is what makes
 * the unsynchronized vectors safe (the pool join / thread exit
 * provides the happens-before edge).
 */
struct ThreadBuf
{
    std::uint64_t id = 0;
    std::string name; //!< written under the registry mutex
    std::vector<Span> spans;
    std::vector<CounterSample> counters;
    /** Innermost open span, readable mid-run by activeSpans(). */
    std::atomic<const char *> activeSpan{nullptr};
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuf>> threads;
    std::unordered_set<std::string> internedNames;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: usable at any exit
    return *r;
}

std::shared_ptr<ThreadBuf>
currentBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = []() {
        auto b = std::make_shared<ThreadBuf>();
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        b->id = reg.threads.size();
        reg.threads.push_back(b);
        return b;
    }();
    return buf;
}

std::chrono::steady_clock::time_point
anchor()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

} // namespace

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - anchor())
            .count());
}

void
enable()
{
    anchor(); // pin the epoch before any span can sample it
    Registry &reg = registry();
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        for (auto &buf : reg.threads) {
            buf->spans.clear();
            buf->counters.clear();
        }
    }
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
recordSpan(const char *name, std::uint64_t startNs,
           std::uint64_t endNs)
{
    ThreadBuf &buf = *currentBuf();
    buf.spans.push_back({name, startNs, endNs});
}

void
recordCounter(const char *name, double value)
{
    ThreadBuf &buf = *currentBuf();
    buf.counters.push_back({name, nowNs(), value});
}

void
setCurrentThreadName(const std::string &name)
{
    std::shared_ptr<ThreadBuf> buf = currentBuf();
    // Under the registry mutex so activeSpans() can read names of
    // live threads without racing the write.
    std::lock_guard<std::mutex> lock(registry().mutex);
    buf->name = name;
}

const char *
internName(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.internedNames.insert(name).first->c_str();
}

std::vector<ThreadLog>
collect()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<ThreadLog> out;
    out.reserve(reg.threads.size());
    for (const auto &buf : reg.threads) {
        ThreadLog log;
        log.threadId = buf->id;
        log.name = buf->name;
        log.spans = buf->spans;
        log.counters = buf->counters;
        out.push_back(std::move(log));
    }
    return out;
}

std::vector<ActiveSpan>
activeSpans()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<ActiveSpan> out;
    for (const auto &buf : reg.threads) {
        const char *name =
            buf->activeSpan.load(std::memory_order_relaxed);
        if (!name)
            continue;
        out.push_back({buf->id, buf->name, name});
    }
    return out;
}

namespace detail
{

const char *
enterSpan(const char *name)
{
    std::atomic<const char *> &slot = currentBuf()->activeSpan;
    const char *previous = slot.load(std::memory_order_relaxed);
    slot.store(name, std::memory_order_relaxed);
    return previous;
}

void
exitSpan(const char *previous)
{
    currentBuf()->activeSpan.store(previous,
                                   std::memory_order_relaxed);
}

} // namespace detail

void
reset()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &buf : reg.threads) {
        buf->spans.clear();
        buf->counters.clear();
    }
}

} // namespace ladder::prof
