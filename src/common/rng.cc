#include "rng.hh"

#include <cmath>

#include "log.hh"

namespace ladder
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t x)
{
    return splitmix64(x);
}

namespace
{

inline std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl64(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    ladder_assert(bound > 0, "nextBounded(0)");
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = (0 - bound) % bound;
        while (l < t) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    ladder_assert(lo <= hi, "nextRange: lo > hi");
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

std::uint64_t
Rng::nextGeometric(double p)
{
    ladder_assert(p > 0.0 && p <= 1.0, "nextGeometric: p out of range");
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log(1.0 - p)));
}

double
Rng::nextGaussian()
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    ladder_assert(n > 0, "nextZipf: n == 0");
    if (n == 1)
        return 0;
    // Rejection-inversion sampling for the Zipf distribution
    // (W. Hormann & G. Derflinger style, simplified for s != 1 handled
    // via the generalized harmonic integral).
    const double e = 1.0 - s;
    auto h = [&](double x) {
        if (std::abs(e) < 1e-12)
            return std::log(x);
        return (std::pow(x, e) - 1.0) / e;
    };
    auto hInv = [&](double y) {
        if (std::abs(e) < 1e-12)
            return std::exp(y);
        return std::pow(1.0 + y * e, 1.0 / e);
    };
    const double hx0 = h(0.5) - 1.0;
    const double hn = h(static_cast<double>(n) + 0.5);
    while (true) {
        double u = hx0 + nextDouble() * (hn - hx0);
        double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double kd = static_cast<double>(k);
        if (u >= h(kd + 0.5) - std::pow(kd, -s) || k == 1)
            return k - 1;
    }
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace ladder
