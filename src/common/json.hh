/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * with deterministic number formatting (so identical runs emit
 * byte-identical files), and a small recursive-descent parser used by
 * the round-trip tests and any tooling that wants to read stats back.
 *
 * No external dependency: the simulator's JSON needs are a strict,
 * well-formed subset (objects, arrays, strings, finite numbers, bools,
 * null), so ~300 lines beat vendoring a header-only library.
 */

#ifndef LADDER_COMMON_JSON_HH
#define LADDER_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ladder
{

/**
 * Streaming JSON writer. Callers drive an explicit object/array stack:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("ipc"); w.value(1.25);
 *   w.key("cores"); w.beginArray(); w.value(0.9); w.endArray();
 *   w.endObject();
 *
 * Output is pretty-printed with two-space indentation. Doubles are
 * formatted with %.17g (round-trip exact, deterministic for a given
 * libc); NaN and infinities — which JSON cannot represent — become
 * null. The writer panics on misuse (value without key inside an
 * object, unbalanced end calls), so malformed output cannot be
 * produced silently.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key for the next value (objects only). */
    void key(const std::string &k);

    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(const std::string &v);
    void value(const char *v) { value(std::string(v)); }
    void value(bool v);
    void valueNull();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(const std::string &k, const T &v)
    {
        key(k);
        value(v);
    }

    /** Whether every beginObject/beginArray has been closed. */
    bool balanced() const { return stack_.empty(); }

    /** Escape a string as a JSON string literal (with quotes). */
    static std::string escape(const std::string &s);

  private:
    struct Frame
    {
        bool isObject = false;
        bool hasEntries = false;
        bool keyPending = false;
    };

    std::ostream &os_;
    std::vector<Frame> stack_;

    void prepareValue();
    void newline();
};

/** Parsed JSON document node (test/tooling side). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isNull() const { return type == Type::Null; }
    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Object member access; panics when absent or not an object. */
    const JsonValue &at(const std::string &k) const;
    /** Whether an object member exists. */
    bool has(const std::string &k) const;
};

/**
 * Parse a complete JSON document. Panics (via ladder_assert) on
 * malformed input — the parser exists to check our own writer and read
 * back our own files, not to survive hostile data.
 */
JsonValue parseJson(const std::string &text);

} // namespace ladder

#endif // LADDER_COMMON_JSON_HH
