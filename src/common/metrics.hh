/**
 * @file
 * Live run metrics: lock-free per-thread counters and gauges sampled
 * *while the simulation runs* (the telemetry heartbeat, watchdog, and
 * progress summaries in sim/telemetry all read from here). This is
 * the always-on complement to common/profiler: where the profiler
 * records a timeline for post-run export, the metrics registry keeps
 * a handful of monotonic counters and last-value gauges that a
 * concurrent publisher thread can aggregate at any moment without
 * stopping the writers.
 *
 * Discipline (same bar as the profiler's disabled fast path):
 *  - Disabled (the default), every instrumented site costs exactly
 *    one relaxed atomic load and a predictable branch — no clock, no
 *    lock, no allocation — so sites can live on the controller's
 *    per-write dispatch path without perturbing production runs.
 *  - Enabled, each site touches only the calling thread's own
 *    cache-line-aligned slot (single-writer relaxed load/store, not
 *    even a fetch_add), so recording never contends across threads.
 *  - snapshot() sums the per-thread slots with relaxed loads. Each
 *    slot is a 64-bit atomic, so individual reads are torn-free; the
 *    aggregate is a momentary view, exact once writers quiesce.
 *
 * Counters accumulate (aggregate = sum over threads). Gauges hold the
 * last value each thread set (aggregate = sum of per-thread last
 * values — exact for single-writer gauges like a per-channel queue
 * depth, a documented over-count when concurrent sweep cells set the
 * same gauge).
 *
 * Registration (registerCounter/registerGauge) takes a lock and may
 * allocate: register once — in a constructor or a function-local
 * static — never per event. Ids are process-global and stable;
 * re-registering the same name returns the same id.
 */

#ifndef LADDER_COMMON_METRICS_HH
#define LADDER_COMMON_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ladder::metrics
{

namespace detail
{
/** The one global the disabled fast path touches. */
extern std::atomic<bool> g_enabled;

void addSlow(std::uint32_t id, std::uint64_t delta);
void setSlow(std::uint32_t id, std::uint64_t value);
} // namespace detail

/** Whether recording is on: one relaxed load, the disabled cost. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Stable process-global handle for one named metric. */
using MetricId = std::uint32_t;

enum class Kind : std::uint8_t
{
    Counter, //!< monotonic accumulator (aggregate = sum)
    Gauge,   //!< last value per thread (aggregate = sum of lasts)
};

/**
 * Register (or look up) a counter. Takes a lock; call once per site.
 * Registering an existing name with a different kind panics.
 */
MetricId registerCounter(const std::string &name);

/** Register (or look up) a gauge. Same contract as registerCounter. */
MetricId registerGauge(const std::string &name);

/** Add @p delta to the calling thread's slot for counter @p id. */
inline void
add(MetricId id, std::uint64_t delta = 1)
{
    if (!enabled())
        return;
    detail::addSlow(id, delta);
}

/** Set the calling thread's slot for gauge @p id to @p value. */
inline void
set(MetricId id, std::uint64_t value)
{
    if (!enabled())
        return;
    detail::setSlow(id, value);
}

/** One aggregated metric, as returned by snapshot(). */
struct Sample
{
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t value = 0;
};

/**
 * Aggregate every registered metric across all threads (including
 * threads that have since exited), in name order. Safe to call from
 * any thread while writers are recording: each slot read is a relaxed
 * atomic load, so values are torn-free per metric and counters are
 * monotonic across successive snapshots.
 */
std::vector<Sample> snapshot();

/** Aggregate a single metric (same guarantees as snapshot()). */
std::uint64_t value(MetricId id);

/**
 * Zero every slot and start recording. Call from the coordinating
 * thread before the instrumented threads start (concurrent recorders
 * could lose pre-enable updates to the zeroing, nothing worse).
 */
void enable();

/** Stop recording (slots keep their values for late snapshots). */
void disable();

/** Disable and zero every slot (tests). */
void reset();

/** Shared metric names read by name in sim/telemetry. */
namespace names
{
/** Gauge: latest event-queue tick any controller dispatched at. */
inline constexpr const char *simTick = "sim.tick";
/** Counter: sweep cells finished so far. */
inline constexpr const char *cellsDone = "sweep.cells_done";
/** Gauge: total cells in the active sweep. */
inline constexpr const char *cellsTotal = "sweep.cells_total";
} // namespace names

} // namespace ladder::metrics

#endif // LADDER_COMMON_METRICS_HH
