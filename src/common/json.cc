#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "log.hh"

namespace ladder
{

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::newline()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty())
        return;
    Frame &top = stack_.back();
    if (top.isObject) {
        ladder_assert(top.keyPending,
                      "json: value inside an object without a key");
        top.keyPending = false;
        return;
    }
    if (top.hasEntries)
        os_ << ',';
    top.hasEntries = true;
    newline();
}

void
JsonWriter::key(const std::string &k)
{
    ladder_assert(!stack_.empty() && stack_.back().isObject,
                  "json: key() outside an object");
    Frame &top = stack_.back();
    ladder_assert(!top.keyPending, "json: two keys in a row");
    if (top.hasEntries)
        os_ << ',';
    top.hasEntries = true;
    newline();
    os_ << escape(k) << ": ";
    top.keyPending = true;
}

void
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back({true, false, false});
}

void
JsonWriter::endObject()
{
    ladder_assert(!stack_.empty() && stack_.back().isObject,
                  "json: endObject() without beginObject()");
    ladder_assert(!stack_.back().keyPending,
                  "json: endObject() with a dangling key");
    bool hadEntries = stack_.back().hasEntries;
    stack_.pop_back();
    if (hadEntries)
        newline();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back({false, false, false});
}

void
JsonWriter::endArray()
{
    ladder_assert(!stack_.empty() && !stack_.back().isObject,
                  "json: endArray() without beginArray()");
    bool hadEntries = stack_.back().hasEntries;
    stack_.pop_back();
    if (hadEntries)
        newline();
    os_ << ']';
}

void
JsonWriter::value(double v)
{
    prepareValue();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os_ << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
}

void
JsonWriter::value(const std::string &v)
{
    prepareValue();
    os_ << escape(v);
}

void
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    prepareValue();
    os_ << "null";
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

const JsonValue &
JsonValue::at(const std::string &k) const
{
    ladder_assert(type == Type::Object, "json: at() on a non-object");
    auto it = object.find(k);
    ladder_assert(it != object.end(), "json: missing key '%s'",
                  k.c_str());
    return it->second;
}

bool
JsonValue::has(const std::string &k) const
{
    return type == Type::Object && object.count(k) > 0;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipSpace();
        ladder_assert(pos_ == text_.size(),
                      "json: trailing characters at offset %zu", pos_);
        return v;
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        ladder_assert(pos_ < text_.size(), "json: unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        ladder_assert(peek() == c,
                      "json: expected '%c' at offset %zu, got '%c'", c,
                      pos_, text_[pos_]);
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t len = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, len, lit) != 0)
            return false;
        pos_ += len;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            ladder_assert(pos_ < text_.size(),
                          "json: unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            ladder_assert(pos_ < text_.size(),
                          "json: unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                ladder_assert(pos_ + 4 <= text_.size(),
                              "json: truncated \\u escape");
                unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(),
                                 nullptr, 16));
                pos_ += 4;
                // Only the BMP subset our writer emits (control
                // chars); encode as UTF-8 for completeness.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                panic("json: bad escape '\\%c'", e);
            }
        }
        return out;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        JsonValue v;
        if (c == '{') {
            ++pos_;
            v.type = JsonValue::Type::Object;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                std::string k = parseString();
                expect(':');
                v.object.emplace(std::move(k), parseValue());
                char next = peek();
                ++pos_;
                if (next == '}')
                    break;
                ladder_assert(next == ',',
                              "json: expected ',' or '}' in object");
            }
            return v;
        }
        if (c == '[') {
            ++pos_;
            v.type = JsonValue::Type::Array;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.array.push_back(parseValue());
                char next = peek();
                ++pos_;
                if (next == ']')
                    break;
                ladder_assert(next == ',',
                              "json: expected ',' or ']' in array");
            }
            return v;
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
        }
        skipSpace();
        if (consumeLiteral("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = false;
            return v;
        }
        if (consumeLiteral("null"))
            return v;
        // Number.
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double num = std::strtod(start, &end);
        ladder_assert(end != start, "json: bad token at offset %zu",
                      pos_);
        pos_ += static_cast<std::size_t>(end - start);
        v.type = JsonValue::Type::Number;
        v.number = num;
        return v;
    }
};

} // anonymous namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace ladder
