/**
 * @file
 * A minimal typed key=value configuration store. Examples and benches use
 * it to override simulator defaults from the command line or environment.
 */

#ifndef LADDER_COMMON_CONFIG_HH
#define LADDER_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ladder
{

/**
 * Flat configuration dictionary with typed accessors and defaults.
 * Keys are dotted paths such as "ctrl.write_queue_entries".
 */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void setInt(const std::string &key, std::int64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** Whether a key is present. */
    bool has(const std::string &key) const;

    /** Typed getters that fall back to @p fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /**
     * Parse "key=value" tokens (e.g. command-line arguments). Tokens
     * without '=' are ignored and returned for the caller to interpret.
     *
     * Prefer the strict overload below: this one silently accepts any
     * key, so a typo configures nothing and nobody notices.
     */
    std::vector<std::string> parseArgs(int argc, const char *const *argv);

    /**
     * Strict variant: every `key=value` key must appear in
     * @p allowedKeys, or the parse fails with fatal() and a near-miss
     * suggestion (`mde=dump` suggests `mode`). Tokens without '=' are
     * still returned as positional leftovers. Tools with a small fixed
     * key set (trace_cat, latency_explorer) use this; the experiment
     * drivers validate against the full ParamRegistry instead.
     */
    std::vector<std::string>
    parseArgs(int argc, const char *const *argv,
              const std::vector<std::string> &allowedKeys);

    /** All keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace ladder

#endif // LADDER_COMMON_CONFIG_HH
