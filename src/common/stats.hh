/**
 * @file
 * A small gem5-flavoured statistics package. Components register named
 * statistics into a StatGroup; runners dump them as aligned text or —
 * for machine consumption — as JSON (dumpJson), and can flatten every
 * leaf to (name, value) pairs for epoch time-series capture (visit).
 */

#ifndef LADDER_COMMON_STATS_HH
#define LADDER_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ladder
{

class JsonWriter;

/** A monotonically accumulating scalar statistic. */
class StatScalar
{
  public:
    StatScalar() = default;

    StatScalar &operator+=(double v) { value_ += v; return *this; }
    StatScalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    /** Fold another scalar's accumulated value into this one. */
    void mergeFrom(const StatScalar &other) { value_ += other.value_; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Running mean/min/max of sampled values. */
class StatAverage
{
  public:
    void sample(double v);
    void reset();

    /**
     * Fold another average's samples into this one. Summation order
     * is the caller's responsibility; the channel engine folds shards
     * in fixed channel order so the result is deterministic.
     */
    void
    mergeFrom(const StatAverage &other)
    {
        sum_ += other.sum_;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    double mean() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

  private:
    double sum_ = 0.0;
    // Sentinel-initialized so the first sample always wins the
    // comparison, whatever its sign (an earlier version seeded these
    // with 0.0, which broke min() for all-negative sample sets).
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class StatHistogram
{
  public:
    StatHistogram() = default;
    StatHistogram(double lo, double hi, unsigned buckets);

    void init(double lo, double hi, unsigned buckets);
    void sample(double v);
    void reset();

    unsigned buckets() const
    {
        return static_cast<unsigned>(counts_.size());
    }
    std::uint64_t bucketCount(unsigned i) const { return counts_.at(i); }
    double bucketLo(unsigned i) const;
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

  private:
    double lo_ = 0.0;
    double hi_ = 1.0;
    double sum_ = 0.0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    std::vector<std::uint64_t> counts_;
};

/**
 * A named collection of statistics. Ownership of the stats themselves
 * stays with the registering component; the group only holds pointers,
 * so it must not outlive its components.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void regScalar(const std::string &name, StatScalar *stat,
                   const std::string &desc = "");
    void regAverage(const std::string &name, StatAverage *stat,
                    const std::string &desc = "");
    void regHistogram(const std::string &name, StatHistogram *stat,
                      const std::string &desc = "");
    void addChild(StatGroup *child);

    /** Dump all registered stats (and children) as aligned text. */
    void dump(std::ostream &os) const;

    /**
     * Dump this group (and children, recursively) as one JSON object:
     * scalars as plain numbers, averages as {mean,min,max,sum,count},
     * histograms as bucket arrays with their bounds. The writer must
     * be positioned where a value is expected (after key()).
     */
    void dumpJson(JsonWriter &json) const;

    /**
     * Visit every scalar-valued leaf as ("group.stat", value) pairs:
     * scalars report their value, averages their ".sum" and ".count"
     * (so consumers can difference epochs into rates and means).
     * Histogram buckets are intentionally skipped — they would bloat
     * an epoch series; read them from the final dumpJson instead.
     * Children are visited in registration order.
     */
    void visit(const std::function<void(const std::string &, double)>
                   &fn) const;

    /** Reset every registered stat (children included). */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    struct ScalarEntry
    {
        std::string name;
        StatScalar *stat;
        std::string desc;
    };
    struct AverageEntry
    {
        std::string name;
        StatAverage *stat;
        std::string desc;
    };
    struct HistogramEntry
    {
        std::string name;
        StatHistogram *stat;
        std::string desc;
    };

    std::string name_;
    std::vector<ScalarEntry> scalars_;
    std::vector<AverageEntry> averages_;
    std::vector<HistogramEntry> histograms_;
    std::vector<StatGroup *> children_;
};

} // namespace ladder

#endif // LADDER_COMMON_STATS_HH
