/**
 * @file
 * A bounded blocking FIFO for handing work between threads with
 * backpressure: push() blocks while the queue is at capacity, pop()
 * blocks while it is empty, and close() releases both sides so a
 * producer/consumer pair can shut down cleanly. The streaming trace
 * writer uses it to bound the number of in-flight trace chunks — the
 * simulation thread stalls instead of buffering unboundedly when the
 * disk cannot keep up.
 */

#ifndef LADDER_COMMON_BOUNDED_QUEUE_HH
#define LADDER_COMMON_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/log.hh"

namespace ladder
{

/** Bounded blocking FIFO (any number of producers and consumers). */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        ladder_assert(capacity_ > 0, "BoundedQueue: zero capacity");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue holds capacity()
     * items. Returns false (dropping the item) if the queue was
     * closed before space became available.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [this]() {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is empty.
     * Returns nullopt once the queue is closed *and* drained, so a
     * consumer loop `while (auto item = q.pop())` processes every
     * item pushed before close().
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [this]() {
            return closed_ || !items_.empty();
        });
        if (items_.empty())
            return std::nullopt;
        std::optional<T> item(std::move(items_.front()));
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return item;
    }

    /**
     * Close the queue: subsequent push() calls fail, and pop() drains
     * the remaining items before reporting exhaustion. Idempotent.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    std::size_t capacity_;
    bool closed_ = false;
};

} // namespace ladder

#endif // LADDER_COMMON_BOUNDED_QUEUE_HH
