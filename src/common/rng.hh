/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256** seeded via
 * splitmix64). Every stochastic component in the simulator draws from an
 * explicitly seeded Rng so runs are reproducible bit-for-bit.
 */

#ifndef LADDER_COMMON_RNG_HH
#define LADDER_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace ladder
{

/** One splitmix64 step; used for seeding and cheap hashing. */
std::uint64_t splitmix64(std::uint64_t &state);

/** Stateless 64-bit mix (finalizer) usable as a hash. */
std::uint64_t mix64(std::uint64_t x);

/**
 * xoshiro256** generator. Small, fast, and high quality; good enough for
 * workload synthesis and parameter jitter (we are not doing cryptography).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Geometric-ish draw: number of failures before success(p). */
    std::uint64_t nextGeometric(double p);

    /** Standard normal via Box-Muller (no caching; two draws). */
    double nextGaussian();

    /**
     * Zipf-distributed integer in [0, n) with exponent @p s, via
     * rejection-inversion (Jacobsohn). Used for page popularity.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Split off an independent child generator. */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace ladder

#endif // LADDER_COMMON_RNG_HH
