/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * ranges, used by the v2 chunked trace format to detect corruption of
 * chunk payloads and of the footer index. The incremental form lets
 * callers checksum data that arrives in pieces:
 *
 *   std::uint32_t crc = crc32Init();
 *   crc = crc32Update(crc, a, lenA);
 *   crc = crc32Update(crc, b, lenB);
 *   std::uint32_t digest = crc32Final(crc);
 */

#ifndef LADDER_COMMON_CRC32_HH
#define LADDER_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace ladder
{

/** Initial running value (all-ones preconditioning). */
inline std::uint32_t
crc32Init()
{
    return 0xFFFFFFFFu;
}

/** Fold @p len bytes at @p data into the running value. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

/** Finalize a running value into the standard digest. */
inline std::uint32_t
crc32Final(std::uint32_t crc)
{
    return crc ^ 0xFFFFFFFFu;
}

/** One-shot digest of a contiguous buffer. */
std::uint32_t crc32(const void *data, std::size_t len);

} // namespace ladder

#endif // LADDER_COMMON_CRC32_HH
