#include "param_registry.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace ladder
{
namespace param_detail
{

bool
parseInt64(const std::string &text, std::int64_t &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

bool
parseUint64(const std::string &text, std::uint64_t &out,
            bool &negative)
{
    negative = false;
    if (text.empty())
        return false;
    // strtoull silently wraps "-1" to 2^64-1; catch the sign first so
    // a negative value is reported as such instead of overflowing.
    std::size_t i = 0;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    if (i < text.size() && text[i] == '-') {
        negative = true;
        return false;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parseDoubleStrict(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
parseBoolStrict(const std::string &text, bool &out)
{
    if (text == "true" || text == "1" || text == "yes") {
        out = true;
        return true;
    }
    if (text == "false" || text == "0" || text == "no") {
        out = false;
        return true;
    }
    return false;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

unsigned
editDistance(const std::string &a, const std::string &b)
{
    const std::size_t n = a.size(), m = b.size();
    std::vector<unsigned> prev(m + 1), cur(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = static_cast<unsigned>(j);
    for (std::size_t i = 1; i <= n; ++i) {
        cur[0] = static_cast<unsigned>(i);
        for (std::size_t j = 1; j <= m; ++j) {
            unsigned sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[m];
}

std::string
suggestNearest(const std::string &key,
               const std::vector<std::string> &candidates)
{
    unsigned best = ~0u;
    const std::string *winner = nullptr;
    for (const auto &candidate : candidates) {
        unsigned d = editDistance(key, candidate);
        if (d < best) {
            best = d;
            winner = &candidate;
        }
    }
    // Only suggest when the candidate is plausibly a typo of the key;
    // a far-away "suggestion" is worse than none.
    unsigned budget = static_cast<unsigned>(
        std::max<std::size_t>(2, key.size() / 3));
    if (!winner || best > budget)
        return "";
    return " (did you mean '" + *winner + "'?)";
}

[[noreturn]] void
unknownKeyError(const std::string &source, const std::string &key,
                const std::vector<std::string> &candidates)
{
    fatal("%s: unknown config key '%s'%s — run with --help-config "
          "for the full parameter list",
          source.c_str(), key.c_str(),
          suggestNearest(key, candidates).c_str());
}

[[noreturn]] void
valueError(const std::string &source, const std::string &key,
           const std::string &value, const std::string &problem,
           const std::string &doc)
{
    fatal("%s: %s=%s %s — %s", source.c_str(), key.c_str(),
          value.c_str(), problem.c_str(), doc.c_str());
}

} // namespace param_detail
} // namespace ladder
