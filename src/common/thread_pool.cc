#include "thread_pool.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#if defined(__GLIBC__)
#include <sched.h>
#endif
#endif

#include "common/metrics.hh"
#include "common/profiler.hh"

namespace ladder
{

namespace
{

metrics::MetricId
poolTasksMetric()
{
    static const metrics::MetricId id =
        metrics::registerCounter("pool.tasks");
    return id;
}

metrics::MetricId
poolIdleNsMetric()
{
    static const metrics::MetricId id =
        metrics::registerCounter("pool.idle_ns");
    return id;
}

/**
 * Name the calling worker for profiles, TSan reports, and `top -H`.
 * pthread names are capped at 15 chars, so "ladder-wk-N" fits up to
 * four index digits.
 */
void
nameWorkerThread(unsigned index)
{
    char name[16];
    std::snprintf(name, sizeof(name), "ladder-wk-%u", index);
#if defined(__linux__)
    pthread_setname_np(pthread_self(), name);
#endif
    prof::setCurrentThreadName(name);
}

/**
 * Pin the calling worker to CPU (index mod cores). Only glibc exposes
 * pthread_setaffinity_np with cpu_set_t; everywhere else this is a
 * documented no-op. Failure (e.g. a restrictive cpuset) is ignored:
 * pinning is a performance hint, never a correctness requirement.
 */
void
pinWorkerThread(unsigned index)
{
#if defined(__linux__) && defined(__GLIBC__)
    unsigned cores = std::thread::hardware_concurrency();
    if (cores == 0)
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(index % cores, &set);
    pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
    (void)index;
#endif
}

} // namespace

unsigned
ThreadPool::defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return std::max(hw, 1u);
}

ThreadPool::ThreadPool(unsigned threads, bool pinCores)
{
    if (threads == 0)
        threads = defaultJobs();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i, pinCores]() {
            nameWorkerThread(i);
            if (pinCores)
                pinWorkerThread(i);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this]() {
        return queue_.empty() && active_ == 0;
    });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            // Clock reads only when telemetry is live; the disabled
            // cost stays one relaxed load per dequeue.
            const bool timed = metrics::enabled();
            const auto idleStart =
                timed ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{};
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (timed) {
                metrics::add(
                    poolIdleNsMetric(),
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() -
                            idleStart)
                            .count()));
            }
            // Drain-on-stop: only exit once the queue is empty.
            if (queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        // A packaged_task captures any exception into its future, so
        // job() never throws out of the worker.
        {
            PROF_SCOPE("pool_task");
            if (metrics::enabled())
                metrics::add(poolTasksMetric());
            job();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                allIdle_.notify_all();
        }
    }
}

} // namespace ladder
