#include "event_queue.hh"

#include <algorithm>

#include "log.hh"

namespace ladder
{

EventId
EventQueue::schedule(Tick when, std::function<void()> callback,
                     int priority)
{
    ladder_assert(when >= now_,
                  "scheduling event in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    EventId id = nextId_++;
    heap_.push(Entry{when, priority, id, std::move(callback)});
    ++live_;
    return id;
}

EventId
EventQueue::scheduleIn(Tick delay, std::function<void()> callback,
                       int priority)
{
    return schedule(now_ + delay, std::move(callback), priority);
}

void
EventQueue::deschedule(EventId id)
{
    if (isCancelled(id))
        return;
    cancelled_.push_back(id);
    if (live_ > 0)
        --live_;
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
}

void
EventQueue::forgetCancelled(EventId id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it != cancelled_.end())
        cancelled_.erase(it);
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (top.when > limit)
            break;
        if (isCancelled(top.id)) {
            forgetCancelled(top.id);
            heap_.pop();
            continue;
        }
        // Copy out before popping; the callback may schedule new events.
        Entry entry = top;
        heap_.pop();
        --live_;
        now_ = entry.when;
        ++executed_;
        ++count;
        entry.callback();
    }
    if (heap_.empty() && now_ < limit && limit != maxTick)
        now_ = limit;
    return count;
}

std::uint64_t
EventQueue::runBefore(Tick end)
{
    ladder_assert(end >= now_ && end != maxTick,
                  "runBefore: bad window end %llu (now %llu)",
                  static_cast<unsigned long long>(end),
                  static_cast<unsigned long long>(now_));
    std::uint64_t count = 0;
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (top.when >= end)
            break;
        if (isCancelled(top.id)) {
            forgetCancelled(top.id);
            heap_.pop();
            continue;
        }
        Entry entry = top;
        heap_.pop();
        --live_;
        now_ = entry.when;
        ++executed_;
        ++count;
        entry.callback();
    }
    now_ = end;
    return count;
}

Tick
EventQueue::nextEventTick()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (!isCancelled(top.id))
            return top.when;
        forgetCancelled(top.id);
        heap_.pop();
    }
    return maxTick;
}

bool
EventQueue::step()
{
    while (!heap_.empty()) {
        const Entry &top = heap_.top();
        if (isCancelled(top.id)) {
            forgetCancelled(top.id);
            heap_.pop();
            continue;
        }
        Entry entry = top;
        heap_.pop();
        --live_;
        now_ = entry.when;
        ++executed_;
        entry.callback();
        return true;
    }
    return false;
}

} // namespace ladder
