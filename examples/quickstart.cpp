/**
 * @file
 * Quickstart: the smallest useful tour of the LADDER public API.
 *
 * Builds the circuit-derived timing model, a content-true ReRAM
 * backing store and one memory controller running the LADDER-Est
 * scheme, then issues a handful of writes and reads and shows how the
 * RESET latency varies with where and what you write.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "common/event_queue.hh"
#include "ctrl/controller.hh"
#include "schemes/factory.hh"

using namespace ladder;

int
main()
{
    // 1. The circuit model: Table-1 crossbar parameters in, write
    //    timing tables out (cached; ~0.3s the first time).
    CrossbarParams crossbar;
    const TimingModel &timing = cachedTimingModel(crossbar);
    std::printf("timing model: tWR envelope [%.0f, %.0f] ns, "
                "k = %.2f /V\n\n",
                timing.law.fastNs, timing.law.slowNs,
                timing.law.kPerVolt);

    // 2. The memory system: geometry, content-true store, metadata
    //    layout, and a controller running LADDER-Est on channel 0.
    MemoryGeometry geometry;
    EventQueue events;
    BackingStore store(geometry);
    AddressMap map(geometry);
    auto layout = std::make_shared<MetadataLayout>(
        geometry, map.totalPages() * 3 / 4);
    auto scheme = makeScheme(SchemeKind::LadderEst, crossbar, layout);
    MemoryController ctrl(events, ControllerConfig{}, geometry, 0,
                          store, timing, scheme);

    // 3. Write three lines with very different content to channel-0
    //    blocks at a near and a far crossbar location.
    auto channel0Page = [&](unsigned n) {
        unsigned found = 0;
        for (std::uint64_t p = 0;; ++p) {
            BlockLocation loc =
                map.decode(p * MemoryGeometry::pageBytes);
            if (loc.channel == 0 && (n ? loc.wordline > 400
                                       : loc.wordline < 32)) {
                if (found++ == n || n == 0)
                    return p * MemoryGeometry::pageBytes;
            }
        }
    };
    Addr nearAddr = channel0Page(0);
    Addr farAddr = channel0Page(1) + 63 * lineBytes;

    LineData sparse = filledLine(0x00);
    sparse[3] = 0x01;
    LineData dense = filledLine(0x6d);

    struct Probe
    {
        const char *what;
        Addr addr;
        LineData data;
    } probes[] = {
        {"sparse line, near row", nearAddr, sparse},
        {"dense line, near row", nearAddr + lineBytes, dense},
        {"sparse line, far row/col", farAddr, sparse},
    };
    for (const Probe &p : probes) {
        ctrl.enqueueWrite(p.addr, p.data);
        events.runUntil();
        BlockLocation loc = map.decode(p.addr);
        std::printf("write %-26s wl=%3u bl=%3u -> tWR %6.1f ns\n",
                    p.what, loc.wordline, loc.worstBitline(),
                    ctrl.writeLatencyOnlyNs.max());
        ctrl.writeLatencyOnlyNs.reset();
    }

    // 4. Read back through the full decode path (shifting undone,
    //    FNW inversion undone) and verify the content survived.
    bool ok = true;
    for (const Probe &p : probes) {
        LineData out{};
        ctrl.enqueueRead(p.addr, [&](const LineData &d, Tick) {
            out = d;
        });
        events.runUntil();
        ok = ok && out == p.data;
    }
    std::printf("\nread-back %s; metadata reads issued: %.0f, "
                "metadata writebacks: %.0f\n",
                ok ? "OK" : "CORRUPTED", ctrl.metadataReads.value(),
                ctrl.metadataWrites.value());
    return ok ? 0 : 1;
}
