/**
 * @file
 * Live run monitor: tail the heartbeat.json snapshots that
 * telemetry-enabled runs (telemetry.interval-ms=N) publish into their
 * run directories, and render a refreshing terminal table — one row
 * per run with sequence number, snapshot age, sweep progress, sim
 * tick, write/read throughput, and per-channel queue depths.
 *
 *   ./ladder_top out/runA out/runB          # refreshing table
 *   ./ladder_top --once out/runA            # one plain print, for
 *                                           # scripts and CI
 *   ./ladder_top interval-ms=500 out/runA   # refresh period
 *
 * PATH is a heartbeat.json file or a directory containing one.
 * Heartbeats are atomically renamed by the publisher, so a read never
 * observes a torn file; a heartbeat that stops aging marks a finished
 * (or dead) run. Exit code in --once mode: 0 when every source
 * parsed, 1 otherwise.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "sim/telemetry.hh"

using namespace ladder;

namespace
{

struct Source
{
    std::string path;
    Heartbeat last;
    bool valid = false;
    std::string error;
};

/** Sum of counters `ctrl.ch*.<suffix>` (".writes" / ".reads"). */
double
channelRate(const Heartbeat &hb, const std::string &suffix)
{
    double sum = 0.0;
    for (const auto &entry : hb.ratesPerSec) {
        if (entry.first.rfind("ctrl.ch", 0) == 0 &&
            entry.first.size() > suffix.size() &&
            entry.first.compare(entry.first.size() - suffix.size(),
                                suffix.size(), suffix) == 0)
            sum += entry.second;
    }
    return sum;
}

/** Per-channel write rates as "810/795/802" (channel order). */
std::string
perChannelWriteRates(const Heartbeat &hb)
{
    std::string out;
    for (unsigned channel = 0; channel < 64; ++channel) {
        auto it = hb.ratesPerSec.find(
            "ctrl.ch" + std::to_string(channel) + ".writes");
        if (it == hb.ratesPerSec.end())
            break;
        if (!out.empty())
            out += "/";
        char rate[24];
        std::snprintf(rate, sizeof(rate), "%.0f", it->second);
        out += rate;
    }
    return out.empty() ? "-" : out;
}

/**
 * Live tail blame: the top-2 `ctrl.blame.*_ticks` counters by rate,
 * rendered as shares of the total blame rate ("content 62%/queue
 * 21%"). Present only for trace.attribution=1 runs; "-" otherwise.
 */
std::string
tailBlame(const Heartbeat &hb)
{
    constexpr const char *prefix = "ctrl.blame.";
    constexpr const char *suffix = "_ticks";
    double total = 0.0;
    std::vector<std::pair<double, std::string>> rates;
    for (const auto &entry : hb.ratesPerSec) {
        const std::string &name = entry.first;
        if (name.rfind(prefix, 0) != 0 ||
            name.size() <= 11 + 6 ||
            name.compare(name.size() - 6, 6, suffix) != 0)
            continue;
        std::string component = name.substr(11, name.size() - 11 - 6);
        rates.emplace_back(entry.second, std::move(component));
        total += entry.second;
    }
    if (rates.empty() || total <= 0.0)
        return "-";
    std::sort(rates.begin(), rates.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first ||
                         (a.first == b.first && a.second < b.second);
              });
    std::string out;
    for (std::size_t i = 0; i < rates.size() && i < 2; ++i) {
        if (!out.empty())
            out += "/";
        char item[48];
        std::snprintf(item, sizeof(item), "%s %.0f%%",
                      rates[i].second.c_str(),
                      rates[i].first / total * 100.0);
        out += item;
    }
    return out;
}

/** Per-channel write-queue depths as "3/0/12" (channel order). */
std::string
queueDepths(const Heartbeat &hb)
{
    std::string out;
    for (unsigned channel = 0; channel < 64; ++channel) {
        auto it = hb.gauges.find(
            "ctrl.ch" + std::to_string(channel) + ".wq_depth");
        if (it == hb.gauges.end())
            break;
        if (!out.empty())
            out += "/";
        out += std::to_string(it->second);
    }
    return out.empty() ? "-" : out;
}

std::uint64_t
nowUnixMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
printTable(std::vector<Source> &sources)
{
    std::printf("%-28s %6s %6s %9s %12s %10s %10s %-18s %-10s %s\n",
                "run", "seq", "age", "cells", "tick", "writes/s",
                "reads/s", "ch writes/s", "wq depth", "tail blame");
    const std::uint64_t now = nowUnixMs();
    for (Source &src : sources) {
        if (!src.valid) {
            std::printf("%-28s  [%s]\n", src.path.c_str(),
                        src.error.c_str());
            continue;
        }
        const Heartbeat &hb = src.last;
        const double ageSec =
            now >= hb.wallUnixMs
                ? static_cast<double>(now - hb.wallUnixMs) * 1e-3
                : 0.0;
        char cells[32];
        std::snprintf(cells, sizeof(cells), "%llu/%llu",
                      static_cast<unsigned long long>(hb.cellsDone),
                      static_cast<unsigned long long>(hb.cellsTotal));
        char age[16];
        std::snprintf(age, sizeof(age), "%.1fs", ageSec);
        std::printf(
            "%-28s %6llu %6s %9s %12llu %10.0f %10.0f %-18s %-10s "
            "%s\n",
            src.path.c_str(),
            static_cast<unsigned long long>(hb.seq), age, cells,
            static_cast<unsigned long long>(hb.simTick),
            channelRate(hb, ".writes"), channelRate(hb, ".reads"),
            perChannelWriteRates(hb).c_str(), queueDepths(hb).c_str(),
            tailBlame(hb).c_str());
    }
}

void
refresh(std::vector<Source> &sources)
{
    for (Source &src : sources)
        src.valid =
            readHeartbeatFile(src.path, src.last, src.error);
}

} // namespace

int
main(int argc, char **argv)
{
    bool once = false;
    std::uint64_t intervalMs = 1000;
    std::vector<Source> sources;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--once") {
            once = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: ladder_top [--once] [interval-ms=N] PATH...\n"
                "  PATH: a heartbeat.json or a run directory "
                "containing one\n"
                "  --once: print one table and exit (0 = all sources "
                "ok)\n");
            return 0;
        } else if (arg.rfind("interval-ms=", 0) == 0) {
            intervalMs = std::strtoull(arg.c_str() + 12, nullptr, 10);
            if (intervalMs == 0)
                intervalMs = 1000;
        } else {
            sources.push_back({arg, {}, false, ""});
        }
    }
    if (sources.empty()) {
        std::fprintf(stderr,
                     "ladder_top: no heartbeat paths (see --help)\n");
        return 1;
    }

    if (once) {
        refresh(sources);
        printTable(sources);
        for (const Source &src : sources)
            if (!src.valid)
                return 1;
        return 0;
    }

    const bool ansi = isatty(fileno(stdout));
    for (;;) {
        refresh(sources);
        if (ansi)
            std::printf("\x1b[H\x1b[2J"); // home + clear
        printTable(sources);
        std::fflush(stdout);
        usleep(static_cast<useconds_t>(intervalMs * 1000));
    }
    return 0;
}
