/**
 * @file
 * Workload simulator: run any scheme on any workload (single program
 * or 4-program mix) through the full system — cores, caches, LADDER
 * controller, ReRAM — and dump the headline metrics plus the raw
 * statistics tree. The paper's Figures 12/13/16 are sweeps of exactly
 * this run.
 *
 *   ./workload_sim [scheme=LADDER-Hybrid] [workload=mix-1]
 *                  [warmup=1500000] [measure=400000] [stats=1]
 */

#include <cstdio>
#include <iostream>

#include "common/config.hh"
#include "sim/experiment.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    Config args;
    args.parseArgs(argc, argv);
    std::string schemeName =
        args.getString("scheme", "LADDER-Hybrid");
    std::string workload = args.getString("workload", "mix-1");

    ExperimentConfig cfg = defaultExperimentConfig();
    cfg.warmupInstr = static_cast<std::uint64_t>(args.getInt(
        "warmup", static_cast<std::int64_t>(cfg.warmupInstr)));
    cfg.measureInstr = static_cast<std::uint64_t>(args.getInt(
        "measure", static_cast<std::int64_t>(cfg.measureInstr)));

    SchemeKind kind = schemeKindFromName(schemeName);
    std::printf("running %s on %s (%llu warmup + %llu measured "
                "instructions per core)...\n",
                schemeName.c_str(), workload.c_str(),
                static_cast<unsigned long long>(cfg.warmupInstr),
                static_cast<unsigned long long>(cfg.measureInstr));

    System system(makeSystemConfig(kind, workload, cfg));
    SimResult r = system.run(cfg.warmupInstr, cfg.measureInstr);

    std::printf("\n--- headline metrics ---\n");
    for (std::size_t c = 0; c < r.coreIpc.size(); ++c)
        std::printf("core %zu IPC            %10.4f\n", c,
                    r.coreIpc[c]);
    std::printf("avg read latency      %10.1f ns\n",
                r.avgReadLatencyNs);
    std::printf("avg write service     %10.1f ns (tWR %.1f ns)\n",
                r.avgWriteServiceNs, r.avgWriteTwrNs);
    std::printf("demand reads/writes   %10llu / %llu\n",
                static_cast<unsigned long long>(r.dataReads),
                static_cast<unsigned long long>(r.dataWrites));
    std::printf("metadata reads/writes %10llu / %llu, SMB reads "
                "%llu\n",
                static_cast<unsigned long long>(r.metadataReads),
                static_cast<unsigned long long>(r.metadataWrites),
                static_cast<unsigned long long>(r.smbReads));
    std::printf("dynamic energy        %10.2f uJ (reads %.2f, "
                "writes %.2f)\n",
                (r.readEnergyPj + r.writeEnergyPj) * 1e-6,
                r.readEnergyPj * 1e-6, r.writeEnergyPj * 1e-6);
    if (r.estimatedCwMean > 0.0)
        std::printf("estimated C_w (mean)  %10.1f (vs own-content "
                    "accurate: %+.1f)\n",
                    r.estimatedCwMean, r.estCounterDiffMean);

    if (args.getBool("stats", false)) {
        std::printf("\n--- full statistics ---\n");
        system.dumpStats(std::cout);
    }
    return 0;
}
