/**
 * @file
 * Workload simulator: run any scheme on any workload (single program
 * or 4-program mix) through the full system — cores, caches, LADDER
 * controller, ReRAM — and dump the headline metrics plus the raw
 * statistics tree. The paper's Figures 12/13/16 are sweeps of exactly
 * this run.
 *
 * Comma-separated lists sweep the full (scheme x workload) matrix in
 * parallel through runMatrixParallel and print an IPC table instead
 * of the single-run details.
 *
 *   ./workload_sim [scheme=LADDER-Hybrid[,Baseline,...]]
 *                  [workload=mix-1[,astar,...]]
 *                  [warmup=1500000] [measure=400000] [stats=1]
 *                  [jobs=N]   (0 = one per hardware thread, 1 = serial)
 *                  [stats-json=<dir>] [epoch-cycles=<N>]
 *                  [trace-out=<dir>] [trace-format=csv|bin|bin2]
 *                  [trace-stream=1] [trace-chunk=<records>]
 *                  [volatile-manifest=1]
 *
 * stats-json= writes one stats.json per run (and sweep.json for
 * sweeps); trace-out= writes per-run measured-window event traces
 * (trace-stream=1 streams them to disk in bounded memory while the
 * run executes; csv/bin2 only); epoch-cycles= samples the controller,
 * core, and cache stats every N core cycles into the stats.json epoch
 * series. See EXPERIMENTS.md for the schema and wire formats.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "sim/stats_export.hh"

using namespace ladder;

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > pos)
            items.push_back(csv.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return items;
}

} // namespace

int
main(int argc, char **argv)
{
    Config args;
    args.parseArgs(argc, argv);
    auto schemeNames =
        splitList(args.getString("scheme", "LADDER-Hybrid"));
    auto workloads = splitList(args.getString("workload", "mix-1"));

    ExperimentConfig cfg = defaultExperimentConfig();
    cfg.warmupInstr = static_cast<std::uint64_t>(args.getInt(
        "warmup", static_cast<std::int64_t>(cfg.warmupInstr)));
    cfg.measureInstr = static_cast<std::uint64_t>(args.getInt(
        "measure", static_cast<std::int64_t>(cfg.measureInstr)));
    cfg.jobs = static_cast<unsigned>(args.getInt("jobs", 0));
    cfg.statsJsonDir = args.getString("stats-json", "");
    cfg.traceOutDir = args.getString("trace-out", "");
    cfg.traceFormat = args.getString("trace-format", cfg.traceFormat);
    cfg.traceStream = args.getBool("trace-stream", cfg.traceStream);
    cfg.traceChunkRecords = static_cast<std::uint64_t>(args.getInt(
        "trace-chunk",
        static_cast<std::int64_t>(cfg.traceChunkRecords)));
    cfg.epochCycles =
        static_cast<std::uint64_t>(args.getInt("epoch-cycles", 0));
    cfg.volatileManifest = args.getBool("volatile-manifest", false);

    std::vector<SchemeKind> schemes;
    for (const auto &name : schemeNames)
        schemes.push_back(schemeKindFromName(name));

    if (schemes.size() > 1 || workloads.size() > 1) {
        std::printf("sweeping %zu scheme(s) x %zu workload(s) "
                    "(%llu warmup + %llu measured instructions per "
                    "core)...\n",
                    schemes.size(), workloads.size(),
                    static_cast<unsigned long long>(cfg.warmupInstr),
                    static_cast<unsigned long long>(
                        cfg.measureInstr));
        Matrix matrix = runMatrixParallel(schemes, workloads, cfg);
        std::vector<std::string> columns;
        for (SchemeKind kind : schemes)
            columns.push_back(schemeKindName(kind));
        TablePrinter printer(columns);
        std::printf("\n--- IPC (core 0) ---\n");
        printer.printHeader();
        for (const auto &workload : workloads) {
            std::vector<double> row;
            for (SchemeKind kind : schemes)
                row.push_back(matrix.at(kind, workload).ipc);
            printer.printRow(workload, row, 4);
        }
        return 0;
    }

    SchemeKind kind = schemes[0];
    const std::string &workload = workloads[0];
    std::printf("running %s on %s (%llu warmup + %llu measured "
                "instructions per core)...\n",
                schemeKindName(kind).c_str(), workload.c_str(),
                static_cast<unsigned long long>(cfg.warmupInstr),
                static_cast<unsigned long long>(cfg.measureInstr));

    System system(makeSystemConfig(kind, workload, cfg));
    std::unique_ptr<WriteTraceSink> trace =
        makeTraceSink(kind, workload, cfg);
    if (trace)
        system.attachTraceSink(trace.get());
    SimResult r = system.run(cfg.warmupInstr, cfg.measureInstr);
    if (trace)
        trace->finish();
    exportRun(cfg, kind, workload, system, r, trace.get());

    std::printf("\n--- headline metrics ---\n");
    for (std::size_t c = 0; c < r.coreIpc.size(); ++c)
        std::printf("core %zu IPC            %10.4f\n", c,
                    r.coreIpc[c]);
    std::printf("avg read latency      %10.1f ns\n",
                r.avgReadLatencyNs);
    std::printf("avg write service     %10.1f ns (tWR %.1f ns)\n",
                r.avgWriteServiceNs, r.avgWriteTwrNs);
    std::printf("demand reads/writes   %10llu / %llu\n",
                static_cast<unsigned long long>(r.dataReads),
                static_cast<unsigned long long>(r.dataWrites));
    std::printf("metadata reads/writes %10llu / %llu, SMB reads "
                "%llu\n",
                static_cast<unsigned long long>(r.metadataReads),
                static_cast<unsigned long long>(r.metadataWrites),
                static_cast<unsigned long long>(r.smbReads));
    std::printf("dynamic energy        %10.2f uJ (reads %.2f, "
                "writes %.2f)\n",
                (r.readEnergyPj + r.writeEnergyPj) * 1e-6,
                r.readEnergyPj * 1e-6, r.writeEnergyPj * 1e-6);
    if (r.estimatedCwMean > 0.0)
        std::printf("estimated C_w (mean)  %10.1f (vs own-content "
                    "accurate: %+.1f)\n",
                    r.estimatedCwMean, r.estCounterDiffMean);

    if (args.getBool("stats", false)) {
        std::printf("\n--- full statistics ---\n");
        system.dumpStats(std::cout);
    }
    return 0;
}
