/**
 * @file
 * Workload simulator: run any scheme on any workload (single program
 * or 4-program mix) through the full system — cores, caches, LADDER
 * controller, ReRAM — and dump the headline metrics plus the raw
 * statistics tree. The paper's Figures 12/13/16 are sweeps of exactly
 * this run.
 *
 * Comma-separated lists sweep the full (scheme x workload) matrix in
 * parallel through runMatrixParallel and print an IPC table instead
 * of the single-run details.
 *
 *   ./workload_sim [config=<file>.json] [sweep=<file>.json]
 *                  [scheme=LADDER-Hybrid[,baseline,...]]
 *                  [workload=mix-1[,astar,...]]
 *                  [key=value ...] [--dump-config] [--help-config]
 *
 * Arguments resolve through the typed parameter registry with strict
 * precedence: compiled defaults < config= file < sweep= "params" <
 * CLI key=value. --help-config lists every parameter (warmup,
 * measure, jobs, stats-json, trace-out, epoch-cycles, and the full
 * xbar. / ctrl. / cache. / core. / geom. architecture groups);
 * stats=true dumps the full statistics tree after single runs. See
 * EXPERIMENTS.md for the configuration spine and output schema.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "sim/config_resolve.hh"
#include "sim/experiment.hh"
#include "sim/profile_export.hh"
#include "sim/stats_export.hh"
#include "sim/telemetry.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ResolvedExperiment resolved =
        resolveExperiment(argc, argv, defaultExperimentConfig());
    if (resolved.helpRequested) {
        if (resolved.helpFormat == "md") {
            experimentRegistry().helpMarkdown(std::cout,
                                             resolved.config);
            return 0;
        }
        std::cout << "parameters (key=value; also loadable from "
                     "config= JSON):\n";
        experimentRegistry().help(std::cout, resolved.config);
        return 0;
    }
    if (resolved.dumpRequested) {
        dumpEffectiveConfig(resolved.config, std::cout);
        return 0;
    }
    const ExperimentConfig &cfg = resolved.config;
    std::vector<SchemeKind> schemes =
        resolved.schemesExplicit
            ? resolved.schemes
            : std::vector<SchemeKind>{SchemeKind::LadderHybrid};
    std::vector<std::string> workloads =
        resolved.workloadsExplicit
            ? resolved.workloads
            : std::vector<std::string>{"mix-1"};

    if (schemes.size() > 1 || workloads.size() > 1) {
        std::printf("sweeping %zu scheme(s) x %zu workload(s) "
                    "(%llu warmup + %llu measured instructions per "
                    "core)...\n",
                    schemes.size(), workloads.size(),
                    static_cast<unsigned long long>(cfg.warmupInstr),
                    static_cast<unsigned long long>(
                        cfg.measureInstr));
        Matrix matrix = runMatrixParallel(schemes, workloads, cfg);
        std::vector<std::string> columns;
        for (SchemeKind kind : schemes)
            columns.push_back(schemeKindName(kind));
        TablePrinter printer(columns);
        std::printf("\n--- IPC (core 0) ---\n");
        printer.printHeader();
        for (const auto &workload : workloads) {
            std::vector<double> row;
            for (SchemeKind kind : schemes)
                row.push_back(matrix.at(kind, workload).ipc);
            printer.printRow(workload, row, 4);
        }
        return 0;
    }

    SchemeKind kind = schemes[0];
    const std::string &workload = workloads[0];
    std::printf("running %s on %s (%llu warmup + %llu measured "
                "instructions per core)...\n",
                schemeKindName(kind).c_str(), workload.c_str(),
                static_cast<unsigned long long>(cfg.warmupInstr),
                static_cast<unsigned long long>(cfg.measureInstr));

    beginProfiling(cfg);
    TelemetryScope telemetry(cfg, 1);
    System system(makeSystemConfig(kind, workload, cfg));
    std::unique_ptr<WriteTraceSink> trace =
        makeTraceSink(kind, workload, cfg);
    if (trace)
        system.attachTraceSink(trace.get());
    SimResult r = system.run(cfg.warmupInstr, cfg.measureInstr);
    if (trace)
        trace->finish();
    telemetry.noteCellDone();
    exportRun(cfg, kind, workload, system, r, trace.get());
    telemetry.stopPublisher();
    exportProfile(cfg, {{kind, workload}});

    std::printf("\n--- headline metrics ---\n");
    for (std::size_t c = 0; c < r.coreIpc.size(); ++c)
        std::printf("core %zu IPC            %10.4f\n", c,
                    r.coreIpc[c]);
    std::printf("avg read latency      %10.1f ns\n",
                r.avgReadLatencyNs);
    std::printf("avg write service     %10.1f ns (tWR %.1f ns)\n",
                r.avgWriteServiceNs, r.avgWriteTwrNs);
    std::printf("demand reads/writes   %10llu / %llu\n",
                static_cast<unsigned long long>(r.dataReads),
                static_cast<unsigned long long>(r.dataWrites));
    std::printf("metadata reads/writes %10llu / %llu, SMB reads "
                "%llu\n",
                static_cast<unsigned long long>(r.metadataReads),
                static_cast<unsigned long long>(r.metadataWrites),
                static_cast<unsigned long long>(r.smbReads));
    std::printf("dynamic energy        %10.2f uJ (reads %.2f, "
                "writes %.2f)\n",
                (r.readEnergyPj + r.writeEnergyPj) * 1e-6,
                r.readEnergyPj * 1e-6, r.writeEnergyPj * 1e-6);
    if (r.estimatedCwMean > 0.0)
        std::printf("estimated C_w (mean)  %10.1f (vs own-content "
                    "accurate: %+.1f)\n",
                    r.estimatedCwMean, r.estCounterDiffMean);

    if (cfg.printStats) {
        std::printf("\n--- full statistics ---\n");
        system.dumpStats(std::cout);
    }
    return 0;
}
