/**
 * @file
 * Trace inspection CLI over the TraceReader library: dump, filter,
 * summarize, or list the chunk index of any trace the simulator can
 * emit (CSV, v1 packed binary, v2 chunked binary).
 *
 *   ./trace_cat <trace-file> [mode=dump|summary|chunks]
 *               [kind=W|R] [channel=<N>]
 *               [min-tick=<T>] [max-tick=<T>]
 *               [limit=<N>]      (dump: stop after N matching records)
 *               [chunk=<I>]      (v2: start at chunk I via the index)
 *
 * dump     print matching records as CSV rows (with the header)
 * summary  one aggregate block: counts, tick span, latency means/maxes
 * chunks   the v2 chunk index (offset, records, CRC per chunk)
 *
 * Exits non-zero with a message on stderr when the trace fails
 * validation (bad magic, truncation, CRC mismatch, ...), making it
 * usable as a cheap integrity check in scripts and CI.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/config.hh"
#include "ctrl/trace_reader.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    if (argc < 2 || argv[1][0] == '\0' ||
        std::strchr(argv[1], '=') != nullptr) {
        std::fprintf(stderr,
                     "usage: trace_cat <trace-file> "
                     "[mode=dump|summary|chunks] [kind=W|R] "
                     "[channel=N] [min-tick=T] [max-tick=T] "
                     "[limit=N] [chunk=I]\n");
        return 2;
    }
    const std::string path = argv[1];
    Config args;
    // Strict parse: unknown keys are rejected with a suggestion.
    args.parseArgs(argc - 1, argv + 1,
                   {"mode", "kind", "channel", "min-tick", "max-tick",
                    "limit", "chunk"});
    const std::string mode = args.getString("mode", "dump");
    const std::string kind = args.getString("kind", "");
    const std::int64_t channel = args.getInt("channel", -1);
    const std::uint64_t minTick =
        static_cast<std::uint64_t>(args.getInt("min-tick", 0));
    const std::int64_t maxTickArg = args.getInt("max-tick", -1);
    const std::int64_t limit = args.getInt("limit", -1);
    const std::int64_t chunk = args.getInt("chunk", -1);

    TraceReader reader;
    if (!reader.open(path)) {
        std::fprintf(stderr, "trace_cat: %s: %s\n", path.c_str(),
                     reader.error().c_str());
        return 1;
    }

    if (mode == "chunks") {
        if (reader.chunkCount() == 0) {
            std::fprintf(stderr,
                         "trace_cat: %s: no chunk index (only the v2 "
                         "format is chunked)\n",
                         path.c_str());
            return 1;
        }
        std::printf("chunk,first_record,records\n");
        for (std::size_t i = 0; i < reader.chunkCount(); ++i) {
            std::printf("%zu,%" PRIu64 ",%" PRIu32 "\n", i,
                        reader.chunkFirstRecord(i),
                        reader.chunkRecords(i));
        }
        return 0;
    }

    if (chunk >= 0 &&
        !reader.seekChunk(static_cast<std::size_t>(chunk))) {
        std::fprintf(stderr, "trace_cat: %s: %s\n", path.c_str(),
                     reader.error().c_str());
        return 1;
    }

    if (mode == "summary") {
        TraceSummary s = summarizeTrace(reader);
        if (!reader.ok()) {
            std::fprintf(stderr, "trace_cat: %s: %s\n", path.c_str(),
                         reader.error().c_str());
            return 1;
        }
        std::printf("records        %" PRIu64 " (%" PRIu64
                    " writes, %" PRIu64 " reads)\n",
                    s.records, s.writes, s.reads);
        if (s.records > 0) {
            std::printf("tick span      %" PRIu64 " .. %" PRIu64 "\n",
                        s.firstTick, s.lastTick);
        }
        if (s.writes > 0) {
            std::printf("write latency  mean %.3f ns, max %.3f ns\n",
                        s.writeLatencySumNs /
                            static_cast<double>(s.writes),
                        static_cast<double>(s.maxWriteLatencyNs));
        }
        if (s.reads > 0) {
            std::printf("read latency   mean %.3f ns, max %.3f ns\n",
                        s.readLatencySumNs /
                            static_cast<double>(s.reads),
                        static_cast<double>(s.maxReadLatencyNs));
        }
        std::printf("max queue      %" PRIu32 "\n", s.maxQueueDepth);
        std::printf("max lrs_count  %u\n",
                    static_cast<unsigned>(s.maxLrsCount));
        for (std::size_t ch = 0; ch < s.perChannel.size(); ++ch) {
            if (s.perChannel[ch] > 0)
                std::printf("channel %zu      %" PRIu64 " records\n",
                            ch, s.perChannel[ch]);
        }
        return 0;
    }

    if (mode != "dump") {
        std::fprintf(stderr, "trace_cat: unknown mode '%s'\n",
                     mode.c_str());
        return 2;
    }

    // Push the tick window down to the reader: on v2 traces, chunks
    // whose index range falls outside [min-tick, max-tick] are
    // skipped without being CRC-checked or decoded. The per-record
    // filter below still trims the boundary chunks exactly.
    if (minTick > 0 || maxTickArg >= 0) {
        reader.setTickWindow(
            minTick, maxTickArg >= 0
                         ? static_cast<std::uint64_t>(maxTickArg)
                         : ~std::uint64_t{0});
    }

    std::printf("type,tick,channel,wordline,bitline,lrs_count,"
                "latency_ns,queue_depth\n");
    CtrlTraceRecord rec;
    std::int64_t printed = 0;
    while (reader.next(rec)) {
        char type =
            rec.kind == CtrlTraceRecord::Kind::Write ? 'W' : 'R';
        if (!kind.empty() && kind[0] != type)
            continue;
        if (channel >= 0 && rec.channel != channel)
            continue;
        if (rec.tick < minTick)
            continue;
        if (maxTickArg >= 0 &&
            rec.tick > static_cast<std::uint64_t>(maxTickArg))
            continue;
        std::printf("%c,%" PRIu64 ",%u,%u,%u,%u,%.3f,%" PRIu32 "\n",
                    type, rec.tick,
                    static_cast<unsigned>(rec.channel),
                    static_cast<unsigned>(rec.wordline),
                    static_cast<unsigned>(rec.bitline),
                    static_cast<unsigned>(rec.lrsCount),
                    static_cast<double>(rec.latencyNs),
                    rec.queueDepth);
        if (limit >= 0 && ++printed >= limit)
            break;
    }
    if (!reader.ok()) {
        std::fprintf(stderr, "trace_cat: %s: %s\n", path.c_str(),
                     reader.error().c_str());
        return 1;
    }
    return 0;
}
