/**
 * @file
 * Latency explorer: an interactive-style tool for a memory-controller
 * designer tuning the write timing tables. Evaluates the crossbar
 * circuit model at user-chosen operating points and prints the
 * bucketed table entry LADDER would actually use next to the exact
 * circuit answer — i.e. how much margin the 8x8x8 bucketing costs.
 *
 *   ./latency_explorer [wl=<0-511>] [bl=<0-511>] [count=<0-512>]
 *                      [granularity=<n>] [sweep=wl|bl|count]
 */

#include <cstdio>
#include <string>

#include "circuit/fastmodel.hh"
#include "common/config.hh"
#include "reram/timing_tables.hh"

using namespace ladder;

namespace
{

void
evaluatePoint(const TimingModel &model, const SneakPathModel &fast,
              unsigned wl, unsigned bl, unsigned count)
{
    ResetCondition cond;
    cond.wordline = wl;
    cond.byteOffset = bl / 8;
    cond.wlLrsCount = count;
    cond.blLrsCount = static_cast<unsigned>(model.params.rows);
    ResetEvaluation eval = fast.evaluate(cond);
    double exact = model.law.latencyNs(eval.minDropVolts);
    const TimingEntry &entry = model.ladder.lookup(wl, bl, count);
    std::printf("  wl=%3u bl=%3u C=%3u | Vd=%.3f V | exact %6.1f ns"
                " | table %6.1f ns | margin %+5.1f ns\n",
                wl, bl, count, eval.minDropVolts, exact,
                entry.latencyNs, entry.latencyNs - exact);
}

} // namespace

int
main(int argc, char **argv)
{
    Config args;
    // Strict parse: unknown keys are rejected with a suggestion.
    args.parseArgs(argc, argv,
                   {"wl", "bl", "count", "granularity", "sweep"});
    unsigned wl = static_cast<unsigned>(args.getInt("wl", 256));
    unsigned bl = static_cast<unsigned>(args.getInt("bl", 256));
    unsigned count = static_cast<unsigned>(args.getInt("count", 128));
    unsigned granularity =
        static_cast<unsigned>(args.getInt("granularity", 8));
    std::string sweep = args.getString("sweep", "count");

    CrossbarParams params;
    const TimingModel &model = cachedTimingModel(params, granularity);
    SneakPathModel fast(params);

    std::printf("LADDER latency explorer — %ux%u crossbar, "
                "granularity %u, envelope [%.0f, %.0f] ns\n\n",
                (unsigned)params.rows, (unsigned)params.cols,
                granularity, model.law.fastNs, model.law.slowNs);

    if (sweep == "wl") {
        std::printf("sweeping wordline location (bl=%u, C=%u):\n", bl,
                    count);
        for (unsigned v = 0; v < params.rows; v += 64)
            evaluatePoint(model, fast, v + 63, bl, count);
    } else if (sweep == "bl") {
        std::printf("sweeping bitline location (wl=%u, C=%u):\n", wl,
                    count);
        for (unsigned v = 0; v < params.cols; v += 64)
            evaluatePoint(model, fast, wl, v + 63, count);
    } else {
        std::printf("sweeping WL LRS count (wl=%u, bl=%u):\n", wl,
                    bl);
        for (unsigned v = 0; v <= params.cols; v += 64)
            evaluatePoint(model, fast, wl, bl, v);
    }

    std::printf("\nsingle point requested on the command line:\n");
    evaluatePoint(model, fast, wl, bl, count);
    std::printf("\ntiming-table on-chip storage at this granularity: "
                "%zu B\n",
                model.ladder.storageBytes());
    return 0;
}
