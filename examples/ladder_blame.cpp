/**
 * @file
 * Blame-table CLI over attribution traces (trace.attribution=1 runs):
 * render each run's per-component p50/p99/max/mean/share table, or
 * diff two runs' blame profiles to catch latency causes shifting.
 *
 *   ./ladder_blame out/traces/
 *   ./ladder_blame out/traces/LADDER-Est__camera-vision format=csv
 *   ./ladder_blame diff base/traces/ candidate/traces/ threshold=0.2
 *
 * Diff mode exits 1 when any component's mean blame moved beyond the
 * threshold (default 10%) relative to the first run — wire it into CI
 * to gate "same latency, different cause" regressions that total-only
 * stats cannot see. Exit 2 marks usage or load errors, including
 * traces recorded without attribution. All logic lives in
 * sim/blame_query so tests cover the same code path.
 */

#include <iostream>
#include <string>
#include <vector>

#include "sim/blame_query.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return ladder::ladderBlameMain(args, std::cout, std::cerr);
}
