/**
 * @file
 * Wear-leveling demo (paper §6.4): runs LADDER-Hybrid with Start-Gap
 * installed on the controllers, shows the remapping rotating a hot
 * line across physical slots, and compares lifetime estimates with
 * and without leveling.
 *
 *   ./wear_leveling_demo [workload=lbm] [wear.psi=100]
 *                        [config=<file>.json] [key=value ...]
 *
 * Arguments resolve through the typed parameter registry (see
 * --help-config); wear.psi sets the Start-Gap write interval and
 * wear.endurance / wear.leveling-efficiency shape the lifetime
 * estimate.
 */

#include <cstdio>
#include <iostream>

#include "sim/config_resolve.hh"
#include "sim/experiment.hh"
#include "wear/lifetime.hh"
#include "wear/start_gap.hh"

using namespace ladder;

int
main(int argc, char **argv)
{
    ResolvedExperiment resolved =
        resolveExperiment(argc, argv, defaultExperimentConfig());
    if (resolved.helpRequested) {
        std::cout << "parameters (key=value; also loadable from "
                     "config= JSON):\n";
        experimentRegistry().help(std::cout, resolved.config);
        return 0;
    }
    if (resolved.dumpRequested) {
        dumpEffectiveConfig(resolved.config, std::cout);
        return 0;
    }
    if (resolved.workloads.size() > 1)
        fatal("this demo runs one workload at a time");
    std::string workload = resolved.workloadsExplicit
                               ? resolved.workloads.front()
                               : "lbm";
    unsigned psi = resolved.config.wear.startGapPsi;

    // A small standalone illustration first: watch one logical line
    // migrate as the gap rotates.
    std::printf("--- Start-Gap mechanics (8-line region, psi=1) "
                "---\n");
    StartGapRemapper demo(0, 8, 1);
    for (int step = 0; step < 10; ++step) {
        std::printf("  step %2d: logical line 0 -> physical slot "
                    "%llu (start=%llu, gap=%llu)\n",
                    step,
                    static_cast<unsigned long long>(demo.remap(0) /
                                                    lineBytes),
                    static_cast<unsigned long long>(demo.start()),
                    static_cast<unsigned long long>(demo.gap()));
        demo.noteDataWrite(0);
        demo.collectMoves();
    }

    // Now the full system with leveling on the data region.
    const ExperimentConfig &cfg = resolved.config;
    SystemConfig sys =
        makeSystemConfig(SchemeKind::LadderHybrid, workload, cfg);
    System system(sys);
    AddressMap map(sys.geometry);
    StartGapRemapper remap(0, map.totalPages() * 64 * 3 / 4, psi);
    system.setRemapper(&remap);

    std::printf("\nrunning %s under LADDER-Hybrid + Start-Gap "
                "(psi=%u)...\n",
                workload.c_str(), psi);
    SimResult r = system.run(cfg.warmupInstr, cfg.measureInstr);

    std::unordered_map<std::uint64_t, std::uint32_t> writes;
    for (unsigned ch = 0; ch < system.channels(); ++ch)
        for (const auto &entry :
             system.controller(ch).pageWriteCounts())
            writes[entry.first] += entry.second;
    LifetimeEstimate est =
        estimateLifetime(writes, r.elapsedNs * 1e-9, 0,
                         cfg.wear.cellEndurance,
                         cfg.wear.levelingEfficiency);

    std::printf("\n--- results ---\n");
    std::printf("IPC                    %10.4f\n", r.ipc);
    std::printf("data writes            %10llu (+%llu metadata)\n",
                static_cast<unsigned long long>(r.dataWrites),
                static_cast<unsigned long long>(r.metadataWrites));
    std::printf("gap moves injected     %10llu (~%.2f%% extra "
                "writes)\n",
                static_cast<unsigned long long>(remap.gapMoves()),
                100.0 * static_cast<double>(remap.gapMoves()) /
                    static_cast<double>(r.dataWrites));
    std::printf("write unevenness       %10.1f (max/mean page "
                "writes)\n",
                est.unevenness);
    std::printf("est. lifetime          %10.2f years unleveled -> "
                "%.2f years leveled\n",
                est.unleveledYears, est.leveledYears);
    std::printf("\npaper: wear-leveling costs LADDER ~1%% "
                "performance and keeps 97.1%% of baseline "
                "lifetime.\n");
    return 0;
}
