/**
 * @file
 * Cross-run stats query CLI: merge any number of sweep.json /
 * stats.json outputs (stats-json=DIR runs) into one table, select
 * stats by glob, and diff two runs with a relative regression
 * threshold.
 *
 *   ./ladder_query runA/stats runB/stats
 *   ./ladder_query 'ctrl.*latency*' runA/ runB/
 *   ./ladder_query diff base/ candidate/ threshold=0.05
 *   ./ladder_query runA/ runB/ format=csv
 *   ./ladder_query diff base/ candidate/ format=json
 *
 * Diff mode exits 1 when any selected stat moved beyond the
 * threshold (default 2%) relative to the first run — wire it into CI
 * to gate perf/behaviour regressions on exported stats. Exit 2 marks
 * usage or load errors. All logic lives in sim/stats_query so tests
 * cover the same code path.
 */

#include <iostream>
#include <string>
#include <vector>

#include "sim/stats_query.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return ladder::ladderQueryMain(args, std::cout, std::cerr);
}
