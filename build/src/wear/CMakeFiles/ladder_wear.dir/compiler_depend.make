# Empty compiler generated dependencies file for ladder_wear.
# This may be replaced when dependencies are built.
