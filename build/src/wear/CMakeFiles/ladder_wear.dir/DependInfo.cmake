
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wear/horizontal.cc" "src/wear/CMakeFiles/ladder_wear.dir/horizontal.cc.o" "gcc" "src/wear/CMakeFiles/ladder_wear.dir/horizontal.cc.o.d"
  "/root/repo/src/wear/leader.cc" "src/wear/CMakeFiles/ladder_wear.dir/leader.cc.o" "gcc" "src/wear/CMakeFiles/ladder_wear.dir/leader.cc.o.d"
  "/root/repo/src/wear/lifetime.cc" "src/wear/CMakeFiles/ladder_wear.dir/lifetime.cc.o" "gcc" "src/wear/CMakeFiles/ladder_wear.dir/lifetime.cc.o.d"
  "/root/repo/src/wear/segment_swap.cc" "src/wear/CMakeFiles/ladder_wear.dir/segment_swap.cc.o" "gcc" "src/wear/CMakeFiles/ladder_wear.dir/segment_swap.cc.o.d"
  "/root/repo/src/wear/start_gap.cc" "src/wear/CMakeFiles/ladder_wear.dir/start_gap.cc.o" "gcc" "src/wear/CMakeFiles/ladder_wear.dir/start_gap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctrl/CMakeFiles/ladder_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/ladder_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ladder_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ladder_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ladder_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
