file(REMOVE_RECURSE
  "libladder_wear.a"
)
