file(REMOVE_RECURSE
  "CMakeFiles/ladder_wear.dir/horizontal.cc.o"
  "CMakeFiles/ladder_wear.dir/horizontal.cc.o.d"
  "CMakeFiles/ladder_wear.dir/leader.cc.o"
  "CMakeFiles/ladder_wear.dir/leader.cc.o.d"
  "CMakeFiles/ladder_wear.dir/lifetime.cc.o"
  "CMakeFiles/ladder_wear.dir/lifetime.cc.o.d"
  "CMakeFiles/ladder_wear.dir/segment_swap.cc.o"
  "CMakeFiles/ladder_wear.dir/segment_swap.cc.o.d"
  "CMakeFiles/ladder_wear.dir/start_gap.cc.o"
  "CMakeFiles/ladder_wear.dir/start_gap.cc.o.d"
  "libladder_wear.a"
  "libladder_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
