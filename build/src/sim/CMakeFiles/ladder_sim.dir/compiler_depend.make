# Empty compiler generated dependencies file for ladder_sim.
# This may be replaced when dependencies are built.
