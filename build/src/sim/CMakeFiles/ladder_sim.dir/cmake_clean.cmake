file(REMOVE_RECURSE
  "CMakeFiles/ladder_sim.dir/experiment.cc.o"
  "CMakeFiles/ladder_sim.dir/experiment.cc.o.d"
  "CMakeFiles/ladder_sim.dir/system.cc.o"
  "CMakeFiles/ladder_sim.dir/system.cc.o.d"
  "libladder_sim.a"
  "libladder_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
