file(REMOVE_RECURSE
  "libladder_sim.a"
)
