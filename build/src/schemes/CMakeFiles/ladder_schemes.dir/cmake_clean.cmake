file(REMOVE_RECURSE
  "CMakeFiles/ladder_schemes.dir/factory.cc.o"
  "CMakeFiles/ladder_schemes.dir/factory.cc.o.d"
  "CMakeFiles/ladder_schemes.dir/fpc.cc.o"
  "CMakeFiles/ladder_schemes.dir/fpc.cc.o.d"
  "CMakeFiles/ladder_schemes.dir/ladder_schemes.cc.o"
  "CMakeFiles/ladder_schemes.dir/ladder_schemes.cc.o.d"
  "CMakeFiles/ladder_schemes.dir/metadata_layout.cc.o"
  "CMakeFiles/ladder_schemes.dir/metadata_layout.cc.o.d"
  "CMakeFiles/ladder_schemes.dir/partial_counter.cc.o"
  "CMakeFiles/ladder_schemes.dir/partial_counter.cc.o.d"
  "CMakeFiles/ladder_schemes.dir/simple_schemes.cc.o"
  "CMakeFiles/ladder_schemes.dir/simple_schemes.cc.o.d"
  "CMakeFiles/ladder_schemes.dir/split_reset.cc.o"
  "CMakeFiles/ladder_schemes.dir/split_reset.cc.o.d"
  "libladder_schemes.a"
  "libladder_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
