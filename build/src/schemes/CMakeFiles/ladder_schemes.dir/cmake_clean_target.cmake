file(REMOVE_RECURSE
  "libladder_schemes.a"
)
