
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/factory.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/factory.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/factory.cc.o.d"
  "/root/repo/src/schemes/fpc.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/fpc.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/fpc.cc.o.d"
  "/root/repo/src/schemes/ladder_schemes.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/ladder_schemes.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/ladder_schemes.cc.o.d"
  "/root/repo/src/schemes/metadata_layout.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/metadata_layout.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/metadata_layout.cc.o.d"
  "/root/repo/src/schemes/partial_counter.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/partial_counter.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/partial_counter.cc.o.d"
  "/root/repo/src/schemes/simple_schemes.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/simple_schemes.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/simple_schemes.cc.o.d"
  "/root/repo/src/schemes/split_reset.cc" "src/schemes/CMakeFiles/ladder_schemes.dir/split_reset.cc.o" "gcc" "src/schemes/CMakeFiles/ladder_schemes.dir/split_reset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ctrl/CMakeFiles/ladder_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ladder_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/ladder_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ladder_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ladder_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
