# Empty compiler generated dependencies file for ladder_schemes.
# This may be replaced when dependencies are built.
