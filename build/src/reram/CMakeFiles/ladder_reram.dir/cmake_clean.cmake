file(REMOVE_RECURSE
  "CMakeFiles/ladder_reram.dir/geometry.cc.o"
  "CMakeFiles/ladder_reram.dir/geometry.cc.o.d"
  "CMakeFiles/ladder_reram.dir/timing_tables.cc.o"
  "CMakeFiles/ladder_reram.dir/timing_tables.cc.o.d"
  "libladder_reram.a"
  "libladder_reram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_reram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
