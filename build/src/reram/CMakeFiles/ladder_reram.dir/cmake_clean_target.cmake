file(REMOVE_RECURSE
  "libladder_reram.a"
)
