# Empty compiler generated dependencies file for ladder_reram.
# This may be replaced when dependencies are built.
