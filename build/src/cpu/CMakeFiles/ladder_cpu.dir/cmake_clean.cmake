file(REMOVE_RECURSE
  "CMakeFiles/ladder_cpu.dir/core.cc.o"
  "CMakeFiles/ladder_cpu.dir/core.cc.o.d"
  "libladder_cpu.a"
  "libladder_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
