file(REMOVE_RECURSE
  "libladder_cpu.a"
)
