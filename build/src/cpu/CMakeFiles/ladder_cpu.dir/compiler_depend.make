# Empty compiler generated dependencies file for ladder_cpu.
# This may be replaced when dependencies are built.
