file(REMOVE_RECURSE
  "libladder_cache.a"
)
