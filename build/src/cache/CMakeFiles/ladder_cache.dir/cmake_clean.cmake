file(REMOVE_RECURSE
  "CMakeFiles/ladder_cache.dir/cache.cc.o"
  "CMakeFiles/ladder_cache.dir/cache.cc.o.d"
  "CMakeFiles/ladder_cache.dir/hierarchy.cc.o"
  "CMakeFiles/ladder_cache.dir/hierarchy.cc.o.d"
  "libladder_cache.a"
  "libladder_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
