# Empty compiler generated dependencies file for ladder_cache.
# This may be replaced when dependencies are built.
