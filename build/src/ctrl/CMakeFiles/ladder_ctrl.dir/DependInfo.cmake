
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/controller.cc" "src/ctrl/CMakeFiles/ladder_ctrl.dir/controller.cc.o" "gcc" "src/ctrl/CMakeFiles/ladder_ctrl.dir/controller.cc.o.d"
  "/root/repo/src/ctrl/fnw.cc" "src/ctrl/CMakeFiles/ladder_ctrl.dir/fnw.cc.o" "gcc" "src/ctrl/CMakeFiles/ladder_ctrl.dir/fnw.cc.o.d"
  "/root/repo/src/ctrl/metadata_cache.cc" "src/ctrl/CMakeFiles/ladder_ctrl.dir/metadata_cache.cc.o" "gcc" "src/ctrl/CMakeFiles/ladder_ctrl.dir/metadata_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/ladder_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/ladder_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ladder_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ladder_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
