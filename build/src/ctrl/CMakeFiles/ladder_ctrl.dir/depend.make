# Empty dependencies file for ladder_ctrl.
# This may be replaced when dependencies are built.
