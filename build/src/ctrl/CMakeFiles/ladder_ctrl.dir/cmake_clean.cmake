file(REMOVE_RECURSE
  "CMakeFiles/ladder_ctrl.dir/controller.cc.o"
  "CMakeFiles/ladder_ctrl.dir/controller.cc.o.d"
  "CMakeFiles/ladder_ctrl.dir/fnw.cc.o"
  "CMakeFiles/ladder_ctrl.dir/fnw.cc.o.d"
  "CMakeFiles/ladder_ctrl.dir/metadata_cache.cc.o"
  "CMakeFiles/ladder_ctrl.dir/metadata_cache.cc.o.d"
  "libladder_ctrl.a"
  "libladder_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
