file(REMOVE_RECURSE
  "libladder_ctrl.a"
)
