
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/cell_model.cc" "src/circuit/CMakeFiles/ladder_circuit.dir/cell_model.cc.o" "gcc" "src/circuit/CMakeFiles/ladder_circuit.dir/cell_model.cc.o.d"
  "/root/repo/src/circuit/fastmodel.cc" "src/circuit/CMakeFiles/ladder_circuit.dir/fastmodel.cc.o" "gcc" "src/circuit/CMakeFiles/ladder_circuit.dir/fastmodel.cc.o.d"
  "/root/repo/src/circuit/latency.cc" "src/circuit/CMakeFiles/ladder_circuit.dir/latency.cc.o" "gcc" "src/circuit/CMakeFiles/ladder_circuit.dir/latency.cc.o.d"
  "/root/repo/src/circuit/mna.cc" "src/circuit/CMakeFiles/ladder_circuit.dir/mna.cc.o" "gcc" "src/circuit/CMakeFiles/ladder_circuit.dir/mna.cc.o.d"
  "/root/repo/src/circuit/solvers.cc" "src/circuit/CMakeFiles/ladder_circuit.dir/solvers.cc.o" "gcc" "src/circuit/CMakeFiles/ladder_circuit.dir/solvers.cc.o.d"
  "/root/repo/src/circuit/sparse.cc" "src/circuit/CMakeFiles/ladder_circuit.dir/sparse.cc.o" "gcc" "src/circuit/CMakeFiles/ladder_circuit.dir/sparse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ladder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
