file(REMOVE_RECURSE
  "CMakeFiles/ladder_circuit.dir/cell_model.cc.o"
  "CMakeFiles/ladder_circuit.dir/cell_model.cc.o.d"
  "CMakeFiles/ladder_circuit.dir/fastmodel.cc.o"
  "CMakeFiles/ladder_circuit.dir/fastmodel.cc.o.d"
  "CMakeFiles/ladder_circuit.dir/latency.cc.o"
  "CMakeFiles/ladder_circuit.dir/latency.cc.o.d"
  "CMakeFiles/ladder_circuit.dir/mna.cc.o"
  "CMakeFiles/ladder_circuit.dir/mna.cc.o.d"
  "CMakeFiles/ladder_circuit.dir/solvers.cc.o"
  "CMakeFiles/ladder_circuit.dir/solvers.cc.o.d"
  "CMakeFiles/ladder_circuit.dir/sparse.cc.o"
  "CMakeFiles/ladder_circuit.dir/sparse.cc.o.d"
  "libladder_circuit.a"
  "libladder_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
