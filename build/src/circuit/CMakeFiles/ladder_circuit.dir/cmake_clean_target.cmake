file(REMOVE_RECURSE
  "libladder_circuit.a"
)
