# Empty compiler generated dependencies file for ladder_circuit.
# This may be replaced when dependencies are built.
