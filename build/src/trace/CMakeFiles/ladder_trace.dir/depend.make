# Empty dependencies file for ladder_trace.
# This may be replaced when dependencies are built.
