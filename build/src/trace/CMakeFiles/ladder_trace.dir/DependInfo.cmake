
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/data_patterns.cc" "src/trace/CMakeFiles/ladder_trace.dir/data_patterns.cc.o" "gcc" "src/trace/CMakeFiles/ladder_trace.dir/data_patterns.cc.o.d"
  "/root/repo/src/trace/synth.cc" "src/trace/CMakeFiles/ladder_trace.dir/synth.cc.o" "gcc" "src/trace/CMakeFiles/ladder_trace.dir/synth.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/trace/CMakeFiles/ladder_trace.dir/trace_file.cc.o" "gcc" "src/trace/CMakeFiles/ladder_trace.dir/trace_file.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/trace/CMakeFiles/ladder_trace.dir/workloads.cc.o" "gcc" "src/trace/CMakeFiles/ladder_trace.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ladder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
