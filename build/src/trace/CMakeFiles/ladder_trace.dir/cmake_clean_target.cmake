file(REMOVE_RECURSE
  "libladder_trace.a"
)
