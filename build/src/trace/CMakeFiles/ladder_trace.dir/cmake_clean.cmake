file(REMOVE_RECURSE
  "CMakeFiles/ladder_trace.dir/data_patterns.cc.o"
  "CMakeFiles/ladder_trace.dir/data_patterns.cc.o.d"
  "CMakeFiles/ladder_trace.dir/synth.cc.o"
  "CMakeFiles/ladder_trace.dir/synth.cc.o.d"
  "CMakeFiles/ladder_trace.dir/trace_file.cc.o"
  "CMakeFiles/ladder_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/ladder_trace.dir/workloads.cc.o"
  "CMakeFiles/ladder_trace.dir/workloads.cc.o.d"
  "libladder_trace.a"
  "libladder_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
