# Empty dependencies file for ladder_hwcost.
# This may be replaced when dependencies are built.
