file(REMOVE_RECURSE
  "libladder_hwcost.a"
)
