file(REMOVE_RECURSE
  "CMakeFiles/ladder_hwcost.dir/hwcost.cc.o"
  "CMakeFiles/ladder_hwcost.dir/hwcost.cc.o.d"
  "libladder_hwcost.a"
  "libladder_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
