file(REMOVE_RECURSE
  "CMakeFiles/ladder_common.dir/bitops.cc.o"
  "CMakeFiles/ladder_common.dir/bitops.cc.o.d"
  "CMakeFiles/ladder_common.dir/config.cc.o"
  "CMakeFiles/ladder_common.dir/config.cc.o.d"
  "CMakeFiles/ladder_common.dir/event_queue.cc.o"
  "CMakeFiles/ladder_common.dir/event_queue.cc.o.d"
  "CMakeFiles/ladder_common.dir/log.cc.o"
  "CMakeFiles/ladder_common.dir/log.cc.o.d"
  "CMakeFiles/ladder_common.dir/rng.cc.o"
  "CMakeFiles/ladder_common.dir/rng.cc.o.d"
  "CMakeFiles/ladder_common.dir/stats.cc.o"
  "CMakeFiles/ladder_common.dir/stats.cc.o.d"
  "libladder_common.a"
  "libladder_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
