# Empty compiler generated dependencies file for ladder_common.
# This may be replaced when dependencies are built.
