file(REMOVE_RECURSE
  "libladder_common.a"
)
