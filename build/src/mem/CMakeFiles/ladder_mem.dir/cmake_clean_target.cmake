file(REMOVE_RECURSE
  "libladder_mem.a"
)
