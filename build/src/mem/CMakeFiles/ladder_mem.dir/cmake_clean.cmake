file(REMOVE_RECURSE
  "CMakeFiles/ladder_mem.dir/backing_store.cc.o"
  "CMakeFiles/ladder_mem.dir/backing_store.cc.o.d"
  "libladder_mem.a"
  "libladder_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ladder_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
