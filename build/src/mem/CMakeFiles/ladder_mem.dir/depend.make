# Empty dependencies file for ladder_mem.
# This may be replaced when dependencies are built.
