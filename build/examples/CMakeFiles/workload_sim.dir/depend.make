# Empty dependencies file for workload_sim.
# This may be replaced when dependencies are built.
