file(REMOVE_RECURSE
  "CMakeFiles/workload_sim.dir/workload_sim.cpp.o"
  "CMakeFiles/workload_sim.dir/workload_sim.cpp.o.d"
  "workload_sim"
  "workload_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
