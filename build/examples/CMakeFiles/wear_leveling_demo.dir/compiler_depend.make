# Empty compiler generated dependencies file for wear_leveling_demo.
# This may be replaced when dependencies are built.
