# Empty compiler generated dependencies file for fig12_write_service.
# This may be replaced when dependencies are built.
