file(REMOVE_RECURSE
  "CMakeFiles/fig12_write_service.dir/fig12_write_service.cc.o"
  "CMakeFiles/fig12_write_service.dir/fig12_write_service.cc.o.d"
  "fig12_write_service"
  "fig12_write_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_write_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
