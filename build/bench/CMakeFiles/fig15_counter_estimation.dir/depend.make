# Empty dependencies file for fig15_counter_estimation.
# This may be replaced when dependencies are built.
