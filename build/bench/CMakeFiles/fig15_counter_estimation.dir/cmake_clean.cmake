file(REMOVE_RECURSE
  "CMakeFiles/fig15_counter_estimation.dir/fig15_counter_estimation.cc.o"
  "CMakeFiles/fig15_counter_estimation.dir/fig15_counter_estimation.cc.o.d"
  "fig15_counter_estimation"
  "fig15_counter_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_counter_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
