file(REMOVE_RECURSE
  "CMakeFiles/sec64_wear_lifetime.dir/sec64_wear_lifetime.cc.o"
  "CMakeFiles/sec64_wear_lifetime.dir/sec64_wear_lifetime.cc.o.d"
  "sec64_wear_lifetime"
  "sec64_wear_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec64_wear_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
