# Empty dependencies file for sec64_wear_lifetime.
# This may be replaced when dependencies are built.
