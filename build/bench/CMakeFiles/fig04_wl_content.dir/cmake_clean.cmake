file(REMOVE_RECURSE
  "CMakeFiles/fig04_wl_content.dir/fig04_wl_content.cc.o"
  "CMakeFiles/fig04_wl_content.dir/fig04_wl_content.cc.o.d"
  "fig04_wl_content"
  "fig04_wl_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_wl_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
