# Empty dependencies file for fig04_wl_content.
# This may be replaced when dependencies are built.
