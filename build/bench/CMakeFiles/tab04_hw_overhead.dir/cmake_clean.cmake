file(REMOVE_RECURSE
  "CMakeFiles/tab04_hw_overhead.dir/tab04_hw_overhead.cc.o"
  "CMakeFiles/tab04_hw_overhead.dir/tab04_hw_overhead.cc.o.d"
  "tab04_hw_overhead"
  "tab04_hw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_hw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
