# Empty dependencies file for sec7_dynamic_range.
# This may be replaced when dependencies are built.
