file(REMOVE_RECURSE
  "CMakeFiles/sec7_dynamic_range.dir/sec7_dynamic_range.cc.o"
  "CMakeFiles/sec7_dynamic_range.dir/sec7_dynamic_range.cc.o.d"
  "sec7_dynamic_range"
  "sec7_dynamic_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_dynamic_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
