# Empty dependencies file for fig11_latency_surface.
# This may be replaced when dependencies are built.
