file(REMOVE_RECURSE
  "CMakeFiles/fig11_latency_surface.dir/fig11_latency_surface.cc.o"
  "CMakeFiles/fig11_latency_surface.dir/fig11_latency_surface.cc.o.d"
  "fig11_latency_surface"
  "fig11_latency_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_latency_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
