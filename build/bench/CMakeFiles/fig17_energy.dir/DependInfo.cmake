
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig17_energy.cc" "bench/CMakeFiles/fig17_energy.dir/fig17_energy.cc.o" "gcc" "bench/CMakeFiles/fig17_energy.dir/fig17_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ladder_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wear/CMakeFiles/ladder_wear.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/ladder_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ladder_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ladder_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/ladder_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/ladder_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ladder_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ladder_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/reram/CMakeFiles/ladder_reram.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/ladder_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ladder_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
