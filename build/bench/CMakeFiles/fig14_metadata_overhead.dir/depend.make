# Empty dependencies file for fig14_metadata_overhead.
# This may be replaced when dependencies are built.
