file(REMOVE_RECURSE
  "CMakeFiles/test_mna.dir/test_mna.cc.o"
  "CMakeFiles/test_mna.dir/test_mna.cc.o.d"
  "test_mna"
  "test_mna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
