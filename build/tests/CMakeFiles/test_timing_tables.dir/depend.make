# Empty dependencies file for test_timing_tables.
# This may be replaced when dependencies are built.
