file(REMOVE_RECURSE
  "CMakeFiles/test_timing_tables.dir/test_timing_tables.cc.o"
  "CMakeFiles/test_timing_tables.dir/test_timing_tables.cc.o.d"
  "test_timing_tables"
  "test_timing_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
