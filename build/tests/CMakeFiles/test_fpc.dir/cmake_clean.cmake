file(REMOVE_RECURSE
  "CMakeFiles/test_fpc.dir/test_fpc.cc.o"
  "CMakeFiles/test_fpc.dir/test_fpc.cc.o.d"
  "test_fpc"
  "test_fpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
