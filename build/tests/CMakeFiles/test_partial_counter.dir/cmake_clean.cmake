file(REMOVE_RECURSE
  "CMakeFiles/test_partial_counter.dir/test_partial_counter.cc.o"
  "CMakeFiles/test_partial_counter.dir/test_partial_counter.cc.o.d"
  "test_partial_counter"
  "test_partial_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partial_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
