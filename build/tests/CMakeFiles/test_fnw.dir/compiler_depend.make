# Empty compiler generated dependencies file for test_fnw.
# This may be replaced when dependencies are built.
