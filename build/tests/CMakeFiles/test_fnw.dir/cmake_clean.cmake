file(REMOVE_RECURSE
  "CMakeFiles/test_fnw.dir/test_fnw.cc.o"
  "CMakeFiles/test_fnw.dir/test_fnw.cc.o.d"
  "test_fnw"
  "test_fnw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fnw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
