# Empty dependencies file for test_metadata_layout.
# This may be replaced when dependencies are built.
