file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_layout.dir/test_metadata_layout.cc.o"
  "CMakeFiles/test_metadata_layout.dir/test_metadata_layout.cc.o.d"
  "test_metadata_layout"
  "test_metadata_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
