file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_cache.dir/test_metadata_cache.cc.o"
  "CMakeFiles/test_metadata_cache.dir/test_metadata_cache.cc.o.d"
  "test_metadata_cache"
  "test_metadata_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
