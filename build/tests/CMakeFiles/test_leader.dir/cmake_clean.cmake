file(REMOVE_RECURSE
  "CMakeFiles/test_leader.dir/test_leader.cc.o"
  "CMakeFiles/test_leader.dir/test_leader.cc.o.d"
  "test_leader"
  "test_leader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
