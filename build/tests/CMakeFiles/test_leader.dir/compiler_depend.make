# Empty compiler generated dependencies file for test_leader.
# This may be replaced when dependencies are built.
