# Empty compiler generated dependencies file for test_fastmodel.
# This may be replaced when dependencies are built.
