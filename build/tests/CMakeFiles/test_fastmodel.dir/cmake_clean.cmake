file(REMOVE_RECURSE
  "CMakeFiles/test_fastmodel.dir/test_fastmodel.cc.o"
  "CMakeFiles/test_fastmodel.dir/test_fastmodel.cc.o.d"
  "test_fastmodel"
  "test_fastmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fastmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
