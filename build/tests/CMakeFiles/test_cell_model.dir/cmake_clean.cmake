file(REMOVE_RECURSE
  "CMakeFiles/test_cell_model.dir/test_cell_model.cc.o"
  "CMakeFiles/test_cell_model.dir/test_cell_model.cc.o.d"
  "test_cell_model"
  "test_cell_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
