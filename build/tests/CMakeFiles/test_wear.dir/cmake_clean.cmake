file(REMOVE_RECURSE
  "CMakeFiles/test_wear.dir/test_wear.cc.o"
  "CMakeFiles/test_wear.dir/test_wear.cc.o.d"
  "test_wear"
  "test_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
