# Empty dependencies file for test_wear.
# This may be replaced when dependencies are built.
