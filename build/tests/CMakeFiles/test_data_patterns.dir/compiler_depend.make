# Empty compiler generated dependencies file for test_data_patterns.
# This may be replaced when dependencies are built.
