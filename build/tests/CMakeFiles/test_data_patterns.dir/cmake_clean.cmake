file(REMOVE_RECURSE
  "CMakeFiles/test_data_patterns.dir/test_data_patterns.cc.o"
  "CMakeFiles/test_data_patterns.dir/test_data_patterns.cc.o.d"
  "test_data_patterns"
  "test_data_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
