/**
 * @file
 * Tests for the named workload configurations, plus property tests
 * over every instantiable generator (the paper's synthetics and the
 * content-aware families): seed determinism, footprint containment,
 * and the content invariants each family advertises — including the
 * timing-table maximality gate behind the adversarial family.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "reram/timing_tables.hh"
#include "trace/workload_frontend.hh"
#include "trace/workloads.hh"

namespace ladder
{
namespace
{

/**
 * Every workload name that maps to exactly one TraceSource. Mix names
 * are expanded to four member cores upstream (System asserts 1-or-4
 * workloads), so they are not directly instantiable here.
 */
std::vector<std::string>
instantiableNames()
{
    std::vector<std::string> names;
    for (const auto &name : registeredWorkloadNames())
        if (!isMixWorkload(name))
            names.push_back(name);
    return names;
}

std::vector<TraceRecord>
drawRecords(const std::string &name, std::uint64_t seedSalt,
            std::size_t count)
{
    WorkloadInstance inst = makeWorkloadInstance(name, seedSalt, 1.0);
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        records.push_back(inst.source->next());
    return records;
}

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.nonMemBefore == b.nonMemBefore &&
           a.isWrite == b.isWrite && a.dependent == b.dependent &&
           a.lineAddr == b.lineAddr && a.storeOffset == b.storeOffset &&
           a.storeData == b.storeData;
}

TEST(Workloads, PaperWorkloadListShape)
{
    auto singles = singleWorkloadNames();
    EXPECT_EQ(singles.size(), 8u);
    EXPECT_EQ(singles.front(), "astar");
    EXPECT_EQ(singles.back(), "perlb");
    auto mixes = mixWorkloads();
    EXPECT_EQ(mixes.size(), 8u);
    for (const auto &mix : mixes)
        EXPECT_EQ(mix.second.size(), 4u);
    EXPECT_EQ(allWorkloadNames().size(), 16u);
}

TEST(Workloads, Mix1MatchesTable3)
{
    auto mixes = mixWorkloads();
    EXPECT_EQ(mixes[0].first, "mix-1");
    EXPECT_EQ(mixes[0].second,
              (std::vector<std::string>{"astar", "lbm", "mcf",
                                        "cactusADM"}));
}

TEST(Workloads, EveryNameResolves)
{
    for (const auto &name : singleWorkloadNames()) {
        WorkloadParams p = workloadByName(name);
        EXPECT_GT(p.memFraction, 0.0);
        EXPECT_LT(p.memFraction, 1.0);
        EXPECT_GT(p.workingSetPages, 0u);
    }
    for (const auto &mix : mixWorkloads())
        for (const auto &member : mix.second)
            EXPECT_NO_THROW(workloadByName(member));
}

TEST(Workloads, ShortAndLongNamesAgree)
{
    WorkloadParams a = workloadByName("libq");
    WorkloadParams b = workloadByName("libquantum");
    EXPECT_EQ(a.workingSetPages, b.workingSetPages);
    EXPECT_EQ(a.seed, b.seed);
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(workloadByName("gcc"), std::runtime_error);
}

TEST(Workloads, SeedSaltChangesSeedOnly)
{
    WorkloadParams a = workloadByName("mcf", 0);
    WorkloadParams b = workloadByName("mcf", 1);
    EXPECT_NE(a.seed, b.seed);
    EXPECT_EQ(a.workingSetPages, b.workingSetPages);
}

TEST(Workloads, ScaleShrinksWorkingSet)
{
    WorkloadParams full = workloadByName("lbm", 0, 1.0);
    WorkloadParams half = workloadByName("lbm", 0, 0.5);
    EXPECT_EQ(half.workingSetPages, full.workingSetPages / 2);
    WorkloadParams tiny = workloadByName("lbm", 0, 1e-9);
    EXPECT_GE(tiny.workingSetPages, 4u);
}

TEST(Workloads, IsMixWorkload)
{
    EXPECT_TRUE(isMixWorkload("mix-1"));
    EXPECT_TRUE(isMixWorkload("mix-8"));
    EXPECT_FALSE(isMixWorkload("astar"));
}

TEST(Workloads, CharacterDiffersAcrossBenchmarks)
{
    // lbm is write-heavy and streaming; mcf is chase-heavy.
    WorkloadParams lbm = workloadByName("lbm");
    WorkloadParams mcf = workloadByName("mcf");
    EXPECT_GT(lbm.writeFraction, mcf.writeFraction);
    EXPECT_GT(lbm.streamFraction, mcf.streamFraction);
    EXPECT_GT(mcf.dependentFraction, lbm.dependentFraction);
}

// ---------------------------------------------------------------
// Generator-wide properties
// ---------------------------------------------------------------

TEST(WorkloadProperties, EveryGeneratorIsSeedDeterministic)
{
    for (const auto &name : instantiableNames()) {
        auto a = drawRecords(name, 3, 2000);
        auto b = drawRecords(name, 3, 2000);
        for (std::size_t i = 0; i < a.size(); ++i)
            ASSERT_TRUE(sameRecord(a[i], b[i]))
                << name << " record " << i;
        // A different salt reaches every stochastic generator's
        // stream (adv-lrs is deliberately seed-free).
        if (name == "adv-lrs")
            continue;
        auto c = drawRecords(name, 4, 2000);
        bool differs = false;
        for (std::size_t i = 0; i < a.size() && !differs; ++i)
            differs = !sameRecord(a[i], c[i]);
        EXPECT_TRUE(differs) << name << " ignores its seed salt";
    }
}

TEST(WorkloadProperties, SeedSaltReachesEveryInstanceSeed)
{
    for (const auto &name : instantiableNames()) {
        WorkloadInstance a = makeWorkloadInstance(name, 0, 1.0);
        WorkloadInstance b = makeWorkloadInstance(name, 1, 1.0);
        EXPECT_NE(a.seed, b.seed) << name;
        EXPECT_EQ(a.source->footprintBytes(),
                  b.source->footprintBytes())
            << name;
    }
}

TEST(WorkloadProperties, EveryGeneratorStaysInsideItsFootprint)
{
    for (const auto &name : instantiableNames()) {
        WorkloadInstance inst = makeWorkloadInstance(name, 7, 1.0);
        const std::uint64_t footprint = inst.source->footprintBytes();
        ASSERT_GT(footprint, 0u) << name;
        EXPECT_EQ(footprint % 4096, 0u)
            << name << " footprint is not page-aligned";
        for (int i = 0; i < 4000; ++i) {
            TraceRecord rec = inst.source->next();
            ASSERT_LT(rec.lineAddr, footprint) << name;
            ASSERT_EQ(rec.lineAddr % lineBytes, 0u) << name;
            if (rec.isWrite) {
                ASSERT_LT(rec.storeOffset, lineBytes) << name;
                ASSERT_EQ(rec.storeOffset % 8, 0u) << name;
            }
        }
    }
}

/**
 * The store-stream zero-word fraction each family advertises (the
 * LRS-distribution knob ARAS-style content-aware writes exploit) must
 * hold within sampling tolerance.
 */
TEST(WorkloadProperties, FamilyZeroWordFractionsHold)
{
    const struct
    {
        const char *name;
        double expected;
    } families[] = {
        {"dnn-update", DnnWeightUpdateSource::zeroWordFraction},
        {"kv-log", KvLogSource::zeroWordFraction},
    };
    for (const auto &family : families) {
        WorkloadInstance inst =
            makeWorkloadInstance(family.name, 11, 1.0);
        std::uint64_t writes = 0, zeroWords = 0;
        for (int i = 0; i < 60'000; ++i) {
            TraceRecord rec = inst.source->next();
            if (!rec.isWrite)
                continue;
            ++writes;
            std::uint64_t word = 0;
            std::memcpy(&word, rec.storeData.data(), sizeof(word));
            zeroWords += word == 0;
        }
        ASSERT_GT(writes, 10'000u) << family.name;
        const double measured =
            double(zeroWords) / double(writes);
        EXPECT_NEAR(measured, family.expected, 0.02)
            << family.name << " zero-word fraction drifted";
    }
}

TEST(WorkloadProperties, AdversarialFamilyIsAllOnesWriteOnly)
{
    WorkloadInstance inst = makeWorkloadInstance("adv-lrs", 5, 1.0);
    const std::uint64_t lines =
        inst.source->footprintBytes() / lineBytes;
    std::uint64_t prevLine = ~std::uint64_t{0};
    for (std::uint64_t i = 0; i < 8 * lines + 64; ++i) {
        TraceRecord rec = inst.source->next();
        ASSERT_TRUE(rec.isWrite);
        ASSERT_EQ(rec.nonMemBefore, 0u);
        for (std::uint8_t byte : rec.storeData)
            ASSERT_EQ(byte, 0xff);
        // The sweep dwells on all 8 words of a line, then advances —
        // every line in the footprint converges to all-LRS content.
        const std::uint64_t line = rec.lineAddr / lineBytes;
        ASSERT_EQ(rec.storeOffset, (i % 8) * 8);
        if (i % 8 != 0) {
            ASSERT_EQ(line, prevLine);
        } else if (i > 0) {
            ASSERT_EQ(line, (prevLine + 1) % lines);
        }
        prevLine = line;
    }
    // Resident (first-touch) content is all-ones too, so the very
    // first RESET of every line already sees maximum LRS.
    DataPatternModel firstTouch(familyFirstTouchMix("adv-lrs"));
    EXPECT_DOUBLE_EQ(firstTouch.expectedDensity(), 8.0);
}

/**
 * The maximality gate: in the LADDER write timing table, the
 * max-content bucket's latency dominates every other content bucket
 * at every location — so a workload whose every wordline sits at
 * maximum LRS count (adv-lrs) provably maximizes per-write tWR for
 * its locations; no synthetic content can be slower.
 */
TEST(WorkloadProperties, AdversarialContentMaximizesTableLatency)
{
    const TimingModel &m = cachedTimingModel(CrossbarParams{});
    const WriteTimingTable &table = m.ladder;
    const unsigned contentMax = table.contentMax();
    double globalWorstAtMax = 0.0;
    for (unsigned wl = 0; wl < table.rows(); wl += 73) {
        for (unsigned bl = 0; bl < table.cols(); bl += 73) {
            const double atMax =
                table.lookup(wl, bl, contentMax).latencyNs;
            globalWorstAtMax = std::max(globalWorstAtMax, atMax);
            for (unsigned lrs = 0; lrs <= contentMax; lrs += 32) {
                EXPECT_GE(atMax, table.lookup(wl, bl, lrs).latencyNs)
                    << "wl=" << wl << " bl=" << bl << " lrs=" << lrs;
            }
        }
    }
    // And the max-content column reaches the table-wide worst case.
    EXPECT_DOUBLE_EQ(globalWorstAtMax, table.worstLatencyNs());
}

} // namespace
} // namespace ladder
