/** @file Tests for the named workload configurations. */

#include <gtest/gtest.h>

#include "trace/workloads.hh"

namespace ladder
{
namespace
{

TEST(Workloads, PaperWorkloadListShape)
{
    auto singles = singleWorkloadNames();
    EXPECT_EQ(singles.size(), 8u);
    EXPECT_EQ(singles.front(), "astar");
    EXPECT_EQ(singles.back(), "perlb");
    auto mixes = mixWorkloads();
    EXPECT_EQ(mixes.size(), 8u);
    for (const auto &mix : mixes)
        EXPECT_EQ(mix.second.size(), 4u);
    EXPECT_EQ(allWorkloadNames().size(), 16u);
}

TEST(Workloads, Mix1MatchesTable3)
{
    auto mixes = mixWorkloads();
    EXPECT_EQ(mixes[0].first, "mix-1");
    EXPECT_EQ(mixes[0].second,
              (std::vector<std::string>{"astar", "lbm", "mcf",
                                        "cactusADM"}));
}

TEST(Workloads, EveryNameResolves)
{
    for (const auto &name : singleWorkloadNames()) {
        WorkloadParams p = workloadByName(name);
        EXPECT_GT(p.memFraction, 0.0);
        EXPECT_LT(p.memFraction, 1.0);
        EXPECT_GT(p.workingSetPages, 0u);
    }
    for (const auto &mix : mixWorkloads())
        for (const auto &member : mix.second)
            EXPECT_NO_THROW(workloadByName(member));
}

TEST(Workloads, ShortAndLongNamesAgree)
{
    WorkloadParams a = workloadByName("libq");
    WorkloadParams b = workloadByName("libquantum");
    EXPECT_EQ(a.workingSetPages, b.workingSetPages);
    EXPECT_EQ(a.seed, b.seed);
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(workloadByName("gcc"), std::runtime_error);
}

TEST(Workloads, SeedSaltChangesSeedOnly)
{
    WorkloadParams a = workloadByName("mcf", 0);
    WorkloadParams b = workloadByName("mcf", 1);
    EXPECT_NE(a.seed, b.seed);
    EXPECT_EQ(a.workingSetPages, b.workingSetPages);
}

TEST(Workloads, ScaleShrinksWorkingSet)
{
    WorkloadParams full = workloadByName("lbm", 0, 1.0);
    WorkloadParams half = workloadByName("lbm", 0, 0.5);
    EXPECT_EQ(half.workingSetPages, full.workingSetPages / 2);
    WorkloadParams tiny = workloadByName("lbm", 0, 1e-9);
    EXPECT_GE(tiny.workingSetPages, 4u);
}

TEST(Workloads, IsMixWorkload)
{
    EXPECT_TRUE(isMixWorkload("mix-1"));
    EXPECT_TRUE(isMixWorkload("mix-8"));
    EXPECT_FALSE(isMixWorkload("astar"));
}

TEST(Workloads, CharacterDiffersAcrossBenchmarks)
{
    // lbm is write-heavy and streaming; mcf is chase-heavy.
    WorkloadParams lbm = workloadByName("lbm");
    WorkloadParams mcf = workloadByName("mcf");
    EXPECT_GT(lbm.writeFraction, mcf.writeFraction);
    EXPECT_GT(lbm.streamFraction, mcf.streamFraction);
    EXPECT_GT(mcf.dependentFraction, lbm.dependentFraction);
}

} // namespace
} // namespace ladder
