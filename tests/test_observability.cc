/**
 * @file
 * End-to-end tests for the observability layer: trace sink
 * serialization, LADDER_LOG threshold filtering and warn_once rate
 * limiting, epoch snapshot cadence against simulated time, and the
 * headline determinism guarantee — stats.json / sweep.json / trace
 * files are byte-identical between jobs=1 and jobs=8 sweeps.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"
#include "ctrl/trace_reader.hh"
#include "ctrl/trace_sink.hh"
#include "sim/experiment.hh"
#include "sim/stats_export.hh"

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

ExperimentConfig
quickConfig()
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 60'000;
    cfg.measureInstr = 40'000;
    cfg.cacheScale = 1.0 / 16.0;
    return cfg;
}

TEST(TraceSink, CsvAndBinaryRoundTrip)
{
    WriteTraceSink sink;
    CtrlTraceRecord w;
    w.tick = 123456789;
    w.kind = CtrlTraceRecord::Kind::Write;
    w.channel = 2;
    w.wordline = 511;
    w.bitline = 1023;
    w.lrsCount = 77;
    w.latencyNs = 213.5f;
    w.queueDepth = 9;
    sink.record(w);
    CtrlTraceRecord r;
    r.tick = 123456999;
    r.kind = CtrlTraceRecord::Kind::Read;
    r.latencyNs = 41.25f;
    sink.record(r);
    ASSERT_EQ(sink.size(), 2u);

    std::ostringstream csv;
    sink.writeCsv(csv);
    std::string text = csv.str();
    EXPECT_NE(text.find("type,tick,channel,wordline,bitline,lrs_count,"
                        "latency_ns,queue_depth"),
              std::string::npos);
    EXPECT_NE(text.find("W,123456789,2,511,1023,77,213.500,9"),
              std::string::npos);
    EXPECT_NE(text.find("R,123456999,0,0,0,0,41.250,0"),
              std::string::npos);

    std::ostringstream bin;
    sink.writeBinary(bin);
    std::string bytes = bin.str();
    // 16-byte header + 24 bytes per record.
    ASSERT_EQ(bytes.size(), 16u + 2u * 24u);
    EXPECT_EQ(bytes.substr(0, 8), "LADDRTRC");
    // Version 1, count 2 (little endian).
    EXPECT_EQ(static_cast<unsigned char>(bytes[8]), 1u);
    EXPECT_EQ(static_cast<unsigned char>(bytes[12]), 2u);
    // First record starts with the 64-bit tick, little endian.
    std::uint64_t tick = 0;
    for (int i = 7; i >= 0; --i)
        tick = (tick << 8) |
               static_cast<unsigned char>(bytes[16 + i]);
    EXPECT_EQ(tick, 123456789u);

    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
}

TEST(Logging, ThresholdFiltersAndWarnOnceRateLimits)
{
    std::vector<std::pair<LogLevel, std::string>> captured;
    setLogSink([&](LogLevel level, const std::string &msg) {
        captured.emplace_back(level, msg);
    });
    LogLevel before = logThreshold();

    setLogThreshold(LogLevel::Warn);
    inform("not visible at warn threshold");
    debugf("never visible at warn threshold");
    warn("visible warning %d", 42);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_NE(captured[0].second.find("visible warning 42"),
              std::string::npos);

    setLogThreshold(LogLevel::Debug);
    debugf("now visible");
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[1].first, LogLevel::Debug);

    captured.clear();
    setLogThreshold(LogLevel::Info);
    for (int i = 0; i < 5; ++i)
        warn_once("repeated condition %d", i);
    ASSERT_EQ(captured.size(), 1u);
    EXPECT_NE(captured[0].second.find("repeated condition 0"),
              std::string::npos);
    EXPECT_NE(captured[0].second.find("suppressed"),
              std::string::npos);

    setLogThreshold(before);
    setLogSink(nullptr);
}

TEST(EpochSnapshots, CadenceMatchesSimulatedTime)
{
    ExperimentConfig cfg = quickConfig();
    cfg.epochCycles = 2'000;
    SystemConfig sysCfg =
        makeSystemConfig(SchemeKind::Baseline, "lbm", cfg);
    System system(sysCfg);
    SimResult result =
        system.run(cfg.warmupInstr, cfg.measureInstr);

    const auto &names = system.epochNames();
    const auto &epochs = system.epochs();
    ASSERT_FALSE(names.empty());
    ASSERT_FALSE(epochs.empty());
    for (const EpochSnapshot &snap : epochs)
        ASSERT_EQ(snap.values.size(), names.size());

    // Epochs are spaced exactly epochCycles apart in core time and
    // stop when the last core finishes, so the count must match the
    // measured window length (give ±2 for the boundary epochs).
    double epochNs = static_cast<double>(cfg.epochCycles) /
                     sysCfg.core.freqGhz;
    double expected = result.elapsedNs / epochNs;
    EXPECT_NEAR(static_cast<double>(epochs.size()), expected, 2.0)
        << "elapsedNs=" << result.elapsedNs
        << " epochNs=" << epochNs;

    // Snapshot ticks strictly increase and counter-style stats are
    // monotonic across the series.
    std::size_t writesIdx = names.size();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == "ctrl0.data_writes")
            writesIdx = i;
    }
    ASSERT_LT(writesIdx, names.size());
    for (std::size_t i = 1; i < epochs.size(); ++i) {
        EXPECT_LT(epochs[i - 1].tick, epochs[i].tick);
        EXPECT_LE(epochs[i - 1].values[writesIdx],
                  epochs[i].values[writesIdx]);
    }
}

/** All regular files under @p root, keyed by their relative path. */
std::map<std::string, std::string>
slurpTree(const fs::path &root)
{
    std::map<std::string, std::string> files;
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file())
            continue;
        std::ifstream is(entry.path(), std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        files[fs::relative(entry.path(), root).string()] = os.str();
    }
    return files;
}

TEST(StatsExport, ByteIdenticalAcrossJobCounts)
{
    std::vector<SchemeKind> schemes = {SchemeKind::Baseline,
                                       allSchemeKinds().back()};
    std::vector<std::string> workloads = {"lbm", "astar"};

    fs::path base = fs::path(::testing::TempDir()) / "ladder_obs";
    fs::remove_all(base);
    auto sweep = [&](unsigned jobs, const fs::path &dir) {
        ExperimentConfig cfg = quickConfig();
        cfg.jobs = jobs;
        cfg.epochCycles = 10'000;
        cfg.statsJsonDir = (dir / "stats").string();
        cfg.traceOutDir = (dir / "trace").string();
        runMatrixParallel(schemes, workloads, cfg);
    };
    sweep(1, base / "jobs1");
    sweep(8, base / "jobs8");

    auto serial = slurpTree(base / "jobs1");
    auto parallel = slurpTree(base / "jobs8");
    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), parallel.size());
    // 4 runs x (stats.json + trace.csv) + sweep.json.
    EXPECT_EQ(serial.size(), 9u);
    for (const auto &[rel, bytes] : serial) {
        auto it = parallel.find(rel);
        ASSERT_NE(it, parallel.end()) << rel << " missing at jobs=8";
        EXPECT_EQ(bytes, it->second)
            << rel << " differs between jobs=1 and jobs=8";
    }

    // Every stats.json is valid JSON with the documented top level.
    for (const auto &[rel, bytes] : serial) {
        if (rel.find("stats.json") == std::string::npos)
            continue;
        JsonValue v = parseJson(bytes);
        EXPECT_DOUBLE_EQ(v.at("schema_version").number, 2.0);
        EXPECT_TRUE(v.at("manifest").isObject());
        EXPECT_TRUE(v.at("resolved_config").isObject());
        EXPECT_TRUE(v.at("result").isObject());
        EXPECT_TRUE(v.at("stats").isArray());
        EXPECT_TRUE(v.at("solver").isObject());
        ASSERT_TRUE(v.at("epochs").isObject());
        EXPECT_FALSE(v.at("epochs").at("series").array.empty());
        EXPECT_FALSE(v.at("manifest").at("run").string.empty());
        EXPECT_GT(v.at("result").at("data_writes").number, 0.0);
    }

    // The sweep index lists every cell in canonical order.
    JsonValue sweepJson = parseJson(serial.at("stats/sweep.json"));
    ASSERT_EQ(sweepJson.at("cells").array.size(), 4u);
    EXPECT_EQ(sweepJson.at("cells").array[0].at("workload").string,
              "lbm");

    // Traces contain write records for every run.
    for (const auto &[rel, bytes] : serial) {
        if (rel.find("trace.csv") == std::string::npos)
            continue;
        EXPECT_NE(bytes.find("\nW,"), std::string::npos)
            << rel << " has no write records";
    }

    fs::remove_all(base);
}

TEST(StatsExport, StreamingTracesMatchBufferedAtAnyJobCount)
{
    // The headline streaming guarantee: for a given config, the trace
    // bytes on disk are identical whether the sink buffered the whole
    // run or streamed fixed-size chunks from a background writer —
    // and identical again at any sweep parallelism.
    std::vector<SchemeKind> schemes = {SchemeKind::Baseline,
                                       SchemeKind::LadderHybrid};
    std::vector<std::string> workloads = {"lbm", "astar"};

    fs::path base = fs::path(::testing::TempDir()) / "ladder_stream";
    fs::remove_all(base);
    auto sweep = [&](bool stream, unsigned jobs,
                     const fs::path &dir) {
        ExperimentConfig cfg = quickConfig();
        cfg.jobs = jobs;
        cfg.traceOutDir = (dir / "trace").string();
        cfg.traceFormat = "bin2";
        cfg.traceStream = stream;
        // Small chunks force many flush boundaries per run.
        cfg.traceChunkRecords = 64;
        runMatrixParallel(schemes, workloads, cfg);
    };
    sweep(false, 1, base / "buffered");
    sweep(true, 1, base / "stream1");
    sweep(true, 8, base / "stream8");

    auto buffered = slurpTree(base / "buffered");
    auto stream1 = slurpTree(base / "stream1");
    auto stream8 = slurpTree(base / "stream8");
    ASSERT_EQ(buffered.size(), 4u);
    ASSERT_EQ(stream1.size(), buffered.size());
    ASSERT_EQ(stream8.size(), buffered.size());
    for (const auto &[rel, bytes] : buffered) {
        ASSERT_TRUE(stream1.count(rel)) << rel;
        ASSERT_TRUE(stream8.count(rel)) << rel;
        EXPECT_EQ(bytes, stream1.at(rel))
            << rel << " differs between buffered and streaming";
        EXPECT_EQ(bytes, stream8.at(rel))
            << rel << " differs between jobs=1 and jobs=8 streaming";
        // And every streamed file is a valid v2 trace.
        TraceReader reader;
        ASSERT_TRUE(reader.openBuffer(bytes)) << reader.error();
        EXPECT_EQ(reader.version(), 2u);
        CtrlTraceRecord rec;
        std::uint64_t n = 0;
        while (reader.next(rec))
            ++n;
        EXPECT_TRUE(reader.ok()) << reader.error();
        EXPECT_EQ(n, reader.totalRecords());
        EXPECT_GT(n, 0u) << rel;
    }

    fs::remove_all(base);
}

TEST(EpochSnapshots, CacheAndCoreSeriesAlignWithControllerEpochs)
{
    ExperimentConfig cfg = quickConfig();
    cfg.epochCycles = 2'000;
    SystemConfig sysCfg =
        makeSystemConfig(SchemeKind::Baseline, "lbm", cfg);
    System system(sysCfg);
    system.run(cfg.warmupInstr, cfg.measureInstr);

    const auto &names = system.epochNames();
    const auto &epochs = system.epochs();
    ASSERT_FALSE(epochs.empty());

    // Controller names keep their historical leading positions; the
    // core and cache hierarchy series ride in the same flat vector —
    // one snapshot per tick covers every group, so the series are
    // aligned tick-for-tick by construction.
    ASSERT_FALSE(names.empty());
    EXPECT_EQ(names.front().rfind("ctrl0.", 0), 0u) << names.front();
    auto indexOf = [&](const std::string &name) {
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == name)
                return i;
        ADD_FAILURE() << name << " missing from epoch names";
        return names.size();
    };
    std::size_t ctrlWrites = indexOf("ctrl0.data_writes");
    std::size_t coreLoads = indexOf("core0.loads");
    std::size_t l1Hits = indexOf("cache0.l1_hits");
    std::size_t l2Miss = indexOf("cache0.l2_misses");
    std::size_t l3Hits = indexOf("l3.hits");
    ASSERT_LT(l3Hits, names.size());

    for (const EpochSnapshot &snap : epochs)
        ASSERT_EQ(snap.values.size(), names.size());
    for (std::size_t i = 1; i < epochs.size(); ++i) {
        // Every series is a monotone counter sampled at the same
        // instant, so each column must be non-decreasing.
        for (std::size_t idx :
             {ctrlWrites, coreLoads, l1Hits, l2Miss, l3Hits}) {
            EXPECT_LE(epochs[i - 1].values[idx],
                      epochs[i].values[idx])
                << names[idx] << " regressed at epoch " << i;
        }
    }
    // The measured window actually exercises the cache and core
    // stats (they reset at the window boundary with the controller
    // stats, so nonzero values prove live sampling, not stale
    // warmup counts).
    EXPECT_GT(epochs.back().values[coreLoads], 0.0);
    EXPECT_GT(epochs.back().values[l1Hits], 0.0);
}

TEST(StatsExport, ManifestHelpers)
{
    EXPECT_FALSE(gitDescribeString().empty());
    EXPECT_EQ(runDirName(SchemeKind::Baseline, "mix-1"),
              schemeKindName(SchemeKind::Baseline) + "__mix-1");

    ExperimentConfig cfg = quickConfig();
    RunManifest m =
        makeRunManifest(SchemeKind::Baseline, "lbm", cfg);
    EXPECT_EQ(m.workload, "lbm");
    EXPECT_EQ(m.warmupInstr, cfg.warmupInstr);
    EXPECT_FALSE(m.volatileFields);
    cfg.volatileManifest = true;
    cfg.jobs = 3;
    m = makeRunManifest(SchemeKind::Baseline, "lbm", cfg);
    EXPECT_TRUE(m.volatileFields);
    EXPECT_EQ(m.jobs, 3u);
    EXPECT_FALSE(m.wallClockUtc.empty());
}

} // namespace
} // namespace ladder
