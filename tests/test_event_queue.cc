/** @file Tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"

namespace ladder
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() { order.push_back(1); }, 1);
    q.schedule(5, [&]() { order.push_back(0); }, 0);
    q.schedule(5, [&]() { order.push_back(2); }, 1);
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&]() {
        q.scheduleIn(50, [&]() { seen = q.now(); });
    });
    q.runUntil();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&]() { ran = true; });
    q.deschedule(id);
    EXPECT_TRUE(q.empty());
    q.runUntil();
    EXPECT_FALSE(ran);
    // Double deschedule is safe.
    q.deschedule(id);
}

TEST(EventQueue, RunUntilLimit)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&]() { ++count; });
    q.schedule(20, [&]() { ++count; });
    q.schedule(30, [&]() { ++count; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&]() {
        if (++depth < 5)
            q.scheduleIn(1, recurse);
    };
    q.schedule(0, recurse);
    q.runUntil();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 4u);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&]() { ++count; });
    q.schedule(2, [&]() { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(i, []() {});
    q.runUntil();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueue, ZeroDelaySameTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&]() {
        order.push_back(1);
        q.schedule(5, [&]() { order.push_back(2); });
    });
    q.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

} // namespace
} // namespace ladder
