/** @file Tests for the content-true backing store. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/backing_store.hh"

namespace ladder
{
namespace
{

LineData
randomLine(Rng &rng)
{
    LineData line;
    for (auto &byte : line)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return line;
}

TEST(BackingStore, ReadAfterWrite)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    Rng rng(1);
    LineData data = randomLine(rng);
    store.write(0x1000, data);
    EXPECT_EQ(store.read(0x1000), data);
}

TEST(BackingStore, FreshPagesAreZeroWithoutInitializer)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    EXPECT_EQ(popcountLine(store.read(0x40)), 0u);
}

TEST(BackingStore, PageInitializerRuns)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    store.setPageInitializer(
        [](std::uint64_t page, PageContent &content) {
            if (page == 3)
                content.blocks[0].fill(0xff);
        });
    Addr addr = 3 * MemoryGeometry::pageBytes;
    EXPECT_EQ(popcountLine(store.read(addr)), 512u);
    EXPECT_TRUE(store.pageResident(3));
    EXPECT_FALSE(store.pageResident(4));
}

TEST(BackingStore, MatCountsTrackContent)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    Rng rng(2);
    const std::uint64_t page = 7;
    Addr base = page * MemoryGeometry::pageBytes;
    // Write random blocks, then verify counters against a recount.
    for (unsigned b = 0; b < 64; ++b)
        store.write(base + b * lineBytes, randomLine(rng));
    for (unsigned mat = 0; mat < 64; ++mat) {
        unsigned expect = 0;
        for (unsigned b = 0; b < 64; ++b)
            expect += popcount8(store.read(base + b * lineBytes)[mat]);
        EXPECT_EQ(store.matLrsCount(page, mat), expect);
    }
    unsigned maxCount = 0;
    for (unsigned mat = 0; mat < 64; ++mat)
        maxCount = std::max<unsigned>(maxCount,
                                      store.matLrsCount(page, mat));
    EXPECT_EQ(store.maxMatLrsCount(page), maxCount);
}

TEST(BackingStore, MatCountsSurviveOverwrites)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    Rng rng(3);
    Addr addr = 11 * MemoryGeometry::pageBytes + 5 * lineBytes;
    for (int i = 0; i < 20; ++i)
        store.write(addr, randomLine(rng));
    LineData last = store.read(addr);
    unsigned expect = 0;
    for (unsigned mat = 0; mat < 64; ++mat)
        expect = std::max(expect, popcount8(last[mat]) + 0u);
    // Only block 5 is nonzero in this page, so C_w is its worst byte.
    EXPECT_EQ(store.maxMatLrsCount(11), expect);
}

TEST(BackingStore, BitlineCountsTrackContent)
{
    MemoryGeometry geo;
    BackingStore store(geo, true, 0.0);
    AddressMap map(geo);
    Rng rng(4);
    // Two pages in the same mat group share bitline counters: find
    // two such pages.
    BlockLocation locA = map.decode(0);
    BlockLocation locB = locA;
    locB.wordline = locA.wordline + 1;
    Addr pageA = 0;
    Addr pageB = map.encode(locB) - locB.blockInPage * lineBytes;

    LineData a = randomLine(rng);
    LineData b = randomLine(rng);
    store.write(pageA, a);      // block 0 of page A
    store.write(pageB, b);      // block 0 of page B
    unsigned expect = 0;
    for (unsigned mat = 0; mat < 64; ++mat) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            unsigned count = ((a[mat] >> bit) & 1) +
                             ((b[mat] >> bit) & 1);
            expect = std::max(expect, count);
        }
    }
    EXPECT_EQ(store.maxSelectedBitlineLrs(pageA), expect);
}

TEST(BackingStore, BackgroundDensityOffsetsBitlines)
{
    MemoryGeometry geo;
    BackingStore dense(geo, true, 0.25);
    BackingStore empty(geo, true, 0.0);
    Rng rng(5);
    LineData data = randomLine(rng);
    dense.write(0, data);
    empty.write(0, data);
    unsigned background =
        static_cast<unsigned>(0.25 * geo.matRows);
    EXPECT_EQ(dense.maxSelectedBitlineLrs(0),
              empty.maxSelectedBitlineLrs(0) + background);
}

TEST(BackingStore, WriteReturnsTransitions)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    LineData ones = filledLine(0xff);
    BitTransitions t1 = store.write(0, ones);
    EXPECT_EQ(t1.sets, 512u);
    EXPECT_EQ(t1.resets, 0u);
    LineData zeros = filledLine(0x00);
    BitTransitions t2 = store.write(0, zeros);
    EXPECT_EQ(t2.resets, 512u);
    EXPECT_EQ(t2.sets, 0u);
}

TEST(BackingStore, FlipFlagPerBlock)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    EXPECT_FALSE(store.flipped(0x40));
    store.setFlipped(0x40, true);
    EXPECT_TRUE(store.flipped(0x40));
    EXPECT_FALSE(store.flipped(0x80));
    store.setFlipped(0x40, false);
    EXPECT_FALSE(store.flipped(0x40));
}

TEST(BackingStore, ResidentPageCount)
{
    BackingStore store(MemoryGeometry{}, true, 0.0);
    EXPECT_EQ(store.residentPages(), 0u);
    store.read(0);
    store.read(MemoryGeometry::pageBytes);
    store.read(MemoryGeometry::pageBytes + lineBytes); // same page
    EXPECT_EQ(store.residentPages(), 2u);
}

TEST(BackingStore, BitlineTrackingCanBeDisabled)
{
    BackingStore store(MemoryGeometry{}, false, 0.0);
    store.write(0, filledLine(0xff));
    EXPECT_THROW(store.maxSelectedBitlineLrs(0), std::logic_error);
}

} // namespace
} // namespace ladder
