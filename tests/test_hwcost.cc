/** @file Tests for the Table-4 hardware cost model. */

#include <gtest/gtest.h>

#include "hwcost/hwcost.hh"

namespace ladder
{
namespace
{

TEST(HwCost, UpdateModuleNearPaper)
{
    ModuleCost c = updateModuleCost();
    // Paper Table 4: 0.0061 mm^2, 3.71 mW, 0.17 ns.
    EXPECT_NEAR(c.areaMm2, 0.0061, 0.0031);
    EXPECT_NEAR(c.powerMw, 3.71, 1.9);
    EXPECT_NEAR(c.latencyNs, 0.17, 0.09);
}

TEST(HwCost, QueryModuleNearPaper)
{
    ModuleCost c = queryModuleCost();
    // Paper Table 4: 0.0047 mm^2, 6.57 mW, 0.32 ns.
    EXPECT_NEAR(c.areaMm2, 0.0047, 0.0024);
    EXPECT_NEAR(c.powerMw, 6.57, 3.3);
    EXPECT_NEAR(c.latencyNs, 0.32, 0.16);
}

TEST(HwCost, MetadataCacheAnchoredAtPaperPoint)
{
    ModuleCost c = metadataCacheCost(64 * 1024);
    EXPECT_DOUBLE_EQ(c.areaMm2, 0.2442);
    EXPECT_DOUBLE_EQ(c.powerMw, 48.83);
    EXPECT_DOUBLE_EQ(c.latencyNs, 0.81);
}

TEST(HwCost, CacheScalingMonotone)
{
    ModuleCost small = metadataCacheCost(32 * 1024);
    ModuleCost large = metadataCacheCost(128 * 1024);
    EXPECT_LT(small.areaMm2, large.areaMm2);
    EXPECT_LT(small.powerMw, large.powerMw);
    EXPECT_LT(small.latencyNs, large.latencyNs);
    EXPECT_NEAR(large.areaMm2 / small.areaMm2, 4.0, 1e-9);
}

TEST(HwCost, LatenciesBelowProcessorCycle)
{
    // Paper: logic latencies are below the 3.2GHz clock (0.3125 ns)...
    EXPECT_LT(updateModuleCost().latencyNs, 0.3125);
    // ...while the query module is pipelined over two cycles.
    EXPECT_LT(queryModuleCost().latencyNs, 2 * 0.3125);
}

TEST(HwCost, TimingTableStorageSmall)
{
    ModuleCost c = timingTableCost(8);
    EXPECT_LT(c.areaMm2, 0.05);
    EXPECT_NE(c.name.find("512B"), std::string::npos);
}

TEST(HwCost, Table4HasThreeRows)
{
    auto rows = table4();
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].name, "LRS-metadata Update Module");
    EXPECT_EQ(rows[1].name, "Latency Query Module");
    EXPECT_NE(rows[2].name.find("64KB"), std::string::npos);
}

TEST(HwCost, AreaNegligibleVsProcessor)
{
    // Paper argues total overhead is tiny vs a 263 mm^2 processor.
    double total = 0.0;
    for (const auto &row : table4())
        total += row.areaMm2;
    EXPECT_LT(total / 263.0, 0.002);
}

} // namespace
} // namespace ladder
