/**
 * @file
 * Cross-validation of the fast sneak-path model against the full MNA
 * solver, plus the fast model's own invariants.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "circuit/fastmodel.hh"
#include "circuit/mna.hh"

namespace ladder
{
namespace
{

CrossbarParams
smallParams(std::size_t n = 64)
{
    CrossbarParams p;
    p.rows = n;
    p.cols = n;
    return p;
}

using Condition = std::tuple<unsigned, unsigned, unsigned, unsigned>;

class FastVsMna : public ::testing::TestWithParam<Condition>
{
};

TEST_P(FastVsMna, DropAgreesWithinTolerance)
{
    auto [wl, slot, cw, cb] = GetParam();
    CrossbarParams p = smallParams();
    SneakPathModel fast(p);
    CrossbarMna full(p);
    ResetCondition cond{wl, slot, cw, cb};
    ResetEvaluation f = fast.evaluate(cond);
    ResetEvaluation m = full.evaluate(cond);
    ASSERT_TRUE(f.converged);
    ASSERT_TRUE(m.converged);
    // The voltage drop (the latency-determining quantity) must agree
    // to a few millivolts.
    EXPECT_NEAR(f.minDropVolts, m.minDropVolts, 5e-3);
    // Power is an approximation; same order of magnitude.
    EXPECT_GT(f.sourcePowerWatts, 0.3 * m.sourcePowerWatts);
    EXPECT_LT(f.sourcePowerWatts, 3.0 * m.sourcePowerWatts);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, FastVsMna,
    ::testing::Values(Condition{0, 0, 0, 0},
                      Condition{63, 7, 56, 63},
                      Condition{32, 3, 20, 10},
                      Condition{63, 0, 0, 0},
                      Condition{0, 7, 56, 0},
                      Condition{10, 2, 40, 60},
                      Condition{63, 7, 0, 0},
                      Condition{31, 5, 56, 32}));

TEST(FastModel, MonotoneInWordlineLocation)
{
    CrossbarParams p; // full 512x512
    SneakPathModel fast(p);
    double prev = 10.0;
    for (unsigned wl : {0u, 127u, 255u, 383u, 511u}) {
        double drop =
            fast.evaluate({wl, 63, 256, 256}).minDropVolts;
        EXPECT_LT(drop, prev) << "wl " << wl;
        prev = drop;
    }
}

TEST(FastModel, MonotoneInByteOffset)
{
    CrossbarParams p;
    SneakPathModel fast(p);
    double prev = 10.0;
    for (unsigned slot : {0u, 15u, 31u, 47u, 63u}) {
        double drop =
            fast.evaluate({255, slot, 256, 256}).minDropVolts;
        EXPECT_LT(drop, prev) << "slot " << slot;
        prev = drop;
    }
}

TEST(FastModel, MonotoneInWordlineContent)
{
    CrossbarParams p;
    SneakPathModel fast(p);
    double prev = 10.0;
    for (unsigned c : {0u, 128u, 256u, 384u, 512u}) {
        double drop = fast.evaluate({255, 31, c, 512}).minDropVolts;
        EXPECT_LT(drop, prev) << "count " << c;
        prev = drop;
    }
}

TEST(FastModel, MonotoneInBitlineContent)
{
    CrossbarParams p;
    SneakPathModel fast(p);
    double prev = 10.0;
    for (unsigned c : {0u, 128u, 256u, 384u, 512u}) {
        double drop = fast.evaluate({255, 31, 512, c}).minDropVolts;
        EXPECT_LT(drop, prev) << "count " << c;
        prev = drop;
    }
}

TEST(FastModel, WordlineContentDominatesBitline)
{
    // The calibrated model reproduces the paper's wordline-dominant
    // content sensitivity (Figs. 4b/11).
    CrossbarParams p;
    SneakPathModel fast(p);
    double base = fast.evaluate({511, 63, 0, 0}).minDropVolts;
    double wlSwing =
        base - fast.evaluate({511, 63, 512, 0}).minDropVolts;
    double blSwing =
        base - fast.evaluate({511, 63, 0, 512}).minDropVolts;
    EXPECT_GT(wlSwing, blSwing);
}

TEST(FastModel, FullSizeConverges)
{
    CrossbarParams p;
    SneakPathModel fast(p);
    ResetEvaluation eval = fast.evaluate({511, 63, 512, 512});
    EXPECT_TRUE(eval.converged);
    EXPECT_GT(eval.minDropVolts, 1.0);
    EXPECT_LT(eval.minDropVolts, p.writeVolts);
}

TEST(FastModel, UncalibratedScalesMatchMnaToo)
{
    CrossbarParams p = smallParams();
    p.wlSneakScale = 1.0;
    p.blSneakScale = 1.0;
    SneakPathModel fast(p);
    CrossbarMna full(p);
    ResetCondition cond{40, 6, 30, 30};
    EXPECT_NEAR(fast.evaluate(cond).minDropVolts,
                full.evaluate(cond).minDropVolts, 5e-3);
}

} // namespace
} // namespace ladder
