/** @file Tests for the lock-free live-metrics registry. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/metrics.hh"

namespace ladder
{
namespace
{

/** Leave the registry disabled and zeroed whatever a test does. */
struct MetricsReset
{
    MetricsReset() { metrics::reset(); }
    ~MetricsReset() { metrics::reset(); }
};

TEST(Metrics, RegistrationIsIdempotent)
{
    MetricsReset guard;
    metrics::MetricId a = metrics::registerCounter("test.idem");
    metrics::MetricId b = metrics::registerCounter("test.idem");
    EXPECT_EQ(a, b);
    metrics::MetricId g = metrics::registerGauge("test.idem_gauge");
    EXPECT_NE(a, g);
    // Re-registering under the other kind is a contract violation.
    EXPECT_THROW(metrics::registerGauge("test.idem"),
                 std::logic_error);
}

TEST(Metrics, DisabledSitesRecordNothingAndStayCheap)
{
    MetricsReset guard;
    ASSERT_FALSE(metrics::enabled());
    metrics::MetricId id = metrics::registerCounter("test.disabled");
    // Same bar as test_profiler's DisabledScopeStaysCheap: the off
    // path is one relaxed load and a branch; 200ns mean catches an
    // accidental slab lookup or allocation without flaking on CI.
    constexpr int iterations = 1'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i)
        metrics::add(id);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double meanNs =
        std::chrono::duration<double, std::nano>(elapsed).count() /
        iterations;
    EXPECT_LT(meanNs, 200.0);
    EXPECT_EQ(metrics::value(id), 0u);
}

TEST(Metrics, CountersAggregateAcrossThreads)
{
    MetricsReset guard;
    metrics::MetricId id = metrics::registerCounter("test.threads");
    metrics::enable();
    constexpr int threads = 4;
    constexpr int perThread = 10'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([id]() {
            for (int i = 0; i < perThread; ++i)
                metrics::add(id, 2);
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(metrics::value(id),
              static_cast<std::uint64_t>(threads) * perThread * 2);
}

TEST(Metrics, GaugesSumPerThreadLastValues)
{
    MetricsReset guard;
    metrics::MetricId id = metrics::registerGauge("test.gauge");
    metrics::enable();
    metrics::set(id, 3);
    metrics::set(id, 7); // last value wins on this thread
    std::thread other([id]() { metrics::set(id, 5); });
    other.join();
    EXPECT_EQ(metrics::value(id), 12u);
}

TEST(Metrics, SnapshotIsTornFreeUnderConcurrentWrites)
{
    MetricsReset guard;
    metrics::MetricId id = metrics::registerCounter("test.torn");
    metrics::enable();
    constexpr int threads = 4;
    constexpr std::uint64_t perThread = 200'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([id]() {
            for (std::uint64_t i = 0; i < perThread; ++i)
                metrics::add(id);
        });
    }
    // Snapshot while the writers hammer: every observed value must be
    // monotonic and within the final total — a torn 64-bit read or a
    // data race (TSan) would violate both.
    std::uint64_t last = 0;
    for (int i = 0; i < 200; ++i) {
        std::uint64_t now = metrics::value(id);
        EXPECT_GE(now, last);
        EXPECT_LE(now, threads * perThread);
        last = now;
        for (const metrics::Sample &s : metrics::snapshot()) {
            if (s.name == "test.torn")
                EXPECT_LE(s.value, threads * perThread);
        }
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(metrics::value(id), threads * perThread);
}

TEST(Metrics, ConcurrentRegistrationYieldsOneId)
{
    MetricsReset guard;
    constexpr int threads = 8;
    std::vector<metrics::MetricId> ids(threads);
    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([t, &ids, &ready]() {
            ready.fetch_add(1);
            while (ready.load() < threads) {
            }
            ids[static_cast<std::size_t>(t)] =
                metrics::registerCounter("test.race");
        });
    }
    for (auto &w : workers)
        w.join();
    for (int t = 1; t < threads; ++t)
        EXPECT_EQ(ids[0], ids[static_cast<std::size_t>(t)]);
}

TEST(Metrics, EnableZeroesPreviousSession)
{
    MetricsReset guard;
    metrics::MetricId id = metrics::registerCounter("test.session");
    metrics::enable();
    metrics::add(id, 41);
    metrics::disable();
    EXPECT_EQ(metrics::value(id), 41u); // survives disable
    metrics::enable();
    EXPECT_EQ(metrics::value(id), 0u); // cleared by the new session
}

TEST(Metrics, SnapshotSortsByNameAndKeepsKinds)
{
    MetricsReset guard;
    metrics::registerCounter("test.zz_counter");
    metrics::registerGauge("test.aa_gauge");
    std::vector<metrics::Sample> all = metrics::snapshot();
    ASSERT_GE(all.size(), 2u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1].name, all[i].name);
    bool sawGauge = false, sawCounter = false;
    for (const metrics::Sample &s : all) {
        if (s.name == "test.aa_gauge") {
            sawGauge = true;
            EXPECT_EQ(s.kind, metrics::Kind::Gauge);
        }
        if (s.name == "test.zz_counter") {
            sawCounter = true;
            EXPECT_EQ(s.kind, metrics::Kind::Counter);
        }
    }
    EXPECT_TRUE(sawGauge);
    EXPECT_TRUE(sawCounter);
}

} // namespace
} // namespace ladder
