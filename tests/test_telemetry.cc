/** @file Tests for the live-telemetry publisher and heartbeat schema. */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/metrics.hh"
#include "sim/telemetry.hh"

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

struct MetricsReset
{
    MetricsReset() { metrics::reset(); }
    ~MetricsReset() { metrics::reset(); }
};

fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

TEST(Telemetry, HeartbeatJsonRoundTrips)
{
    Heartbeat hb;
    hb.seq = 17;
    hb.wallUnixMs = 1'700'000'000'123ull;
    hb.uptimeMs = 4'500;
    hb.intervalMs = 50;
    hb.simTick = 123'456'789ull;
    hb.cellsDone = 3;
    hb.cellsTotal = 8;
    hb.etaSeconds = 12.5;
    hb.counters["ctrl.ch0.writes"] = 42;
    hb.counters["ctrl.ch1.writes"] = 7;
    hb.gauges["ctrl.ch0.wq_depth"] = 5;
    hb.ratesPerSec["ctrl.ch0.writes"] = 84.0;

    std::ostringstream os;
    writeHeartbeatJson(os, hb);

    Heartbeat back;
    std::string error;
    ASSERT_TRUE(parseHeartbeat(os.str(), back, error)) << error;
    EXPECT_EQ(back.schemaVersion, heartbeatSchemaVersion);
    EXPECT_EQ(back.seq, hb.seq);
    EXPECT_EQ(back.wallUnixMs, hb.wallUnixMs);
    EXPECT_EQ(back.uptimeMs, hb.uptimeMs);
    EXPECT_EQ(back.intervalMs, hb.intervalMs);
    EXPECT_EQ(back.simTick, hb.simTick);
    EXPECT_EQ(back.cellsDone, hb.cellsDone);
    EXPECT_EQ(back.cellsTotal, hb.cellsTotal);
    EXPECT_DOUBLE_EQ(back.etaSeconds, hb.etaSeconds);
    EXPECT_EQ(back.counters, hb.counters);
    EXPECT_EQ(back.gauges, hb.gauges);
    EXPECT_EQ(back.ratesPerSec, hb.ratesPerSec);
}

TEST(Telemetry, ParseRejectsGarbageAndWrongVersions)
{
    Heartbeat hb;
    std::string error;
    EXPECT_FALSE(parseHeartbeat("not json at all", hb, error));
    EXPECT_FALSE(parseHeartbeat("[1,2,3]", hb, error));
    EXPECT_FALSE(parseHeartbeat("{\"seq\": 1}", hb, error));
    EXPECT_FALSE(parseHeartbeat(
        "{\"schema_version\": 999, \"seq\": 1}", hb, error));
    EXPECT_NE(error.find("999"), std::string::npos);
}

TEST(Telemetry, PublisherRenamesMonotonicSnapshots)
{
    MetricsReset guard;
    fs::path dir = freshDir("ladder_telemetry_pub");
    metrics::MetricId tick =
        metrics::registerGauge(metrics::names::simTick);
    metrics::enable();

    TelemetryOptions options;
    options.intervalMs = 5;
    options.dir = dir.string();
    options.watchdogIntervals = 0;

    std::vector<std::uint64_t> seqs;
    {
        TelemetryPublisher publisher(options);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        std::uint64_t fed = 0;
        while (seqs.size() < 3 &&
               std::chrono::steady_clock::now() < deadline) {
            metrics::set(tick, ++fed);
            Heartbeat hb;
            std::string error;
            if (readHeartbeatFile(dir.string(), hb, error) &&
                (seqs.empty() || hb.seq > seqs.back()))
                seqs.push_back(hb.seq);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
        publisher.stop();
        EXPECT_GE(publisher.published(), seqs.size());
    }
    ASSERT_GE(seqs.size(), 3u) << "publisher never produced 3 "
                                  "distinct heartbeats";
    for (std::size_t i = 1; i < seqs.size(); ++i)
        EXPECT_LT(seqs[i - 1], seqs[i]);

    // stop() leaves a final, parsable heartbeat for post-mortems and
    // never leaves the .tmp staging file behind.
    Heartbeat final;
    std::string error;
    ASSERT_TRUE(readHeartbeatFile(dir.string(), final, error))
        << error;
    EXPECT_GE(final.seq, seqs.back());
    EXPECT_FALSE(fs::exists(dir / "heartbeat.json.tmp"));
}

TEST(Telemetry, WatchdogTripsOnInjectedStall)
{
    MetricsReset guard;
    fs::path dir = freshDir("ladder_telemetry_watchdog");
    metrics::MetricId tick =
        metrics::registerGauge(metrics::names::simTick);
    metrics::MetricId total =
        metrics::registerGauge(metrics::names::cellsTotal);
    metrics::registerCounter(metrics::names::cellsDone);
    metrics::enable();
    // A run that looks alive (one pending cell) whose tick never
    // advances: the injected stall.
    metrics::set(tick, 1234);
    metrics::set(total, 1);

    std::mutex mutex;
    std::vector<std::string> warnings;
    setLogSink([&](LogLevel level, const std::string &message) {
        std::lock_guard<std::mutex> lock(mutex);
        if (level == LogLevel::Warn)
            warnings.push_back(message);
    });

    TelemetryOptions options;
    options.intervalMs = 5;
    options.dir = dir.string();
    options.watchdogIntervals = 3;
    {
        TelemetryPublisher publisher(options);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        bool tripped = false;
        while (!tripped &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            std::lock_guard<std::mutex> lock(mutex);
            for (const std::string &w : warnings)
                tripped |= w.find("watchdog") != std::string::npos;
        }
        EXPECT_TRUE(tripped) << "watchdog never warned";
    }
    setLogSink(nullptr);

    std::string all;
    for (const std::string &w : warnings)
        all += w + "\n";
    EXPECT_NE(all.find("stuck at 1234"), std::string::npos) << all;
    // Exactly one warning per stall episode, not one per interval.
    std::size_t count = 0;
    for (const std::string &w : warnings)
        count += w.find("watchdog") != std::string::npos ? 1 : 0;
    EXPECT_EQ(count, 1u) << all;
}

TEST(Telemetry, OffByDefaultLeavesNoHeartbeatAndIdenticalStats)
{
    MetricsReset guard;
    fs::path off = freshDir("ladder_telemetry_off");
    fs::path on = freshDir("ladder_telemetry_on");

    ExperimentConfig cfg;
    cfg.warmupInstr = 20'000;
    cfg.measureInstr = 5'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.progress = "off";

    cfg.statsJsonDir = (off / "stats").string();
    ASSERT_EQ(cfg.telemetryIntervalMs, 0u); // off is the default
    {
        TelemetryScope scope(cfg, 1);
        runOne(SchemeKind::Baseline, "lbm", cfg);
        scope.noteCellDone();
    }
    EXPECT_FALSE(fs::exists(off / "stats" / heartbeatFileName));

    cfg.statsJsonDir = (on / "stats").string();
    cfg.telemetryIntervalMs = 5;
    {
        TelemetryScope scope(cfg, 1);
        runOne(SchemeKind::Baseline, "lbm", cfg);
        scope.noteCellDone();
    }
    EXPECT_TRUE(fs::exists(on / "stats" / heartbeatFileName));

    // The observability knob must not leak into simulation output:
    // stats.json bytes are identical with the publisher on or off.
    fs::path relative =
        fs::path("baseline__lbm") / "stats.json";
    std::string offBytes = slurp(off / "stats" / relative);
    std::string onBytes = slurp(on / "stats" / relative);
    ASSERT_FALSE(offBytes.empty());
    EXPECT_EQ(offBytes, onBytes);
}

TEST(Telemetry, OptionsFallBackToStatsDirAndWarnWithoutOne)
{
    ExperimentConfig cfg;
    cfg.telemetryIntervalMs = 50;
    cfg.statsJsonDir = "some/dir";
    TelemetryOptions options = telemetryOptions(cfg);
    EXPECT_TRUE(options.active());
    EXPECT_EQ(options.dir, "some/dir");

    cfg.telemetryOut = "elsewhere";
    EXPECT_EQ(telemetryOptions(cfg).dir, "elsewhere");

    cfg.telemetryOut.clear();
    cfg.statsJsonDir.clear();
    EXPECT_FALSE(telemetryOptions(cfg).active());
}

} // namespace
} // namespace ladder
