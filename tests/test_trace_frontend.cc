/**
 * @file
 * Fuzz/robustness wall for the external-trace workload frontend
 * (trace/extern_trace, trace/workload_frontend). The contract under
 * test mirrors test_trace_reader's: every byte sequence — valid
 * DRAMsim3 text, valid bin2 containers, every truncation, every byte
 * flip, random garbage, and format confusion — is either parsed
 * exactly or rejected with a descriptive error, never a crash or
 * undefined behaviour (the CI ASan/UBSan job runs this binary).
 * On top of the parsers, the replay source's determinism, address
 * remapping, and content synthesis are property-tested, and the
 * committed ~1k-record mini trace fixture runs end to end through the
 * full System with manifest provenance and jobs= byte-identity
 * checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "ctrl/trace_sink.hh"
#include "sim/config_resolve.hh"
#include "sim/experiment.hh"
#include "sim/stats_export.hh"
#include "trace/extern_trace.hh"
#include "trace/workload_frontend.hh"

#ifndef LADDER_DATA_DIR
#error "LADDER_DATA_DIR must point at the committed tests/data files"
#endif

namespace fs = std::filesystem;

namespace ladder
{
namespace
{

/** Pin the manifest before gitDescribeString can memoize (see
 *  test_golden_run). */
const bool pinnedDescribe = []() {
    ::setenv("LADDER_GIT_DESCRIBE", "golden", /*overwrite=*/1);
    return true;
}();

const fs::path miniTrace =
    fs::path(LADDER_DATA_DIR) / "mini_dramsim3.trace";

std::string
makeDramsim3Text(std::size_t count, std::uint64_t seed,
                 std::vector<ExternRecord> *expected = nullptr)
{
    Rng rng(seed);
    std::ostringstream os;
    os << "# synthetic fixture\n\n";
    std::uint64_t cycle = 0;
    for (std::size_t i = 0; i < count; ++i) {
        cycle += 1 + rng.nextBounded(20);
        ExternRecord r;
        r.addr = rng.nextBounded(std::uint64_t{1} << 40) & ~0x3full;
        r.isWrite = rng.nextBool(0.4);
        r.cycle = cycle;
        os << "0x" << std::hex << r.addr << std::dec << " "
           << (r.isWrite ? "WRITE" : "READ") << " " << r.cycle
           << "\n";
        if (expected)
            expected->push_back(r);
    }
    return os.str();
}

std::vector<CtrlTraceRecord>
randomCtrlRecords(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<CtrlTraceRecord> records;
    std::uint64_t tick = 0;
    for (std::size_t i = 0; i < count; ++i) {
        CtrlTraceRecord r;
        tick += rng.nextBounded(10'000);
        r.tick = tick;
        r.kind = rng.nextBool(0.7) ? CtrlTraceRecord::Kind::Write
                                   : CtrlTraceRecord::Kind::Read;
        r.channel = static_cast<std::uint8_t>(rng.nextBounded(4));
        r.wordline = static_cast<std::uint16_t>(rng.nextBounded(512));
        r.bitline = static_cast<std::uint16_t>(rng.nextBounded(1024));
        r.lrsCount = static_cast<std::uint16_t>(rng.nextBounded(513));
        r.latencyNs =
            static_cast<float>(rng.nextBounded(400'000)) / 1000.0f;
        r.queueDepth =
            static_cast<std::uint32_t>(rng.nextBounded(64));
        records.push_back(r);
    }
    return records;
}

std::string
serializeBin2(const std::vector<CtrlTraceRecord> &records,
              std::size_t chunkRecords)
{
    WriteTraceSink sink;
    for (const auto &r : records)
        sink.record(r);
    std::ostringstream os;
    sink.writeBinaryV2(os, chunkRecords);
    return os.str();
}

std::string
slurp(const fs::path &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

fs::path
tempFile(const std::string &name, const std::string &content)
{
    fs::path dir = fs::path(::testing::TempDir()) / "ladder_frontend";
    fs::create_directories(dir);
    fs::path path = dir / name;
    std::ofstream os(path, std::ios::binary);
    os << content;
    return path;
}

// ---------------------------------------------------------------
// DRAMsim3 text parser
// ---------------------------------------------------------------

TEST(ExternParse, Dramsim3RoundTrip)
{
    std::vector<ExternRecord> expected;
    std::string text = makeDramsim3Text(200, 0xD1, &expected);
    ExternParseResult result =
        parseExternTrace(text, ExternTraceFormat::Auto);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.format, ExternTraceFormat::Dramsim3);
    ASSERT_EQ(result.records.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(result.records[i].addr, expected[i].addr) << i;
        EXPECT_EQ(result.records[i].isWrite, expected[i].isWrite)
            << i;
        EXPECT_EQ(result.records[i].cycle, expected[i].cycle) << i;
        EXPECT_EQ(result.records[i].lrsCount, 0xffff) << i;
    }
    EXPECT_EQ(result.crc32, crc32(text.data(), text.size()));
}

TEST(ExternParse, Dramsim3AcceptsCommonVariants)
{
    const std::string text = "# comment line\n"
                             "\n"
                             "0x1f00 READ 1\n"
                             "1f40 W 2\r\n"
                             "0X1F80\tr\t3\n"
                             "  1fc0 write 4  \n";
    ExternParseResult result =
        parseExternTrace(text, ExternTraceFormat::Dramsim3);
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.records.size(), 4u);
    EXPECT_EQ(result.records[0].addr, 0x1f00u);
    EXPECT_FALSE(result.records[0].isWrite);
    EXPECT_TRUE(result.records[1].isWrite);
    EXPECT_EQ(result.records[2].addr, 0x1f80u);
    EXPECT_FALSE(result.records[2].isWrite);
    EXPECT_TRUE(result.records[3].isWrite);
    EXPECT_EQ(result.records[3].cycle, 4u);
}

TEST(ExternParse, Dramsim3RejectsMalformedLines)
{
    struct Case
    {
        const char *text;
        const char *needle; //!< expected substring of the error
    };
    const Case bad[] = {
        {"0x40 READ\n", "expected"},           // missing cycle
        {"0x40\n", "expected"},                // op+cycle missing
        {"0x40 READ 1 extra\n", "expected"},   // trailing token
        {"zz40 READ 1\n", "bad hex address"},  // bad radix
        {"0x READ 1\n", "bad hex address"},    // empty after 0x
        {"0x40 FETCH 1\n", "bad op"},          // unknown op
        {"0x40 READ -1\n", "bad cycle"},       // signed cycle
        {"0x40 READ 1x\n", "bad cycle"},       // junk in cycle
        {"0x40 READ 99999999999999999999\n", "bad cycle"}, // overflow
        {"0xfffffffffffffffff READ 1\n", "bad hex address"}, // 68 bits
        {"", "no requests"},                   // empty input
        {"# only comments\n\n", "no requests"},
        {"0x40 READ 1\n\x01\x02\x03\n", "non-text"}, // binary bytes
    };
    for (const Case &c : bad) {
        ExternParseResult result =
            parseExternTrace(c.text, ExternTraceFormat::Dramsim3);
        EXPECT_FALSE(result.ok()) << "accepted: " << c.text;
        EXPECT_TRUE(result.records.empty());
        EXPECT_NE(result.error.find(c.needle), std::string::npos)
            << "error for '" << c.text << "' was: " << result.error;
    }
    // Errors carry the offending line number.
    ExternParseResult lined = parseExternTrace(
        "0x40 READ 1\n0x80 WRITE 2\nbogus\n",
        ExternTraceFormat::Dramsim3);
    ASSERT_FALSE(lined.ok());
    EXPECT_NE(lined.error.find("line 3"), std::string::npos)
        << lined.error;
}

TEST(ExternParse, Dramsim3EveryTruncationNeverCrashes)
{
    std::string whole = makeDramsim3Text(24, 0xD2);
    ExternParseResult full =
        parseExternTrace(whole, ExternTraceFormat::Dramsim3);
    ASSERT_TRUE(full.ok());
    for (std::size_t len = 0; len < whole.size(); ++len) {
        ExternParseResult result = parseExternTrace(
            whole.substr(0, len), ExternTraceFormat::Dramsim3);
        // Text truncation at a line boundary is a legal shorter
        // trace; mid-line truncation or an empty result must error.
        if (result.ok()) {
            EXPECT_FALSE(result.records.empty());
            EXPECT_LE(result.records.size(), full.records.size());
        } else {
            EXPECT_TRUE(result.records.empty());
            EXPECT_FALSE(result.error.empty());
        }
    }
}

// ---------------------------------------------------------------
// bin2 replay (through ctrl/TraceReader)
// ---------------------------------------------------------------

TEST(ExternParse, Bin2RoundTripAndAutoDetect)
{
    auto records = randomCtrlRecords(100, 0xB1);
    std::string bytes = serializeBin2(records, 16);
    ExternParseResult result =
        parseExternTrace(bytes, ExternTraceFormat::Auto);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_EQ(result.format, ExternTraceFormat::Bin2);
    ASSERT_EQ(result.records.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const bool isWrite =
            records[i].kind == CtrlTraceRecord::Kind::Write;
        EXPECT_EQ(result.records[i].isWrite, isWrite) << i;
        EXPECT_EQ(result.records[i].cycle, records[i].tick) << i;
        EXPECT_EQ(result.records[i].lrsCount,
                  isWrite ? records[i].lrsCount : 0xffff)
            << i;
        // Line addresses preserve (channel, wordline) structure.
        EXPECT_EQ(result.records[i].addr,
                  ((std::uint64_t{records[i].channel} << 16 |
                    records[i].wordline) *
                   lineBytes))
            << i;
    }
}

TEST(ExternParse, Bin2EveryTruncationIsAnError)
{
    auto records = randomCtrlRecords(20, 0xB2);
    std::string whole = serializeBin2(records, 8);
    for (std::size_t len = 0; len < whole.size(); ++len) {
        ExternParseResult result = parseExternTrace(
            whole.substr(0, len), ExternTraceFormat::Auto);
        EXPECT_FALSE(result.ok())
            << "truncation to " << len << " of " << whole.size()
            << " bytes was not reported";
        EXPECT_TRUE(result.records.empty());
    }
}

TEST(ExternParse, Bin2EveryByteFlipIsDetectedOrHarmless)
{
    auto records = randomCtrlRecords(20, 0xB3);
    std::string whole = serializeBin2(records, 8);
    for (std::size_t pos = 0; pos < whole.size(); ++pos) {
        std::string flipped = whole;
        flipped[pos] ^= 0x01;
        // Force the bin2 parser even when the flip breaks the magic:
        // Auto would fall back to the text parser (covered by the
        // confusion test below), hiding the binary validation path.
        ExternParseResult result =
            parseExternTrace(flipped, ExternTraceFormat::Bin2);
        if (pos >= 16) {
            // Chunk payloads, the footer, and the index are CRC- or
            // cross-validated; flips there must be detected.
            EXPECT_FALSE(result.ok())
                << "flip at offset " << pos << " went undetected";
        } else if (result.ok()) {
            ASSERT_EQ(result.records.size(), records.size())
                << "flip at offset " << pos;
        }
    }
}

TEST(ExternParse, MixedFormatConfusionIsRejected)
{
    // Text bytes forced through the bin2 parser.
    std::string text = makeDramsim3Text(10, 0xC1);
    EXPECT_FALSE(
        parseExternTrace(text, ExternTraceFormat::Bin2).ok());

    // bin2 bytes forced through the text parser.
    std::string bin2 = serializeBin2(randomCtrlRecords(10, 0xC2), 4);
    EXPECT_FALSE(
        parseExternTrace(bin2, ExternTraceFormat::Dramsim3).ok());

    // A controller CSV trace is neither format.
    std::string csv =
        "type,tick,channel,wordline,bitline,lrs_count,latency_ns,"
        "queue_depth\nW,1,0,0,0,0,1.0,0\n";
    EXPECT_FALSE(
        parseExternTrace(csv, ExternTraceFormat::Auto).ok());

    // A core-level LDTRACE1 recording is not an external format
    // either (it replays through SystemConfig::traceFiles instead).
    std::string ldtrace = "LDTRACE1";
    ldtrace.append(16, '\0');
    EXPECT_FALSE(
        parseExternTrace(ldtrace, ExternTraceFormat::Auto).ok());
}

TEST(ExternParse, RandomGarbageNeverCrashes)
{
    Rng rng(0xF00D);
    for (int round = 0; round < 200; ++round) {
        std::size_t len = rng.nextBounded(512);
        std::string bytes(len, '\0');
        for (auto &b : bytes)
            b = static_cast<char>(rng.nextBounded(256));
        for (ExternTraceFormat format :
             {ExternTraceFormat::Auto, ExternTraceFormat::Dramsim3,
              ExternTraceFormat::Bin2}) {
            ExternParseResult result =
                parseExternTrace(bytes, format);
            EXPECT_EQ(result.ok(), result.error.empty());
        }
    }
    SUCCEED();
}

// ---------------------------------------------------------------
// Replay source properties
// ---------------------------------------------------------------

std::shared_ptr<const ExternParseResult>
parsedFixture()
{
    static std::shared_ptr<const ExternParseResult> fixture = [] {
        auto result = std::make_shared<ExternParseResult>(
            parseExternTrace(slurp(miniTrace),
                             ExternTraceFormat::Auto));
        return result;
    }();
    return fixture;
}

TEST(ExternSource, MiniFixtureParses)
{
    auto fixture = parsedFixture();
    ASSERT_TRUE(fixture->ok()) << fixture->error;
    EXPECT_EQ(fixture->format, ExternTraceFormat::Dramsim3);
    EXPECT_EQ(fixture->records.size(), 1024u);
}

TEST(ExternSource, DeterministicAndSeedSensitive)
{
    auto fixture = parsedFixture();
    ASSERT_TRUE(fixture->ok());
    ExternTraceOptions opts;
    opts.footprintPages = 64;
    ExternalTraceSource a(fixture, opts, 42);
    ExternalTraceSource b(fixture, opts, 42);
    ExternalTraceSource c(fixture, opts, 43);
    bool anyDiffers = false;
    for (int i = 0; i < 4000; ++i) {
        TraceRecord ra = a.next();
        TraceRecord rb = b.next();
        TraceRecord rc = c.next();
        ASSERT_EQ(ra.lineAddr, rb.lineAddr) << i;
        ASSERT_EQ(ra.isWrite, rb.isWrite) << i;
        ASSERT_EQ(ra.nonMemBefore, rb.nonMemBefore) << i;
        ASSERT_EQ(ra.storeOffset, rb.storeOffset) << i;
        ASSERT_EQ(ra.storeData, rb.storeData) << i;
        // Same trace => same address stream at any seed; only the
        // synthesized content varies.
        ASSERT_EQ(ra.lineAddr, rc.lineAddr) << i;
        ASSERT_EQ(ra.isWrite, rc.isWrite) << i;
        anyDiffers |= ra.isWrite && (ra.storeData != rc.storeData ||
                                     ra.storeOffset != rc.storeOffset);
    }
    EXPECT_TRUE(anyDiffers)
        << "seed does not reach the content synthesis";
    EXPECT_GE(a.loops(), 2u); // 4000 draws over a 1024-record trace
}

TEST(ExternSource, AddressesStayInsideTheFootprint)
{
    auto fixture = parsedFixture();
    ASSERT_TRUE(fixture->ok());
    for (std::uint64_t pages : {1ull, 7ull, 64ull}) {
        ExternTraceOptions opts;
        opts.footprintPages = pages;
        ExternalTraceSource source(fixture, opts, 7);
        EXPECT_EQ(source.footprintBytes(), pages * 4096);
        for (int i = 0; i < 3000; ++i) {
            TraceRecord rec = source.next();
            EXPECT_LT(rec.lineAddr, source.footprintBytes());
            EXPECT_EQ(rec.lineAddr % lineBytes, 0u);
            if (rec.isWrite) {
                EXPECT_LT(rec.storeOffset, lineBytes);
                EXPECT_EQ(rec.storeOffset % 8, 0u);
            } else {
                EXPECT_EQ(rec.storeOffset, 0u);
            }
        }
    }
}

TEST(ExternSource, LrsContentSynthesisTracksRecordedCounts)
{
    // A bin2 trace with known LRS counts: 0 -> zero words,
    // 512 -> all-ones words, k -> popcount round(64k/512).
    std::vector<CtrlTraceRecord> records;
    for (std::uint16_t lrs : {0, 8, 64, 256, 500, 512}) {
        CtrlTraceRecord r;
        r.kind = CtrlTraceRecord::Kind::Write;
        r.tick = records.size();
        r.lrsCount = lrs;
        r.wordline = static_cast<std::uint16_t>(records.size());
        records.push_back(r);
    }
    auto parsed = std::make_shared<ExternParseResult>(
        parseExternTrace(serializeBin2(records, 4),
                         ExternTraceFormat::Bin2));
    ASSERT_TRUE(parsed->ok()) << parsed->error;
    ExternTraceOptions opts;
    opts.footprintPages = 16;
    opts.content = ExternContentMode::Lrs;
    ExternalTraceSource source(parsed, opts, 99);
    for (std::size_t i = 0; i < records.size(); ++i) {
        TraceRecord rec = source.next();
        ASSERT_TRUE(rec.isWrite);
        std::uint64_t word = 0;
        std::memcpy(&word, rec.storeData.data(), sizeof(word));
        const unsigned expectedBits = static_cast<unsigned>(
            (std::uint64_t{records[i].lrsCount} * 64 + 256) / 512);
        EXPECT_EQ(static_cast<unsigned>(std::popcount(word)),
                  expectedBits)
            << "lrs=" << records[i].lrsCount;
    }
}

// ---------------------------------------------------------------
// Frontend name handling
// ---------------------------------------------------------------

TEST(Frontend, TraceNamesAreStructural)
{
    EXPECT_TRUE(isTraceWorkload("trace:/tmp/x.trace"));
    EXPECT_FALSE(isTraceWorkload("lbm"));
    EXPECT_FALSE(isTraceWorkload("traces:/tmp/x.trace"));
    EXPECT_EQ(traceWorkloadPath("trace:/a/b c.txt"), "/a/b c.txt");
    EXPECT_EQ(traceWorkloadPath("lbm"), "");

    EXPECT_NO_THROW(validateWorkloadName("trace:/any/path", "test"));
    EXPECT_THROW(validateWorkloadName("trace:", "test"),
                 std::runtime_error);
    EXPECT_THROW(validateWorkloadName("dnn-updat", "test"),
                 std::runtime_error);
    for (const auto &name : registeredWorkloadNames())
        EXPECT_NO_THROW(validateWorkloadName(name, "test"));
}

TEST(Frontend, RegisteredNamesIncludeFamilies)
{
    auto names = registeredWorkloadNames();
    EXPECT_EQ(names.size(), 19u); // paper's 16 + three families
    for (const auto &family : familyWorkloadNames()) {
        EXPECT_NE(std::find(names.begin(), names.end(), family),
                  names.end())
            << family;
    }
}

TEST(Frontend, LoadExternTraceReportsMissingAndBadFiles)
{
    auto missing = loadExternTrace("/nonexistent/path.trace",
                                   ExternTraceFormat::Auto);
    ASSERT_FALSE(missing->ok());
    EXPECT_NE(missing->error.find("cannot read"), std::string::npos);

    fs::path bad = tempFile("bad.trace", "0x40 READ oops\n");
    auto parsed =
        loadExternTrace(bad.string(), ExternTraceFormat::Auto);
    ASSERT_FALSE(parsed->ok());
    EXPECT_NE(parsed->error.find("bad cycle"), std::string::npos);

    // The loader memoizes: same (path, format) returns the cached
    // parse (pointer identity).
    EXPECT_EQ(parsed.get(),
              loadExternTrace(bad.string(), ExternTraceFormat::Auto)
                  .get());
}

// ---------------------------------------------------------------
// End to end: the committed fixture through the full System
// ---------------------------------------------------------------

ExperimentConfig
fixtureConfig(const fs::path &outDir)
{
    ExperimentConfig cfg;
    cfg.warmupInstr = 30'000;
    cfg.measureInstr = 10'000;
    cfg.cacheScale = 1.0 / 16.0;
    cfg.statsJsonDir = outDir.string();
    cfg.system.frontend.externFootprintPages = 128;
    return cfg;
}

TEST(FrontendEndToEnd, MiniFixtureRunsWithProvenanceAndByteIdentity)
{
    const std::string workload = "trace:" + miniTrace.string();
    const fs::path outA =
        fs::path(::testing::TempDir()) / "ladder_ext_a";
    const fs::path outB =
        fs::path(::testing::TempDir()) / "ladder_ext_b";
    fs::remove_all(outA);
    fs::remove_all(outB);

    SimResult result = runOne(SchemeKind::LadderHybrid, workload,
                              fixtureConfig(outA));
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.instructions, 0u);

    const std::string cell =
        runDirName(SchemeKind::LadderHybrid, workload);
    std::string statsA = slurp(outA / cell / "stats.json");
    ASSERT_FALSE(statsA.empty());

    // Manifest provenance: path, resolved format, record count, and
    // the CRC of the raw bytes.
    JsonValue doc = parseJson(statsA);
    ASSERT_TRUE(doc.isObject());
    const JsonValue &manifest = doc.at("manifest");
    ASSERT_TRUE(manifest.has("workload_trace_path"));
    EXPECT_EQ(manifest.at("workload_trace_path").string,
              miniTrace.string());
    EXPECT_EQ(manifest.at("workload_trace_format").string,
              "dramsim3");
    EXPECT_DOUBLE_EQ(manifest.at("workload_trace_records").number,
                     1024.0);
    const std::string bytes = slurp(miniTrace);
    EXPECT_DOUBLE_EQ(manifest.at("workload_trace_crc32").number,
                     double(crc32(bytes.data(), bytes.size())));

    // Repeat run => byte-identical stats.
    runOne(SchemeKind::LadderHybrid, workload, fixtureConfig(outB));
    EXPECT_EQ(statsA, slurp(outB / cell / "stats.json"));

    fs::remove_all(outA);
    fs::remove_all(outB);
}

TEST(FrontendEndToEnd, CommittedBin2FixtureReplays)
{
    const fs::path bin2 = fs::path(LADDER_DATA_DIR) / "mini_ctrl.bin2";
    auto parsed = loadExternTrace(bin2.string(),
                                  ExternTraceFormat::Auto);
    ASSERT_TRUE(parsed->ok()) << parsed->error;
    EXPECT_EQ(parsed->format, ExternTraceFormat::Bin2);
    ASSERT_GT(parsed->records.size(), 1000u);
    // The controller recording carries real LRS counts, so Auto
    // content mode reconstructs write payloads from them.
    bool anyWriteWithLrs = false;
    for (const ExternRecord &r : parsed->records)
        anyWriteWithLrs |= r.isWrite && r.lrsCount != 0xffff;
    EXPECT_TRUE(anyWriteWithLrs);

    const std::string workload = "trace:" + bin2.string();
    const fs::path out =
        fs::path(::testing::TempDir()) / "ladder_ext_bin2";
    fs::remove_all(out);
    SimResult result = runOne(SchemeKind::LadderHybrid, workload,
                              fixtureConfig(out));
    EXPECT_GT(result.ipc, 0.0);
    JsonValue doc = parseJson(
        slurp(out / runDirName(SchemeKind::LadderHybrid, workload) /
              "stats.json"));
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("manifest").at("workload_trace_format").string,
              "bin2");
    fs::remove_all(out);
}

TEST(FrontendEndToEnd, SweepBytesIdenticalAtAnyJobs)
{
    const std::string traceName = "trace:" + miniTrace.string();
    const std::vector<std::string> workloads{traceName, "adv-lrs",
                                             "kv-log"};
    const std::vector<SchemeKind> schemes{SchemeKind::Baseline,
                                          SchemeKind::LadderHybrid};
    std::vector<std::string> dumps;
    for (unsigned jobs : {1u, 2u}) {
        const fs::path out =
            fs::path(::testing::TempDir()) /
            ("ladder_ext_jobs" + std::to_string(jobs));
        fs::remove_all(out);
        ExperimentConfig cfg = fixtureConfig(out);
        cfg.warmupInstr = 10'000;
        cfg.measureInstr = 4'000;
        cfg.jobs = jobs;
        runMatrixParallel(schemes, workloads, cfg);
        std::string dump = slurp(out / "sweep.json");
        for (const auto &workload : workloads)
            for (SchemeKind scheme : schemes)
                dump += slurp(out / runDirName(scheme, workload) /
                              "stats.json");
        ASSERT_FALSE(dump.empty());
        dumps.push_back(std::move(dump));
        fs::remove_all(out);
    }
    EXPECT_EQ(dumps[0], dumps[1])
        << "sweep outputs depend on the job count";
}

} // namespace
} // namespace ladder
