/** @file Tests for the sharer-aware LRS-metadata cache. */

#include <gtest/gtest.h>

#include "ctrl/metadata_cache.hh"

namespace ladder
{
namespace
{

/** A tiny 2-set, 2-way cache (4 lines) for eviction testing. */
MetadataCache
tinyCache()
{
    return MetadataCache(4 * lineBytes, 2);
}

Addr
addrInSet(unsigned set, unsigned n, unsigned sets)
{
    return static_cast<Addr>(set + n * sets) * lineBytes;
}

TEST(MetadataCache, GeometryFromSizeAndWays)
{
    MetadataCache cache(64 * 1024, 4);
    EXPECT_EQ(cache.ways(), 4u);
    EXPECT_EQ(cache.sets(), 64u * 1024 / 64 / 4);
}

TEST(MetadataCache, MissThenHit)
{
    MetadataCache cache = tinyCache();
    Addr a = addrInSet(0, 0, cache.sets());
    EXPECT_EQ(cache.lookupForWrite(a), MetaLookup::Miss);
    Addr victim;
    EXPECT_TRUE(cache.insert(a, 1, victim));
    EXPECT_EQ(victim, invalidAddr);
    EXPECT_EQ(cache.lookupForWrite(a), MetaLookup::Hit);
    EXPECT_EQ(cache.hits.value(), 1.0);
    EXPECT_EQ(cache.misses.value(), 1.0);
}

TEST(MetadataCache, SharersPinLines)
{
    MetadataCache cache = tinyCache();
    unsigned sets = cache.sets();
    Addr a = addrInSet(0, 0, sets);
    Addr b = addrInSet(0, 1, sets);
    Addr c = addrInSet(0, 2, sets);
    Addr victim;
    cache.insert(a, 1, victim); // sharer pinned
    cache.insert(b, 1, victim); // sharer pinned
    // Both ways pinned: a third line in the set is Blocked.
    EXPECT_EQ(cache.lookupForWrite(c), MetaLookup::Blocked);
    EXPECT_FALSE(cache.canAllocate(c));
    // Releasing one sharer unpins.
    cache.releaseSharer(a);
    EXPECT_TRUE(cache.canAllocate(c));
    EXPECT_EQ(cache.lookupForWrite(c), MetaLookup::Miss);
}

TEST(MetadataCache, EvictionPrefersUnpinnedLru)
{
    MetadataCache cache = tinyCache();
    unsigned sets = cache.sets();
    Addr a = addrInSet(1, 0, sets);
    Addr b = addrInSet(1, 1, sets);
    Addr c = addrInSet(1, 2, sets);
    Addr victim;
    cache.insert(a, 0, victim);
    cache.insert(b, 0, victim);
    // Touch a so b becomes LRU.
    cache.lookupForWrite(a);
    cache.releaseSharer(a);
    cache.insert(c, 0, victim);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(MetadataCache, DirtyVictimReported)
{
    MetadataCache cache = tinyCache();
    unsigned sets = cache.sets();
    Addr a = addrInSet(0, 0, sets);
    Addr b = addrInSet(0, 1, sets);
    Addr c = addrInSet(0, 2, sets);
    Addr victim;
    cache.insert(a, 0, victim);
    cache.markDirty(a);
    cache.insert(b, 0, victim);
    cache.insert(c, 0, victim); // evicts dirty a (LRU)
    EXPECT_EQ(victim, a);
    EXPECT_EQ(cache.dirtyEvictions.value(), 1.0);
}

TEST(MetadataCache, InsertRaceMergesSharers)
{
    MetadataCache cache = tinyCache();
    Addr a = addrInSet(0, 0, cache.sets());
    Addr victim;
    cache.insert(a, 2, victim);
    // A second fill for the same line merges instead of duplicating.
    cache.insert(a, 1, victim);
    cache.releaseSharer(a);
    cache.releaseSharer(a);
    cache.releaseSharer(a);
    EXPECT_TRUE(cache.canAllocate(a));
}

TEST(MetadataCache, InsertFailsWhenAllPinned)
{
    MetadataCache cache = tinyCache();
    unsigned sets = cache.sets();
    Addr a = addrInSet(0, 0, sets);
    Addr b = addrInSet(0, 1, sets);
    Addr c = addrInSet(0, 2, sets);
    Addr victim;
    cache.insert(a, 1, victim);
    cache.insert(b, 1, victim);
    EXPECT_FALSE(cache.insert(c, 1, victim));
}

TEST(MetadataCache, ReleaseUnderflowPanics)
{
    MetadataCache cache = tinyCache();
    Addr a = addrInSet(0, 0, cache.sets());
    Addr victim;
    cache.insert(a, 0, victim);
    EXPECT_THROW(cache.releaseSharer(a), std::logic_error);
}

TEST(MetadataCache, FlushReturnsDirtyLines)
{
    MetadataCache cache = tinyCache();
    unsigned sets = cache.sets();
    Addr a = addrInSet(0, 0, sets);
    Addr b = addrInSet(1, 0, sets);
    Addr victim;
    cache.insert(a, 0, victim);
    cache.insert(b, 0, victim);
    cache.markDirty(b);
    auto dirty = cache.flushDirty();
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0], b);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
}

TEST(MetadataCache, DistinctSetsDoNotConflict)
{
    MetadataCache cache = tinyCache();
    unsigned sets = cache.sets();
    Addr victim;
    // Fill both ways of set 0 with pinned lines.
    cache.insert(addrInSet(0, 0, sets), 1, victim);
    cache.insert(addrInSet(0, 1, sets), 1, victim);
    // Set 1 is still usable.
    EXPECT_EQ(cache.lookupForWrite(addrInSet(1, 0, sets)),
              MetaLookup::Miss);
}

} // namespace
} // namespace ladder
