/** @file Tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace ladder
{
namespace
{

TEST(StatScalar, AccumulateAndReset)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    s.set(7.0);
    EXPECT_EQ(s.value(), 7.0);
}

TEST(StatAverage, Moments)
{
    StatAverage a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(StatHistogram, Buckets)
{
    StatHistogram h(0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bucket 0
    h.sample(1.9);  // bucket 0
    h.sample(5.0);  // bucket 2
    h.sample(9.99); // bucket 4
    h.sample(10.0); // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.totalSamples(), 6u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
}

TEST(StatGroup, DumpContainsEntries)
{
    StatGroup group("sys");
    StatScalar s;
    StatAverage a;
    s += 5;
    a.sample(2.0);
    group.regScalar("reads", &s, "demand reads");
    group.regAverage("latency", &a);

    StatGroup child("child");
    StatScalar c;
    c += 1;
    child.regScalar("inner", &c);
    group.addChild(&child);

    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("sys.reads"), std::string::npos);
    EXPECT_NE(text.find("demand reads"), std::string::npos);
    EXPECT_NE(text.find("sys.latency.mean"), std::string::npos);
    EXPECT_NE(text.find("child.inner"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup group("g");
    StatScalar s;
    s += 3;
    group.regScalar("s", &s);
    StatGroup child("c");
    StatScalar cs;
    cs += 4;
    child.regScalar("cs", &cs);
    group.addChild(&child);
    group.resetAll();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(cs.value(), 0.0);
}

} // namespace
} // namespace ladder
