/** @file Tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"

namespace ladder
{
namespace
{

TEST(StatScalar, AccumulateAndReset)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
    s.set(7.0);
    EXPECT_EQ(s.value(), 7.0);
}

TEST(StatAverage, Moments)
{
    StatAverage a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(StatAverage, AllNegativeSamples)
{
    // Regression: min/max must be seeded from the first sample, not
    // from 0.0, or an all-negative set reports min() == 0.
    StatAverage a;
    a.sample(-5.0);
    a.sample(-2.0);
    a.sample(-9.0);
    EXPECT_DOUBLE_EQ(a.min(), -9.0);
    EXPECT_DOUBLE_EQ(a.max(), -2.0);
    a.reset();
    a.sample(-1.5);
    EXPECT_DOUBLE_EQ(a.min(), -1.5);
    EXPECT_DOUBLE_EQ(a.max(), -1.5);
}

TEST(StatAverage, EmptyMinMaxAreZero)
{
    StatAverage a;
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(StatHistogram, Buckets)
{
    StatHistogram h(0.0, 10.0, 5);
    h.sample(-1.0); // underflow
    h.sample(0.0);  // bucket 0
    h.sample(1.9);  // bucket 0
    h.sample(5.0);  // bucket 2
    h.sample(9.99); // bucket 4
    h.sample(10.0); // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.totalSamples(), 6u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
}

TEST(StatGroup, DumpContainsEntries)
{
    StatGroup group("sys");
    StatScalar s;
    StatAverage a;
    s += 5;
    a.sample(2.0);
    group.regScalar("reads", &s, "demand reads");
    group.regAverage("latency", &a);

    StatGroup child("child");
    StatScalar c;
    c += 1;
    child.regScalar("inner", &c);
    group.addChild(&child);

    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("sys.reads"), std::string::npos);
    EXPECT_NE(text.find("demand reads"), std::string::npos);
    EXPECT_NE(text.find("sys.latency.mean"), std::string::npos);
    EXPECT_NE(text.find("child.inner"), std::string::npos);
}

TEST(StatGroup, HistogramTextDump)
{
    StatGroup group("ctrl");
    StatHistogram h(0.0, 10.0, 2);
    h.sample(1.0);
    h.sample(6.0);
    h.sample(42.0);
    group.regHistogram("lat", &h, "latency buckets");
    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("ctrl.lat.samples"), std::string::npos);
    EXPECT_NE(text.find("ctrl.lat.overflow"), std::string::npos);
    EXPECT_NE(text.find("latency buckets"), std::string::npos);
}

TEST(StatGroup, JsonRoundTrip)
{
    StatGroup group("sys");
    StatScalar reads;
    reads += 17;
    StatAverage lat;
    lat.sample(1.5);
    lat.sample(4.5);
    StatHistogram hist(0.0, 8.0, 4);
    hist.sample(1.0);
    hist.sample(7.5);
    hist.sample(-3.0);
    group.regScalar("reads", &reads);
    group.regAverage("lat", &lat);
    group.regHistogram("hist", &hist);

    StatGroup child("child");
    StatScalar inner;
    inner += 2;
    child.regScalar("inner", &inner);
    group.addChild(&child);

    std::ostringstream os;
    JsonWriter w(os);
    group.dumpJson(w);
    ASSERT_TRUE(w.balanced());

    JsonValue v = parseJson(os.str());
    EXPECT_EQ(v.at("name").string, "sys");
    EXPECT_DOUBLE_EQ(v.at("scalars").at("reads").number, 17.0);
    const JsonValue &latJson = v.at("averages").at("lat");
    EXPECT_DOUBLE_EQ(latJson.at("mean").number, 3.0);
    EXPECT_DOUBLE_EQ(latJson.at("min").number, 1.5);
    EXPECT_DOUBLE_EQ(latJson.at("max").number, 4.5);
    EXPECT_DOUBLE_EQ(latJson.at("sum").number, 6.0);
    EXPECT_DOUBLE_EQ(latJson.at("count").number, 2.0);
    const JsonValue &histJson = v.at("histograms").at("hist");
    EXPECT_DOUBLE_EQ(histJson.at("lo").number, 0.0);
    EXPECT_DOUBLE_EQ(histJson.at("hi").number, 8.0);
    EXPECT_DOUBLE_EQ(histJson.at("samples").number, 3.0);
    EXPECT_DOUBLE_EQ(histJson.at("underflow").number, 1.0);
    ASSERT_EQ(histJson.at("counts").array.size(), 4u);
    EXPECT_DOUBLE_EQ(histJson.at("counts").array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(histJson.at("counts").array[3].number, 1.0);
    ASSERT_EQ(v.at("children").array.size(), 1u);
    EXPECT_DOUBLE_EQ(
        v.at("children").array[0].at("scalars").at("inner").number,
        2.0);
}

TEST(StatGroup, VisitFlattensLeaves)
{
    StatGroup group("g");
    StatScalar s;
    s += 3;
    StatAverage a;
    a.sample(2.0);
    a.sample(4.0);
    group.regScalar("s", &s);
    group.regAverage("a", &a);
    std::map<std::string, double> seen;
    group.visit([&](const std::string &name, double v) {
        seen[name] = v;
    });
    EXPECT_DOUBLE_EQ(seen.at("g.s"), 3.0);
    EXPECT_DOUBLE_EQ(seen.at("g.a.sum"), 6.0);
    EXPECT_DOUBLE_EQ(seen.at("g.a.count"), 2.0);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup group("g");
    StatScalar s;
    s += 3;
    group.regScalar("s", &s);
    StatGroup child("c");
    StatScalar cs;
    cs += 4;
    child.regScalar("cs", &cs);
    group.addChild(&child);
    group.resetAll();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(cs.value(), 0.0);
}

} // namespace
} // namespace ladder
