/** @file Tests for the experiment harness helpers. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace ladder
{
namespace
{

TEST(Experiment, WorkloadProgramsForSingles)
{
    auto programs = workloadPrograms("astar");
    EXPECT_EQ(programs, std::vector<std::string>{"astar"});
}

TEST(Experiment, WorkloadProgramsForMixes)
{
    auto programs = workloadPrograms("mix-3");
    EXPECT_EQ(programs,
              (std::vector<std::string>{"bwaves", "zeusmp", "astar",
                                        "mcf"}));
    EXPECT_THROW(workloadPrograms("mix-99"), std::runtime_error);
}

TEST(Experiment, MakeSystemConfigWiresParameters)
{
    ExperimentConfig cfg;
    cfg.granularity = 4;
    cfg.rangeShrink = 2.0;
    cfg.fnwMode = FnwMode::Off;
    SystemConfig sys =
        makeSystemConfig(SchemeKind::LadderHybrid, "mix-2", cfg);
    EXPECT_EQ(sys.scheme, SchemeKind::LadderHybrid);
    EXPECT_EQ(sys.tableGranularity, 4u);
    EXPECT_DOUBLE_EQ(sys.rangeShrink, 2.0);
    EXPECT_EQ(sys.workloads.size(), 4u);
    EXPECT_EQ(sys.controller.fnwMode, FnwMode::Off);
}

TEST(Experiment, SpeedupOverAveragesPerCoreRatios)
{
    SimResult base, fast;
    base.coreIpc = {1.0, 2.0};
    fast.coreIpc = {2.0, 2.0};
    EXPECT_DOUBLE_EQ(speedupOver(fast, base), 1.5);
    SimResult mismatch;
    mismatch.coreIpc = {1.0};
    EXPECT_THROW(speedupOver(mismatch, base), std::logic_error);
}

TEST(Experiment, DefaultConfigSane)
{
    ExperimentConfig cfg = defaultExperimentConfig();
    EXPECT_GT(cfg.warmupInstr, 0u);
    EXPECT_GT(cfg.measureInstr, 0u);
    EXPECT_EQ(cfg.granularity, 8u);
}

TEST(Experiment, PaperScaleRestoresFullSizes)
{
    SystemConfig cfg;
    applyPaperScale(cfg);
    EXPECT_EQ(cfg.caches.l3.sizeBytes, 32u * 1024 * 1024);
    EXPECT_EQ(cfg.caches.l2.sizeBytes, 4u * 1024 * 1024);
    EXPECT_TRUE(cfg.paperScale);
}

} // namespace
} // namespace ladder
